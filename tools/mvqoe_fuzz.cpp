// mvqoe_fuzz — deterministic scenario fuzzer with invariant oracles.
//
//   mvqoe_fuzz [--seed N] [--runs N] [--jobs N] [--out DIR]
//              [--max-videos N] [--max-duration S] [--no-meta]
//              [--perturb-run K] [--perturb-at S]
//       Sample `runs` random scenarios from seed N (run i's world is
//       derive_seed(seed, i+1)) and execute each under the full oracle
//       suite at every 1-second slice boundary, plus run-twice and
//       checkpoint/restore digest-identity checks. Failures are
//       auto-shrunk to a minimal spec, localized to the first
//       diverging/violating event, and written to DIR as self-contained
//       repro blobs. The summary digest is invariant to --jobs.
//       --perturb-run K flips one RNG bit in run K at --perturb-at
//       seconds (default 2) — a manufactured determinism failure for
//       demos and tests.
//
//   mvqoe_fuzz --minutes N [same flags]
//       Budgeted campaign: keep running batches (each `--runs` worlds,
//       batch b reseeded with derive_seed(seed, 1000000 + b)) until N
//       wall-clock minutes elapse.
//
//   mvqoe_fuzz --procs N [--state FILE] [--shard-size N] [--retries N]
//              [--heartbeat-ms N] [--backoff-ms N] [same flags]
//       Crash-safe multi-process campaign (DESIGN.md §13): runs are
//       sharded across N supervised worker processes; a crashed or hung
//       worker is SIGKILLed and its shard retried with exponential
//       backoff, and with --state every completed shard is checkpointed
//       atomically. SIGINT/SIGTERM flush the checkpoint and exit with
//       128+signo. The digest matches --jobs runs exactly.
//
//   mvqoe_fuzz --resume FILE [--procs N]
//       Resume a killed campaign from its checkpoint: the fuzz
//       configuration is reconstructed from the blob (a checkpoint from
//       a different configuration is refused), only the missing runs
//       execute, and the final digest is byte-identical to an
//       uninterrupted run.
//
//   mvqoe_fuzz --repro FILE
//       Load a repro blob and re-run its (shrunk) scenario under the
//       same options; exit 0 iff the recorded oracle trips again.
//
// Exit status: 0 all runs clean / repro reproduced, 1 failures found or
// repro did not reproduce, 2 usage or I/O errors, 3 campaign degraded
// (a shard exhausted its retry budget), 128+signo interrupted with the
// checkpoint flushed.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <string>

#include <vector>

#include "campaign/fuzz_campaign.hpp"
#include "campaign/progress.hpp"
#include "campaign/signal.hpp"
#include "check/harness.hpp"
#include "check/shrink.hpp"
#include "mem/policy.hpp"
#include "net/cc.hpp"
#include "stats/rng.hpp"

namespace {

using namespace mvqoe;

int usage() {
  std::fprintf(stderr,
               "usage: mvqoe_fuzz [--seed N] [--runs N] [--jobs N] [--out DIR]\n"
               "                  [--max-videos N] [--max-duration S] [--no-meta]\n"
               "                  [--policy NAME[,NAME...]] [--cc NAME[,NAME...]]\n"
               "                  [--perturb-run K]\n"
               "                  [--perturb-at S] [--minutes N] [--progress]\n"
               "       mvqoe_fuzz --procs N [--state FILE] [--shard-size N] [--retries N]\n"
               "                  [--heartbeat-ms N] [--backoff-ms N] [common flags]\n"
               "       mvqoe_fuzz --resume FILE [--procs N]\n"
               "       mvqoe_fuzz --repro FILE\n");
  return 2;
}

struct Args {
  std::uint64_t seed = 1;
  int runs = 100;
  int jobs = 1;
  int minutes = 0;
  std::string out_dir = ".";
  std::string repro_path;
  int max_videos = 3;
  int max_duration = 8;
  /// Memory-policy axis for generated worlds; empty = baseline only.
  std::vector<std::string> policies;
  /// Congestion-control axis for generated worlds; empty = fifo only.
  std::vector<std::string> ccs;
  bool meta = true;
  int perturb_run = -1;
  int perturb_at_s = 2;
  // Campaign mode (multi-process, crash-safe).
  int procs = 0;  // 0 = in-process --jobs pool; >0 = campaign coordinator
  std::string state_path;
  std::string resume_path;
  int shard_size = 8;
  int retries = 3;
  int heartbeat_ms = 120000;
  int backoff_ms = 100;
  // Deterministic failure injection (tests; see campaign::TestHooks).
  int abort_run = -1;
  int abort_attempts = 1;
  int kill_after_checkpoints = 0;
  bool progress = false;
  bool ok = true;
};

void split_csv(const std::string& csv, std::vector<std::string>& out) {
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string name =
        csv.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!name.empty()) out.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

Args parse_args(int argc, char** argv) {
  Args args;
  const auto value = [&](int& i) -> const char* {
    const char* eq = std::strchr(argv[i], '=');
    if (eq != nullptr) return eq + 1;
    if (i + 1 >= argc) {
      args.ok = false;
      return "";
    }
    return argv[++i];
  };
  const auto is_flag = [&](int i, const char* name) {
    const std::size_t len = std::strlen(name);
    return std::strncmp(argv[i], name, len) == 0 && (argv[i][len] == '\0' || argv[i][len] == '=');
  };
  for (int i = 1; i < argc && args.ok; ++i) {
    if (is_flag(i, "--seed")) {
      args.seed = std::strtoull(value(i), nullptr, 0);
    } else if (is_flag(i, "--runs")) {
      args.runs = std::atoi(value(i));
    } else if (is_flag(i, "--jobs")) {
      args.jobs = std::atoi(value(i));
    } else if (is_flag(i, "--minutes")) {
      args.minutes = std::atoi(value(i));
    } else if (is_flag(i, "--out")) {
      args.out_dir = value(i);
    } else if (is_flag(i, "--repro")) {
      args.repro_path = value(i);
    } else if (is_flag(i, "--max-videos")) {
      args.max_videos = std::atoi(value(i));
    } else if (is_flag(i, "--max-duration")) {
      args.max_duration = std::atoi(value(i));
    } else if (is_flag(i, "--policy")) {
      split_csv(value(i), args.policies);
      if (args.policies.empty()) args.ok = false;
    } else if (is_flag(i, "--cc")) {
      split_csv(value(i), args.ccs);
      if (args.ccs.empty()) args.ok = false;
    } else if (is_flag(i, "--no-meta")) {
      args.meta = false;
    } else if (is_flag(i, "--perturb-run")) {
      args.perturb_run = std::atoi(value(i));
    } else if (is_flag(i, "--perturb-at")) {
      args.perturb_at_s = std::atoi(value(i));
    } else if (is_flag(i, "--procs")) {
      args.procs = std::atoi(value(i));
    } else if (is_flag(i, "--state")) {
      args.state_path = value(i);
    } else if (is_flag(i, "--resume")) {
      args.resume_path = value(i);
    } else if (is_flag(i, "--shard-size")) {
      args.shard_size = std::atoi(value(i));
    } else if (is_flag(i, "--retries")) {
      args.retries = std::atoi(value(i));
    } else if (is_flag(i, "--heartbeat-ms")) {
      args.heartbeat_ms = std::atoi(value(i));
    } else if (is_flag(i, "--backoff-ms")) {
      args.backoff_ms = std::atoi(value(i));
    } else if (is_flag(i, "--abort-run")) {
      args.abort_run = std::atoi(value(i));
    } else if (is_flag(i, "--abort-attempts")) {
      args.abort_attempts = std::atoi(value(i));
    } else if (is_flag(i, "--kill-after-checkpoints")) {
      args.kill_after_checkpoints = std::atoi(value(i));
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      args.progress = true;
    } else {
      args.ok = false;
    }
  }
  if (args.runs < 1 || args.max_videos < 1 || args.max_duration < 1) args.ok = false;
  const bool campaign_mode =
      args.procs > 0 || !args.state_path.empty() || !args.resume_path.empty();
  // A --minutes soak reseeds per batch — one checkpoint cannot describe
  // it, and the coordinator owns parallelism in campaign mode.
  if (campaign_mode && args.minutes > 0) args.ok = false;
  if (!args.state_path.empty() && !args.resume_path.empty()) args.ok = false;
  if (campaign_mode && (args.shard_size < 1 || args.retries < 1 || args.heartbeat_ms < 1 ||
                        args.backoff_ms < 0)) {
    args.ok = false;
  }
  return args;
}

check::FuzzOptions fuzz_options(const Args& args, std::uint64_t seed) {
  check::FuzzOptions opts;
  opts.seed = seed;
  opts.runs = args.runs;
  opts.jobs = args.jobs;
  opts.generator.max_videos = args.max_videos;
  opts.generator.max_duration_s = args.max_duration;
  opts.generator.policies = args.policies;
  opts.generator.ccs = args.ccs;
  opts.check.meta_determinism = args.meta;
  opts.perturb_run = args.perturb_run;
  opts.perturb_offset = sim::sec(args.perturb_at_s);
  return opts;
}

/// Shrink + localize + write the repro blob for one failure.
void handle_failure(const Args& args, const check::FuzzOptions& opts,
                    const check::FuzzFailure& failure) {
  std::printf("FAIL run=%d seed=%llu oracle=%s\n  %s\n", failure.run,
              static_cast<unsigned long long>(failure.run_seed), failure.violation.oracle.c_str(),
              failure.violation.detail.c_str());
  if (failure.violation.oracle == "exception") return;

  const std::optional<sim::Time> perturb_at =
      failure.run == opts.perturb_run ? std::optional<sim::Time>(opts.perturb_offset)
                                      : std::nullopt;
  check::ShrinkOptions shrink_opts;
  shrink_opts.check = opts.check;
  shrink_opts.perturb_at = perturb_at;
  const check::ShrinkResult shrunk = check::shrink(failure.spec, failure.violation, shrink_opts);
  std::printf("  shrunk: %zu -> %zu workloads (%d attempts, %d accepted)\n",
              failure.spec.workloads.size(), shrunk.minimal.workloads.size(), shrunk.attempts,
              shrunk.accepted);

  const check::Localization loc =
      check::localize_violation(shrunk.minimal, shrunk.violation, perturb_at, opts.check);
  if (loc.located) {
    std::printf("  first divergent event: t=%.6fs seq=%llu subsystem=%s\n",
                sim::to_seconds(loc.event_time), static_cast<unsigned long long>(loc.event_seq),
                loc.subsystem.c_str());
  } else {
    std::printf("  localization: %s\n", loc.detail.c_str());
  }

  check::Repro repro;
  repro.spec = shrunk.minimal;
  repro.run_seed = failure.run_seed;
  repro.oracle = shrunk.violation.oracle;
  repro.detail = shrunk.violation.detail;
  repro.offset = shrunk.violation.offset;
  repro.perturb_at = perturb_at;
  const std::string path = args.out_dir + "/repro-run" + std::to_string(failure.run) + ".mvqs";
  if (snapshot::Snapshot::write_file(path, check::save_repro(repro))) {
    std::printf("  repro written: %s (replay with --repro)\n", path.c_str());
  } else {
    std::fprintf(stderr, "mvqoe_fuzz: cannot write %s\n", path.c_str());
  }
}

int cmd_repro(const Args& args) {
  const snapshot::Snapshot blob = snapshot::Snapshot::read_file(args.repro_path);
  const check::Repro repro = check::load_repro(blob);
  std::printf("repro: oracle=%s offset=+%.0fs perturb=%s seed=%llu\n  recorded: %s\n",
              repro.oracle.c_str(), sim::to_seconds(repro.offset),
              repro.perturb_at ? "yes" : "no", static_cast<unsigned long long>(repro.run_seed),
              repro.detail.c_str());
  check::CheckOptions opts;
  opts.meta_determinism = args.meta;
  const check::ReproReport report = check::replay_repro(repro, opts);
  if (report.reproduced) {
    std::printf("REPRODUCED: %s\n  %s\n", report.violation->oracle.c_str(),
                report.violation->detail.c_str());
    return 0;
  }
  if (report.violation) {
    std::printf("DIFFERENT FAILURE: %s\n  %s\n", report.violation->oracle.c_str(),
                report.violation->detail.c_str());
  } else {
    std::printf("NOT REPRODUCED: scenario ran clean\n");
  }
  return 1;
}

/// Multi-process crash-safe campaign (--procs / --state / --resume).
int cmd_campaign(const Args& args) {
  check::FuzzOptions opts;
  if (!args.resume_path.empty()) {
    opts = campaign::load_fuzz_resume_config(args.resume_path);
    std::printf("resume: %s (seed=%llu runs=%d)\n", args.resume_path.c_str(),
                static_cast<unsigned long long>(opts.seed), opts.runs);
  } else {
    opts = fuzz_options(args, args.seed);
  }

  campaign::CampaignOptions copts;
  copts.procs = args.procs > 0 ? args.procs : 1;
  copts.shard_size = static_cast<std::size_t>(args.shard_size);
  copts.max_attempts = args.retries;
  copts.heartbeat_timeout_ms = args.heartbeat_ms;
  copts.backoff_ms = args.backoff_ms;
  copts.state_path = args.resume_path.empty() ? args.state_path : args.resume_path;
  copts.resume = !args.resume_path.empty();
  copts.hooks.abort_unit = args.abort_run;
  copts.hooks.abort_attempts = args.abort_attempts;
  copts.hooks.kill_after_checkpoints = args.kill_after_checkpoints;

  campaign::InterruptGuard guard;
  copts.interrupt = guard.flag();

  campaign::ProgressMeter meter("runs");
  if (args.progress) {
    copts.progress = [&meter](std::uint64_t done, std::uint64_t total) {
      meter.update(done, total);
    };
  }

  const campaign::FuzzCampaignResult result = campaign::run_fuzz_campaign(opts, copts);
  meter.finish();

  if (result.campaign.units_from_checkpoint > 0) {
    std::printf("resumed: %llu/%d runs from checkpoint, %llu executed\n",
                static_cast<unsigned long long>(result.campaign.units_from_checkpoint), opts.runs,
                static_cast<unsigned long long>(result.campaign.units_done -
                                                result.campaign.units_from_checkpoint));
  }
  for (const check::FuzzFailure& failure : result.summary.failures) {
    handle_failure(args, opts, failure);
  }
  for (const campaign::ShardOutcome& shard : result.campaign.shards) {
    if (shard.status == campaign::ShardStatus::Failed) {
      std::printf("shard runs [%llu..%llu) FAILED after %d attempts: %s\n",
                  static_cast<unsigned long long>(shard.first_unit),
                  static_cast<unsigned long long>(shard.first_unit + shard.unit_count),
                  shard.attempts, shard.error.c_str());
    } else if (shard.attempts > 1) {
      std::printf("shard runs [%llu..%llu) recovered on attempt %d\n",
                  static_cast<unsigned long long>(shard.first_unit),
                  static_cast<unsigned long long>(shard.first_unit + shard.unit_count),
                  shard.attempts);
    }
  }

  if (result.campaign.interrupted) {
    std::printf("interrupted by signal %d: %llu/%d runs done, checkpoint %s\n",
                guard.signal_number(),
                static_cast<unsigned long long>(result.campaign.units_done), opts.runs,
                copts.state_path.empty() ? "disabled (--state not set)"
                                         : ("flushed to " + copts.state_path).c_str());
    std::fflush(stdout);
    return guard.exit_code();
  }
  if (!result.campaign.complete) {
    std::printf("campaign degraded: %llu/%d runs completed, %d failed among them\n",
                static_cast<unsigned long long>(result.campaign.units_done), opts.runs,
                result.summary.failed);
    std::fflush(stdout);
    return 3;
  }
  std::printf("fuzz summary: seed=%llu runs=%d failed=%d digest=%016llx\n",
              static_cast<unsigned long long>(opts.seed), result.summary.runs,
              result.summary.failed, static_cast<unsigned long long>(result.summary.digest));
  std::fflush(stdout);
  return result.summary.failed == 0 ? 0 : 1;
}

int run_campaign(const Args& args) {
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::minutes(args.minutes);
  int total_runs = 0;
  int total_failed = 0;
  int batch = 0;
  do {
    const std::uint64_t batch_seed =
        args.minutes > 0 ? stats::derive_seed(args.seed, 1000000ULL + static_cast<std::uint64_t>(batch))
                         : args.seed;
    check::FuzzOptions opts = fuzz_options(args, batch_seed);
    campaign::ProgressMeter meter("runs");
    if (args.progress) {
      opts.progress = [&meter](std::uint64_t done, std::uint64_t total) {
        meter.update(done, total);
      };
    }
    const check::FuzzSummary summary = check::run_fuzz(opts);
    meter.finish();
    for (const check::FuzzFailure& failure : summary.failures) {
      handle_failure(args, opts, failure);
    }
    total_runs += summary.runs;
    total_failed += summary.failed;
    std::printf("fuzz summary: seed=%llu runs=%d failed=%d digest=%016llx\n",
                static_cast<unsigned long long>(batch_seed), summary.runs, summary.failed,
                static_cast<unsigned long long>(summary.digest));
    std::fflush(stdout);
    ++batch;
  } while (args.minutes > 0 && clock::now() < deadline);
  if (args.minutes > 0) {
    std::printf("campaign: %d batches, %d runs, %d failed\n", batch, total_runs, total_failed);
  }
  return total_failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (!args.ok) return usage();
  try {
    for (const std::string& name : args.policies) {
      mvqoe::mem::validate_policy_spec({name, {}});
    }
    for (const std::string& name : args.ccs) {
      mvqoe::net::validate_net_spec({name, {}});
    }
    if (!args.repro_path.empty()) return cmd_repro(args);
    if (args.procs > 0 || !args.state_path.empty() || !args.resume_path.empty()) {
      return cmd_campaign(args);
    }
    return run_campaign(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mvqoe_fuzz: %s\n", e.what());
    return 2;
  }
}
