// mvqoe_policy — the "what if Android did X" reclaim/kill policy lab.
//
//   mvqoe_policy compare [--policies p1,p2,...] [--family F] [--duration S]
//                        [--organic N] [--states s1,s2,...] [--fps n1,n2,...]
//                        [--heights h1,h2,...] [--runs N] [--seed N]
//                        [--procs N] [--group-workers N] [--state FILE]
//                        [--shard-size N] [--retries N] [--heartbeat-ms N]
//                        [--backoff-ms N] [--out NAME] [--progress]
//       Run the SAME warm-start sweep grid once per memory policy
//       (DESIGN.md §16): every policy lane boots identically-seeded
//       device worlds (the sweep_group_seed scheme is policy-blind) and
//       differs only in how its reclaim/kill policy responds, so the
//       per-lane QoE deltas are attributable to the policy alone. Runs
//       as a supervised multi-process campaign; one campaign unit is one
//       (policy, state, run) warm-sweep group. The summary digest is
//       invariant to --procs/--group-workers and to kill-and-resume.
//       --out writes one BENCH_<NAME>_<policy>.json grid per lane.
//
//   mvqoe_policy compare --resume FILE [--procs N] [--group-workers N]
//       Resume a killed compare from its checkpoint (a checkpoint
//       recorded under a different grid or policy list is refused); the
//       digest and lane output are byte-identical to an uninterrupted
//       run.
//
//   mvqoe_policy list
//       Print the registered policy names.
//
// Exit status: 0 complete, 2 usage or I/O errors, 3 campaign degraded
// (a shard exhausted its retry budget), 128+signo interrupted with the
// checkpoint flushed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "campaign/policy_campaign.hpp"
#include "campaign/progress.hpp"
#include "campaign/signal.hpp"
#include "runner/video_batch.hpp"

namespace {

using namespace mvqoe;

int usage() {
  std::fprintf(stderr,
               "usage: mvqoe_policy compare [--policies p1,p2,...] [--family F]\n"
               "                            [--duration S] [--organic N]\n"
               "                            [--states s1,s2,...] [--fps n1,n2,...]\n"
               "                            [--heights h1,h2,...] [--runs N] [--seed N]\n"
               "                            [--procs N] [--group-workers N] [--state FILE]\n"
               "                            [--shard-size N] [--retries N]\n"
               "                            [--heartbeat-ms N] [--backoff-ms N]\n"
               "                            [--out NAME] [--progress]\n"
               "       mvqoe_policy compare --resume FILE [--procs N] [--group-workers N]\n"
               "       mvqoe_policy list\n"
               "states: normal moderate low critical\n"
               "policies: baseline swam ariadne partitioned (default: all)\n");
  return 2;
}

bool parse_state(const std::string& s, mem::PressureLevel& out) {
  if (s == "normal") out = mem::PressureLevel::Normal;
  else if (s == "moderate") out = mem::PressureLevel::Moderate;
  else if (s == "low") out = mem::PressureLevel::Low;
  else if (s == "critical") out = mem::PressureLevel::Critical;
  else return false;
  return true;
}

const char* state_name(mem::PressureLevel state) {
  switch (state) {
    case mem::PressureLevel::Normal: return "normal";
    case mem::PressureLevel::Moderate: return "moderate";
    case mem::PressureLevel::Low: return "low";
    case mem::PressureLevel::Critical: return "critical";
  }
  return "?";
}

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(value.substr(start));
      break;
    }
    out.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

struct Args {
  campaign::PolicyCompareSpec spec;
  int procs = 1;
  std::string state_path;
  std::string resume_path;
  int shard_size = 1;  // one (policy, state, run) group per shard
  int retries = 3;
  int heartbeat_ms = 120000;
  int backoff_ms = 100;
  int kill_after_checkpoints = 0;
  std::int64_t abort_unit = -1;
  int abort_attempts = 1;
  std::string out_name;
  bool progress = false;
  bool ok = true;
};

Args parse_args(int argc, char** argv) {
  Args args;
  // Compact compare defaults: the policy axis is the point, the grid is
  // one representative cell ladder.
  args.spec.base.duration_s = 12;
  args.spec.base.states = {mem::PressureLevel::Low};
  args.spec.base.fps = {30};
  args.spec.base.heights = {480};
  for (const std::string& name : mem::mem_policy_names()) {
    args.spec.policies.push_back({name, {}});
  }
  const auto value = [&](int& i) -> const char* {
    const char* eq = std::strchr(argv[i], '=');
    if (eq != nullptr) return eq + 1;
    if (i + 1 >= argc) {
      args.ok = false;
      return "";
    }
    return argv[++i];
  };
  const auto is_flag = [&](int i, const char* name) {
    const std::size_t len = std::strlen(name);
    return std::strncmp(argv[i], name, len) == 0 && (argv[i][len] == '\0' || argv[i][len] == '=');
  };
  for (int i = 2; i < argc && args.ok; ++i) {
    if (is_flag(i, "--policies")) {
      args.spec.policies.clear();
      for (const std::string& name : split_csv(value(i))) {
        if (name.empty()) {
          args.ok = false;
          break;
        }
        args.spec.policies.push_back({name, {}});
      }
      if (args.spec.policies.empty()) args.ok = false;
    } else if (is_flag(i, "--family")) {
      args.spec.base.family = value(i);
    } else if (is_flag(i, "--duration")) {
      args.spec.base.duration_s = std::atoi(value(i));
    } else if (is_flag(i, "--organic")) {
      args.spec.base.organic_apps = std::atoi(value(i));
    } else if (is_flag(i, "--states")) {
      args.spec.base.states.clear();
      for (const std::string& name : split_csv(value(i))) {
        mem::PressureLevel state{};
        if (!parse_state(name, state)) {
          args.ok = false;
          break;
        }
        args.spec.base.states.push_back(state);
      }
    } else if (is_flag(i, "--fps")) {
      args.spec.base.fps.clear();
      for (const std::string& f : split_csv(value(i))) {
        args.spec.base.fps.push_back(std::atoi(f.c_str()));
      }
    } else if (is_flag(i, "--heights")) {
      args.spec.base.heights.clear();
      for (const std::string& h : split_csv(value(i))) {
        args.spec.base.heights.push_back(std::atoi(h.c_str()));
      }
    } else if (is_flag(i, "--runs")) {
      args.spec.base.runs = std::atoi(value(i));
    } else if (is_flag(i, "--seed")) {
      args.spec.base.seed = std::strtoull(value(i), nullptr, 0);
    } else if (is_flag(i, "--procs")) {
      args.procs = std::atoi(value(i));
    } else if (is_flag(i, "--group-workers")) {
      args.spec.base.group_workers = std::atoi(value(i));
    } else if (is_flag(i, "--state")) {
      args.state_path = value(i);
    } else if (is_flag(i, "--resume")) {
      args.resume_path = value(i);
    } else if (is_flag(i, "--shard-size")) {
      args.shard_size = std::atoi(value(i));
    } else if (is_flag(i, "--retries")) {
      args.retries = std::atoi(value(i));
    } else if (is_flag(i, "--heartbeat-ms")) {
      args.heartbeat_ms = std::atoi(value(i));
    } else if (is_flag(i, "--backoff-ms")) {
      args.backoff_ms = std::atoi(value(i));
    } else if (is_flag(i, "--kill-after-checkpoints")) {
      args.kill_after_checkpoints = std::atoi(value(i));
    } else if (is_flag(i, "--abort-unit")) {
      args.abort_unit = std::atoll(value(i));
    } else if (is_flag(i, "--abort-attempts")) {
      args.abort_attempts = std::atoi(value(i));
    } else if (is_flag(i, "--out")) {
      args.out_name = value(i);
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      args.progress = true;
    } else {
      args.ok = false;
    }
  }
  if (args.procs < 1 || args.shard_size < 1 || args.retries < 1 || args.heartbeat_ms < 1 ||
      args.backoff_ms < 0) {
    args.ok = false;
  }
  if (!args.state_path.empty() && !args.resume_path.empty()) args.ok = false;
  return args;
}

/// One deterministic line per (lane, state): the compare's readable
/// output, aggregated across the state's (fps, height) cells.
void print_lane(const campaign::PolicyLane& lane,
                const std::vector<mem::PressureLevel>& states, std::size_t cells_per_state) {
  for (std::size_t s = 0; s < states.size(); ++s) {
    qoe::RunAggregate rollup;
    std::size_t failures = 0;
    for (std::size_t c = 0; c < cells_per_state; ++c) {
      const runner::SweepCellResult& cell = lane.cells[s * cells_per_state + c];
      for (const qoe::RunOutcome& outcome : cell.aggregate.outcomes()) rollup.add(outcome);
      failures += cell.failures;
    }
    const stats::MeanCi drop = rollup.drop_rate();
    const stats::MeanCi rebuffers = rollup.rebuffer_events();
    const stats::MeanCi peak = rollup.peak_pss_mb();
    std::printf("policy=%s state=%s runs=%zu drop=%.4f%%+-%.4f crash=%.2f%% relaunch=%.2f%% "
                "rebuffers=%.3f peak_pss=%.2fMB failures=%zu\n",
                lane.policy.name.c_str(), state_name(states[s]), rollup.runs(),
                drop.mean * 100.0, drop.ci95 * 100.0, rollup.crash_rate_percent(),
                rollup.relaunch_rate_percent(), rebuffers.mean, peak.mean, failures);
  }
}

int cmd_compare(const Args& args) {
  campaign::PolicyCompareSpec spec = args.spec;
  if (!args.resume_path.empty()) {
    const int group_workers = spec.base.group_workers;
    spec = campaign::load_policy_resume_config(args.resume_path);
    spec.base.group_workers = group_workers;
    std::printf("resume: %s (family=%s %zu policies x %zu states, %d run(s))\n",
                args.resume_path.c_str(), spec.base.family.c_str(), spec.policies.size(),
                spec.base.states.size(), spec.base.runs);
  }

  campaign::CampaignOptions copts;
  copts.procs = args.procs;
  copts.shard_size = static_cast<std::size_t>(args.shard_size);
  copts.max_attempts = args.retries;
  copts.heartbeat_timeout_ms = args.heartbeat_ms;
  copts.backoff_ms = args.backoff_ms;
  copts.state_path = args.resume_path.empty() ? args.state_path : args.resume_path;
  copts.resume = !args.resume_path.empty();
  copts.hooks.abort_unit = args.abort_unit;
  copts.hooks.abort_attempts = args.abort_attempts;
  copts.hooks.kill_after_checkpoints = args.kill_after_checkpoints;

  campaign::InterruptGuard guard;
  copts.interrupt = guard.flag();

  campaign::ProgressMeter meter("groups");
  if (args.progress) {
    copts.progress = [&meter](std::uint64_t done, std::uint64_t total_units) {
      meter.update(done, total_units);
    };
  }

  const campaign::PolicyCompareResult result = campaign::run_policy_compare(spec, copts);
  meter.finish();
  const std::uint64_t total = campaign::policy_total_units(spec);

  if (result.campaign.units_from_checkpoint > 0) {
    std::printf("resumed: %llu/%llu groups from checkpoint, %llu executed\n",
                static_cast<unsigned long long>(result.campaign.units_from_checkpoint),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(result.campaign.units_done -
                                                result.campaign.units_from_checkpoint));
  }
  for (const campaign::ShardOutcome& shard : result.campaign.shards) {
    if (shard.status == campaign::ShardStatus::Failed) {
      std::printf("shard groups [%llu..%llu) FAILED after %d attempts: %s\n",
                  static_cast<unsigned long long>(shard.first_unit),
                  static_cast<unsigned long long>(shard.first_unit + shard.unit_count),
                  shard.attempts, shard.error.c_str());
    } else if (shard.attempts > 1) {
      std::printf("shard groups [%llu..%llu) recovered on attempt %d\n",
                  static_cast<unsigned long long>(shard.first_unit),
                  static_cast<unsigned long long>(shard.first_unit + shard.unit_count),
                  shard.attempts);
    }
  }

  if (result.campaign.interrupted) {
    std::printf("interrupted by signal %d: %llu/%llu groups done, checkpoint %s\n",
                guard.signal_number(),
                static_cast<unsigned long long>(result.campaign.units_done),
                static_cast<unsigned long long>(total),
                copts.state_path.empty() ? "disabled (--state not set)"
                                         : ("flushed to " + copts.state_path).c_str());
    std::fflush(stdout);
    return guard.exit_code();
  }

  const std::size_t cells_per_state = spec.base.fps.size() * spec.base.heights.size();
  for (const campaign::PolicyLane& lane : result.lanes) {
    print_lane(lane, spec.base.states, cells_per_state);
  }
  std::printf("policy compare: %zu policies x %zu cells x %d run(s), %llu/%llu groups, "
              "procs=%d digest=%016llx\n",
              spec.policies.size(), cells_per_state * spec.base.states.size(), spec.base.runs,
              static_cast<unsigned long long>(result.campaign.units_done),
              static_cast<unsigned long long>(total), result.campaign.procs_used,
              static_cast<unsigned long long>(result.digest));
  if (!args.out_name.empty()) {
    for (const campaign::PolicyLane& lane : result.lanes) {
      const std::string bench_name = args.out_name + "_" + lane.policy.name;
      // Lane JSON is a result artifact: it must be byte-identical across
      // serial, --procs and kill-and-resume, so it always records the
      // canonical serial form rather than this run's procs_used.
      const std::string path = runner::write_sweep_json(bench_name, lane.cells, spec.base.runs,
                                                        /*jobs_used=*/1, spec.base.seed);
      if (path.empty()) {
        std::fprintf(stderr, "mvqoe_policy: cannot write BENCH_%s.json\n", bench_name.c_str());
        return 2;
      }
      std::printf("machine-readable: %s\n", path.c_str());
    }
  }
  std::fflush(stdout);
  return result.campaign.complete ? 0 : 3;
}

int cmd_list() {
  for (const std::string& name : mem::mem_policy_names()) std::printf("%s\n", name.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  if (command == "list") return cmd_list();
  const Args args = parse_args(argc, argv);
  if (!args.ok) return usage();
  try {
    if (command == "compare") return cmd_compare(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mvqoe_policy: %s\n", e.what());
    return 2;
  }
  return usage();
}
