// mvqoe_replay — record, verify and bisect deterministic runs.
//
//   mvqoe_replay record <blob> [--family=F] [--height=H] [--fps=N]
//                              [--duration=S] [--state=L] [--seed=N]
//                              [--interval=S] [--videos=N]
//       Run the scenario, sampling the full-state digest every
//       --interval seconds, and write the blob (scenario + digest trail
//       + final per-subsystem state). --videos > 1 records a contention
//       scenario: N concurrent sessions on the same device, each with a
//       derived per-session seed.
//
//   mvqoe_replay info <blob>
//       Print the scenario, checkpoint trail and subsystem digests.
//
//   mvqoe_replay verify <blob> [--perturb-at=S]
//       Re-run the scenario and compare every checkpoint digest.
//       --perturb-at flips one RNG bit S seconds into playback (a
//       manufactured divergence, for demos and tests).
//
//   mvqoe_replay bisect <blob> --perturb-at=S
//       Localize the divergence the perturbation causes: binary-search
//       the digest trail (each probe is a fresh replay), then lockstep
//       two drivers through the first bad interval to name the first
//       diverging event and subsystem.
//
// Exit status: 0 on success / digests match, 1 on mismatch or divergence,
// 2 on usage or I/O errors, 128+signo when a recording is interrupted by
// SIGINT/SIGTERM (the partial blob is still flushed, atomically).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <optional>
#include <string>

#include "campaign/signal.hpp"
#include "runner/scenario_batch.hpp"
#include "snapshot/replay/record.hpp"

namespace {

using namespace mvqoe;
using namespace mvqoe::snapshot;
using namespace mvqoe::snapshot::replay;

int usage() {
  std::fprintf(stderr,
               "usage: mvqoe_replay record <blob> [--family=F] [--height=H] [--fps=N]\n"
               "                                  [--duration=S] [--state=L] [--seed=N]\n"
               "                                  [--interval=S] [--videos=N]\n"
               "       mvqoe_replay info   <blob>\n"
               "       mvqoe_replay verify <blob> [--perturb-at=S]\n"
               "       mvqoe_replay bisect <blob> --perturb-at=S\n"
               "families:");
  for (const std::string& family : scenario_families()) {
    std::fprintf(stderr, " %s", family.c_str());
  }
  std::fprintf(stderr, "\nstates: normal moderate low critical\n");
  return 2;
}

std::optional<std::string> flag_value(int argc, char** argv, const char* name) {
  const std::size_t len = std::strlen(name);
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return std::string(argv[i] + len + 1);
    }
  }
  return std::nullopt;
}

std::optional<mem::PressureLevel> parse_state(const std::string& s) {
  if (s == "normal") return mem::PressureLevel::Normal;
  if (s == "moderate") return mem::PressureLevel::Moderate;
  if (s == "low") return mem::PressureLevel::Low;
  if (s == "critical") return mem::PressureLevel::Critical;
  return std::nullopt;
}

int cmd_record(const std::string& path, int argc, char** argv) {
  std::string family = "fig16";
  int height = 1080;
  int fps = 30;
  int duration_s = 60;
  mem::PressureLevel state = mem::PressureLevel::Normal;
  std::uint64_t seed = 1;
  int videos = 1;
  RecordOptions options;
  if (const auto v = flag_value(argc, argv, "--family")) family = *v;
  if (const auto v = flag_value(argc, argv, "--height")) height = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--fps")) fps = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--duration")) duration_s = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--seed")) {
    seed = std::strtoull(v->c_str(), nullptr, 0);
  }
  if (const auto v = flag_value(argc, argv, "--state")) {
    const auto parsed = parse_state(*v);
    if (!parsed.has_value()) return usage();
    state = *parsed;
  }
  if (const auto v = flag_value(argc, argv, "--videos")) videos = std::atoi(v->c_str());
  if (const auto v = flag_value(argc, argv, "--interval")) {
    options.interval = sim::sec(std::atoi(v->c_str()));
  }
  if (const auto v = flag_value(argc, argv, "--perturb-at")) {
    options.perturb_at = sim::sec(std::atoi(v->c_str()));
  }
  if (videos < 1) return usage();
  mvqoe::scenario::ScenarioSpec scen =
      mvqoe::scenario::single_video(family, height, fps, duration_s, state, seed);
  for (int k = 1; k < videos; ++k) {
    auto video = mvqoe::scenario::video_spec(scen, 0);  // copy of session 0
    video.label = "video" + std::to_string(k);
    video.seed = runner::contention_session_seed(seed, static_cast<std::size_t>(k));
    scen.workloads.emplace_back(std::move(video));
  }
  // Ctrl-C / SIGTERM stop the recording at the next checkpoint boundary;
  // the partial blob is still written atomically so nothing half-formed
  // ever lands at `path`.
  const campaign::InterruptGuard guard;
  options.stop = guard.flag();
  const Snapshot snap = record_run(scen, options);
  if (!Snapshot::write_file(path, snap)) {
    std::fprintf(stderr, "mvqoe_replay: cannot write %s\n", path.c_str());
    return 2;
  }
  const ReplayMeta meta = load_meta(snap);
  std::printf("recorded %s: %zu checkpoints every %lds, final digest %016llx\n", path.c_str(),
              load_trail(snap).size(), static_cast<long>(sim::to_seconds(meta.interval)),
              static_cast<unsigned long long>(meta.final_digest));
  if (guard.interrupted()) {
    std::printf("interrupted by signal %d: partial recording flushed\n", guard.signal_number());
    return guard.exit_code();
  }
  return 0;
}

int cmd_info(const Snapshot& snap) {
  ByteReader r(snap.require(kScenTag));
  const mvqoe::scenario::ScenarioSpec scen = mvqoe::scenario::load_scenario(r);
  const ReplayMeta meta = load_meta(snap);
  std::printf("scenario: family=%s state=%s seed=%llu workloads=%zu\n", scen.family.c_str(),
              mem::to_string(scen.state), static_cast<unsigned long long>(scen.seed),
              scen.workloads.size());
  for (std::size_t i = 0; i < mvqoe::scenario::video_count(scen); ++i) {
    const auto& video = mvqoe::scenario::video_spec(scen, i);
    std::printf("  %-8s %dp@%dfps duration=%ds seed=%llu\n", video.label.c_str(), video.height,
                video.fps, video.duration_s, static_cast<unsigned long long>(video.seed));
  }
  std::printf("recorded: interval=%lds video_start=%.3fs end=+%lds status=%s\n",
              static_cast<long>(sim::to_seconds(meta.interval)),
              sim::to_seconds(meta.video_start),
              static_cast<long>(sim::to_seconds(meta.end_offset)),
              core::to_string(static_cast<core::RunStatus>(meta.status)));
  std::printf("trail:\n");
  for (const TrailEntry& entry : load_trail(snap)) {
    std::printf("  +%4lds  %016llx\n", static_cast<long>(sim::to_seconds(entry.offset)),
                static_cast<unsigned long long>(entry.digest));
  }
  std::printf("subsystems at end:\n");
  for (const auto& [name, digest] : load_subsystem_digests(snap)) {
    std::printf("  %-8s %016llx\n", name.c_str(), static_cast<unsigned long long>(digest));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  const std::string path = argv[2];
  try {
    if (command == "record") return cmd_record(path, argc, argv);

    const Snapshot snap = Snapshot::read_file(path);
    if (command == "info") return cmd_info(snap);

    std::optional<sim::Time> perturb_at;
    if (const auto v = flag_value(argc, argv, "--perturb-at")) {
      perturb_at = sim::sec(std::atoi(v->c_str()));
    }
    if (command == "verify") {
      const VerifyReport report = verify_replay(snap, perturb_at);
      std::printf("%s\n", format_report(report).c_str());
      return report.ok ? 0 : 1;
    }
    if (command == "bisect") {
      if (!perturb_at.has_value()) return usage();
      const DivergenceReport report = bisect_divergence(snap, *perturb_at);
      std::printf("%s\n", format_report(report).c_str());
      return report.diverged ? 1 : 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mvqoe_replay: %s\n", e.what());
    return 2;
  }
  return usage();
}
