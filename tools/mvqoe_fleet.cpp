// mvqoe_fleet — million-device fleet simulation (DESIGN.md §15).
//
//   mvqoe_fleet run [--devices N] [--seed N] [--session-s S]
//                   [--sample-period S] [--warmup-s S] [--shard-size N]
//                   [--jobs N] [--procs N] [--warm] [--state FILE]
//                   [--retries N] [--heartbeat-ms N]
//                   [--save FILE] [--report FILE] [--progress]
//       Drive `devices` simulated device-sessions sampled from the
//       study population model (device family x usage cohort), reduced
//       shard by shard into one streaming FleetAggregate — peak memory
//       is O(shard), not O(fleet). The report digest is byte-identical
//       across serial, --jobs N threads, --procs N supervised worker
//       processes and kill-and-resume; --warm forks each device from a
//       prepared per-(family, cohort) world template and is
//       bit-identical to the cold path. --save bundles (config,
//       aggregate) as an MVQS blob; --report writes the Figs 2-6
//       report JSON.
//
//   mvqoe_fleet resume FILE [--procs N] [--jobs N] [--warm]
//                   [--save FILE] [--report FILE] [--progress]
//       Resume a killed run from its campaign checkpoint. The fleet
//       config is reconstructed from the blob (a checkpoint recorded
//       under a different config is refused); only missing shards run,
//       and the digest and report bytes match an uninterrupted run.
//
//   mvqoe_fleet report FILE [--out FILE]
//       Re-render the report JSON from a --save blob (stdout default).
//
// Exit status: 0 complete, 2 usage or I/O errors, 3 campaign degraded
// (a shard exhausted its retry budget), 128+signo interrupted with the
// checkpoint flushed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "campaign/progress.hpp"
#include "campaign/signal.hpp"
#include "fleet/runner.hpp"

namespace {

using namespace mvqoe;

int usage() {
  std::fprintf(stderr,
               "usage: mvqoe_fleet run [--devices N] [--seed N] [--session-s S]\n"
               "                       [--policy NAME] [--cc NAME]\n"
               "                       [--sample-period S] [--warmup-s S] [--shard-size N]\n"
               "                       [--jobs N] [--procs N] [--warm] [--state FILE]\n"
               "                       [--retries N] [--heartbeat-ms N]\n"
               "                       [--save FILE] [--report FILE] [--progress]\n"
               "       mvqoe_fleet resume FILE [--procs N] [--jobs N] [--warm]\n"
               "                       [--save FILE] [--report FILE] [--progress]\n"
               "       mvqoe_fleet report FILE [--out FILE]\n"
               "--progress paints a devices done/total + devices/sec + ETA line on stderr\n");
  return 2;
}

struct Args {
  fleet::FleetSpec spec;
  fleet::FleetRunOptions opts;
  std::string resume_path;
  std::string blob_path;  // `report` positional
  std::string save_path;
  std::string report_path;
  std::string out_path;
  bool progress = false;
  // Deterministic failure injection (tests; see campaign::TestHooks).
  int kill_after_checkpoints = 0;
  std::int64_t abort_unit = -1;
  int abort_attempts = 1;
  bool ok = true;
};

Args parse_args(int argc, char** argv) {
  Args args;
  const auto value = [&](int& i) -> const char* {
    const char* eq = std::strchr(argv[i], '=');
    if (eq != nullptr) return eq + 1;
    if (i + 1 >= argc) {
      args.ok = false;
      return "";
    }
    return argv[++i];
  };
  const auto is_flag = [&](int i, const char* name) {
    const std::size_t len = std::strlen(name);
    return std::strncmp(argv[i], name, len) == 0 && (argv[i][len] == '\0' || argv[i][len] == '=');
  };
  const std::string command = argv[1];
  int i = 2;
  if ((command == "resume" || command == "report") && i < argc && argv[i][0] != '-') {
    args.blob_path = argv[i++];
  }
  for (; i < argc && args.ok; ++i) {
    if (is_flag(i, "--devices")) {
      args.spec.devices = std::strtoull(value(i), nullptr, 0);
    } else if (is_flag(i, "--seed")) {
      args.spec.seed = std::strtoull(value(i), nullptr, 0);
    } else if (is_flag(i, "--session-s")) {
      args.spec.session_s = std::atoi(value(i));
    } else if (is_flag(i, "--policy")) {
      args.spec.mem_policy.name = value(i);
    } else if (is_flag(i, "--cc")) {
      args.spec.net.cc = value(i);
    } else if (is_flag(i, "--sample-period")) {
      args.spec.sample_period_s = std::atoi(value(i));
    } else if (is_flag(i, "--warmup-s")) {
      args.spec.warmup_s = std::atoi(value(i));
    } else if (is_flag(i, "--shard-size")) {
      args.spec.shard_size = std::strtoull(value(i), nullptr, 0);
    } else if (is_flag(i, "--jobs")) {
      args.opts.jobs = std::atoi(value(i));
    } else if (is_flag(i, "--procs")) {
      args.opts.procs = std::atoi(value(i));
    } else if (std::strcmp(argv[i], "--warm") == 0) {
      args.opts.warm = true;
    } else if (is_flag(i, "--state")) {
      args.opts.state_path = value(i);
    } else if (is_flag(i, "--retries")) {
      args.opts.max_attempts = std::atoi(value(i));
    } else if (is_flag(i, "--heartbeat-ms")) {
      args.opts.heartbeat_timeout_ms = std::atoi(value(i));
    } else if (is_flag(i, "--save")) {
      args.save_path = value(i);
    } else if (is_flag(i, "--report")) {
      args.report_path = value(i);
    } else if (is_flag(i, "--out")) {
      args.out_path = value(i);
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      args.progress = true;
    } else if (is_flag(i, "--kill-after-checkpoints")) {
      args.kill_after_checkpoints = std::atoi(value(i));
    } else if (is_flag(i, "--abort-unit")) {
      args.abort_unit = std::atoll(value(i));
    } else if (is_flag(i, "--abort-attempts")) {
      args.abort_attempts = std::atoi(value(i));
    } else {
      args.ok = false;
    }
  }
  if (args.opts.jobs < 1 || args.opts.procs < 0 || args.opts.max_attempts < 1 ||
      args.opts.heartbeat_timeout_ms < 1) {
    args.ok = false;
  }
  if ((command == "resume" || command == "report") && args.blob_path.empty()) args.ok = false;
  return args;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

int run_or_resume(Args args, bool resume) {
  if (resume) {
    args.spec = fleet::load_fleet_resume_spec(args.blob_path);
    args.opts.state_path = args.blob_path;
    args.opts.resume = true;
    std::printf("resume: %s (devices=%llu session=%ds shard=%llu)\n", args.blob_path.c_str(),
                static_cast<unsigned long long>(args.spec.devices), args.spec.session_s,
                static_cast<unsigned long long>(args.spec.shard_size));
  }
  args.opts.hooks.kill_after_checkpoints = args.kill_after_checkpoints;
  args.opts.hooks.abort_unit = args.abort_unit;
  args.opts.hooks.abort_attempts = args.abort_attempts;

  campaign::InterruptGuard guard;
  args.opts.interrupt = guard.flag();

  campaign::ProgressMeter meter("devices");
  if (args.progress) {
    args.opts.progress = [&meter](std::uint64_t done, std::uint64_t total) {
      meter.update(done, total);
    };
  }

  const fleet::FleetRunResult result = fleet::run_fleet(args.spec, args.opts);
  meter.finish();

  if (result.campaign.units_from_checkpoint > 0) {
    std::printf("resumed: %llu/%llu shards from checkpoint, %llu executed\n",
                static_cast<unsigned long long>(result.campaign.units_from_checkpoint),
                static_cast<unsigned long long>(fleet::fleet_total_units(args.spec)),
                static_cast<unsigned long long>(result.campaign.units_done -
                                                result.campaign.units_from_checkpoint));
  }
  for (const campaign::ShardOutcome& shard : result.campaign.shards) {
    if (shard.status == campaign::ShardStatus::Failed) {
      std::printf("shard units [%llu..%llu) FAILED after %d attempts: %s\n",
                  static_cast<unsigned long long>(shard.first_unit),
                  static_cast<unsigned long long>(shard.first_unit + shard.unit_count),
                  shard.attempts, shard.error.c_str());
    }
  }

  if (result.interrupted) {
    std::printf("interrupted by signal %d: %llu/%llu devices done, checkpoint %s\n",
                guard.signal_number(), static_cast<unsigned long long>(result.devices_done),
                static_cast<unsigned long long>(args.spec.devices),
                args.opts.state_path.empty()
                    ? "disabled (--state not set)"
                    : ("flushed to " + args.opts.state_path).c_str());
    std::fflush(stdout);
    return guard.exit_code();
  }

  std::printf("fleet: %llu/%llu devices, %.2fs wall, %.0f devices/sec, peak RSS %.1f MB, "
              "digest=%016llx\n",
              static_cast<unsigned long long>(result.devices_done),
              static_cast<unsigned long long>(args.spec.devices), result.wall_s,
              result.devices_per_sec, result.peak_rss_mb,
              static_cast<unsigned long long>(result.digest));

  if (!result.complete) {
    std::fflush(stdout);
    return 3;
  }
  if (!args.save_path.empty()) {
    if (!snapshot::Snapshot::write_file(args.save_path,
                                        save_fleet_blob(args.spec, result.aggregate))) {
      std::fprintf(stderr, "mvqoe_fleet: cannot write %s\n", args.save_path.c_str());
      return 2;
    }
    std::printf("aggregate blob: %s\n", args.save_path.c_str());
  }
  if (!args.report_path.empty()) {
    if (!write_text_file(args.report_path, fleet_report_json(args.spec, result.aggregate))) {
      std::fprintf(stderr, "mvqoe_fleet: cannot write %s\n", args.report_path.c_str());
      return 2;
    }
    std::printf("report: %s\n", args.report_path.c_str());
  }
  std::fflush(stdout);
  return 0;
}

int cmd_report(const Args& args) {
  const snapshot::Snapshot blob = snapshot::Snapshot::read_file(args.blob_path);
  const auto [spec, aggregate] = fleet::load_fleet_blob(blob);
  const std::string json = fleet_report_json(spec, aggregate);
  if (args.out_path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
    return 0;
  }
  if (!write_text_file(args.out_path, json)) {
    std::fprintf(stderr, "mvqoe_fleet: cannot write %s\n", args.out_path.c_str());
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv);
  if (!args.ok) return usage();
  try {
    if (command == "run") return run_or_resume(args, /*resume=*/false);
    if (command == "resume") return run_or_resume(args, /*resume=*/true);
    if (command == "report") return cmd_report(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mvqoe_fleet: %s\n", e.what());
    return 2;
  }
  return usage();
}
