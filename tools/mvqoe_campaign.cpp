// mvqoe_campaign — crash-safe multi-process bench/sweep campaigns.
//
//   mvqoe_campaign sweep [--family F] [--duration S] [--organic N]
//                        [--states s1,s2,...] [--fps n1,n2,...]
//                        [--heights h1,h2,...] [--runs N] [--seed N]
//                        [--procs N] [--group-workers N] [--state FILE]
//                        [--shard-size N] [--retries N] [--heartbeat-ms N]
//                        [--backoff-ms N] [--out NAME]
//       Run a warm-start sweep grid (states x fps x heights, `runs`
//       repetitions per cell) as a supervised multi-process campaign
//       (DESIGN.md §13). One campaign unit is one (state, run) group:
//       the worker prepares the group's shared boot+pressure world once
//       and forks each (fps, height) cell's video phase from it — the
//       CoW warm-start machinery of runner/warm_sweep. Crashed or hung
//       workers are SIGKILLed and retried with exponential backoff;
//       with --state every completed group is checkpointed atomically.
//       --out writes the grid as BENCH_<NAME>.json (the same payload
//       runner::write_sweep_json produces, byte-identical to an
//       in-process run of the same grid).
//
//   mvqoe_campaign sweep --resume FILE [--procs N] [--group-workers N]
//       Resume a killed campaign: the grid is reconstructed from the
//       checkpoint (a checkpoint recorded under a different grid is
//       refused), only the missing groups run, and the digest and BENCH
//       json are byte-identical to an uninterrupted run.
//
// Exit status: 0 complete, 2 usage or I/O errors, 3 campaign degraded
// (a shard exhausted its retry budget), 128+signo interrupted with the
// checkpoint flushed.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "campaign/progress.hpp"
#include "campaign/signal.hpp"
#include "campaign/sweep_campaign.hpp"
#include "runner/video_batch.hpp"

namespace {

using namespace mvqoe;

int usage() {
  std::fprintf(stderr,
               "usage: mvqoe_campaign sweep [--family F] [--duration S] [--organic N]\n"
               "                            [--states s1,s2,...] [--fps n1,n2,...]\n"
               "                            [--heights h1,h2,...] [--runs N] [--seed N]\n"
               "                            [--policy NAME] [--cc NAME] [--procs N]\n"
               "                            [--group-workers N]\n"
               "                            [--state FILE] [--shard-size N] [--retries N]\n"
               "                            [--heartbeat-ms N] [--backoff-ms N] [--out NAME]\n"
               "                            [--progress]\n"
               "       mvqoe_campaign sweep --resume FILE [--procs N] [--group-workers N]\n"
               "states: normal moderate low critical\n"
               "--progress paints a done/total + units/sec + ETA line on stderr\n");
  return 2;
}

bool parse_state(const std::string& s, mem::PressureLevel& out) {
  if (s == "normal") out = mem::PressureLevel::Normal;
  else if (s == "moderate") out = mem::PressureLevel::Moderate;
  else if (s == "low") out = mem::PressureLevel::Low;
  else if (s == "critical") out = mem::PressureLevel::Critical;
  else return false;
  return true;
}

std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(value.substr(start));
      break;
    }
    out.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

struct Args {
  campaign::SweepCampaignSpec spec;
  int procs = 1;
  std::string state_path;
  std::string resume_path;
  int shard_size = 1;  // one (state, run) group per shard by default
  int retries = 3;
  int heartbeat_ms = 120000;
  int backoff_ms = 100;
  int kill_after_checkpoints = 0;
  std::int64_t abort_unit = -1;
  int abort_attempts = 1;
  std::string out_name;
  bool progress = false;
  bool ok = true;
};

Args parse_args(int argc, char** argv) {
  Args args;
  const auto value = [&](int& i) -> const char* {
    const char* eq = std::strchr(argv[i], '=');
    if (eq != nullptr) return eq + 1;
    if (i + 1 >= argc) {
      args.ok = false;
      return "";
    }
    return argv[++i];
  };
  const auto is_flag = [&](int i, const char* name) {
    const std::size_t len = std::strlen(name);
    return std::strncmp(argv[i], name, len) == 0 && (argv[i][len] == '\0' || argv[i][len] == '=');
  };
  for (int i = 2; i < argc && args.ok; ++i) {
    if (is_flag(i, "--family")) {
      args.spec.family = value(i);
    } else if (is_flag(i, "--duration")) {
      args.spec.duration_s = std::atoi(value(i));
    } else if (is_flag(i, "--organic")) {
      args.spec.organic_apps = std::atoi(value(i));
    } else if (is_flag(i, "--states")) {
      args.spec.states.clear();
      for (const std::string& name : split_csv(value(i))) {
        mem::PressureLevel state{};
        if (!parse_state(name, state)) {
          args.ok = false;
          break;
        }
        args.spec.states.push_back(state);
      }
    } else if (is_flag(i, "--fps")) {
      args.spec.fps.clear();
      for (const std::string& f : split_csv(value(i))) args.spec.fps.push_back(std::atoi(f.c_str()));
    } else if (is_flag(i, "--heights")) {
      args.spec.heights.clear();
      for (const std::string& h : split_csv(value(i))) {
        args.spec.heights.push_back(std::atoi(h.c_str()));
      }
    } else if (is_flag(i, "--runs")) {
      args.spec.runs = std::atoi(value(i));
    } else if (is_flag(i, "--policy")) {
      args.spec.mem_policy.name = value(i);
    } else if (is_flag(i, "--cc")) {
      args.spec.net.cc = value(i);
    } else if (is_flag(i, "--seed")) {
      args.spec.seed = std::strtoull(value(i), nullptr, 0);
    } else if (is_flag(i, "--procs")) {
      args.procs = std::atoi(value(i));
    } else if (is_flag(i, "--group-workers")) {
      args.spec.group_workers = std::atoi(value(i));
    } else if (is_flag(i, "--state")) {
      args.state_path = value(i);
    } else if (is_flag(i, "--resume")) {
      args.resume_path = value(i);
    } else if (is_flag(i, "--shard-size")) {
      args.shard_size = std::atoi(value(i));
    } else if (is_flag(i, "--retries")) {
      args.retries = std::atoi(value(i));
    } else if (is_flag(i, "--heartbeat-ms")) {
      args.heartbeat_ms = std::atoi(value(i));
    } else if (is_flag(i, "--backoff-ms")) {
      args.backoff_ms = std::atoi(value(i));
    } else if (is_flag(i, "--kill-after-checkpoints")) {
      args.kill_after_checkpoints = std::atoi(value(i));
    } else if (is_flag(i, "--abort-unit")) {
      args.abort_unit = std::atoll(value(i));
    } else if (is_flag(i, "--abort-attempts")) {
      args.abort_attempts = std::atoi(value(i));
    } else if (is_flag(i, "--out")) {
      args.out_name = value(i);
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      args.progress = true;
    } else {
      args.ok = false;
    }
  }
  if (args.procs < 1 || args.shard_size < 1 || args.retries < 1 || args.heartbeat_ms < 1 ||
      args.backoff_ms < 0) {
    args.ok = false;
  }
  if (!args.state_path.empty() && !args.resume_path.empty()) args.ok = false;
  return args;
}

int cmd_sweep(const Args& args) {
  campaign::SweepCampaignSpec spec = args.spec;
  if (!args.resume_path.empty()) {
    const int group_workers = spec.group_workers;
    spec = campaign::load_sweep_resume_config(args.resume_path);
    spec.group_workers = group_workers;
    std::printf("resume: %s (family=%s %zu states x %zu fps x %zu heights, %d run(s))\n",
                args.resume_path.c_str(), spec.family.c_str(), spec.states.size(),
                spec.fps.size(), spec.heights.size(), spec.runs);
  }

  campaign::CampaignOptions copts;
  copts.procs = args.procs;
  copts.shard_size = static_cast<std::size_t>(args.shard_size);
  copts.max_attempts = args.retries;
  copts.heartbeat_timeout_ms = args.heartbeat_ms;
  copts.backoff_ms = args.backoff_ms;
  copts.state_path = args.resume_path.empty() ? args.state_path : args.resume_path;
  copts.resume = !args.resume_path.empty();
  copts.hooks.abort_unit = args.abort_unit;
  copts.hooks.abort_attempts = args.abort_attempts;
  copts.hooks.kill_after_checkpoints = args.kill_after_checkpoints;

  campaign::InterruptGuard guard;
  copts.interrupt = guard.flag();

  campaign::ProgressMeter meter("groups");
  if (args.progress) {
    copts.progress = [&meter](std::uint64_t done, std::uint64_t total_units) {
      meter.update(done, total_units);
    };
  }

  const campaign::SweepCampaignResult result = campaign::run_sweep_campaign(spec, copts);
  meter.finish();
  const std::uint64_t total = campaign::sweep_total_units(spec);

  if (result.campaign.units_from_checkpoint > 0) {
    std::printf("resumed: %llu/%llu groups from checkpoint, %llu executed\n",
                static_cast<unsigned long long>(result.campaign.units_from_checkpoint),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(result.campaign.units_done -
                                                result.campaign.units_from_checkpoint));
  }
  for (const campaign::ShardOutcome& shard : result.campaign.shards) {
    if (shard.status == campaign::ShardStatus::Failed) {
      std::printf("shard groups [%llu..%llu) FAILED after %d attempts: %s\n",
                  static_cast<unsigned long long>(shard.first_unit),
                  static_cast<unsigned long long>(shard.first_unit + shard.unit_count),
                  shard.attempts, shard.error.c_str());
    } else if (shard.attempts > 1) {
      std::printf("shard groups [%llu..%llu) recovered on attempt %d\n",
                  static_cast<unsigned long long>(shard.first_unit),
                  static_cast<unsigned long long>(shard.first_unit + shard.unit_count),
                  shard.attempts);
    }
  }

  if (result.campaign.interrupted) {
    std::printf("interrupted by signal %d: %llu/%llu groups done, checkpoint %s\n",
                guard.signal_number(),
                static_cast<unsigned long long>(result.campaign.units_done),
                static_cast<unsigned long long>(total),
                copts.state_path.empty() ? "disabled (--state not set)"
                                         : ("flushed to " + copts.state_path).c_str());
    std::fflush(stdout);
    return guard.exit_code();
  }

  std::printf("sweep campaign: %zu cells x %d run(s), %llu/%llu groups, procs=%d "
              "digest=%016llx\n",
              result.cells.size(), spec.runs,
              static_cast<unsigned long long>(result.campaign.units_done),
              static_cast<unsigned long long>(total), result.campaign.procs_used,
              static_cast<unsigned long long>(result.digest));
  if (!args.out_name.empty()) {
    const std::string path = runner::write_sweep_json(args.out_name, result.cells, spec.runs,
                                                      result.campaign.procs_used, spec.seed);
    if (path.empty()) {
      std::fprintf(stderr, "mvqoe_campaign: cannot write BENCH_%s.json\n",
                   args.out_name.c_str());
      return 2;
    }
    std::printf("machine-readable: %s\n", path.c_str());
  }
  std::fflush(stdout);
  return result.campaign.complete ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = parse_args(argc, argv);
  if (!args.ok) return usage();
  try {
    if (command == "sweep") return cmd_sweep(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mvqoe_campaign: %s\n", e.what());
    return 2;
  }
  return usage();
}
