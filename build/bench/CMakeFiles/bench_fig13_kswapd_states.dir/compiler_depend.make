# Empty compiler generated dependencies file for bench_fig13_kswapd_states.
# This may be replaced when dependencies are built.
