file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_kswapd_states.dir/bench_fig13_kswapd_states.cpp.o"
  "CMakeFiles/bench_fig13_kswapd_states.dir/bench_fig13_kswapd_states.cpp.o.d"
  "bench_fig13_kswapd_states"
  "bench_fig13_kswapd_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_kswapd_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
