# Empty dependencies file for bench_table5_preemption.
# This may be replaced when dependencies are built.
