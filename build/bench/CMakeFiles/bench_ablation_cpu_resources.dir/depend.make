# Empty dependencies file for bench_ablation_cpu_resources.
# This may be replaced when dependencies are built.
