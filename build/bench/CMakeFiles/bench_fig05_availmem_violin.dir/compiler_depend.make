# Empty compiler generated dependencies file for bench_fig05_availmem_violin.
# This may be replaced when dependencies are built.
