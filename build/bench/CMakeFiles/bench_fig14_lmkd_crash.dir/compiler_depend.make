# Empty compiler generated dependencies file for bench_fig14_lmkd_crash.
# This may be replaced when dependencies are built.
