file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_lmkd_crash.dir/bench_fig14_lmkd_crash.cpp.o"
  "CMakeFiles/bench_fig14_lmkd_crash.dir/bench_fig14_lmkd_crash.cpp.o.d"
  "bench_fig14_lmkd_crash"
  "bench_fig14_lmkd_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_lmkd_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
