file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_chrome.dir/bench_fig19_chrome.cpp.o"
  "CMakeFiles/bench_fig19_chrome.dir/bench_fig19_chrome.cpp.o.d"
  "bench_fig19_chrome"
  "bench_fig19_chrome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_chrome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
