# Empty dependencies file for bench_fig19_chrome.
# This may be replaced when dependencies are built.
