file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_genres.dir/bench_fig12_genres.cpp.o"
  "CMakeFiles/bench_fig12_genres.dir/bench_fig12_genres.cpp.o.d"
  "bench_fig12_genres"
  "bench_fig12_genres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_genres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
