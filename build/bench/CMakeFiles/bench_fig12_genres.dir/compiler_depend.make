# Empty compiler generated dependencies file for bench_fig12_genres.
# This may be replaced when dependencies are built.
