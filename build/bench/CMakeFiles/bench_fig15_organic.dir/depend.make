# Empty dependencies file for bench_fig15_organic.
# This may be replaced when dependencies are built.
