file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_organic.dir/bench_fig15_organic.cpp.o"
  "CMakeFiles/bench_fig15_organic.dir/bench_fig15_organic.cpp.o.d"
  "bench_fig15_organic"
  "bench_fig15_organic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_organic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
