file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_pss.dir/bench_fig08_pss.cpp.o"
  "CMakeFiles/bench_fig08_pss.dir/bench_fig08_pss.cpp.o.d"
  "bench_fig08_pss"
  "bench_fig08_pss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_pss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
