file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_dmos.dir/bench_fig10_dmos.cpp.o"
  "CMakeFiles/bench_fig10_dmos.dir/bench_fig10_dmos.cpp.o.d"
  "bench_fig10_dmos"
  "bench_fig10_dmos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_dmos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
