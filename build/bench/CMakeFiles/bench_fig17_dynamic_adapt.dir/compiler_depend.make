# Empty compiler generated dependencies file for bench_fig17_dynamic_adapt.
# This may be replaced when dependencies are built.
