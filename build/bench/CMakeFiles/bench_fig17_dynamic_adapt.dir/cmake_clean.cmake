file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_dynamic_adapt.dir/bench_fig17_dynamic_adapt.cpp.o"
  "CMakeFiles/bench_fig17_dynamic_adapt.dir/bench_fig17_dynamic_adapt.cpp.o.d"
  "bench_fig17_dynamic_adapt"
  "bench_fig17_dynamic_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_dynamic_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
