file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_transitions.dir/bench_fig06_transitions.cpp.o"
  "CMakeFiles/bench_fig06_transitions.dir/bench_fig06_transitions.cpp.o.d"
  "bench_fig06_transitions"
  "bench_fig06_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
