# Empty dependencies file for bench_fig06_transitions.
# This may be replaced when dependencies are built.
