file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_signal_freq.dir/bench_fig03_signal_freq.cpp.o"
  "CMakeFiles/bench_fig03_signal_freq.dir/bench_fig03_signal_freq.cpp.o.d"
  "bench_fig03_signal_freq"
  "bench_fig03_signal_freq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_signal_freq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
