# Empty compiler generated dependencies file for bench_fig03_signal_freq.
# This may be replaced when dependencies are built.
