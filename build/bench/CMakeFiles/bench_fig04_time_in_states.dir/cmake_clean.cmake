file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_time_in_states.dir/bench_fig04_time_in_states.cpp.o"
  "CMakeFiles/bench_fig04_time_in_states.dir/bench_fig04_time_in_states.cpp.o.d"
  "bench_fig04_time_in_states"
  "bench_fig04_time_in_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_time_in_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
