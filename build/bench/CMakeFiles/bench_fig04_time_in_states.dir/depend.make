# Empty dependencies file for bench_fig04_time_in_states.
# This may be replaced when dependencies are built.
