file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_nexus5_drops.dir/bench_fig11_nexus5_drops.cpp.o"
  "CMakeFiles/bench_fig11_nexus5_drops.dir/bench_fig11_nexus5_drops.cpp.o.d"
  "bench_fig11_nexus5_drops"
  "bench_fig11_nexus5_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_nexus5_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
