file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_exoplayer.dir/bench_fig18_exoplayer.cpp.o"
  "CMakeFiles/bench_fig18_exoplayer.dir/bench_fig18_exoplayer.cpp.o.d"
  "bench_fig18_exoplayer"
  "bench_fig18_exoplayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_exoplayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
