# Empty dependencies file for bench_fig18_exoplayer.
# This may be replaced when dependencies are built.
