# Empty dependencies file for bench_table4_thread_states.
# This may be replaced when dependencies are built.
