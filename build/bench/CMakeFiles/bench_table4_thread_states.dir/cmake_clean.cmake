file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_thread_states.dir/bench_table4_thread_states.cpp.o"
  "CMakeFiles/bench_table4_thread_states.dir/bench_table4_thread_states.cpp.o.d"
  "bench_table4_thread_states"
  "bench_table4_thread_states.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_thread_states.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
