# Empty compiler generated dependencies file for bench_fig09_nokia1_drops.
# This may be replaced when dependencies are built.
