file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_nokia1_drops.dir/bench_fig09_nokia1_drops.cpp.o"
  "CMakeFiles/bench_fig09_nokia1_drops.dir/bench_fig09_nokia1_drops.cpp.o.d"
  "bench_fig09_nokia1_drops"
  "bench_fig09_nokia1_drops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_nokia1_drops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
