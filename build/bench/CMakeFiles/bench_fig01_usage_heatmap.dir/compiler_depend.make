# Empty compiler generated dependencies file for bench_fig01_usage_heatmap.
# This may be replaced when dependencies are built.
