# Empty dependencies file for sched_edge_test.
# This may be replaced when dependencies are built.
