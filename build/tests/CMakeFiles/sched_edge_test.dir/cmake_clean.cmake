file(REMOVE_RECURSE
  "CMakeFiles/sched_edge_test.dir/sched_edge_test.cpp.o"
  "CMakeFiles/sched_edge_test.dir/sched_edge_test.cpp.o.d"
  "sched_edge_test"
  "sched_edge_test.pdb"
  "sched_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
