file(REMOVE_RECURSE
  "CMakeFiles/mem_edge_test.dir/mem_edge_test.cpp.o"
  "CMakeFiles/mem_edge_test.dir/mem_edge_test.cpp.o.d"
  "mem_edge_test"
  "mem_edge_test.pdb"
  "mem_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
