# Empty dependencies file for mem_edge_test.
# This may be replaced when dependencies are built.
