file(REMOVE_RECURSE
  "CMakeFiles/qoe_test.dir/qoe_test.cpp.o"
  "CMakeFiles/qoe_test.dir/qoe_test.cpp.o.d"
  "qoe_test"
  "qoe_test.pdb"
  "qoe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qoe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
