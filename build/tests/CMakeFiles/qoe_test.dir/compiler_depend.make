# Empty compiler generated dependencies file for qoe_test.
# This may be replaced when dependencies are built.
