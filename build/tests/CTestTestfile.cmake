# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/proc_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/video_test[1]_include.cmake")
include("/root/repo/build/tests/abr_test[1]_include.cmake")
include("/root/repo/build/tests/qoe_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/study_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/mem_edge_test[1]_include.cmake")
include("/root/repo/build/tests/sched_edge_test[1]_include.cmake")
