file(REMOVE_RECURSE
  "CMakeFiles/kernel_trace.dir/kernel_trace.cpp.o"
  "CMakeFiles/kernel_trace.dir/kernel_trace.cpp.o.d"
  "kernel_trace"
  "kernel_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
