# Empty compiler generated dependencies file for kernel_trace.
# This may be replaced when dependencies are built.
