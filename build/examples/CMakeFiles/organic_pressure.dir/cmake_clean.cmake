file(REMOVE_RECURSE
  "CMakeFiles/organic_pressure.dir/organic_pressure.cpp.o"
  "CMakeFiles/organic_pressure.dir/organic_pressure.cpp.o.d"
  "organic_pressure"
  "organic_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/organic_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
