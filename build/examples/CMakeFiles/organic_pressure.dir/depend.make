# Empty dependencies file for organic_pressure.
# This may be replaced when dependencies are built.
