file(REMOVE_RECURSE
  "CMakeFiles/device_sweep.dir/device_sweep.cpp.o"
  "CMakeFiles/device_sweep.dir/device_sweep.cpp.o.d"
  "device_sweep"
  "device_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
