file(REMOVE_RECURSE
  "CMakeFiles/memory_aware_abr.dir/memory_aware_abr.cpp.o"
  "CMakeFiles/memory_aware_abr.dir/memory_aware_abr.cpp.o.d"
  "memory_aware_abr"
  "memory_aware_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_aware_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
