# Empty compiler generated dependencies file for memory_aware_abr.
# This may be replaced when dependencies are built.
