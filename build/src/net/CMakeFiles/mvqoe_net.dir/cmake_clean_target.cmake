file(REMOVE_RECURSE
  "libmvqoe_net.a"
)
