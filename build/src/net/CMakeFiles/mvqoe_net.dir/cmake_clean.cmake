file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_net.dir/link.cpp.o"
  "CMakeFiles/mvqoe_net.dir/link.cpp.o.d"
  "libmvqoe_net.a"
  "libmvqoe_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
