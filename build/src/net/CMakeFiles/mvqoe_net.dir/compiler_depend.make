# Empty compiler generated dependencies file for mvqoe_net.
# This may be replaced when dependencies are built.
