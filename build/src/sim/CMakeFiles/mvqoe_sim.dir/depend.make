# Empty dependencies file for mvqoe_sim.
# This may be replaced when dependencies are built.
