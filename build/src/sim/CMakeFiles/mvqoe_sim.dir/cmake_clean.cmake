file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_sim.dir/engine.cpp.o"
  "CMakeFiles/mvqoe_sim.dir/engine.cpp.o.d"
  "libmvqoe_sim.a"
  "libmvqoe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
