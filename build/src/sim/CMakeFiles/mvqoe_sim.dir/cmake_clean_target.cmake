file(REMOVE_RECURSE
  "libmvqoe_sim.a"
)
