# Empty dependencies file for mvqoe_video.
# This may be replaced when dependencies are built.
