file(REMOVE_RECURSE
  "libmvqoe_video.a"
)
