file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_video.dir/asset.cpp.o"
  "CMakeFiles/mvqoe_video.dir/asset.cpp.o.d"
  "CMakeFiles/mvqoe_video.dir/ladder.cpp.o"
  "CMakeFiles/mvqoe_video.dir/ladder.cpp.o.d"
  "CMakeFiles/mvqoe_video.dir/player_profile.cpp.o"
  "CMakeFiles/mvqoe_video.dir/player_profile.cpp.o.d"
  "CMakeFiles/mvqoe_video.dir/session.cpp.o"
  "CMakeFiles/mvqoe_video.dir/session.cpp.o.d"
  "libmvqoe_video.a"
  "libmvqoe_video.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_video.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
