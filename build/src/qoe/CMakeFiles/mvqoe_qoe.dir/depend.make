# Empty dependencies file for mvqoe_qoe.
# This may be replaced when dependencies are built.
