file(REMOVE_RECURSE
  "libmvqoe_qoe.a"
)
