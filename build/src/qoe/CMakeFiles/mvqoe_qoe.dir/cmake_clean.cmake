file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_qoe.dir/metrics.cpp.o"
  "CMakeFiles/mvqoe_qoe.dir/metrics.cpp.o.d"
  "CMakeFiles/mvqoe_qoe.dir/mos.cpp.o"
  "CMakeFiles/mvqoe_qoe.dir/mos.cpp.o.d"
  "libmvqoe_qoe.a"
  "libmvqoe_qoe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_qoe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
