# Empty dependencies file for mvqoe_storage.
# This may be replaced when dependencies are built.
