file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_storage.dir/storage.cpp.o"
  "CMakeFiles/mvqoe_storage.dir/storage.cpp.o.d"
  "libmvqoe_storage.a"
  "libmvqoe_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
