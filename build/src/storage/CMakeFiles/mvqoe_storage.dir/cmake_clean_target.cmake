file(REMOVE_RECURSE
  "libmvqoe_storage.a"
)
