# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("stats")
subdirs("sim")
subdirs("trace")
subdirs("sched")
subdirs("storage")
subdirs("mem")
subdirs("proc")
subdirs("net")
subdirs("video")
subdirs("abr")
subdirs("qoe")
subdirs("core")
subdirs("study")
