file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_trace.dir/analysis.cpp.o"
  "CMakeFiles/mvqoe_trace.dir/analysis.cpp.o.d"
  "CMakeFiles/mvqoe_trace.dir/tracer.cpp.o"
  "CMakeFiles/mvqoe_trace.dir/tracer.cpp.o.d"
  "libmvqoe_trace.a"
  "libmvqoe_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
