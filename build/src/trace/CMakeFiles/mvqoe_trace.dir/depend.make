# Empty dependencies file for mvqoe_trace.
# This may be replaced when dependencies are built.
