file(REMOVE_RECURSE
  "libmvqoe_trace.a"
)
