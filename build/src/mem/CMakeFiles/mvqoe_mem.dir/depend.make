# Empty dependencies file for mvqoe_mem.
# This may be replaced when dependencies are built.
