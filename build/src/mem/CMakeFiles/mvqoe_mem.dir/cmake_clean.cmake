file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_mem.dir/memory_manager.cpp.o"
  "CMakeFiles/mvqoe_mem.dir/memory_manager.cpp.o.d"
  "CMakeFiles/mvqoe_mem.dir/process_registry.cpp.o"
  "CMakeFiles/mvqoe_mem.dir/process_registry.cpp.o.d"
  "libmvqoe_mem.a"
  "libmvqoe_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
