file(REMOVE_RECURSE
  "libmvqoe_mem.a"
)
