file(REMOVE_RECURSE
  "libmvqoe_core.a"
)
