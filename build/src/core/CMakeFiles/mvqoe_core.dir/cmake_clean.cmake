file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_core.dir/device.cpp.o"
  "CMakeFiles/mvqoe_core.dir/device.cpp.o.d"
  "CMakeFiles/mvqoe_core.dir/experiment.cpp.o"
  "CMakeFiles/mvqoe_core.dir/experiment.cpp.o.d"
  "CMakeFiles/mvqoe_core.dir/pressure_inducer.cpp.o"
  "CMakeFiles/mvqoe_core.dir/pressure_inducer.cpp.o.d"
  "CMakeFiles/mvqoe_core.dir/system_activity.cpp.o"
  "CMakeFiles/mvqoe_core.dir/system_activity.cpp.o.d"
  "CMakeFiles/mvqoe_core.dir/testbed.cpp.o"
  "CMakeFiles/mvqoe_core.dir/testbed.cpp.o.d"
  "libmvqoe_core.a"
  "libmvqoe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
