# Empty compiler generated dependencies file for mvqoe_core.
# This may be replaced when dependencies are built.
