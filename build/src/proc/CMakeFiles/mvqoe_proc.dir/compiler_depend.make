# Empty compiler generated dependencies file for mvqoe_proc.
# This may be replaced when dependencies are built.
