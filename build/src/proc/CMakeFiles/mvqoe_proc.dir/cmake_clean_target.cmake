file(REMOVE_RECURSE
  "libmvqoe_proc.a"
)
