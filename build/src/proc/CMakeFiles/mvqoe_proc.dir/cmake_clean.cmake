file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_proc.dir/activity_manager.cpp.o"
  "CMakeFiles/mvqoe_proc.dir/activity_manager.cpp.o.d"
  "CMakeFiles/mvqoe_proc.dir/app_catalog.cpp.o"
  "CMakeFiles/mvqoe_proc.dir/app_catalog.cpp.o.d"
  "libmvqoe_proc.a"
  "libmvqoe_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
