# Empty dependencies file for mvqoe_abr.
# This may be replaced when dependencies are built.
