file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_abr.dir/policies.cpp.o"
  "CMakeFiles/mvqoe_abr.dir/policies.cpp.o.d"
  "libmvqoe_abr.a"
  "libmvqoe_abr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_abr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
