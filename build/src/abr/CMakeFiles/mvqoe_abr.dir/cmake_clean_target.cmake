file(REMOVE_RECURSE
  "libmvqoe_abr.a"
)
