# Empty dependencies file for mvqoe_stats.
# This may be replaced when dependencies are built.
