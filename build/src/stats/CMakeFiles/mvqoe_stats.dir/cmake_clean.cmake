file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_stats.dir/histogram.cpp.o"
  "CMakeFiles/mvqoe_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/mvqoe_stats.dir/rng.cpp.o"
  "CMakeFiles/mvqoe_stats.dir/rng.cpp.o.d"
  "CMakeFiles/mvqoe_stats.dir/summary.cpp.o"
  "CMakeFiles/mvqoe_stats.dir/summary.cpp.o.d"
  "libmvqoe_stats.a"
  "libmvqoe_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
