file(REMOVE_RECURSE
  "libmvqoe_stats.a"
)
