# Empty compiler generated dependencies file for mvqoe_sched.
# This may be replaced when dependencies are built.
