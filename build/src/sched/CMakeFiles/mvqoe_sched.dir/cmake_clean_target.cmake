file(REMOVE_RECURSE
  "libmvqoe_sched.a"
)
