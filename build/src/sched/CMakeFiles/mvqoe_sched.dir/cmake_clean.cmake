file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_sched.dir/scheduler.cpp.o"
  "CMakeFiles/mvqoe_sched.dir/scheduler.cpp.o.d"
  "libmvqoe_sched.a"
  "libmvqoe_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
