file(REMOVE_RECURSE
  "libmvqoe_study.a"
)
