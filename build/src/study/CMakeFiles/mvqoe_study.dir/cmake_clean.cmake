file(REMOVE_RECURSE
  "CMakeFiles/mvqoe_study.dir/analysis.cpp.o"
  "CMakeFiles/mvqoe_study.dir/analysis.cpp.o.d"
  "CMakeFiles/mvqoe_study.dir/device_sim.cpp.o"
  "CMakeFiles/mvqoe_study.dir/device_sim.cpp.o.d"
  "CMakeFiles/mvqoe_study.dir/population.cpp.o"
  "CMakeFiles/mvqoe_study.dir/population.cpp.o.d"
  "libmvqoe_study.a"
  "libmvqoe_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mvqoe_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
