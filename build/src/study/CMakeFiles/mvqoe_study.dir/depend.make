# Empty dependencies file for mvqoe_study.
# This may be replaced when dependencies are built.
