// Quickstart: stream one DASH video on a simulated Nexus 5 under
// Moderate memory pressure and print the QoE report.
//
//   $ ./examples/quickstart [height] [fps] [pressure: 0..3]
//
// This walks the whole public API surface once: pick a device preset,
// describe the run, execute it, read the metrics.
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace mvqoe;

  core::VideoRunSpec spec;
  spec.device = core::nexus5();
  spec.height = argc > 1 ? std::atoi(argv[1]) : 1080;
  spec.fps = argc > 2 ? std::atoi(argv[2]) : 60;
  spec.pressure = static_cast<mem::PressureLevel>(argc > 3 ? std::atoi(argv[3]) : 1);
  spec.asset = video::dubai_flow_motion(/*duration_s=*/60);
  spec.seed = 7;

  std::printf("device   : %s (%lld MB RAM, %zu cores)\n", spec.device.name.c_str(),
              static_cast<long long>(spec.device.ram_mb), spec.device.scheduler.cores.size());
  std::printf("video    : %s\n", spec.asset.title.c_str());
  std::printf("rung     : %dp @ %d FPS\n", spec.height, spec.fps);
  std::printf("pressure : %s (MP-Simulator style, applied before playback)\n\n",
              mem::to_string(spec.pressure));

  const core::VideoRunResult result = core::run_video(spec);

  std::printf("pressure level at playback start : %s\n", mem::to_string(result.start_level));
  std::printf("startup delay                    : %.2f s\n", result.outcome.startup_delay_s);
  std::printf("frames presented / dropped       : %lld / %lld\n",
              static_cast<long long>(result.metrics.frames_presented),
              static_cast<long long>(result.metrics.frames_dropped));
  std::printf("frame drop rate                  : %.1f %%\n", 100.0 * result.outcome.drop_rate);
  std::printf("client crashed (lmkd kill)       : %s\n",
              result.outcome.crashed ? "yes" : "no");
  std::printf("client PSS (mean / peak)         : %.0f / %.0f MB\n",
              result.outcome.mean_pss_mb, result.outcome.peak_pss_mb);

  std::printf("\nper-second rendered FPS:\n");
  const auto& series = result.metrics.presented_per_second;
  for (std::size_t second = 0; second < series.size(); second += 4) {
    std::printf("  t=%3zus  %3d fps\n", second, series[second]);
  }
  return 0;
}
