// Organic pressure example (§4.3): instead of the synthetic allocator,
// open real background apps before the video — the way pressure arises
// in the wild — and watch the kill churn while the video plays.
//
//   $ ./examples/organic_pressure [background_apps]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "trace/analysis.hpp"

int main(int argc, char** argv) {
  using namespace mvqoe;
  const int apps = argc > 1 ? std::atoi(argv[1]) : 8;

  core::VideoRunSpec spec;
  spec.device = core::nokia1();
  spec.height = 480;
  spec.fps = 60;
  spec.organic_background_apps = apps;
  spec.asset = video::dubai_flow_motion(60);
  spec.seed = 5;

  core::VideoExperiment experiment(spec);
  const auto result = experiment.run();

  std::printf("Nokia 1, 480p60 with %d background apps:\n", apps);
  std::printf("  pressure at playback start : %s\n", mem::to_string(result.start_level));
  std::printf("  frame drop rate            : %.1f%%\n", 100.0 * result.outcome.drop_rate);
  std::printf("  crashed                    : %s\n", result.outcome.crashed ? "yes" : "no");

  const auto kills = trace::cumulative_instants(experiment.testbed().tracer,
                                                trace::InstantKind::ProcessKilled);
  std::printf("  processes killed (total)   : %zu\n", kills.empty() ? 0 : kills.back());

  std::printf("\nkill timeline (cumulative, every 5s):\n");
  for (std::size_t second = 0; second < kills.size(); second += 5) {
    std::printf("  t=%3zus  %3zu killed\n", second, kills[second]);
  }
  std::printf("\nRe-run with 0 background apps to see the quiet baseline.\n");
  return 0;
}
