// Fault storm: drive one 60 s playback session through a scripted storm
// — link outage, thermal throttle, lmkd-style kill with relaunch — and
// print the QoE delta against a clean run of the same seed.
//
//   $ ./examples/fault_storm [height] [fps]
//
// Storm timeline (relative to video start):
//   t=8 s    5 s full link outage (downloads freeze, then resume)
//   t=18 s   8 s thermal-throttle window, every core at 55% speed
//   t=30 s   targeted kill of the video client; the session relaunches
//            cold after 2.5 s and resumes at the next segment boundary
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"

namespace {

mvqoe::core::VideoRunSpec make_spec(int height, int fps, bool storm) {
  using namespace mvqoe;
  core::VideoRunSpec spec;
  spec.device = core::nexus5();
  spec.height = height;
  spec.fps = fps;
  spec.asset = video::dubai_flow_motion(/*duration_s=*/60);
  spec.seed = 7;
  spec.run_watchdog = true;
  if (storm) {
    spec.fault_plan.link_outages.push_back({sim::sec(8), sim::sec(5)});
    spec.fault_plan.thermal_windows.push_back({sim::sec(18), sim::sec(8), 0.55});
    spec.fault_plan.kills.push_back({sim::sec(30), 0});
    video::RecoveryConfig recovery;
    recovery.relaunch_on_kill = true;
    spec.recovery = recovery;
  }
  return spec;
}

void print_run(const char* label, const mvqoe::core::VideoRunResult& r) {
  std::printf("%-10s status=%-9s presented=%4lld dropped=%4lld lost-to-kill=%4lld"
              " drop=%5.1f%% relaunches=%d rebuffers=%d downtime=%.2fs startup=%.2fs\n",
              label, mvqoe::core::to_string(r.status),
              static_cast<long long>(r.metrics.frames_presented),
              static_cast<long long>(r.metrics.frames_dropped),
              static_cast<long long>(r.metrics.frames_lost_to_kill),
              100.0 * r.outcome.drop_rate, r.metrics.relaunches, r.metrics.rebuffer_events,
              r.outcome.relaunch_downtime_s, r.outcome.startup_delay_s);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mvqoe;
  const int height = argc > 1 ? std::atoi(argv[1]) : 480;
  const int fps = argc > 2 ? std::atoi(argv[2]) : 30;

  std::printf("fault storm vs clean run: Nexus 5, %dp%d, 60 s\n", height, fps);
  std::printf("storm: outage 8-13 s, thermal 18-26 s @ 0.55x, kill at 30 s (relaunch on)\n\n");

  const core::VideoRunResult clean = core::run_video(make_spec(height, fps, false));
  const core::VideoRunResult storm = core::run_video(make_spec(height, fps, true));

  print_run("clean:", clean);
  print_run("storm:", storm);

  const std::int64_t total = storm.metrics.frames_presented + storm.metrics.frames_dropped +
                             storm.metrics.frames_lost_to_kill;
  std::printf("\nframe identity (storm): %lld presented + %lld dropped + %lld lost = %lld"
              " (asset: %d)\n",
              static_cast<long long>(storm.metrics.frames_presented),
              static_cast<long long>(storm.metrics.frames_dropped),
              static_cast<long long>(storm.metrics.frames_lost_to_kill),
              static_cast<long long>(total), 60 * fps);
  std::printf("QoE delta: drop rate %+.1f pp, %d kill(s) absorbed, %.2f s of downtime,\n"
              "           %d watchdog violation(s)\n",
              100.0 * (storm.outcome.drop_rate - clean.outcome.drop_rate),
              storm.metrics.relaunches, storm.outcome.relaunch_downtime_s,
              static_cast<int>(storm.watchdog_violations.size()));

  std::printf("\nper-second rendered FPS through the storm:\n");
  const auto& series = storm.metrics.presented_per_second;
  for (std::size_t second = 0; second < series.size(); second += 2) {
    const char* marker = "";
    if (second >= 8 && second < 13) marker = "  <- outage";
    else if (second >= 18 && second < 26) marker = "  <- thermal throttle";
    else if (second >= 30 && second < 36) marker = "  <- kill/relaunch window";
    std::printf("  t=%3zus  %3d fps%s\n", second, series[second], marker);
  }
  return 0;
}
