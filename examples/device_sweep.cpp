// Cross-device sweep: the paper's central comparison (entry-level vs
// mid-range vs higher-end) in one program. For each device preset, play
// the same video across the quality ladder at Normal and Moderate
// pressure and print the QoE matrix — the quickest way to see where a
// given device's "memory wall" sits.
#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace mvqoe;
  const int heights[] = {480, 720, 1080};
  const int rates[] = {30, 60};

  for (const core::DeviceProfile& device : core::all_devices()) {
    std::printf("=== %s (%lld MB RAM, %zu cores)\n", device.name.c_str(),
                static_cast<long long>(device.ram_mb), device.scheduler.cores.size());
    std::printf("    %-9s", "state");
    for (const int fps : rates) {
      for (const int height : heights) std::printf("  %4dp@%-2d", height, fps);
    }
    std::printf("\n");
    for (const auto state : {mem::PressureLevel::Normal, mem::PressureLevel::Moderate}) {
      std::printf("    %-9s", mem::to_string(state));
      for (const int fps : rates) {
        for (const int height : heights) {
          core::VideoRunSpec spec;
          spec.device = device;
          spec.height = height;
          spec.fps = fps;
          spec.pressure = state;
          spec.asset = video::dubai_flow_motion(40);
          spec.seed = 21;
          const auto result = core::run_video(spec);
          if (result.outcome.crashed) {
            std::printf("  %7s*", "CRASH");
          } else {
            std::printf("  %6.1f%% ", 100.0 * result.outcome.drop_rate);
          }
          std::fflush(stdout);
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("cells: frame-drop rate over the played portion; CRASH* = lmkd killed the player\n");
  return 0;
}
