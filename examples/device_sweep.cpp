// Cross-device sweep: the paper's central comparison (entry-level vs
// mid-range vs higher-end) in one program. For each device preset, play
// the same video across the quality ladder at Normal and Moderate
// pressure and print the QoE matrix — the quickest way to see where a
// given device's "memory wall" sits.
//
//   $ ./examples/device_sweep [--jobs N] [--json]
//
// Every cell is an independent seeded run with its own simulation world,
// so the grid fans out across N worker threads (default: MVQOE_JOBS or
// all hardware threads). Results are collected and printed in grid order
// no matter which worker finishes first: the output is byte-identical
// for any N, and --jobs 1 is the serial reference.
#include <cstdio>
#include <cstring>

#include "runner/video_batch.hpp"

int main(int argc, char** argv) {
  using namespace mvqoe;
  const int jobs = runner::jobs_from_args(argc, argv);
  bool emit_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) emit_json = true;
  }

  const std::vector<int> heights = {480, 720, 1080};
  const std::vector<int> rates = {30, 60};
  const std::vector<mem::PressureLevel> states = {mem::PressureLevel::Normal,
                                                  mem::PressureLevel::Moderate};
  constexpr std::uint64_t kSeed = 21;
  constexpr int kRunsPerCell = 1;

  for (const core::DeviceProfile& device : core::all_devices()) {
    core::VideoRunSpec proto;
    proto.device = device;
    proto.asset = video::dubai_flow_motion(40);
    const auto cells =
        runner::run_sweep_grid(proto, states, rates, heights, kRunsPerCell, jobs, kSeed);

    std::printf("=== %s (%lld MB RAM, %zu cores)\n", device.name.c_str(),
                static_cast<long long>(device.ram_mb), device.scheduler.cores.size());
    std::printf("    %-9s", "state");
    for (const int fps : rates) {
      for (const int height : heights) std::printf("  %4dp@%-2d", height, fps);
    }
    std::printf("\n");
    mem::PressureLevel state{};
    bool first = true;
    for (const auto& cell : cells) {
      if (first || cell.state != state) {
        if (!first) std::printf("\n");
        state = cell.state;
        first = false;
        std::printf("    %-9s", mem::to_string(state));
      }
      if (cell.failures > 0 || cell.aggregate.runs() == 0) {
        std::printf("  %7s ", "FAIL");
      } else if (cell.aggregate.outcomes().front().crashed) {
        std::printf("  %7s*", "CRASH");
      } else {
        std::printf("  %6.1f%% ", 100.0 * cell.aggregate.outcomes().front().drop_rate);
      }
    }
    std::printf("\n\n");

    if (emit_json) {
      std::string name = "device_sweep_" + device.name;
      for (char& c : name) {
        if (c == ' ') c = '_';
      }
      const std::string path =
          runner::write_sweep_json(name, cells, kRunsPerCell, runner::resolve_jobs(jobs), kSeed);
      if (!path.empty()) std::printf("    machine-readable: %s\n\n", path.c_str());
    }
  }
  std::printf("cells: frame-drop rate over the played portion; CRASH* = lmkd killed the player\n");
  return 0;
}
