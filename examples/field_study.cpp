// Field-study example: run a small SignalCapturer-style population study
// (the paper's §3) and print each device's memory-pressure profile plus
// the aggregate summary.
//
//   $ ./examples/field_study [devices] [hours_scale] [--jobs N]
//
// Each device's observation window is an independent seeded simulation,
// so the population fans out across the batch runner; the report prints
// in population order whatever the worker count.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "runner/batch.hpp"
#include "study/analysis.hpp"

int main(int argc, char** argv) {
  using namespace mvqoe;
  int devices = 12;
  double scale = 0.15;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--jobs", 6) == 0) {
      if (std::strcmp(argv[i], "--jobs") == 0) ++i;  // value consumed by jobs_from_args
      continue;
    }
    if (positional == 0) devices = std::atoi(argv[i]);
    if (positional == 1) scale = std::atof(argv[i]);
    ++positional;
  }
  const int jobs = runner::jobs_from_args(argc, argv);

  auto population = study::generate_population(devices, 42);
  for (auto& device : population) device.interactive_hours *= scale;

  std::printf("simulating %d devices (interactive hours scaled by %.2f, %d worker%s)...\n\n",
              devices, scale, jobs, jobs == 1 ? "" : "s");
  const auto batch = runner::run_batch(population.size(), jobs, [&population](std::size_t i) {
    return study::simulate_device(population[i], 1);
  });
  std::vector<study::DeviceStudyResult> results;
  results.reserve(batch.runs.size());
  for (const auto& slot : batch.runs) {
    if (slot.ok) results.push_back(slot.value);
  }

  std::printf("%-4s %-10s %5s %7s %7s  %9s %9s %9s  %8s\n", "#", "vendor", "RAM", "hours",
              "util%", "mod/h", "low/h", "crit/h", "%pressed");
  for (const auto& result : results) {
    std::printf("%-4d %-10s %4lldM %6.1fh %6.1f%%  %9.2f %9.2f %9.2f  %7.2f%%\n",
                result.device.index, result.device.manufacturer.c_str(),
                static_cast<long long>(result.device.ram_mb), result.hours_logged,
                100.0 * result.median_utilization, result.signals_per_hour(1),
                result.signals_per_hour(2), result.signals_per_hour(3),
                100.0 * result.fraction_not_normal());
  }

  const auto summary = study::summarize(results);
  std::printf("\naggregate (uncleaned, %zu devices):\n", summary.devices);
  std::printf("  median utilization >= 60%%   : %.0f%% of devices\n",
              summary.percent_median_util_ge_60);
  std::printf("  >= 1 pressure signal/hour   : %.0f%% of devices\n",
              summary.percent_with_any_signal_per_hour);
  std::printf("  > 10 Critical signals/hour  : %.0f%% of devices\n",
              summary.percent_with_10_critical_per_hour);
  std::printf("  >= 2%% time in high pressure : %.0f%% of devices\n",
              summary.percent_time2_high_pressure);
  return 0;
}
