// Field-study example: run a small SignalCapturer-style population study
// (the paper's §3) and print each device's memory-pressure profile plus
// the aggregate summary.
//
//   $ ./examples/field_study [devices] [hours_scale]
#include <cstdio>
#include <cstdlib>

#include "study/analysis.hpp"

int main(int argc, char** argv) {
  using namespace mvqoe;
  const int devices = argc > 1 ? std::atoi(argv[1]) : 12;
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.15;

  auto population = study::generate_population(devices, 42);
  for (auto& device : population) device.interactive_hours *= scale;

  std::printf("simulating %d devices (interactive hours scaled by %.2f)...\n\n", devices, scale);
  const auto results = study::run_study(population, 1);

  std::printf("%-4s %-10s %5s %7s %7s  %9s %9s %9s  %8s\n", "#", "vendor", "RAM", "hours",
              "util%", "mod/h", "low/h", "crit/h", "%pressed");
  for (const auto& result : results) {
    std::printf("%-4d %-10s %4lldM %6.1fh %6.1f%%  %9.2f %9.2f %9.2f  %7.2f%%\n",
                result.device.index, result.device.manufacturer.c_str(),
                static_cast<long long>(result.device.ram_mb), result.hours_logged,
                100.0 * result.median_utilization, result.signals_per_hour(1),
                result.signals_per_hour(2), result.signals_per_hour(3),
                100.0 * result.fraction_not_normal());
  }

  const auto summary = study::summarize(results);
  std::printf("\naggregate (uncleaned, %zu devices):\n", summary.devices);
  std::printf("  median utilization >= 60%%   : %.0f%% of devices\n",
              summary.percent_median_util_ge_60);
  std::printf("  >= 1 pressure signal/hour   : %.0f%% of devices\n",
              summary.percent_with_any_signal_per_hour);
  std::printf("  > 10 Critical signals/hour  : %.0f%% of devices\n",
              summary.percent_with_10_critical_per_hour);
  std::printf("  >= 2%% time in high pressure : %.0f%% of devices\n",
              summary.percent_time2_high_pressure);
  return 0;
}
