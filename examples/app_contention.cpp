// App contention example (DESIGN.md §11): a declarative ScenarioSpec
// hosting two workloads on one simulated device — a video player and an
// extra memory hog pushing the device toward critical pressure — plus an
// optional second player contending for the same pages, CPU and link.
// Each session gets its own QoE attribution in the scenario result.
//
//   $ ./examples/app_contention [sessions]
#include <cstdio>
#include <cstdlib>

#include "runner/scenario_batch.hpp"
#include "scenario/driver.hpp"

int main(int argc, char** argv) {
  using namespace mvqoe;
  const int sessions = argc > 1 ? std::atoi(argv[1]) : 2;

  // Declarative world: Nokia 1 at moderate ambient pressure, one memory
  // hog driving toward critical, and N players watching the same clip
  // with derived per-session seeds.
  scenario::ScenarioSpec spec;
  spec.family = "fig16";  // Nokia 1 + Firefox
  spec.state = mem::PressureLevel::Moderate;
  spec.seed = 5;

  scenario::PressureWorkloadSpec hog;
  hog.label = "memory-hog";
  hog.target = mem::PressureLevel::Critical;
  spec.workloads.emplace_back(hog);

  for (int k = 0; k < sessions; ++k) {
    scenario::VideoWorkloadSpec video;
    video.label = "video" + std::to_string(k);
    video.height = 480;
    video.fps = 30;
    video.duration_s = 30;
    video.seed = runner::contention_session_seed(spec.seed, static_cast<std::size_t>(k));
    spec.workloads.emplace_back(std::move(video));
  }

  const scenario::ScenarioResult result = scenario::run_scenario(spec);

  std::printf("Nokia 1, %d x 480p30 player(s) + memory hog:\n", sessions);
  std::printf("  pressure at session start  : %s\n", mem::to_string(result.start_level));
  std::printf("  scenario status            : %s\n\n", core::to_string(result.status));
  std::printf("  %-8s %-10s %9s %9s %10s %9s\n", "session", "status", "drops", "startup",
              "rebuffers", "pss MB");
  for (const scenario::SessionReport& session : result.sessions) {
    const qoe::RunOutcome& outcome = session.result.outcome;
    std::printf("  %-8s %-10s %8.1f%% %8.2fs %10d %9.1f\n", session.label.c_str(),
                core::to_string(session.result.status), 100.0 * outcome.drop_rate,
                outcome.startup_delay_s, outcome.rebuffer_events, outcome.mean_pss_mb);
  }
  std::printf("\nRe-run with 1 session to see the uncontended baseline.\n");
  return 0;
}
