// The paper's actionable proposal (§6/§7), demonstrated end to end:
// ABR algorithms that listen to onTrimMemory signals and adapt the
// *frame rate* (not just the bitrate) recover playback under memory
// pressure that wrecks network-only policies.
//
// Runs the same pressured scenario (Nokia 1, organic background-app
// pressure) under four policies and prints the comparison.
#include <cstdio>
#include <memory>

#include "video/abr_policy.hpp"
#include "core/experiment.hpp"

namespace {

mvqoe::core::VideoRunResult run_policy(mvqoe::video::AbrPolicy* policy, std::uint64_t seed) {
  using namespace mvqoe;
  core::VideoRunSpec spec;
  spec.device = core::nokia1();
  spec.height = 720;   // the network-only policies will happily pick this...
  spec.fps = 60;       // ...at 60 FPS, which the pressured device cannot render
  spec.organic_background_apps = 8;
  spec.asset = video::dubai_flow_motion(60);
  spec.seed = seed;
  spec.abr = policy;
  return core::run_video(spec);
}

void report(const char* name, const mvqoe::core::VideoRunResult& result) {
  const auto& history = result.metrics.rung_history;
  std::printf("  %-28s drops %5.1f%%  crashed=%-3s  final rung %s\n", name,
              100.0 * result.outcome.drop_rate, result.outcome.crashed ? "yes" : "no",
              history.empty() ? "-" : history.back().label().c_str());
}

}  // namespace

int main() {
  using namespace mvqoe;
  std::printf("Scenario: Nokia 1 (1 GB), 8 background apps (organic pressure), 60 s video.\n");
  std::printf("Network is never the bottleneck — only memory/CPU are (paper Sec. 4.1).\n\n");

  report("fixed 720p60", run_policy(nullptr, 3));

  video::RateBasedAbr rate_based(60);
  report("rate-based (network-only)", run_policy(&rate_based, 3));

  video::BufferBasedAbr buffer_based(60);
  report("buffer-based / BBA", run_policy(&buffer_based, 3));

  video::BolaAbr bola(60);
  report("BOLA", run_policy(&bola, 3));

  // The §6 proposal: wrap any network policy with memory-pressure caps
  // that trade frame rate before resolution.
  video::MemoryAwareAbr aware(std::make_unique<video::RateBasedAbr>(60));
  report("memory-aware(rate-based)", run_policy(&aware, 3));

  std::printf("\nThe memory-aware policy reacts to onTrimMemory signals by capping the frame\n");
  std::printf("rate (60 -> 48 -> 24) and, if drops persist, the resolution — the adaptation\n");
  std::printf("the paper shows recovers playback (Figs 16/17).\n");
  return 0;
}
