// Kernel-interference drill-down (the paper's §5 analysis as an
// example): run one pressured video session with tracing and print the
// Perfetto-style breakdown — top running threads, video-thread state
// dwell times, mmcqd preemption statistics, and kswapd's state shares.
//
//   $ ./examples/kernel_trace [pressure: 0..3]
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "trace/analysis.hpp"

int main(int argc, char** argv) {
  using namespace mvqoe;
  const auto pressure = static_cast<mem::PressureLevel>(argc > 1 ? std::atoi(argv[1]) : 1);

  core::VideoRunSpec spec;
  spec.device = core::nokia1();
  spec.height = 480;
  spec.fps = 60;
  spec.pressure = pressure;
  spec.asset = video::dubai_flow_motion(60);
  spec.seed = 3;

  core::VideoExperiment experiment(spec);
  const auto result = experiment.run();
  const auto& tracer = experiment.testbed().tracer;
  const sim::Time begin = experiment.playback_start();

  std::printf("session: Nokia 1, 480p60, %s -> drops %.1f%%, crashed=%s\n\n",
              mem::to_string(pressure), 100.0 * result.outcome.drop_rate,
              result.outcome.crashed ? "yes" : "no");

  std::printf("top running threads during playback:\n");
  const auto top = trace::top_running_threads(tracer, begin);
  for (std::size_t i = 0; i < std::min<std::size_t>(10, top.size()); ++i) {
    std::printf("  #%-2zu %-30s %7.2fs (%s)\n", top[i].rank, top[i].name.c_str(),
                top[i].running_seconds, top[i].process_name.c_str());
  }

  std::vector<trace::ThreadId> video_threads = experiment.session().client_thread_ids();
  video_threads.push_back(experiment.session().surfaceflinger_tid());
  const auto states = trace::state_times(tracer, video_threads, begin);
  std::printf("\nvideo client thread states (summed over player, MediaCodec, SurfaceFlinger):\n");
  std::printf("  Running              %7.2fs\n", states.running);
  std::printf("  Runnable             %7.2fs\n", states.runnable);
  std::printf("  Runnable (Preempted) %7.2fs\n", states.runnable_preempted);
  std::printf("  Blocked on I/O       %7.2fs\n", states.blocked_io);

  const auto preemptions = trace::preemption_stats(tracer, video_threads, "mmcqd");
  std::printf("\nmmcqd preemptions of video threads: %zu (victim waited %.3fs total)\n",
              preemptions.count, preemptions.victim_wait_seconds);

  const auto kswapd = trace::state_fractions(
      tracer, experiment.testbed().memory.kswapd_tid(), begin);
  std::printf("\nkswapd state shares:\n");
  for (const auto& [name, fraction] : kswapd) {
    std::printf("  %-22s %5.1f%%\n", name.c_str(), 100.0 * fraction);
  }

  const auto& vm = experiment.testbed().memory.vmstat();
  std::printf("\nvmstat: pswpin=%llu pswpout=%llu pgpgin=%llu kills=%llu direct_reclaims=%llu\n",
              static_cast<unsigned long long>(vm.pswpin),
              static_cast<unsigned long long>(vm.pswpout),
              static_cast<unsigned long long>(vm.pgpgin),
              static_cast<unsigned long long>(vm.kills_lmkd),
              static_cast<unsigned long long>(vm.direct_reclaim_entries));
  return 0;
}
