// Low-level pipe I/O shared by every fork-based fan-out in the tree:
// the warm-start sweep children (runner/warm_sweep) and the campaign
// worker processes (src/campaign). Unix-only; callers gate on
// fork_supported().
#pragma once

#include <string>
#include <string_view>

namespace mvqoe::runner {

/// True when the platform supports fork()+pipe() process fan-out.
bool fork_supported() noexcept;

#if defined(__unix__) || defined(__APPLE__)

/// Write the whole buffer, retrying short writes and EINTR. False on
/// error (e.g. the read end vanished).
bool write_all(int fd, std::string_view data);

/// Drain the fd to EOF (blocking). EINTR is retried; any other error
/// truncates the result at the bytes read so far.
std::string read_all(int fd);

#endif

}  // namespace mvqoe::runner
