#include "runner/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "snapshot/atomic_file.hpp"

namespace mvqoe::runner {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes "key": — no comma
  }
  if (first_in_scope_.empty()) return;
  if (first_in_scope_.back()) {
    first_in_scope_.back() = false;
  } else {
    out_ += ',';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_in_scope_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  append_escaped(name);
  out_ += ':';
  // The next value completes this key: it must not emit its own comma.
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  // std::to_chars is locale-independent by definition (equivalent to
  // %.17g in the "C" locale); snprintf would honor LC_NUMERIC and emit
  // decimal commas under e.g. de_DE, corrupting the JSON and breaking
  // the byte-identical determinism contract (DESIGN.md §9).
  char buf[40];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v, std::chars_format::general, 17);
  out_.append(buf, res.ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  append_escaped(v);
  return *this;
}

void JsonWriter::append_escaped(std::string_view v) {
  out_ += '"';
  for (const char c : v) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

void write_mean_ci(JsonWriter& w, const stats::MeanCi& m) {
  w.begin_object()
      .field("mean", m.mean)
      .field("ci95", m.ci95)
      .field("min", m.min)
      .field("max", m.max)
      .field("n", m.n)
      .end_object();
}

void write_histogram(JsonWriter& w, const stats::Histogram& h) {
  w.begin_object();
  if (h.bin_count() > 0) {
    w.field("lo", h.bin_low(0)).field("hi", h.bin_high(h.bin_count() - 1));
  }
  w.key("counts").begin_array();
  for (std::size_t b = 0; b < h.bin_count(); ++b) w.value(h.count(b));
  w.end_array();
  // Overflow counters only appear when nonzero: legacy Clamp histograms
  // never set them, keeping existing BENCH_* output byte-identical.
  if (h.below() > 0) w.field("below", h.below());
  if (h.above() > 0) w.field("above", h.above());
  w.end_object();
}

std::string bench_json_path(std::string_view bench_name) {
  std::string dir = ".";
  if (const char* env = std::getenv("MVQOE_JSON_DIR")) {
    if (env[0] != '\0') dir = env;
  }
  return dir + "/BENCH_" + std::string(bench_name) + ".json";
}

bool write_file(const std::string& path, std::string_view content) {
  // Write-to-temp + rename (snapshot/atomic_file): a kill -9 mid-write
  // can never leave a truncated BENCH_*.json — readers see either the
  // previous complete file or the new complete one.
  return snapshot::atomic_write_file(path, content);
}

}  // namespace mvqoe::runner
