// Minimal JSON emitter for the machine-readable bench outputs
// (BENCH_<name>.json). No external dependency: a comma-tracking builder
// plus helpers for the stats types the benches aggregate with. Doubles
// round-trip (%.17g); NaN/Inf degrade to null so the files stay valid.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace mvqoe::runner {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key for the next value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

  /// Shorthand for key(name).value(v).
  template <typename T>
  JsonWriter& field(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  const std::string& str() const noexcept { return out_; }

 private:
  void comma();
  void append_escaped(std::string_view v);

  std::string out_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

/// {"mean":..,"ci95":..,"min":..,"max":..,"n":..}
void write_mean_ci(JsonWriter& w, const stats::MeanCi& m);

/// {"lo":..,"hi":..,"counts":[..]} plus "below"/"above" overflow
/// counters when nonzero (Overflow::Track histograms only).
void write_histogram(JsonWriter& w, const stats::Histogram& h);

/// Path for a bench output file: "<MVQOE_JSON_DIR or .>/BENCH_<name>.json".
std::string bench_json_path(std::string_view bench_name);

/// Write `content` to `path`; returns false (and leaves no partial file
/// behind) on I/O failure.
bool write_file(const std::string& path, std::string_view content);

}  // namespace mvqoe::runner
