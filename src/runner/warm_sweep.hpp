// Warm-start sweep grids: checkpoint the shared startup phase once, fork
// the video phase per cell.
//
// A sweep cell's simulation splits into a *world* phase (boot + pressure
// induction — identical for every (fps, height) cell of a pressure state)
// and a *video* phase (the part that varies). The cold path re-simulates
// the world for every cell; the warm path prepares it once per
// (state, run) group and forks a child process per cell, so the copy-on-
// write image carries the full world state — including the engine's
// closure-holding event queue, which no serializer could (DESIGN.md §10).
//
// Both modes use the same seed scheme (one world stream per group, one
// video stream per cell), so Warm must reproduce Cold byte-for-byte —
// the warm-vs-cold identity test and bench assert exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qoe/metrics.hpp"
#include "runner/video_batch.hpp"
#include "scenario/spec.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe::runner {

/// One (cell, run) outcome crossing a fork pipe (or, in cold mode,
/// produced in-process): ok flag + the exact RunOutcome bit patterns, so
/// warm and cold reductions see identical doubles. The campaign workers
/// (src/campaign) ship the same encoding in their shard payloads.
struct CellRunOutcome {
  bool ok = false;
  qoe::RunOutcome outcome;
  std::string error;
};

void encode_cell_outcome(snapshot::ByteWriter& w, const CellRunOutcome& result);
CellRunOutcome decode_cell_outcome(snapshot::ByteReader& r);

/// World stream for a (state, run) sweep group: every (fps, height) cell
/// of the group boots the same world from this seed.
std::uint64_t sweep_group_seed(std::uint64_t base, mem::PressureLevel state, int run) noexcept;

/// Video stream for one cell within a group.
std::uint64_t sweep_video_seed(std::uint64_t group_seed, int height, int fps) noexcept;

enum class SweepMode {
  Cold,  // every (cell, run) simulated from boot on the thread pool
  Warm,  // one prepared world per (state, run) group, cells forked from it
};

/// True when the platform supports the fork-based warm path; when false,
/// Warm silently degrades to Cold (same results either way).
bool warm_fork_supported() noexcept;

/// Prepare the (state, run) group's shared world once and run every
/// (fps, height) cell's video phase from it — each cell in a forked
/// copy-on-write child, `workers` at a time. Outcomes come back in
/// fps-major cell order (the grid layout of run_sweep_grid_shared).
/// Degrades to per-cell cold runs (same seeds, same outcomes) when the
/// platform has no fork. This is the unit of work a campaign worker
/// executes per sweep shard (src/campaign/sweep_campaign).
std::vector<CellRunOutcome> run_warm_group(const scenario::ScenarioSpec& proto,
                                           mem::PressureLevel state, int run,
                                           const std::vector<int>& fps,
                                           const std::vector<int>& heights,
                                           std::uint64_t base_seed, int workers);

/// Shared-world sweep grid. Layout and reduction match run_sweep_grid
/// (cells in state-major grid order, runs per cell in run order); only
/// the seed scheme differs — cell_seed reports the run-0 video seed.
/// `proto` is a ScenarioSpec whose first video workload each cell
/// retargets (legacy callers build it with scenario::from_run_spec).
std::vector<SweepCellResult> run_sweep_grid_shared(
    const scenario::ScenarioSpec& proto, const std::vector<mem::PressureLevel>& states,
    const std::vector<int>& fps, const std::vector<int>& heights, int runs, int jobs,
    std::uint64_t base_seed, SweepMode mode);

}  // namespace mvqoe::runner
