// Batch execution of declarative scenarios (DESIGN.md §11) on the
// thread-pool runner.
//
// run_scenario_sweep_grid is the ScenarioSpec counterpart of
// run_sweep_grid: identical grid layout, identical seed scheme
// (sweep_cell_seed + derive_seed(cell, run + 1)), cells retargeting the
// proto's first video workload — so a single-video proto reproduces the
// legacy sweep bit for bit.
//
// run_contention_grid is the multi-session grid the legacy runner could
// not express: N concurrent video sessions contending inside one
// simulated device per cell, with per-session QoE attribution. The same
// determinism contract applies: results are independent of worker count
// (--jobs N equals serial byte-for-byte).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runner/video_batch.hpp"
#include "scenario/driver.hpp"

namespace mvqoe::runner {

/// ScenarioSpec sweep over (states x fps x heights). `proto` must carry
/// at least one video workload; each cell retargets its height/fps/seed.
std::vector<SweepCellResult> run_scenario_sweep_grid(
    const scenario::ScenarioSpec& proto, const std::vector<mem::PressureLevel>& states,
    const std::vector<int>& fps, const std::vector<int>& heights, int runs, int jobs,
    std::uint64_t base_seed);

/// Collision-free per-cell seed for a (session-count, state) contention
/// cell (chained derive_seed streams, like sweep_cell_seed).
std::uint64_t contention_cell_seed(std::uint64_t base, int sessions,
                                   mem::PressureLevel state) noexcept;

/// Video stream for session k of one contention run.
std::uint64_t contention_session_seed(std::uint64_t run_seed, std::size_t session) noexcept;

/// One cell of a contention grid: `sessions` concurrent video sessions on
/// one device under `state`, repeated `runs` times, QoE attributed per
/// session label (video0, video1, ...).
struct ContentionCellResult {
  int sessions = 0;
  mem::PressureLevel state{};
  std::uint64_t cell_seed = 0;
  qoe::SessionBreakdown breakdown;
  std::size_t failures = 0;
};

/// Run a (session_counts x states) contention grid. `proto` supplies the
/// device/family and the video template (its first video workload is
/// cloned per session, labelled video<k>, each with its own derived
/// stream). Fan-out is at (cell, run) granularity across `jobs` workers;
/// reduction is in deterministic grid/run/session order.
std::vector<ContentionCellResult> run_contention_grid(
    const scenario::ScenarioSpec& proto, const std::vector<int>& session_counts,
    const std::vector<mem::PressureLevel>& states, int runs, int jobs, std::uint64_t base_seed);

/// The BENCH_<name>.json payload for a contention grid — exposed as a
/// string so byte-identity checks (--jobs N vs serial) can compare
/// payloads without touching the filesystem.
std::string contention_json(std::string_view bench_name,
                            const std::vector<ContentionCellResult>& cells, int runs,
                            int jobs_used, std::uint64_t base_seed);

}  // namespace mvqoe::runner
