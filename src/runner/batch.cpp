#include "runner/batch.hpp"

#include <cstdlib>
#include <cstring>

namespace mvqoe::runner {

int resolve_jobs(int requested) noexcept {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("MVQOE_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int jobs_from_args(int argc, char** argv, int requested) noexcept {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      const int n = std::atoi(argv[i + 1]);
      if (n > 0) return n;
    }
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      const int n = std::atoi(arg + 7);
      if (n > 0) return n;
    }
  }
  return resolve_jobs(requested);
}

}  // namespace mvqoe::runner
