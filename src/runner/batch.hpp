// Thread-pool batch experiment runner.
//
// Every figure and table in the paper is a sweep of many independent
// seeded runs (5-run means with 95% CIs). Each run owns its whole world —
// Engine, MemoryManager, Scheduler, RNG stream — so runs are embarrassingly
// parallel; the only contract is determinism: results come back in run-index
// order with values independent of worker count and completion order.
//
//   auto batch = runner::run_batch(cells.size(), jobs, [&](std::size_t i) {
//     return simulate(cells[i]);   // builds its own Engine etc.
//   });
//   for (const auto& slot : batch.runs) ...   // index order, always
//
// The serial path (jobs == 1) and the parallel path execute the exact same
// per-run code on the exact same per-run seeds, so they are byte-identical.
// A run that throws is reported as a structured per-run failure; the other
// runs complete normally.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mvqoe::runner {

/// Resolve a jobs request to a concrete worker count >= 1.
/// requested > 0 wins; otherwise the MVQOE_JOBS environment variable;
/// otherwise std::thread::hardware_concurrency().
int resolve_jobs(int requested) noexcept;

/// Parse `--jobs N` / `--jobs=N` out of argv (first match wins) and
/// resolve it. Unrecognized arguments are ignored so examples can keep
/// their positional parameters.
int jobs_from_args(int argc, char** argv, int requested = 0) noexcept;

/// One run's outcome: either a value or a structured failure.
template <typename Result>
struct RunSlot {
  std::size_t index = 0;
  bool ok = false;
  Result value{};      // default-constructed when !ok
  std::string error;   // exception text when !ok
};

template <typename Result>
struct BatchResult {
  std::vector<RunSlot<Result>> runs;  // always in run-index order
  int jobs_used = 1;
  std::size_t failures = 0;

  bool all_ok() const noexcept { return failures == 0; }
};

/// Execute `count` independent runs of `fn(run_index)` across `jobs`
/// worker threads (resolved via resolve_jobs). Results land in slot
/// [run_index] regardless of completion order; workers share nothing but
/// the atomic work-queue cursor, so fn must not touch shared mutable
/// state (each run builds its own Engine/Testbed).
template <typename Fn>
auto run_batch(std::size_t count, int jobs, Fn&& fn)
    -> BatchResult<std::remove_cvref_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using Result = std::remove_cvref_t<std::invoke_result_t<Fn&, std::size_t>>;
  BatchResult<Result> batch;
  batch.runs.resize(count);
  for (std::size_t i = 0; i < count; ++i) batch.runs[i].index = i;

  auto execute_one = [&fn, &batch](std::size_t i) {
    RunSlot<Result>& slot = batch.runs[i];
    try {
      slot.value = fn(i);
      slot.ok = true;
    } catch (const std::exception& e) {
      slot.error = e.what();
    } catch (...) {
      slot.error = "unknown exception";
    }
  };

  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(resolve_jobs(jobs)),
                                             count > 0 ? count : 1));
  batch.jobs_used = workers;
  if (workers <= 1) {
    // Serial fallback: same per-run code, same seeds, no threads — the
    // reference the parallel path must match byte for byte.
    for (std::size_t i = 0; i < count; ++i) execute_one(i);
  } else {
    std::atomic<std::size_t> cursor{0};
    auto worker = [&] {
      for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed); i < count;
           i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        execute_one(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  for (const RunSlot<Result>& slot : batch.runs) {
    if (!slot.ok) ++batch.failures;
  }
  return batch;
}

}  // namespace mvqoe::runner
