#include "runner/ipc.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <unistd.h>
#define MVQOE_HAVE_FORK 1
#else
#define MVQOE_HAVE_FORK 0
#endif

namespace mvqoe::runner {

bool fork_supported() noexcept { return MVQOE_HAVE_FORK != 0; }

#if MVQOE_HAVE_FORK

bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_all(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

#endif  // MVQOE_HAVE_FORK

}  // namespace mvqoe::runner
