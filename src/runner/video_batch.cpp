#include "runner/video_batch.hpp"

#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace mvqoe::runner {

std::uint64_t sweep_cell_seed(std::uint64_t base, int height, int fps,
                              mem::PressureLevel state) noexcept {
  // One derive_seed stream per coordinate level. Offsets keep the streams
  // off the small integers used for run indices (derive_seed(base, i+1)).
  std::uint64_t seed = stats::derive_seed(base, 0x5157454550ULL /* "SWEEP" */);
  seed = stats::derive_seed(seed, static_cast<std::uint64_t>(height));
  seed = stats::derive_seed(seed, static_cast<std::uint64_t>(fps));
  seed = stats::derive_seed(seed, static_cast<std::uint64_t>(state) + 1);
  return seed;
}

VideoBatch run_video_batch(const core::VideoRunSpec& spec, int runs, int jobs) {
  VideoBatch batch;
  if (runs <= 0) return batch;
  const std::uint64_t base_seed = spec.seed;
  auto result = run_batch(static_cast<std::size_t>(runs), jobs, [&spec, base_seed](std::size_t i) {
    core::VideoRunSpec run_spec = spec;
    // Same stream derivation as core::run_video_repeated: the serial
    // helper, the serial fallback, and the parallel path all see run i
    // with the identical seed.
    run_spec.seed = stats::derive_seed(base_seed, static_cast<std::uint64_t>(i) + 1);
    return core::run_video(run_spec);
  });
  batch.jobs_used = result.jobs_used;
  batch.failures = result.failures;
  for (const auto& slot : result.runs) {
    if (slot.ok) batch.aggregate.add(slot.value.outcome);
  }
  batch.runs = std::move(result.runs);
  return batch;
}

std::vector<SweepCellResult> run_sweep_grid(const core::VideoRunSpec& proto,
                                            const std::vector<mem::PressureLevel>& states,
                                            const std::vector<int>& fps,
                                            const std::vector<int>& heights, int runs, int jobs,
                                            std::uint64_t base_seed) {
  std::vector<SweepCellResult> cells;
  if (runs <= 0) return cells;
  for (const auto state : states) {
    for (const int f : fps) {
      for (const int h : heights) {
        SweepCellResult cell;
        cell.height = h;
        cell.fps = f;
        cell.state = state;
        cell.cell_seed = sweep_cell_seed(base_seed, h, f, state);
        cells.push_back(cell);
      }
    }
  }

  // Flatten to (cell, run) tasks so parallelism spans the whole grid, not
  // just the runs of one cell at a time.
  const std::size_t total = cells.size() * static_cast<std::size_t>(runs);
  auto result = run_batch(total, jobs, [&](std::size_t task) {
    const SweepCellResult& cell = cells[task / static_cast<std::size_t>(runs)];
    const std::size_t run_index = task % static_cast<std::size_t>(runs);
    core::VideoRunSpec spec = proto;
    spec.height = cell.height;
    spec.fps = cell.fps;
    spec.pressure = cell.state;
    spec.seed = stats::derive_seed(cell.cell_seed, run_index + 1);
    return core::run_video(spec);
  });

  // Deterministic reduction: tasks are laid out cell-major, so walking
  // the slots in index order rebuilds each cell's runs in run order.
  for (std::size_t task = 0; task < result.runs.size(); ++task) {
    SweepCellResult& cell = cells[task / static_cast<std::size_t>(runs)];
    const auto& slot = result.runs[task];
    if (slot.ok) {
      cell.aggregate.add(slot.value.outcome);
    } else {
      ++cell.failures;
    }
  }
  return cells;
}

void write_run_outcome(JsonWriter& w, const qoe::RunOutcome& outcome) {
  w.begin_object()
      .field("drop_rate", outcome.drop_rate)
      .field("crashed", outcome.crashed)
      .field("aborted", outcome.aborted)
      .field("mean_pss_mb", outcome.mean_pss_mb)
      .field("peak_pss_mb", outcome.peak_pss_mb)
      .field("startup_delay_s", outcome.startup_delay_s)
      .field("relaunches", outcome.relaunches)
      .field("rebuffer_events", outcome.rebuffer_events)
      .field("relaunch_downtime_s", outcome.relaunch_downtime_s)
      .end_object();
}

std::string sweep_json(std::string_view bench_name, const std::vector<SweepCellResult>& cells,
                       int runs, int jobs_used, std::uint64_t base_seed) {
  JsonWriter w;
  w.begin_object()
      .field("bench", bench_name)
      .field("base_seed", base_seed)
      .field("runs_per_cell", runs)
      .field("jobs", jobs_used);

  // Histogram rollup of all per-run drop rates across the grid.
  stats::Histogram drops(0.0, 1.0, 20);
  w.key("cells").begin_array();
  for (const SweepCellResult& cell : cells) {
    w.begin_object()
        .field("height", cell.height)
        .field("fps", cell.fps)
        .field("state", mem::to_string(cell.state))
        .field("cell_seed", cell.cell_seed)
        .field("failures", cell.failures)
        .field("crash_rate_percent", cell.aggregate.crash_rate_percent())
        .field("relaunch_rate_percent", cell.aggregate.relaunch_rate_percent());
    w.key("drop_rate");
    write_mean_ci(w, cell.aggregate.drop_rate());
    w.key("drop_rate_completed");
    write_mean_ci(w, cell.aggregate.drop_rate_completed());
    w.key("rebuffer_events");
    write_mean_ci(w, cell.aggregate.rebuffer_events());
    w.key("mean_pss_mb");
    write_mean_ci(w, cell.aggregate.mean_pss_mb());
    w.key("runs").begin_array();
    for (const qoe::RunOutcome& outcome : cell.aggregate.outcomes()) {
      write_run_outcome(w, outcome);
      drops.add(outcome.drop_rate);
    }
    w.end_array().end_object();
  }
  w.end_array();
  w.key("drop_rate_histogram");
  write_histogram(w, drops);
  w.end_object();
  return w.str();
}

std::string write_sweep_json(std::string_view bench_name,
                             const std::vector<SweepCellResult>& cells, int runs, int jobs_used,
                             std::uint64_t base_seed) {
  const std::string path = bench_json_path(bench_name);
  if (!write_file(path, sweep_json(bench_name, cells, runs, jobs_used, base_seed))) return "";
  return path;
}

}  // namespace mvqoe::runner
