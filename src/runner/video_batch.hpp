// Batch execution of seeded video experiments (the paper's repeated-run
// methodology, §4.1) on the thread-pool runner.
//
// Determinism contract:
//  - run i of a batch uses seed stats::derive_seed(batch_seed, i + 1) —
//    exactly what the serial core::run_video_repeated helper does, so the
//    parallel batch reproduces its per-run results bit for bit;
//  - sweep cells derive their base seed from the cell coordinates via
//    chained derive_seed streams (collision-free, unlike the old additive
//    `1000 + height + fps + state*7` bench formula where distinct tuples
//    aliased to the same seed and correlated runs);
//  - results and aggregates are reduced in run-index order regardless of
//    which worker finishes first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "runner/batch.hpp"
#include "runner/json_writer.hpp"

namespace mvqoe::runner {

/// Collision-free per-cell seed for a (height, fps, pressure-state) sweep
/// cell: chained derive_seed streams, one coordinate per level.
std::uint64_t sweep_cell_seed(std::uint64_t base, int height, int fps,
                              mem::PressureLevel state) noexcept;

struct VideoBatch {
  /// Per-run results in run-index order (slot.ok == false carries the
  /// structured failure of a run that threw; the rest still complete).
  std::vector<RunSlot<core::VideoRunResult>> runs;
  /// Aggregate over the successful runs, added in run-index order.
  qoe::RunAggregate aggregate;
  int jobs_used = 1;
  std::size_t failures = 0;
};

/// Run `runs` seeded repetitions of `spec` across `jobs` workers (0 =>
/// MVQOE_JOBS / hardware). spec.seed is the batch seed. jobs == 1 is the
/// byte-identical serial fallback.
VideoBatch run_video_batch(const core::VideoRunSpec& spec, int runs, int jobs);

/// One cell of a sweep grid plus its aggregated outcome.
struct SweepCellResult {
  int height = 0;
  int fps = 0;
  mem::PressureLevel state{};
  std::uint64_t cell_seed = 0;
  qoe::RunAggregate aggregate;
  std::size_t failures = 0;
};

/// Run a full device sweep grid (states x fps x heights, the bench layout)
/// with `runs` repetitions per cell, fanned out over `jobs` workers at
/// (cell, run) granularity so small grids still use every core. `proto`
/// supplies everything but height/fps/pressure/seed. Cells come back in
/// grid order, runs within a cell in run-index order.
std::vector<SweepCellResult> run_sweep_grid(const core::VideoRunSpec& proto,
                                            const std::vector<mem::PressureLevel>& states,
                                            const std::vector<int>& fps,
                                            const std::vector<int>& heights, int runs, int jobs,
                                            std::uint64_t base_seed);

/// Serialize one run's QoE outcome (full double precision — the payload
/// the parallel-vs-serial byte-identity tests compare).
void write_run_outcome(JsonWriter& w, const qoe::RunOutcome& outcome);

/// The BENCH_<name>.json payload as a string — what write_sweep_json
/// writes. Exposed so byte-identity checks (warm-start vs cold sweeps)
/// can compare payloads without touching the filesystem.
std::string sweep_json(std::string_view bench_name, const std::vector<SweepCellResult>& cells,
                       int runs, int jobs_used, std::uint64_t base_seed);

/// Serialize a sweep to BENCH_<name>.json: per-cell aggregates (drop-rate
/// mean/CI, crash/relaunch rates, PSS) plus per-run outcomes and a
/// drop-rate histogram rollup. Returns the path written, or "" on I/O
/// failure.
std::string write_sweep_json(std::string_view bench_name,
                             const std::vector<SweepCellResult>& cells, int runs, int jobs_used,
                             std::uint64_t base_seed);

}  // namespace mvqoe::runner
