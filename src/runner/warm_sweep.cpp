#include "runner/warm_sweep.hpp"

#include <exception>
#include <string>
#include <utility>

#include "runner/ipc.hpp"
#include "scenario/driver.hpp"
#include "snapshot/bytes.hpp"
#include "stats/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define MVQOE_WARM_FORK 1
#else
#define MVQOE_WARM_FORK 0
#endif

namespace mvqoe::runner {

void encode_cell_outcome(snapshot::ByteWriter& w, const CellRunOutcome& result) {
  w.b(result.ok);
  if (!result.ok) {
    w.str(result.error);
    return;
  }
  const qoe::RunOutcome& o = result.outcome;
  w.f64(o.drop_rate);
  w.b(o.crashed);
  w.b(o.aborted);
  w.f64(o.mean_pss_mb);
  w.f64(o.peak_pss_mb);
  w.f64(o.startup_delay_s);
  w.i32(o.relaunches);
  w.i32(o.rebuffer_events);
  w.f64(o.relaunch_downtime_s);
}

CellRunOutcome decode_cell_outcome(snapshot::ByteReader& r) {
  CellRunOutcome result;
  result.ok = r.b();
  if (!result.ok) {
    result.error = r.str();
    return result;
  }
  qoe::RunOutcome& o = result.outcome;
  o.drop_rate = r.f64();
  o.crashed = r.b();
  o.aborted = r.b();
  o.mean_pss_mb = r.f64();
  o.peak_pss_mb = r.f64();
  o.startup_delay_s = r.f64();
  o.relaunches = r.i32();
  o.rebuffer_events = r.i32();
  o.relaunch_downtime_s = r.f64();
  return result;
}

namespace {

/// Video phase of one cell on an already-prepared scenario world. Runs in
/// the forked child (warm) — never returns an exception across the pipe.
CellRunOutcome run_cell_video(scenario::ScenarioDriver& driver, int height, int fps,
                              std::uint64_t video_seed) {
  CellRunOutcome result;
  try {
    driver.set_cell(height, fps, video_seed);
    driver.start();
    while (driver.advance_slice()) {
    }
    result.outcome = driver.finalize().sessions.at(0).result.outcome;
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  return result;
}

#if !MVQOE_WARM_FORK
/// One cold (cell, run): the whole world from boot, same seed scheme as
/// the warm path — the portable fallback run_warm_group degrades to.
CellRunOutcome run_cell_cold(const scenario::ScenarioSpec& proto, mem::PressureLevel state,
                             int height, int fps, std::uint64_t group_seed,
                             std::uint64_t video_seed) {
  CellRunOutcome result;
  try {
    scenario::ScenarioSpec spec = proto;
    scenario::VideoWorkloadSpec& video = scenario::video_spec(spec);
    video.height = height;
    video.fps = fps;
    spec.state = state;
    spec.world_seed = group_seed;
    spec.seed = video_seed;
    video.seed = video_seed;
    result.outcome = scenario::run_scenario(spec).sessions.at(0).result.outcome;
    result.ok = true;
  } catch (const std::exception& e) {
    result.error = e.what();
  } catch (...) {
    result.error = "unknown exception";
  }
  return result;
}
#endif  // !MVQOE_WARM_FORK

#if MVQOE_WARM_FORK

/// Fork the video phases of one prepared world: each pending cell runs in
/// its own child (waves of `workers`), returning its outcome over a pipe.
/// The parent must be single-threaded when this is called — fork() from a
/// threaded process can deadlock the child's allocator.
struct PendingCell {
  std::size_t slot = 0;  // index into the group's outcome vector
  int height = 0;
  int fps = 0;
  std::uint64_t video_seed = 0;
};

void fork_group(scenario::ScenarioDriver& driver, const std::vector<PendingCell>& pending,
                int workers, std::vector<CellRunOutcome>& outcomes) {
  struct Child {
    pid_t pid = -1;
    int fd = -1;
    std::size_t slot = 0;
  };
  std::size_t next = 0;
  while (next < pending.size()) {
    std::vector<Child> wave;
    while (next < pending.size() && wave.size() < static_cast<std::size_t>(workers)) {
      const PendingCell& cell = pending[next++];
      int fds[2];
      if (::pipe(fds) != 0) {
        outcomes[cell.slot].error = "pipe() failed";
        continue;
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        outcomes[cell.slot].error = "fork() failed";
        continue;
      }
      if (pid == 0) {
        ::close(fds[0]);
        snapshot::ByteWriter w;
        encode_cell_outcome(w, run_cell_video(driver, cell.height, cell.fps, cell.video_seed));
        write_all(fds[1], w.view());
        ::close(fds[1]);
        ::_exit(0);  // no destructors/atexit — the child is a throwaway world
      }
      ::close(fds[1]);
      wave.push_back(Child{pid, fds[0], cell.slot});
    }
    for (const Child& child : wave) {
      const std::string payload = read_all(child.fd);
      ::close(child.fd);
      int status = 0;
      ::waitpid(child.pid, &status, 0);
      CellRunOutcome& out = outcomes[child.slot];
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || payload.empty()) {
        out.error = "warm-start child died before reporting";
        continue;
      }
      try {
        snapshot::ByteReader r(payload);
        out = decode_cell_outcome(r);
      } catch (const std::exception& e) {
        out.error = e.what();
      }
    }
  }
}

#endif  // MVQOE_WARM_FORK

}  // namespace

std::uint64_t sweep_group_seed(std::uint64_t base, mem::PressureLevel state, int run) noexcept {
  std::uint64_t seed = stats::derive_seed(base, 0x57524C44ULL /* "WRLD" */);
  seed = stats::derive_seed(seed, static_cast<std::uint64_t>(state) + 1);
  seed = stats::derive_seed(seed, static_cast<std::uint64_t>(run) + 1);
  return seed;
}

std::uint64_t sweep_video_seed(std::uint64_t group_seed, int height, int fps) noexcept {
  std::uint64_t seed = stats::derive_seed(group_seed, 0x56494445ULL /* "VIDE" */);
  seed = stats::derive_seed(seed, static_cast<std::uint64_t>(height));
  seed = stats::derive_seed(seed, static_cast<std::uint64_t>(fps));
  return seed;
}

bool warm_fork_supported() noexcept { return fork_supported(); }

std::vector<CellRunOutcome> run_warm_group(const scenario::ScenarioSpec& proto,
                                           mem::PressureLevel state, int run,
                                           const std::vector<int>& fps,
                                           const std::vector<int>& heights,
                                           std::uint64_t base_seed, int workers) {
  const std::uint64_t group_seed = sweep_group_seed(base_seed, state, run);
  std::vector<CellRunOutcome> outcomes(fps.size() * heights.size());

#if MVQOE_WARM_FORK
  scenario::ScenarioSpec world_spec = proto;
  world_spec.state = state;
  world_spec.world_seed = group_seed;
  world_spec.seed = group_seed;                          // placeholder;
  scenario::video_spec(world_spec).seed = group_seed;    // every cell retargets
  scenario::ScenarioDriver driver(world_spec);
  driver.prepare();  // the shared phase, simulated once per group

  std::vector<PendingCell> pending;
  std::size_t slot = 0;
  for (const int f : fps) {
    for (const int h : heights) {
      pending.push_back(PendingCell{slot++, h, f, sweep_video_seed(group_seed, h, f)});
    }
  }
  fork_group(driver, pending, workers > 0 ? workers : 1, outcomes);
#else
  (void)workers;
  std::size_t slot = 0;
  for (const int f : fps) {
    for (const int h : heights) {
      outcomes[slot++] =
          run_cell_cold(proto, state, h, f, group_seed, sweep_video_seed(group_seed, h, f));
    }
  }
#endif
  return outcomes;
}

std::vector<SweepCellResult> run_sweep_grid_shared(
    const scenario::ScenarioSpec& proto, const std::vector<mem::PressureLevel>& states,
    const std::vector<int>& fps, const std::vector<int>& heights, int runs, int jobs,
    std::uint64_t base_seed, SweepMode mode) {
  std::vector<SweepCellResult> cells;
  if (runs <= 0) return cells;
  for (const auto state : states) {
    for (const int f : fps) {
      for (const int h : heights) {
        SweepCellResult cell;
        cell.height = h;
        cell.fps = f;
        cell.state = state;
        cell.cell_seed = sweep_video_seed(sweep_group_seed(base_seed, state, 0), h, f);
        cells.push_back(cell);
      }
    }
  }
  const auto cells_per_state = fps.size() * heights.size();

  // (cell-index, run) -> outcome, filled by either mode, reduced once.
  std::vector<CellRunOutcome> outcomes(cells.size() * static_cast<std::size_t>(runs));
  const auto slot_of = [runs](std::size_t cell_index, int run) {
    return cell_index * static_cast<std::size_t>(runs) + static_cast<std::size_t>(run);
  };

  if (mode == SweepMode::Warm && warm_fork_supported()) {
    const int workers = resolve_jobs(jobs);
    for (std::size_t s = 0; s < states.size(); ++s) {
      for (int run = 0; run < runs; ++run) {
        const std::vector<CellRunOutcome> group =
            run_warm_group(proto, states[s], run, fps, heights, base_seed, workers);
        for (std::size_t c = 0; c < cells_per_state; ++c) {
          outcomes[slot_of(s * cells_per_state + c, run)] = group[c];
        }
      }
    }
  } else {
    // Cold baseline: every (cell, run) from boot, on the thread pool. The
    // seeds are identical to the warm path's, so so are the outcomes.
    const std::size_t total = cells.size() * static_cast<std::size_t>(runs);
    auto result = run_batch(total, jobs, [&](std::size_t task) {
      const std::size_t cell_index = task / static_cast<std::size_t>(runs);
      const int run = static_cast<int>(task % static_cast<std::size_t>(runs));
      const SweepCellResult& cell = cells[cell_index];
      const std::uint64_t group_seed = sweep_group_seed(base_seed, cell.state, run);
      scenario::ScenarioSpec spec = proto;
      scenario::VideoWorkloadSpec& video = scenario::video_spec(spec);
      video.height = cell.height;
      video.fps = cell.fps;
      spec.state = cell.state;
      spec.world_seed = group_seed;
      const std::uint64_t video_seed = sweep_video_seed(group_seed, cell.height, cell.fps);
      spec.seed = video_seed;
      video.seed = video_seed;
      return scenario::run_scenario(spec).sessions.at(0).result.outcome;
    });
    for (std::size_t task = 0; task < result.runs.size(); ++task) {
      CellRunOutcome& out = outcomes[task];  // same cell-major layout
      if (result.runs[task].ok) {
        out.ok = true;
        out.outcome = result.runs[task].value;
      } else {
        out.error = result.runs[task].error;
      }
    }
  }

  for (std::size_t cell_index = 0; cell_index < cells.size(); ++cell_index) {
    for (int run = 0; run < runs; ++run) {
      const CellRunOutcome& out = outcomes[slot_of(cell_index, run)];
      if (out.ok) {
        cells[cell_index].aggregate.add(out.outcome);
      } else {
        ++cells[cell_index].failures;
      }
    }
  }
  return cells;
}

}  // namespace mvqoe::runner
