#include "runner/scenario_batch.hpp"

#include "stats/rng.hpp"

namespace mvqoe::runner {

std::vector<SweepCellResult> run_scenario_sweep_grid(
    const scenario::ScenarioSpec& proto, const std::vector<mem::PressureLevel>& states,
    const std::vector<int>& fps, const std::vector<int>& heights, int runs, int jobs,
    std::uint64_t base_seed) {
  std::vector<SweepCellResult> cells;
  if (runs <= 0) return cells;
  for (const auto state : states) {
    for (const int f : fps) {
      for (const int h : heights) {
        SweepCellResult cell;
        cell.height = h;
        cell.fps = f;
        cell.state = state;
        cell.cell_seed = sweep_cell_seed(base_seed, h, f, state);
        cells.push_back(cell);
      }
    }
  }

  // Flatten to (cell, run) tasks so parallelism spans the whole grid, not
  // just the runs of one cell at a time.
  const std::size_t total = cells.size() * static_cast<std::size_t>(runs);
  auto result = run_batch(total, jobs, [&](std::size_t task) {
    const SweepCellResult& cell = cells[task / static_cast<std::size_t>(runs)];
    const std::size_t run_index = task % static_cast<std::size_t>(runs);
    scenario::ScenarioSpec spec = proto;
    scenario::VideoWorkloadSpec& video = scenario::video_spec(spec);
    video.height = cell.height;
    video.fps = cell.fps;
    spec.state = cell.state;
    const std::uint64_t seed = stats::derive_seed(cell.cell_seed, run_index + 1);
    spec.seed = seed;
    video.seed = seed;
    return scenario::run_scenario(spec).sessions.at(0).result.outcome;
  });

  // Deterministic reduction: tasks are laid out cell-major, so walking
  // the slots in index order rebuilds each cell's runs in run order.
  for (std::size_t task = 0; task < result.runs.size(); ++task) {
    SweepCellResult& cell = cells[task / static_cast<std::size_t>(runs)];
    const auto& slot = result.runs[task];
    if (slot.ok) {
      cell.aggregate.add(slot.value);
    } else {
      ++cell.failures;
    }
  }
  return cells;
}

std::uint64_t contention_cell_seed(std::uint64_t base, int sessions,
                                   mem::PressureLevel state) noexcept {
  std::uint64_t seed = stats::derive_seed(base, 0x434F4E54ULL /* "CONT" */);
  seed = stats::derive_seed(seed, static_cast<std::uint64_t>(sessions));
  seed = stats::derive_seed(seed, static_cast<std::uint64_t>(state) + 1);
  return seed;
}

std::uint64_t contention_session_seed(std::uint64_t run_seed, std::size_t session) noexcept {
  std::uint64_t seed = stats::derive_seed(run_seed, 0x53455353ULL /* "SESS" */);
  return stats::derive_seed(seed, static_cast<std::uint64_t>(session) + 1);
}

namespace {

/// Build the n-session scenario for one contention run: n clones of the
/// proto's first video workload, labelled video<k>, each on its own
/// derived video stream.
scenario::ScenarioSpec contention_scenario(const scenario::ScenarioSpec& proto, int sessions,
                                           mem::PressureLevel state, std::uint64_t run_seed) {
  scenario::ScenarioSpec spec = proto;
  const scenario::VideoWorkloadSpec base_video = scenario::video_spec(proto);
  spec.state = state;
  spec.seed = run_seed;
  spec.workloads.clear();
  for (int k = 0; k < sessions; ++k) {
    scenario::VideoWorkloadSpec video = base_video;
    video.label = base_video.label + std::to_string(k);
    video.seed = contention_session_seed(run_seed, static_cast<std::size_t>(k));
    spec.workloads.emplace_back(std::move(video));
  }
  return spec;
}

}  // namespace

std::vector<ContentionCellResult> run_contention_grid(
    const scenario::ScenarioSpec& proto, const std::vector<int>& session_counts,
    const std::vector<mem::PressureLevel>& states, int runs, int jobs, std::uint64_t base_seed) {
  std::vector<ContentionCellResult> cells;
  if (runs <= 0) return cells;
  for (const int sessions : session_counts) {
    for (const auto state : states) {
      ContentionCellResult cell;
      cell.sessions = sessions;
      cell.state = state;
      cell.cell_seed = contention_cell_seed(base_seed, sessions, state);
      cells.push_back(cell);
    }
  }

  struct RunReport {
    std::vector<std::pair<std::string, qoe::RunOutcome>> sessions;
  };

  const std::size_t total = cells.size() * static_cast<std::size_t>(runs);
  auto result = run_batch(total, jobs, [&](std::size_t task) {
    const ContentionCellResult& cell = cells[task / static_cast<std::size_t>(runs)];
    const std::size_t run_index = task % static_cast<std::size_t>(runs);
    const std::uint64_t run_seed = stats::derive_seed(cell.cell_seed, run_index + 1);
    const scenario::ScenarioResult run_result =
        scenario::run_scenario(contention_scenario(proto, cell.sessions, cell.state, run_seed));
    RunReport report;
    for (const scenario::SessionReport& session : run_result.sessions) {
      report.sessions.emplace_back(session.label, session.result.outcome);
    }
    return report;
  });

  for (std::size_t task = 0; task < result.runs.size(); ++task) {
    ContentionCellResult& cell = cells[task / static_cast<std::size_t>(runs)];
    const auto& slot = result.runs[task];
    if (slot.ok) {
      for (const auto& [label, outcome] : slot.value.sessions) {
        cell.breakdown.add(label, outcome);
      }
    } else {
      ++cell.failures;
    }
  }
  return cells;
}

std::string contention_json(std::string_view bench_name,
                            const std::vector<ContentionCellResult>& cells, int runs,
                            int jobs_used, std::uint64_t base_seed) {
  JsonWriter w;
  w.begin_object()
      .field("bench", bench_name)
      .field("base_seed", base_seed)
      .field("runs_per_cell", runs)
      .field("jobs", jobs_used);
  w.key("cells").begin_array();
  for (const ContentionCellResult& cell : cells) {
    w.begin_object()
        .field("sessions", cell.sessions)
        .field("state", mem::to_string(cell.state))
        .field("cell_seed", cell.cell_seed)
        .field("failures", cell.failures);
    w.key("per_session").begin_array();
    for (const auto& [label, aggregate] : cell.breakdown.entries()) {
      w.begin_object()
          .field("label", label)
          .field("crash_rate_percent", aggregate.crash_rate_percent())
          .field("relaunch_rate_percent", aggregate.relaunch_rate_percent());
      w.key("drop_rate");
      write_mean_ci(w, aggregate.drop_rate());
      w.key("mean_pss_mb");
      write_mean_ci(w, aggregate.mean_pss_mb());
      w.key("runs").begin_array();
      for (const qoe::RunOutcome& outcome : aggregate.outcomes()) {
        write_run_outcome(w, outcome);
      }
      w.end_array().end_object();
    }
    w.end_array().end_object();
  }
  w.end_array().end_object();
  return w.str();
}

}  // namespace mvqoe::runner
