#include "storage/storage.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "snapshot/digest.hpp"
#include "snapshot/rng_io.hpp"

namespace mvqoe::storage {

StorageDevice::StorageDevice(sim::Engine& engine, sched::Scheduler& scheduler,
                             StorageConfig config)
    : engine_(engine), scheduler_(scheduler), config_(config) {
  sched::ThreadSpec spec;
  spec.name = "mmcqd";
  spec.pid = 1;  // kernel
  spec.process_name = "kernel";
  spec.sched_class = sched::SchedClass::Realtime;
  spec.priority = config_.rt_priority;
  mmcqd_ = scheduler_.create_thread(spec);
}

sim::Time StorageDevice::transfer_time(bool write, std::uint64_t bytes) const noexcept {
  const double mbps = write ? config_.write_bandwidth_mbps : config_.read_bandwidth_mbps;
  const double micros = static_cast<double>(bytes) / (mbps * 1e6) * 1e6;
  const sim::Time nominal = config_.request_latency + static_cast<sim::Time>(std::ceil(micros));
  return static_cast<sim::Time>(std::ceil(static_cast<double>(nominal) * latency_multiplier_));
}

void StorageDevice::set_latency_multiplier(double multiplier) noexcept {
  latency_multiplier_ = std::max(multiplier, 0.01);
}

void StorageDevice::set_error_rate(double rate, std::uint64_t seed) noexcept {
  error_rate_ = std::clamp(rate, 0.0, 1.0);
  fault_rng_ = stats::Rng(seed);
}

void StorageDevice::submit(IoRequest request) {
  queue_.push_back(std::move(request));
  if (!active_) pump();
}

void StorageDevice::pump() {
  if (queue_.empty()) {
    active_ = false;
    return;
  }
  active_ = true;
  // Dispatch phase: mmcqd wakes and burns CPU issuing the request. This
  // wakeup is what preempts fair-class threads.
  scheduler_.run_work(mmcqd_, config_.dispatch_cpu_refus, [this] {
    IoRequest request = std::move(queue_.front());
    queue_.pop_front();
    if (request.write) {
      ++counters_.writes;
      counters_.written_bytes += request.bytes;
    } else {
      ++counters_.reads;
      counters_.read_bytes += request.bytes;
    }
    device_transfer(std::move(request), /*attempt=*/1);
  });
}

void StorageDevice::device_transfer(IoRequest request, int attempt) {
  // Device transfer: mmcqd blocks while the eMMC moves the data.
  scheduler_.mark_blocked_io(mmcqd_);
  const sim::Time transfer = transfer_time(request.write, request.bytes);
  engine_.schedule(transfer, [this, request = std::move(request), attempt]() mutable {
    // Injected transient failure: the device retries after a back-off;
    // the final attempt always succeeds so requesters never wedge.
    if (error_rate_ > 0.0 && attempt <= config_.max_error_retries &&
        fault_rng_.bernoulli(error_rate_)) {
      ++counters_.io_errors;
      ++counters_.io_retries;
      engine_.schedule(config_.error_retry_delay,
                       [this, request = std::move(request), attempt]() mutable {
                         device_transfer(std::move(request), attempt + 1);
                       });
      return;
    }
    // Completion phase: another CPU burst (another preemption), then the
    // requester's callback and the next queued request.
    scheduler_.run_work(mmcqd_, config_.completion_cpu_refus,
                        [this, on_complete = std::move(request.on_complete)] {
                          if (on_complete) on_complete();
                          pump();
                        });
  });
}

void StorageDevice::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.u64(mmcqd_);
  w.b(active_);
  w.f64(latency_multiplier_);
  w.f64(error_rate_);
  w.u64(counters_.reads);
  w.u64(counters_.writes);
  w.u64(counters_.read_bytes);
  w.u64(counters_.written_bytes);
  w.u64(counters_.io_errors);
  w.u64(counters_.io_retries);
  w.u64(queue_.size());
  for (const IoRequest& request : queue_) {
    w.b(request.write);
    w.u64(request.bytes);
  }
  snapshot::write_rng(w, fault_rng_);
}

std::uint64_t StorageDevice::digest() const { return snapshot::state_digest(*this); }

}  // namespace mvqoe::storage
