// eMMC storage model with its queued-I/O kernel daemon, `mmcqd`.
//
// The paper's §5 finding is that under memory pressure, reclaim-driven
// disk I/O (dirty-page writeback, thrashing page-ins) makes mmcqd one of
// the busiest threads on the device, and because mmcqd is scheduled at
// realtime priority it *preempts* foreground video threads on every
// request (Table 5: 26.6x more preemptions, 27.5x longer victim waits
// under Moderate pressure).
//
// The model: requests queue at the device; the mmcqd thread (an RT thread
// on the simulated CPU) wakes per request, spends CPU dispatching it,
// blocks for the device transfer, then spends CPU completing it. Every
// one of those wakeups preempts whatever fair-class thread occupies the
// chosen core — exactly the interference mechanism the paper measured.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "stats/rng.hpp"

namespace mvqoe::storage {

struct StorageConfig {
  double read_bandwidth_mbps = 140.0;   // sequential read, MB/s
  double write_bandwidth_mbps = 45.0;   // sequential write, MB/s
  sim::Time request_latency = sim::usec(250);  // fixed per-request device time
  /// CPU work (reference-µs) mmcqd spends dispatching a request and
  /// processing its completion. Small per-request costs add up to seconds
  /// of stolen CPU at thrashing-era request rates.
  double dispatch_cpu_refus = 60.0;
  double completion_cpu_refus = 40.0;
  int rt_priority = 50;  // mmcqd's realtime priority
  /// Device-side back-off before retrying a transiently-failed request.
  sim::Time error_retry_delay = sim::msec(5);
  /// Attempts per request while transient errors are injected; the final
  /// attempt always succeeds so a fault window degrades throughput and
  /// latency without wedging writeback or refault paths.
  int max_error_retries = 4;
};

struct IoRequest {
  bool write = false;
  std::uint64_t bytes = 4096;
  /// Invoked when the request fully completes (after mmcqd's completion
  /// processing). May be empty for fire-and-forget writeback.
  std::function<void()> on_complete;
};

struct StorageCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t written_bytes = 0;
  std::uint64_t io_errors = 0;   // injected transient failures
  std::uint64_t io_retries = 0;  // device-side retries they caused
};

class StorageDevice {
 public:
  StorageDevice(sim::Engine& engine, sched::Scheduler& scheduler, StorageConfig config);

  StorageDevice(const StorageDevice&) = delete;
  StorageDevice& operator=(const StorageDevice&) = delete;

  /// Enqueue a request; wakes mmcqd if it is idle.
  void submit(IoRequest request);

  std::size_t queue_depth() const noexcept { return queue_.size(); }
  bool busy() const noexcept { return active_; }
  sched::ThreadId mmcqd_tid() const noexcept { return mmcqd_; }
  const StorageCounters& counters() const noexcept { return counters_; }

  /// Wall time the device itself (not mmcqd's CPU work) needs for a
  /// request of `bytes`, including any injected latency degradation.
  sim::Time transfer_time(bool write, std::uint64_t bytes) const noexcept;

  // --- Fault injection (FaultInjector hooks) -----------------------------
  /// Stretch every device transfer by `multiplier` (>= 1.0 is a latency
  /// spike window; 1.0 restores nominal speed).
  void set_latency_multiplier(double multiplier) noexcept;
  double latency_multiplier() const noexcept { return latency_multiplier_; }
  /// Inject transient request failures with probability `rate` per
  /// attempt, drawn from a deterministic seeded stream. A failed attempt
  /// costs error_retry_delay and is retried (see max_error_retries).
  void set_error_rate(double rate, std::uint64_t seed) noexcept;
  double error_rate() const noexcept { return error_rate_; }

  /// Serialize queue depth/shape, counters, fault knobs and the fault
  /// RNG stream (request completion callbacks excluded — closures,
  /// replay-reconstructed per DESIGN.md §10).
  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;

 private:
  void pump();
  void device_transfer(IoRequest request, int attempt);

  sim::Engine& engine_;
  sched::Scheduler& scheduler_;
  StorageConfig config_;
  sched::ThreadId mmcqd_;
  std::deque<IoRequest> queue_;
  bool active_ = false;  // mmcqd currently working a request
  StorageCounters counters_;
  double latency_multiplier_ = 1.0;
  double error_rate_ = 0.0;
  stats::Rng fault_rng_{0x570Fu};
};

}  // namespace mvqoe::storage
