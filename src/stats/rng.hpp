// Deterministic random number generation for simulation runs.
//
// Every experiment in this suite is seeded so that a run is exactly
// reproducible; repeated runs (the paper reports 5-run means with 95%
// confidence intervals) differ only by seed. We implement xoshiro256**
// seeded via splitmix64 rather than relying on <random> engines, because
// the standard does not pin down engine streams across library versions
// and we want bit-identical traces everywhere.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace mvqoe::stats {

/// Splitmix64 step: used to expand a single 64-bit seed into engine state.
/// Also useful on its own as a cheap hash for deriving per-entity seeds.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Derive a child seed from a parent seed and a stream index. Entities
/// (devices, sessions, threads) get independent streams this way.
std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) noexcept;

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, 256-bit state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;
  /// Standard normal via Marsaglia polar method.
  double normal() noexcept;
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Lognormal parameterized by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;
  /// Exponential with given mean (not rate). Requires mean > 0.
  double exponential(double mean) noexcept;
  /// Poisson-distributed count with given mean >= 0 (Knuth / PTRS hybrid).
  std::uint64_t poisson(double mean) noexcept;
  /// Index in [0, weights.size()) drawn proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t weighted_index(const std::vector<double>& weights) noexcept;

  /// Complete generator state for checkpointing. The cached Marsaglia
  /// spare normal is part of the state: without it, a restored generator
  /// would diverge from the original on the next normal() call.
  struct State {
    std::array<std::uint64_t, 4> s{};
    bool have_spare_normal = false;
    double spare_normal = 0.0;

    bool operator==(const State&) const noexcept = default;
  };

  State save_state() const noexcept {
    return State{state_, have_spare_normal_, spare_normal_};
  }
  void restore_state(const State& st) noexcept {
    state_ = st.s;
    have_spare_normal_ = st.have_spare_normal;
    spare_normal_ = st.spare_normal;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace mvqoe::stats
