#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>

#include "stats/summary.hpp"

namespace mvqoe::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  std::size_t bin = 0;
  if (span > 0.0) {
    const double rel = (x - lo_) / span * static_cast<double>(counts_.size());
    if (rel >= 0.0) bin = static_cast<std::size_t>(rel);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::add_count(std::size_t bin, std::size_t count) noexcept {
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  counts_[bin] += count;
  total_ += count;
}

double Histogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const noexcept { return bin_low(bin + 1); }

double Histogram::fraction(std::size_t bin) const noexcept {
  return total_ == 0 ? 0.0 : static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double frac = peak == 0 ? 0.0 : static_cast<double>(counts_[i]) / static_cast<double>(peak);
    std::snprintf(line, sizeof line, "  [%8.2f, %8.2f) %6zu |%s\n", bin_low(i), bin_high(i),
                  counts_[i], ascii_bar(frac, width).c_str());
    out += line;
  }
  return out;
}

}  // namespace mvqoe::stats
