#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "stats/summary.hpp"

namespace mvqoe::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins, Overflow policy)
    : lo_(lo), hi_(hi), policy_(policy), counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) noexcept {
  if (policy_ == Overflow::Track) {
    if (x < lo_) {
      ++below_;
      ++total_;
      return;
    }
    if (x >= hi_) {
      ++above_;
      ++total_;
      return;
    }
  }
  const double span = hi_ - lo_;
  std::size_t bin = 0;
  if (span > 0.0) {
    const double rel = (x - lo_) / span * static_cast<double>(counts_.size());
    if (rel >= 0.0) bin = static_cast<std::size_t>(rel);
    bin = std::min(bin, counts_.size() - 1);
  }
  ++counts_[bin];
  ++total_;
}

void Histogram::add_count(std::size_t bin, std::size_t count) noexcept {
  if (bin >= counts_.size()) bin = counts_.size() - 1;
  counts_[bin] += count;
  total_ += count;
}

void Histogram::add_overflow(std::size_t below, std::size_t above) noexcept {
  below_ += below;
  above_ += above;
  total_ += below + above;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size() ||
      policy_ != other.policy_) {
    char what[160];
    std::snprintf(what, sizeof what,
                  "histogram merge: incompatible bins [%g,%g)x%zu vs [%g,%g)x%zu", lo_, hi_,
                  counts_.size(), other.lo_, other.hi_, other.counts_.size());
    throw std::invalid_argument(what);
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  below_ += other.below_;
  above_ += other.above_;
}

double Histogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const noexcept { return bin_low(bin + 1); }

double Histogram::fraction(std::size_t bin) const noexcept {
  return total_ == 0 ? 0.0 : static_cast<double>(counts_[bin]) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 0;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  if (below_ > 0) {
    std::snprintf(line, sizeof line, "  below %8.2f          %6zu\n", lo_, below_);
    out += line;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double frac = peak == 0 ? 0.0 : static_cast<double>(counts_[i]) / static_cast<double>(peak);
    std::snprintf(line, sizeof line, "  [%8.2f, %8.2f) %6zu |%s\n", bin_low(i), bin_high(i),
                  counts_[i], ascii_bar(frac, width).c_str());
    out += line;
  }
  if (above_ > 0) {
    std::snprintf(line, sizeof line, "  above %8.2f          %6zu\n", hi_, above_);
    out += line;
  }
  return out;
}

}  // namespace mvqoe::stats
