#include "stats/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mvqoe::stats {

QuantileSketch::QuantileSketch(std::size_t k) : k_(k < 8 ? 8 : k) {}

void QuantileSketch::add(double x) {
  if (std::isnan(x)) return;
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  if (levels_.empty()) {
    levels_.emplace_back();
    parity_.push_back(0);
  }
  levels_[0].push_back(x);
  if (levels_[0].size() >= k_) compact_from(0);
}

void QuantileSketch::compact_from(std::size_t level) {
  // Compact upward until every level is back under capacity. Each pass
  // sorts the level, promotes every other element (starting at the
  // level's parity offset) with doubled weight, and keeps any unpaired
  // trailing element in place so total retained weight is conserved.
  for (std::size_t l = level; l < levels_.size(); ++l) {
    if (levels_[l].size() < k_) break;
    std::sort(levels_[l].begin(), levels_[l].end());
    const std::size_t pairs = levels_[l].size() / 2;
    const std::size_t offset = parity_[l] & 1u;
    parity_[l] ^= 1u;
    if (l + 1 == levels_.size()) {
      levels_.emplace_back();
      parity_.push_back(0);
    }
    // References only after the emplace_back above — growing the outer
    // vector would invalidate them.
    auto& buf = levels_[l];
    auto& up = levels_[l + 1];
    for (std::size_t p = 0; p < pairs; ++p) up.push_back(buf[2 * p + offset]);
    if (buf.size() % 2 == 1) {
      buf[0] = buf.back();
      buf.resize(1);
    } else {
      buf.clear();
    }
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (k_ != other.k_) {
    char what[96];
    std::snprintf(what, sizeof what, "quantile sketch merge: incompatible k (%zu vs %zu)", k_,
                  other.k_);
    throw std::invalid_argument(what);
  }
  if (other.n_ == 0) return;
  if (n_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  n_ += other.n_;
  while (levels_.size() < other.levels_.size()) {
    levels_.emplace_back();
    parity_.push_back(0);
  }
  for (std::size_t l = 0; l < other.levels_.size(); ++l) {
    levels_[l].insert(levels_[l].end(), other.levels_[l].begin(), other.levels_[l].end());
    parity_[l] ^= other.parity_[l] & 1u;
  }
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    if (levels_[l].size() >= k_) compact_from(l);
  }
}

double QuantileSketch::quantile(double q) const {
  if (n_ == 0) throw std::logic_error("quantile sketch: quantile() on empty sketch");
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  struct Item {
    double value;
    std::uint64_t weight;
  };
  std::vector<Item> items;
  std::uint64_t total = 0;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const std::uint64_t w = 1ULL << l;
    for (double v : levels_[l]) {
      items.push_back({v, w});
      total += w;
    }
  }
  std::sort(items.begin(), items.end(),
            [](const Item& a, const Item& b) { return a.value < b.value; });
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (const Item& it : items) {
    cum += static_cast<double>(it.weight);
    if (cum >= target) return std::clamp(it.value, min_, max_);
  }
  return max_;
}

QuantileSketch::State QuantileSketch::save_state() const {
  State s;
  s.k = k_;
  s.n = n_;
  s.min = min_;
  s.max = max_;
  s.parity = parity_;
  s.levels = levels_;
  return s;
}

void QuantileSketch::restore_state(const State& state) {
  if (state.k < 8 || state.parity.size() != state.levels.size()) {
    throw std::invalid_argument("quantile sketch: malformed state");
  }
  k_ = state.k;
  n_ = state.n;
  min_ = state.min;
  max_ = state.max;
  parity_ = state.parity;
  levels_ = state.levels;
}

}  // namespace mvqoe::stats
