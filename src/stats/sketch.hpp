// Deterministic mergeable quantile sketch for fleet-scale signal
// distributions (DESIGN.md §15).
//
// A KLL-style compactor hierarchy: level l holds up to k sample values,
// each standing for 2^l original samples. When a level fills it is
// sorted and every other element is promoted to the next level with
// doubled weight. Where the textbook sketch flips a random coin to pick
// the surviving offset, this one flips a per-level parity bit that is
// part of the sketch state — so the sketch is a pure function of its
// input sequence, and a fleet aggregate that folds shard partials in
// deterministic merge order produces byte-identical sketches across
// --jobs / --procs / kill-and-resume (the same contract as the campaign
// digest). Memory is O(k log(n/k)); counts are tracked exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mvqoe::stats {

class QuantileSketch {
 public:
  /// `k` is the per-level buffer width: larger is more accurate and
  /// bigger. Rank error is a few percent at the default.
  explicit QuantileSketch(std::size_t k = 128);

  /// Add one sample. NaN samples are dropped (they cannot be ordered).
  void add(double x);

  /// Merge another sketch into this one (level-wise concatenation, then
  /// compaction). Requires identical k; throws std::invalid_argument
  /// otherwise. NOT commutative bit-for-bit: callers that need
  /// determinism must merge in a fixed order, which is exactly what the
  /// fleet aggregate's ascending-unit merge order provides.
  void merge(const QuantileSketch& other);

  /// Exact number of samples added (not an estimate).
  std::uint64_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  /// Exact extremes of the input stream.
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Estimated q-quantile, q in [0, 1] (clamped). q=0 / q=1 return the
  /// exact min/max. Requires a non-empty sketch.
  double quantile(double q) const;

  /// Complete sketch state, exposed for serialization (src/fleet owns
  /// the wire encoding; stats stays dependency-free).
  struct State {
    std::size_t k = 0;
    std::uint64_t n = 0;
    double min = 0.0;
    double max = 0.0;
    std::vector<std::uint8_t> parity;           // one bit per level
    std::vector<std::vector<double>> levels;    // levels[l]: weight 2^l each
  };
  State save_state() const;
  void restore_state(const State& state);

 private:
  void compact_from(std::size_t level);

  std::size_t k_;
  std::uint64_t n_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<std::uint8_t> parity_;
  std::vector<std::vector<double>> levels_;
};

}  // namespace mvqoe::stats
