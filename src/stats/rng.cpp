#include "stats/rng.hpp"

#include <cmath>
#include <limits>

namespace mvqoe::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t parent, std::uint64_t stream) noexcept {
  std::uint64_t s = parent ^ (0x6a09e667f3bcc909ULL + stream * 0x9e3779b97f4a7c15ULL);
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
  // xoshiro must not be seeded with all-zero state; splitmix64 of any seed
  // cannot produce four zero words, but guard anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % span;
  std::uint64_t x = next();
  while (x >= limit) x = next();
  return lo + static_cast<std::int64_t>(x % span);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal() noexcept {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) noexcept {
  // -mean * log(U), guarding against log(0).
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplication method.
    const double limit = std::exp(-mean);
    double product = uniform();
    std::uint64_t count = 0;
    while (product > limit) {
      ++count;
      product *= uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction; adequate for the
  // coarse event-count draws this simulator needs at large means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double pick = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (pick < w) return i;
    pick -= w;
  }
  return weights.size() - 1;
}

}  // namespace mvqoe::stats
