// Descriptive statistics used throughout the benchmark harnesses: means
// with 95% confidence intervals (the paper reports 5-run means with 95%
// CIs), percentiles/CDFs (Fig 2), box statistics (Fig 6), and violin
// summaries (Fig 5).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mvqoe::stats {

/// Streaming accumulator for mean / variance (Welford) plus min/max.
class Accumulator {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator into this one (parallel-combine safe).
  void merge(const Accumulator& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean() * static_cast<double>(n_); }
  /// Half-width of the 95% confidence interval on the mean, using the
  /// normal critical value (1.96); 0 for fewer than two samples.
  double ci95_halfwidth() const noexcept;

  /// Complete accumulator state, exposed so fleet aggregates can
  /// serialize partials (src/fleet owns the wire encoding; stats stays
  /// dependency-free). restore + merge round-trips bit-for-bit.
  struct State {
    std::size_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  State save_state() const noexcept { return {n_, mean_, m2_, min_, max_}; }
  void restore_state(const State& s) noexcept {
    n_ = s.n;
    mean_ = s.mean;
    m2_ = s.m2;
    min_ = s.min;
    max_ = s.max;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Point summary of a sample: mean, CI, extremes.
struct MeanCi {
  double mean = 0.0;
  double ci95 = 0.0;  // half-width
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

/// Mean and 95% CI of a sample.
MeanCi mean_ci(const std::vector<double>& xs) noexcept;

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty xs.
double percentile(std::vector<double> xs, double p);

/// Empirical CDF evaluated at each sorted sample point.
struct CdfPoint {
  double value = 0.0;
  double fraction = 0.0;  // P(X <= value)
};
std::vector<CdfPoint> empirical_cdf(std::vector<double> xs);

/// Five-number summary used for boxplots (Fig 6 dwell-time boxes).
struct BoxStats {
  double min = 0.0;
  double q25 = 0.0;
  double median = 0.0;
  double q75 = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};
BoxStats box_stats(std::vector<double> xs);

/// Compact violin summary (Fig 5): quartiles plus a fixed-grid kernel
/// density estimate so the bench can print the violin profile.
struct ViolinSummary {
  BoxStats box;
  double mean = 0.0;
  std::vector<double> grid;     // evaluation points, low..high
  std::vector<double> density;  // KDE values at grid points, peak-normalized
};
ViolinSummary violin_summary(std::vector<double> xs, std::size_t grid_points = 24);

/// Render a fraction in [0,1] as a fixed-width unicode-free ASCII bar,
/// e.g. "#####....." — used by bench binaries to sketch figures in text.
std::string ascii_bar(double fraction, std::size_t width = 30);

}  // namespace mvqoe::stats
