// Fixed-bin histogram used for DMOS score distributions (Fig 10), the
// Fig 1 usage heatmap counts, fleet-scale signal distributions
// (src/fleet), and diagnostic distributions in tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mvqoe::stats {

/// What to do with samples outside [lo, hi).
enum class Overflow {
  /// Fold out-of-range samples into the first/last bin (legacy
  /// behaviour; no sample is dropped, but the edges lie).
  Clamp,
  /// Count out-of-range samples in dedicated below()/above() counters
  /// instead of the edge bins, so fleet aggregates can see that a bin
  /// range was mis-sized instead of silently absorbing the evidence.
  Track,
};

class Histogram {
 public:
  /// Uniform bins covering [lo, hi); out-of-range handling per `policy`
  /// (Clamp keeps the pre-fleet semantics and is the default).
  Histogram(double lo, double hi, std::size_t bins, Overflow policy = Overflow::Clamp);

  void add(double x) noexcept;
  void add_count(std::size_t bin, std::size_t count) noexcept;
  /// Bump the overflow counters directly — the deserialization
  /// counterpart of add() under Overflow::Track (src/fleet decode).
  void add_overflow(std::size_t below, std::size_t above) noexcept;

  /// Merge another histogram into this one. The two must be
  /// bin-compatible — identical [lo, hi), bin count and overflow policy
  /// — otherwise throws std::invalid_argument: a silent merge of
  /// mismatched grids would corrupt every downstream figure.
  void merge(const Histogram& other);

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  /// Total samples, including any below/above overflow.
  std::size_t total() const noexcept { return total_; }
  /// Samples below lo / at-or-above hi (always 0 under Overflow::Clamp).
  std::size_t below() const noexcept { return below_; }
  std::size_t above() const noexcept { return above_; }
  double low() const noexcept { return lo_; }
  double high() const noexcept { return hi_; }
  Overflow policy() const noexcept { return policy_; }
  double bin_low(std::size_t bin) const noexcept;
  double bin_high(std::size_t bin) const noexcept;
  /// Fraction of all samples in this bin (0 when empty).
  double fraction(std::size_t bin) const noexcept;

  /// Multi-line ASCII rendering with one row per bin — bench binaries use
  /// this to sketch the paper's histogram figures in text output. Tracked
  /// overflow counters get their own rows when nonzero.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  Overflow policy_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t below_ = 0;
  std::size_t above_ = 0;
};

}  // namespace mvqoe::stats
