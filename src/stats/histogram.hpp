// Fixed-bin histogram used for DMOS score distributions (Fig 10), the
// Fig 1 usage heatmap counts, and diagnostic distributions in tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mvqoe::stats {

class Histogram {
 public:
  /// Uniform bins covering [lo, hi); values outside are clamped into the
  /// first/last bin so no sample is silently dropped.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  void add_count(std::size_t bin, std::size_t count) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const noexcept { return counts_[bin]; }
  std::size_t total() const noexcept { return total_; }
  double bin_low(std::size_t bin) const noexcept;
  double bin_high(std::size_t bin) const noexcept;
  /// Fraction of all samples in this bin (0 when empty).
  double fraction(std::size_t bin) const noexcept;

  /// Multi-line ASCII rendering with one row per bin — bench binaries use
  /// this to sketch the paper's histogram figures in text output.
  std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mvqoe::stats
