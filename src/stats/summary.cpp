#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace mvqoe::stats {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Accumulator::mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::ci95_halfwidth() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

MeanCi mean_ci(const std::vector<double>& xs) noexcept {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  MeanCi out;
  out.mean = acc.mean();
  out.ci95 = acc.ci95_halfwidth();
  out.min = acc.empty() ? 0.0 : acc.min();
  out.max = acc.empty() ? 0.0 : acc.max();
  out.n = acc.count();
  return out;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::vector<CdfPoint> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back({xs[i], static_cast<double>(i + 1) / static_cast<double>(xs.size())});
  }
  return out;
}

BoxStats box_stats(std::vector<double> xs) {
  BoxStats box;
  if (xs.empty()) return box;
  box.n = xs.size();
  std::sort(xs.begin(), xs.end());
  box.min = xs.front();
  box.max = xs.back();
  // percentile() re-sorts a copy; accept the redundancy for clarity — the
  // sample sizes here are small (per-device dwell times, 5-run metrics).
  box.q25 = percentile(xs, 25.0);
  box.median = percentile(xs, 50.0);
  box.q75 = percentile(xs, 75.0);
  return box;
}

ViolinSummary violin_summary(std::vector<double> xs, std::size_t grid_points) {
  ViolinSummary vs;
  if (xs.empty() || grid_points == 0) return vs;
  vs.box = box_stats(xs);
  Accumulator acc;
  for (double x : xs) acc.add(x);
  vs.mean = acc.mean();

  const double lo = vs.box.min;
  const double hi = vs.box.max;
  const double span = hi - lo;
  // Silverman's rule-of-thumb bandwidth; fall back to a span fraction when
  // the sample is (near-)constant.
  double bw = 1.06 * acc.stddev() * std::pow(static_cast<double>(xs.size()), -0.2);
  if (bw <= 0.0) bw = span > 0.0 ? span / 10.0 : 1.0;

  vs.grid.resize(grid_points);
  vs.density.assign(grid_points, 0.0);
  double peak = 0.0;
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double g =
        lo + (grid_points == 1 ? 0.0
                               : span * static_cast<double>(i) / static_cast<double>(grid_points - 1));
    vs.grid[i] = g;
    double d = 0.0;
    for (double x : xs) {
      const double z = (g - x) / bw;
      d += std::exp(-0.5 * z * z);
    }
    vs.density[i] = d;
    peak = std::max(peak, d);
  }
  if (peak > 0.0) {
    for (double& d : vs.density) d /= peak;
  }
  return vs;
}

std::string ascii_bar(double fraction, std::size_t width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const std::size_t filled = static_cast<std::size_t>(fraction * static_cast<double>(width) + 0.5);
  std::string bar(filled, '#');
  bar.append(width - filled, '.');
  return bar;
}

}  // namespace mvqoe::stats
