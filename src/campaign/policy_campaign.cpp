#include "campaign/policy_campaign.hpp"

#include <stdexcept>
#include <utility>

#include "snapshot/bytes.hpp"
#include "snapshot/digest.hpp"

namespace mvqoe::campaign {

namespace {

scenario::ScenarioSpec lane_proto(const PolicyCompareSpec& spec,
                                  const mem::MemPolicySpec& policy) {
  scenario::ScenarioSpec proto;
  proto.family = spec.base.family;
  proto.organic_background_apps = spec.base.organic_apps;
  proto.mem_policy = policy;
  scenario::VideoWorkloadSpec session;
  session.duration_s = spec.base.duration_s;
  proto.workloads.emplace_back(std::move(session));
  return proto;
}

void validate(const PolicyCompareSpec& spec) {
  if (spec.base.runs <= 0) throw std::invalid_argument("campaign: compare runs must be >= 1");
  if (spec.base.states.empty() || spec.base.fps.empty() || spec.base.heights.empty()) {
    throw std::invalid_argument("campaign: compare grid has an empty axis");
  }
  if (spec.base.duration_s <= 0) {
    throw std::invalid_argument("campaign: compare duration must be >= 1s");
  }
  if (spec.policies.empty()) {
    throw std::invalid_argument("campaign: compare needs at least one policy");
  }
  for (const mem::MemPolicySpec& policy : spec.policies) mem::validate_policy_spec(policy);
}

}  // namespace

std::uint64_t policy_total_units(const PolicyCompareSpec& spec) {
  return static_cast<std::uint64_t>(spec.policies.size()) * sweep_total_units(spec.base);
}

std::string encode_policy_config(const PolicyCompareSpec& spec) {
  snapshot::ByteWriter w;
  w.u32(1);  // config version
  // The base grid reuses the sweep campaign's canonical encoding (its
  // mem_policy field is forced to baseline — lanes override it anyway,
  // so it must not perturb the fingerprint).
  SweepCampaignSpec base = spec.base;
  base.mem_policy = {};
  w.str(encode_sweep_config(base));
  w.u32(static_cast<std::uint32_t>(spec.policies.size()));
  for (const mem::MemPolicySpec& policy : spec.policies) mem::save_policy_spec(w, policy);
  return std::move(w).take();
}

PolicyCompareSpec decode_policy_config(const std::string& bytes) {
  snapshot::ByteReader r(bytes);
  const std::uint32_t version = r.u32();
  if (version != 1) {
    throw std::runtime_error("campaign: unsupported policy-compare config version " +
                             std::to_string(version));
  }
  PolicyCompareSpec spec;
  spec.base = decode_sweep_config(r.str());
  const std::uint32_t policy_count = r.u32();
  spec.policies.reserve(policy_count);
  for (std::uint32_t i = 0; i < policy_count; ++i) {
    spec.policies.push_back(mem::load_policy_spec(r));
  }
  if (!r.done()) {
    throw std::runtime_error("campaign: trailing bytes after the policy-compare config");
  }
  validate(spec);
  return spec;
}

std::uint64_t policy_config_fingerprint(const PolicyCompareSpec& spec) {
  snapshot::StateHash hash;
  hash.mix_bytes(encode_policy_config(spec));
  return hash.value();
}

PolicyCompareSpec load_policy_resume_config(const std::string& path) {
  const CheckpointState state = read_checkpoint_file(path);
  try {
    return decode_policy_config(state.config);
  } catch (const std::exception& e) {
    throw std::runtime_error("campaign: " + path + ": " + e.what());
  }
}

PolicyCompareResult run_policy_compare(const PolicyCompareSpec& spec, CampaignOptions campaign) {
  validate(spec);
  campaign.config = encode_policy_config(spec);
  campaign.fingerprint = policy_config_fingerprint(spec);

  const std::uint64_t groups_per_lane = sweep_total_units(spec.base);
  std::vector<scenario::ScenarioSpec> protos;
  protos.reserve(spec.policies.size());
  for (const mem::MemPolicySpec& policy : spec.policies) {
    protos.push_back(lane_proto(spec, policy));
  }
  const int group_workers = spec.base.group_workers > 0 ? spec.base.group_workers : 1;
  const auto unit_fn = [&](std::uint64_t unit) {
    const std::size_t lane = static_cast<std::size_t>(unit / groups_per_lane);
    const std::uint64_t group = unit % groups_per_lane;
    const auto state = spec.base.states.at(static_cast<std::size_t>(group) /
                                           static_cast<std::size_t>(spec.base.runs));
    const int run = static_cast<int>(group % static_cast<std::uint64_t>(spec.base.runs));
    // Same (state, run) -> same sweep_group_seed for every lane: the
    // lanes boot identically-seeded worlds and differ only by policy.
    const std::vector<runner::CellRunOutcome> outcomes =
        runner::run_warm_group(protos.at(lane), state, run, spec.base.fps, spec.base.heights,
                               spec.base.seed, group_workers);
    snapshot::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(outcomes.size()));
    for (const runner::CellRunOutcome& outcome : outcomes) {
      runner::encode_cell_outcome(w, outcome);
    }
    return std::move(w).take();
  };

  PolicyCompareResult result;
  result.campaign = run_campaign(policy_total_units(spec), unit_fn, campaign);

  const std::size_t cells_per_state = spec.base.fps.size() * spec.base.heights.size();
  for (const mem::MemPolicySpec& policy : spec.policies) {
    PolicyLane lane;
    lane.policy = policy;
    for (const auto state : spec.base.states) {
      for (const int f : spec.base.fps) {
        for (const int h : spec.base.heights) {
          runner::SweepCellResult cell;
          cell.height = h;
          cell.fps = f;
          cell.state = state;
          cell.cell_seed = runner::sweep_video_seed(
              runner::sweep_group_seed(spec.base.seed, state, 0), h, f);
          lane.cells.push_back(cell);
        }
      }
    }
    result.lanes.push_back(std::move(lane));
  }

  snapshot::StateHash digest;
  for (std::size_t unit = 0; unit < result.campaign.payloads.size(); ++unit) {
    const std::size_t lane_index = unit / static_cast<std::size_t>(groups_per_lane);
    const std::size_t group = unit % static_cast<std::size_t>(groups_per_lane);
    const std::size_t state_index = group / static_cast<std::size_t>(spec.base.runs);
    std::vector<runner::SweepCellResult>& cells = result.lanes[lane_index].cells;
    if (!result.campaign.completed[unit]) {
      for (std::size_t c = 0; c < cells_per_state; ++c) {
        ++cells[state_index * cells_per_state + c].failures;
      }
      continue;
    }
    digest.mix(unit);
    digest.mix_bytes(result.campaign.payloads[unit]);
    snapshot::ByteReader r(result.campaign.payloads[unit]);
    const std::uint32_t count = r.u32();
    if (count != cells_per_state) {
      throw std::runtime_error("campaign: compare unit " + std::to_string(unit) + " carries " +
                               std::to_string(count) + " cells, grid has " +
                               std::to_string(cells_per_state));
    }
    for (std::size_t c = 0; c < cells_per_state; ++c) {
      const runner::CellRunOutcome outcome = runner::decode_cell_outcome(r);
      runner::SweepCellResult& cell = cells[state_index * cells_per_state + c];
      if (outcome.ok) {
        cell.aggregate.add(outcome.outcome);
      } else {
        ++cell.failures;
      }
    }
    if (!r.done()) {
      throw std::runtime_error("campaign: trailing bytes in compare unit " +
                               std::to_string(unit));
    }
  }
  result.digest = result.campaign.complete ? digest.value() : 0;
  return result;
}

}  // namespace mvqoe::campaign
