// Scoped SIGINT/SIGTERM capture for the campaign tools.
//
// The handlers only set a process-wide flag; the campaign event loop
// (and the tools' own loops) poll it at safe points, flush the
// checkpoint / repro blobs, and exit with the shell convention
// 128 + signo — instead of the default disposition killing the process
// mid-write. Combined with atomic file writes this makes Ctrl-C during
// a soak lose at most the in-flight shard.
#pragma once

#include <csignal>

namespace mvqoe::campaign {

class InterruptGuard {
 public:
  /// Installs SIGINT and SIGTERM handlers; restores the previous
  /// dispositions on destruction. One live guard per process.
  InterruptGuard();
  ~InterruptGuard();
  InterruptGuard(const InterruptGuard&) = delete;
  InterruptGuard& operator=(const InterruptGuard&) = delete;

  /// The flag the handlers set (0, or the signal number). Pass to
  /// CampaignOptions::interrupt.
  const volatile std::sig_atomic_t* flag() const noexcept;

  bool interrupted() const noexcept;
  int signal_number() const noexcept;
  /// 128 + signo — the distinct "interrupted, state flushed" exit code.
  int exit_code() const noexcept;
};

}  // namespace mvqoe::campaign
