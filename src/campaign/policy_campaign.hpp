// Policy-compare campaigns: the "what if Android did X" experiment
// (DESIGN.md §16) on top of the campaign coordinator.
//
// A compare runs the SAME warm-start sweep grid once per memory policy.
// One campaign unit = one (policy, state, run) warm-sweep group in
// policy-major order, and every policy lane reuses the same
// sweep_group_seed(base, state, run) world stream — so lane p and lane q
// boot identically-seeded device populations and differ only in how
// their reclaim/kill policies respond. Unit payloads are the same
// encoded CellRunOutcome vectors the sweep campaign ships; merging them
// in unit order is deterministic, so the compare digest is invariant to
// --jobs/--procs and to kill-and-resume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/sweep_campaign.hpp"

namespace mvqoe::campaign {

/// A serializable policy-compare description: one sweep grid (the
/// `base.mem_policy` field is ignored — each lane overrides it) plus the
/// ordered list of policies to run it under.
struct PolicyCompareSpec {
  SweepCampaignSpec base;
  std::vector<mem::MemPolicySpec> policies;
};

/// Units are policy-major: unit u -> (policies[u / G], group u % G)
/// where G = sweep_total_units(base).
std::uint64_t policy_total_units(const PolicyCompareSpec& spec);

/// Canonical wire encoding (checkpoint config) and its fingerprint.
/// base.group_workers is excluded (parallelism knob, free to differ
/// across resumes).
std::string encode_policy_config(const PolicyCompareSpec& spec);
PolicyCompareSpec decode_policy_config(const std::string& bytes);
std::uint64_t policy_config_fingerprint(const PolicyCompareSpec& spec);

/// Read a checkpoint file and reconstruct the compare spec it was
/// recorded under (--resume without re-specifying the grid).
PolicyCompareSpec load_policy_resume_config(const std::string& path);

/// One policy's lane of the compare: the full sweep grid it produced.
struct PolicyLane {
  mem::MemPolicySpec policy;
  std::vector<runner::SweepCellResult> cells;
};

struct PolicyCompareResult {
  /// One lane per spec.policies entry, in spec order. Valid when
  /// `campaign.complete`; a degraded campaign counts the missing
  /// groups' runs as failures in their cells.
  std::vector<PolicyLane> lanes;
  /// Order-sensitive digest over the completed unit payloads.
  std::uint64_t digest = 0;
  CampaignResult campaign;
};

/// Run (or resume) the compare under the coordinator.
/// `campaign.config` / `campaign.fingerprint` are filled in from `spec`.
PolicyCompareResult run_policy_compare(const PolicyCompareSpec& spec, CampaignOptions campaign);

}  // namespace mvqoe::campaign
