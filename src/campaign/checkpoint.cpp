#include "campaign/checkpoint.hpp"

#include <exception>
#include <stdexcept>

namespace mvqoe::campaign {

const char* to_string(ShardStatus status) noexcept {
  switch (status) {
    case ShardStatus::Completed: return "completed";
    case ShardStatus::Failed: return "failed";
  }
  return "unknown";
}

snapshot::Snapshot save_checkpoint(const CheckpointState& state) {
  snapshot::ByteWriter w;
  w.u32(1);  // section version
  w.u64(state.fingerprint);
  w.str(state.config);
  w.u64(state.total_units);
  w.u64(state.units.size());
  for (const auto& [index, payload] : state.units) {
    w.u64(index);
    w.str(payload);
  }
  w.u32(static_cast<std::uint32_t>(state.shards.size()));
  for (const ShardOutcome& shard : state.shards) {
    w.u64(shard.first_unit);
    w.u64(shard.unit_count);
    w.i32(shard.attempts);
    w.u8(static_cast<std::uint8_t>(shard.status));
    w.str(shard.error);
  }
  snapshot::Snapshot snap;
  snap.put(kCampaignTag, std::move(w));
  return snap;
}

CheckpointState load_checkpoint(const snapshot::Snapshot& blob) {
  snapshot::ByteReader r(blob.require(kCampaignTag));
  const std::uint32_t version = r.u32();
  if (version != 1) {
    throw std::runtime_error("campaign: unsupported CAMP section version " +
                             std::to_string(version));
  }
  CheckpointState state;
  state.fingerprint = r.u64();
  state.config = r.str();
  state.total_units = r.u64();
  const std::uint64_t unit_count = r.u64();
  if (unit_count > state.total_units) {
    throw std::runtime_error("campaign: checkpoint records " + std::to_string(unit_count) +
                             " completed units of only " + std::to_string(state.total_units));
  }
  state.units.reserve(static_cast<std::size_t>(unit_count));
  std::uint64_t previous = 0;
  for (std::uint64_t i = 0; i < unit_count; ++i) {
    const std::uint64_t index = r.u64();
    if (index >= state.total_units || (i > 0 && index <= previous)) {
      throw std::runtime_error("campaign: checkpoint unit index " + std::to_string(index) +
                               " out of order or out of range");
    }
    previous = index;
    state.units.emplace_back(index, r.str());
  }
  const std::uint32_t shard_count = r.u32();
  state.shards.reserve(shard_count);
  for (std::uint32_t i = 0; i < shard_count; ++i) {
    ShardOutcome shard;
    shard.first_unit = r.u64();
    shard.unit_count = r.u64();
    shard.attempts = r.i32();
    const std::uint8_t status = r.u8();
    if (status > static_cast<std::uint8_t>(ShardStatus::Failed)) {
      throw std::runtime_error("campaign: checkpoint shard status byte " +
                               std::to_string(status) + " is not a ShardStatus");
    }
    shard.status = static_cast<ShardStatus>(status);
    shard.error = r.str();
    state.shards.push_back(std::move(shard));
  }
  if (!r.done()) {
    throw std::runtime_error("campaign: trailing bytes after the CAMP section payload");
  }
  return state;
}

bool write_checkpoint_file(const std::string& path, const CheckpointState& state) {
  return snapshot::Snapshot::write_file(path, save_checkpoint(state));
}

CheckpointState read_checkpoint_file(const std::string& path) {
  const snapshot::Snapshot blob = snapshot::Snapshot::read_file(path);
  try {
    return load_checkpoint(blob);
  } catch (const std::exception& e) {
    throw std::runtime_error("campaign: " + path + ": " + e.what());
  }
}

}  // namespace mvqoe::campaign
