// Multi-process sweep campaigns: warm-start sweep grids on top of the
// campaign coordinator (DESIGN.md §13).
//
// One campaign unit = one (pressure state, run) warm-sweep group — the
// same unit the warm-start path already forks from one prepared world
// (runner::run_warm_group), so a campaign worker inherits the CoW
// machinery wholesale: the worker prepares the group's shared world
// once and forks its (fps, height) cells from it. The unit payload is
// the group's encoded CellRunOutcome vector; merging payloads in unit
// order reproduces run_sweep_grid_shared's grid exactly, so a resumed
// campaign's BENCH json and digest match an uninterrupted run byte for
// byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/coordinator.hpp"
#include "net/cc.hpp"
#include "runner/warm_sweep.hpp"

namespace mvqoe::campaign {

/// A serializable sweep grid description (the subset of the bench
/// proto-spec a campaign can checkpoint and resume).
struct SweepCampaignSpec {
  /// Paper scenario family ("fig09", "fig16", ...).
  std::string family = "fig16";
  int duration_s = 16;
  /// Organic background-app churn in the shared world phase.
  int organic_apps = 0;
  std::vector<mem::PressureLevel> states = {mem::PressureLevel::Normal};
  std::vector<int> fps = {24, 48, 60};
  std::vector<int> heights = {240, 360, 480, 720, 1080};
  int runs = 1;
  std::uint64_t seed = 5;
  /// Memory reclaim/kill policy every world in the grid runs. Baseline
  /// (the default) encodes to nothing, so historical checkpoint
  /// fingerprints are unchanged.
  mem::MemPolicySpec mem_policy;
  /// Link congestion controller every world in the grid runs. The fifo
  /// default likewise encodes to nothing.
  net::NetSpec net;
  /// Forked video-phase workers inside each group worker.
  int group_workers = 1;
};

/// Units are (state, run) groups in state-major order:
/// unit u -> (states[u / runs], run u % runs).
std::uint64_t sweep_total_units(const SweepCampaignSpec& spec);

/// Canonical wire encoding (checkpoint config) and its fingerprint.
/// group_workers is excluded — like --jobs it may differ across
/// resumes without changing the results.
std::string encode_sweep_config(const SweepCampaignSpec& spec);
SweepCampaignSpec decode_sweep_config(const std::string& bytes);
std::uint64_t sweep_config_fingerprint(const SweepCampaignSpec& spec);

/// Read a checkpoint file and reconstruct the sweep spec it was
/// recorded under (--resume without re-specifying the grid).
SweepCampaignSpec load_sweep_resume_config(const std::string& path);

struct SweepCampaignResult {
  /// The run_sweep_grid_shared-shaped grid (state-major cells, per-cell
  /// aggregates in run order). Valid when `campaign.complete`; a
  /// degraded campaign leaves the missing groups' runs counted as
  /// failures in their cells.
  std::vector<runner::SweepCellResult> cells;
  /// Order-sensitive digest over the completed unit payloads.
  std::uint64_t digest = 0;
  CampaignResult campaign;
};

/// Run (or resume) the sweep grid under the coordinator.
/// `campaign.config` / `campaign.fingerprint` are filled in from `spec`.
SweepCampaignResult run_sweep_campaign(const SweepCampaignSpec& spec, CampaignOptions campaign);

}  // namespace mvqoe::campaign
