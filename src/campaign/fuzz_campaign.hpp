// Multi-process fuzz campaigns: check/harness fuzzing on top of the
// campaign coordinator (DESIGN.md §13).
//
// One campaign unit = one fuzz run. The worker executes
// check::execute_fuzz_run and ships the encoded RunRecord back as the
// unit payload; the coordinator checkpoints payloads per shard, so a
// killed campaign resumes with the completed runs' records intact and
// the final summary — including the jobs-invariant digest — is
// byte-identical to an uninterrupted serial run.
//
// The checkpoint stores the canonical encoding of the FuzzOptions that
// produced it (minus --jobs/--procs, which may legally differ between
// the original and resumed invocations) plus its fingerprint; --resume
// reconstructs the options from the blob and refuses fingerprint
// mismatches, so a checkpoint can never silently continue under a
// different campaign configuration.
#pragma once

#include <cstdint>
#include <string>

#include "campaign/coordinator.hpp"
#include "check/harness.hpp"

namespace mvqoe::campaign {

/// Canonical wire encoding of the digest-relevant FuzzOptions (seed,
/// runs, generator, check options, perturb hooks — everything except
/// the parallelism knobs). Stored verbatim in the checkpoint.
std::string encode_fuzz_config(const check::FuzzOptions& opts);
check::FuzzOptions decode_fuzz_config(const std::string& bytes);

/// StateHash over the canonical encoding.
std::uint64_t fuzz_config_fingerprint(const check::FuzzOptions& opts);

/// Read a checkpoint file and reconstruct the FuzzOptions it was
/// recorded under (for --resume without re-specifying flags). Throws
/// with a path-prefixed diagnostic on missing/corrupt checkpoints.
check::FuzzOptions load_fuzz_resume_config(const std::string& path);

struct FuzzCampaignResult {
  /// Valid when `campaign.complete`; for a degraded campaign the
  /// failure list covers the completed runs and `summary.digest` is 0
  /// (a partial campaign has no comparable digest).
  check::FuzzSummary summary;
  CampaignResult campaign;
};

/// Run (or resume) a fuzz campaign under the coordinator.
/// `campaign.config` / `campaign.fingerprint` are filled in from
/// `fuzz`; `fuzz.jobs` is ignored.
FuzzCampaignResult run_fuzz_campaign(const check::FuzzOptions& fuzz, CampaignOptions campaign);

}  // namespace mvqoe::campaign
