#include "campaign/sweep_campaign.hpp"

#include <stdexcept>
#include <utility>

#include "snapshot/bytes.hpp"
#include "snapshot/digest.hpp"

namespace mvqoe::campaign {

namespace {

/// The bench proto-spec the grid retargets per cell: one video session
/// on the family's device, optional organic churn in the world phase.
scenario::ScenarioSpec sweep_proto(const SweepCampaignSpec& spec) {
  scenario::ScenarioSpec proto;
  proto.family = spec.family;
  proto.organic_background_apps = spec.organic_apps;
  proto.mem_policy = spec.mem_policy;
  proto.net = spec.net;
  scenario::VideoWorkloadSpec session;
  session.duration_s = spec.duration_s;
  proto.workloads.emplace_back(std::move(session));
  return proto;
}

void validate(const SweepCampaignSpec& spec) {
  if (spec.runs <= 0) throw std::invalid_argument("campaign: sweep runs must be >= 1");
  if (spec.states.empty() || spec.fps.empty() || spec.heights.empty()) {
    throw std::invalid_argument("campaign: sweep grid has an empty axis");
  }
  if (spec.duration_s <= 0) {
    throw std::invalid_argument("campaign: sweep duration must be >= 1s");
  }
  mem::validate_policy_spec(spec.mem_policy);
  net::validate_net_spec(spec.net);
}

}  // namespace

std::uint64_t sweep_total_units(const SweepCampaignSpec& spec) {
  return static_cast<std::uint64_t>(spec.states.size()) * static_cast<std::uint64_t>(spec.runs);
}

std::string encode_sweep_config(const SweepCampaignSpec& spec) {
  snapshot::ByteWriter w;
  w.u32(1);  // config version
  w.str(spec.family);
  w.i32(spec.duration_s);
  w.i32(spec.organic_apps);
  w.u32(static_cast<std::uint32_t>(spec.states.size()));
  for (const auto state : spec.states) w.u8(static_cast<std::uint8_t>(state));
  w.u32(static_cast<std::uint32_t>(spec.fps.size()));
  for (const int f : spec.fps) w.i32(f);
  w.u32(static_cast<std::uint32_t>(spec.heights.size()));
  for (const int h : spec.heights) w.i32(h);
  w.i32(spec.runs);
  w.u64(spec.seed);
  // Optional tails (still config version 1), written only when
  // non-default so historical checkpoints keep their fingerprints. The
  // net tail follows the policy tail, so a non-fifo link forces the
  // policy spec out even at baseline (the decoder reads them in order).
  if (!spec.mem_policy.is_baseline() || !spec.net.is_default()) {
    mem::save_policy_spec(w, spec.mem_policy);
  }
  if (!spec.net.is_default()) net::save_net_spec(w, spec.net);
  return std::move(w).take();
}

SweepCampaignSpec decode_sweep_config(const std::string& bytes) {
  snapshot::ByteReader r(bytes);
  const std::uint32_t version = r.u32();
  if (version != 1) {
    throw std::runtime_error("campaign: unsupported sweep config version " +
                             std::to_string(version));
  }
  SweepCampaignSpec spec;
  spec.family = r.str();
  spec.duration_s = r.i32();
  spec.organic_apps = r.i32();
  spec.states.clear();
  const std::uint32_t state_count = r.u32();
  for (std::uint32_t i = 0; i < state_count; ++i) {
    const std::uint8_t state = r.u8();
    if (state > static_cast<std::uint8_t>(mem::PressureLevel::Critical)) {
      throw std::runtime_error("campaign: sweep config pressure state byte " +
                               std::to_string(state) + " is not a PressureLevel");
    }
    spec.states.push_back(static_cast<mem::PressureLevel>(state));
  }
  spec.fps.clear();
  const std::uint32_t fps_count = r.u32();
  for (std::uint32_t i = 0; i < fps_count; ++i) spec.fps.push_back(r.i32());
  spec.heights.clear();
  const std::uint32_t height_count = r.u32();
  for (std::uint32_t i = 0; i < height_count; ++i) spec.heights.push_back(r.i32());
  spec.runs = r.i32();
  spec.seed = r.u64();
  if (!r.done()) spec.mem_policy = mem::load_policy_spec(r);
  if (!r.done()) spec.net = net::load_net_spec(r);
  if (!r.done()) {
    throw std::runtime_error("campaign: trailing bytes after the sweep config");
  }
  validate(spec);
  return spec;
}

std::uint64_t sweep_config_fingerprint(const SweepCampaignSpec& spec) {
  snapshot::StateHash hash;
  hash.mix_bytes(encode_sweep_config(spec));
  return hash.value();
}

SweepCampaignSpec load_sweep_resume_config(const std::string& path) {
  const CheckpointState state = read_checkpoint_file(path);
  try {
    return decode_sweep_config(state.config);
  } catch (const std::exception& e) {
    throw std::runtime_error("campaign: " + path + ": " + e.what());
  }
}

SweepCampaignResult run_sweep_campaign(const SweepCampaignSpec& spec, CampaignOptions campaign) {
  validate(spec);
  campaign.config = encode_sweep_config(spec);
  campaign.fingerprint = sweep_config_fingerprint(spec);

  const scenario::ScenarioSpec proto = sweep_proto(spec);
  const int group_workers = spec.group_workers > 0 ? spec.group_workers : 1;
  const auto unit_fn = [&](std::uint64_t unit) {
    const auto state = spec.states.at(static_cast<std::size_t>(unit) /
                                      static_cast<std::size_t>(spec.runs));
    const int run = static_cast<int>(unit % static_cast<std::uint64_t>(spec.runs));
    const std::vector<runner::CellRunOutcome> group =
        runner::run_warm_group(proto, state, run, spec.fps, spec.heights, spec.seed,
                               group_workers);
    snapshot::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(group.size()));
    for (const runner::CellRunOutcome& outcome : group) {
      runner::encode_cell_outcome(w, outcome);
    }
    return std::move(w).take();
  };

  SweepCampaignResult result;
  result.campaign = run_campaign(sweep_total_units(spec), unit_fn, campaign);

  // Rebuild the run_sweep_grid_shared grid: state-major cells, each
  // aggregated over its runs in run order.
  const std::size_t cells_per_state = spec.fps.size() * spec.heights.size();
  for (const auto state : spec.states) {
    for (const int f : spec.fps) {
      for (const int h : spec.heights) {
        runner::SweepCellResult cell;
        cell.height = h;
        cell.fps = f;
        cell.state = state;
        cell.cell_seed =
            runner::sweep_video_seed(runner::sweep_group_seed(spec.seed, state, 0), h, f);
        result.cells.push_back(cell);
      }
    }
  }

  snapshot::StateHash digest;
  for (std::size_t unit = 0; unit < result.campaign.payloads.size(); ++unit) {
    const std::size_t state_index = unit / static_cast<std::size_t>(spec.runs);
    if (!result.campaign.completed[unit]) {
      // Degraded campaign: the whole group's runs count as failures.
      for (std::size_t c = 0; c < cells_per_state; ++c) {
        ++result.cells[state_index * cells_per_state + c].failures;
      }
      continue;
    }
    digest.mix(unit);
    digest.mix_bytes(result.campaign.payloads[unit]);
    snapshot::ByteReader r(result.campaign.payloads[unit]);
    const std::uint32_t count = r.u32();
    if (count != cells_per_state) {
      throw std::runtime_error("campaign: sweep unit " + std::to_string(unit) + " carries " +
                               std::to_string(count) + " cells, grid has " +
                               std::to_string(cells_per_state));
    }
    for (std::size_t c = 0; c < cells_per_state; ++c) {
      const runner::CellRunOutcome outcome = runner::decode_cell_outcome(r);
      runner::SweepCellResult& cell = result.cells[state_index * cells_per_state + c];
      if (outcome.ok) {
        cell.aggregate.add(outcome.outcome);
      } else {
        ++cell.failures;
      }
    }
    if (!r.done()) {
      throw std::runtime_error("campaign: trailing bytes in sweep unit " + std::to_string(unit));
    }
  }
  result.digest = result.campaign.complete ? digest.value() : 0;
  return result;
}

}  // namespace mvqoe::campaign
