// Sharded multi-process campaign coordinator (DESIGN.md §13).
//
// The coordinator partitions a campaign's units into contiguous shards,
// fork()s one supervised worker process per shard (up to `procs`
// concurrently), and collects per-unit result payloads over pipes. Each
// payload frame doubles as a heartbeat: a worker that sends nothing for
// heartbeat_timeout_ms is SIGKILLed and its shard retried with
// exponential backoff. Units a crashed attempt already delivered are
// kept — payloads are pure functions of the unit index — so a retry
// only re-runs the remainder. A shard that exhausts max_attempts is
// recorded as a Failed ShardOutcome and the campaign degrades instead
// of hanging or losing the other shards' work.
//
// Progress is checkpointed (campaign/checkpoint) after every shard
// completion with an atomic file replace, so kill -9 on the coordinator
// — or the whole machine going down — costs at most the in-flight
// shards; a resumed campaign re-runs only the missing units and, because
// units are deterministic and the digest folds them in index order,
// produces byte-identical campaign results.
//
// The worker body (`UnitFn`) runs in the forked child: it inherits the
// coordinator's prepared state copy-on-write (the same trick as the
// warm-start sweeps, runner/warm_sweep) and must not rely on threads —
// the coordinator is single-threaded precisely so fork() stays safe.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "campaign/checkpoint.hpp"

namespace mvqoe::campaign {

/// Runs in the worker process; returns the unit's result payload bytes.
/// Deterministic: the payload must be a pure function of `unit` (plus
/// the campaign configuration captured by the closure). Exceptions
/// escape into a worker exit that the coordinator retries.
using UnitFn = std::function<std::string(std::uint64_t unit)>;

/// Deterministic failure-injection hooks (the campaign counterpart of
/// the fuzzer's --perturb-run): crash or hang a worker at a chosen unit
/// for the first `*_attempts` shard attempts, or SIGKILL the
/// coordinator itself right after its Nth progress checkpoint.
struct TestHooks {
  std::int64_t abort_unit = -1;
  int abort_attempts = 0;     // shard attempts (1-based) that crash
  int abort_signal = SIGKILL;
  std::int64_t hang_unit = -1;
  int hang_attempts = 0;      // shard attempts that hang (heartbeat test)
  int kill_after_checkpoints = 0;  // 0 = disabled
};

struct CampaignOptions {
  /// Concurrent worker processes (<= 0: hardware concurrency).
  int procs = 1;
  /// Units per shard — the granularity of crash isolation and retry.
  std::size_t shard_size = 8;
  /// Total attempts per shard (first run + retries).
  int max_attempts = 3;
  /// A worker silent for this long is declared hung and SIGKILLed.
  int heartbeat_timeout_ms = 120000;
  /// Relaunch delay after a crashed attempt; doubles per further retry.
  int backoff_ms = 100;
  /// Checkpoint file ("" = run without checkpointing).
  std::string state_path;
  /// Opaque app configuration stored in the checkpoint for --resume.
  std::string config;
  /// Fingerprint of `config`; a resume with a different fingerprint is
  /// rejected loudly.
  std::uint64_t fingerprint = 0;
  /// Load state_path and run only the units it is missing.
  bool resume = false;
  /// Polled between I/O waits; when it goes nonzero the coordinator
  /// kills its workers, flushes the checkpoint and returns with
  /// interrupted == true (see campaign/signal.hpp).
  const volatile std::sig_atomic_t* interrupt = nullptr;
  /// Invoked in the coordinator process as (units_done, total_units)
  /// each time a unit's payload lands — including units restored from a
  /// resumed checkpoint (reported once, up front). Never called from
  /// worker processes; keep it cheap, it runs on the supervision loop.
  std::function<void(std::uint64_t, std::uint64_t)> progress;
  TestHooks hooks;
};

struct CampaignResult {
  /// payloads[i] is unit i's result; meaningful iff completed[i].
  std::vector<std::string> payloads;
  std::vector<bool> completed;
  /// Cumulative shard supervision history (including resumed-from runs).
  std::vector<ShardOutcome> shards;
  std::uint64_t units_done = 0;
  std::uint64_t units_from_checkpoint = 0;
  bool complete = false;
  bool interrupted = false;
  int procs_used = 1;
};

/// Execute `total_units` units of `fn` under supervision. Throws on
/// unusable checkpoints (missing/corrupt/fingerprint mismatch) and on
/// setup-level failures; per-shard failures degrade into ShardOutcomes.
CampaignResult run_campaign(std::uint64_t total_units, const UnitFn& fn,
                            const CampaignOptions& opts);

}  // namespace mvqoe::campaign
