// Throttled stderr progress meter for long-running tools.
//
// Paints one line in place:
//   <label>: 12345/100000 (12.3%)  8456/s  ETA 0:10
// Repaints at most every 200 ms (plus always on the final update) so a
// million-unit campaign does not melt the terminal, and rates are
// measured from the first observed update — a resume reports its
// checkpointed units once, up front, and that bulk must not inflate the
// units/sec estimate for the work that actually remains.
//
// Display only: the meter never feeds back into execution, so enabling
// --progress cannot perturb digests or payload bytes.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>

namespace mvqoe::campaign {

class ProgressMeter {
 public:
  explicit ProgressMeter(const char* label, std::FILE* out = stderr) : label_(label), out_(out) {}

  /// Report `done` of `total` units. Safe to call at any frequency.
  void update(std::uint64_t done, std::uint64_t total) {
    const auto now = Clock::now();
    if (!started_) {
      started_ = true;
      base_done_ = done;
      base_time_ = now;
    }
    const bool final = total > 0 && done >= total;
    if (!final && painted_ &&
        now - last_paint_ < std::chrono::milliseconds(200)) {
      return;
    }
    last_paint_ = now;
    painted_ = true;

    const double pct = total > 0 ? 100.0 * static_cast<double>(done) / static_cast<double>(total)
                                 : 0.0;
    const double elapsed = std::chrono::duration<double>(now - base_time_).count();
    const double rate =
        elapsed > 0.0 ? static_cast<double>(done - base_done_) / elapsed : 0.0;
    std::fprintf(out_, "\r%s: %llu/%llu (%.1f%%)", label_,
                 static_cast<unsigned long long>(done), static_cast<unsigned long long>(total),
                 pct);
    if (rate > 0.0) {
      std::fprintf(out_, "  %.0f/s  ETA ", rate);
      print_duration(static_cast<double>(total - done) / rate);
    }
    std::fprintf(out_, "    ");
    std::fflush(out_);
  }

  /// Terminate the in-place line (no-op if nothing was painted).
  void finish() {
    if (!painted_) return;
    std::fputc('\n', out_);
    std::fflush(out_);
    painted_ = false;
  }

  ~ProgressMeter() { finish(); }

  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

 private:
  using Clock = std::chrono::steady_clock;

  void print_duration(double seconds) {
    const auto total_s = static_cast<std::uint64_t>(seconds + 0.5);
    if (total_s >= 3600) {
      std::fprintf(out_, "%llu:%02llu:%02llu", static_cast<unsigned long long>(total_s / 3600),
                   static_cast<unsigned long long>((total_s / 60) % 60),
                   static_cast<unsigned long long>(total_s % 60));
    } else {
      std::fprintf(out_, "%llu:%02llu", static_cast<unsigned long long>(total_s / 60),
                   static_cast<unsigned long long>(total_s % 60));
    }
  }

  const char* label_;
  std::FILE* out_;
  bool started_ = false;
  bool painted_ = false;
  std::uint64_t base_done_ = 0;
  Clock::time_point base_time_{};
  Clock::time_point last_paint_{};
};

}  // namespace mvqoe::campaign
