#include "campaign/coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "runner/batch.hpp"
#include "runner/ipc.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <poll.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#define MVQOE_CAMPAIGN_FORK 1
#else
#define MVQOE_CAMPAIGN_FORK 0
#endif

namespace mvqoe::campaign {
namespace {

using Clock = std::chrono::steady_clock;

// Worker -> coordinator wire protocol, one byte stream per shard attempt:
//   'R' u64(unit) u64(len) payload   — one completed unit (heartbeat)
//   'D'                              — shard finished cleanly
constexpr char kRecordFrame = 'R';
constexpr char kDoneFrame = 'D';
constexpr std::size_t kRecordHeader = 1 + 8 + 8;

std::uint64_t read_u64le(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

void append_u64le(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/// One contiguous slice of the campaign's missing units, tracked across
/// retry attempts. `pending` shrinks as record frames arrive, so a
/// retried shard only re-runs what the crashed attempt never delivered.
struct Shard {
  std::uint64_t first_unit = 0;
  std::uint64_t unit_count = 0;
  std::vector<std::uint64_t> pending;
  int attempts = 0;
  Clock::time_point eligible_at{};
  std::string last_error;
  bool running = false;
  bool done = false;
  bool failed = false;
};

}  // namespace

CampaignResult run_campaign(std::uint64_t total_units, const UnitFn& fn,
                            const CampaignOptions& opts) {
  if (opts.shard_size == 0) throw std::invalid_argument("campaign: shard_size must be >= 1");
  if (opts.max_attempts < 1) throw std::invalid_argument("campaign: max_attempts must be >= 1");

  CampaignResult result;
  result.procs_used = opts.procs > 0 ? opts.procs : runner::resolve_jobs(0);
  result.payloads.resize(total_units);
  result.completed.assign(total_units, false);

  if (opts.resume) {
    if (opts.state_path.empty()) {
      throw std::invalid_argument("campaign: resume requires a checkpoint path");
    }
    CheckpointState state = read_checkpoint_file(opts.state_path);
    if (state.fingerprint != opts.fingerprint) {
      throw std::runtime_error("campaign: " + opts.state_path +
                               " was recorded under a different campaign configuration "
                               "(fingerprint mismatch) — refusing to resume");
    }
    if (state.total_units != total_units) {
      throw std::runtime_error("campaign: " + opts.state_path + " tracks " +
                               std::to_string(state.total_units) + " units, campaign has " +
                               std::to_string(total_units));
    }
    for (auto& [index, payload] : state.units) {
      result.payloads[index] = std::move(payload);
      result.completed[index] = true;
      ++result.units_from_checkpoint;
    }
    result.shards = std::move(state.shards);
  }

  std::uint64_t units_landed = result.units_from_checkpoint;
  const auto report_progress = [&] {
    if (opts.progress) opts.progress(units_landed, total_units);
  };
  if (opts.resume && units_landed > 0) report_progress();

  // Partition the missing units into contiguous shards.
  std::vector<Shard> shards;
  {
    std::vector<std::uint64_t> missing;
    for (std::uint64_t i = 0; i < total_units; ++i) {
      if (!result.completed[i]) missing.push_back(i);
    }
    const auto now = Clock::now();
    for (std::size_t off = 0; off < missing.size(); off += opts.shard_size) {
      Shard shard;
      const std::size_t end = std::min(off + opts.shard_size, missing.size());
      shard.pending.assign(missing.begin() + static_cast<std::ptrdiff_t>(off),
                           missing.begin() + static_cast<std::ptrdiff_t>(end));
      shard.first_unit = shard.pending.front();
      shard.unit_count = shard.pending.size();
      shard.eligible_at = now;
      shards.push_back(std::move(shard));
    }
  }

  int progress_flushes = 0;
  const auto flush_checkpoint = [&](bool progress) {
    if (opts.state_path.empty()) return;
    CheckpointState state;
    state.fingerprint = opts.fingerprint;
    state.config = opts.config;
    state.total_units = total_units;
    for (std::uint64_t i = 0; i < total_units; ++i) {
      if (result.completed[i]) state.units.emplace_back(i, result.payloads[i]);
    }
    state.shards = result.shards;
    if (!write_checkpoint_file(opts.state_path, state)) {
      throw std::runtime_error("campaign: cannot write checkpoint " + opts.state_path);
    }
#if MVQOE_CAMPAIGN_FORK
    if (progress && opts.hooks.kill_after_checkpoints > 0 &&
        ++progress_flushes == opts.hooks.kill_after_checkpoints) {
      // Test hook: die exactly like a machine crash — no unwinding, no
      // atexit, workers orphaned. The checkpoint just written is what a
      // resume finds.
      ::raise(SIGKILL);
    }
#else
    (void)progress;
    (void)progress_flushes;
#endif
  };

  const auto record_outcome = [&](Shard& shard, ShardStatus status) {
    ShardOutcome outcome;
    outcome.first_unit = shard.first_unit;
    outcome.unit_count = shard.unit_count;
    outcome.attempts = shard.attempts;
    outcome.status = status;
    if (status == ShardStatus::Failed) outcome.error = shard.last_error;
    result.shards.push_back(std::move(outcome));
  };

  // Fresh campaigns establish the checkpoint up front so an early kill
  // still leaves a resumable (empty) state file.
  if (!opts.resume) flush_checkpoint(false);

  const auto interrupted = [&] { return opts.interrupt != nullptr && *opts.interrupt != 0; };

#if MVQOE_CAMPAIGN_FORK
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
    std::size_t shard = 0;
    std::string buffer;
    Clock::time_point last_activity{};
    bool saw_done = false;
    bool protocol_error = false;
  };
  std::vector<Worker> workers;

  // Deliver one record frame's payload and retire the unit from its shard.
  const auto deliver = [&](Shard& shard, std::uint64_t unit, std::string payload) {
    if (unit >= total_units) return;
    if (!result.completed[unit]) {
      result.payloads[unit] = std::move(payload);
      result.completed[unit] = true;
      ++units_landed;
      report_progress();
    }
    const auto it = std::find(shard.pending.begin(), shard.pending.end(), unit);
    if (it != shard.pending.end()) shard.pending.erase(it);
  };

  const auto parse_frames = [&](Worker& w) {
    Shard& shard = shards[w.shard];
    for (;;) {
      if (w.buffer.empty()) return;
      if (w.buffer[0] == kDoneFrame) {
        w.saw_done = true;
        w.buffer.erase(0, 1);
        continue;
      }
      if (w.buffer[0] != kRecordFrame) {
        w.protocol_error = true;
        return;
      }
      if (w.buffer.size() < kRecordHeader) return;
      const std::uint64_t unit = read_u64le(w.buffer.data() + 1);
      const std::uint64_t len = read_u64le(w.buffer.data() + 9);
      if (w.buffer.size() < kRecordHeader + len) return;
      deliver(shard, unit, w.buffer.substr(kRecordHeader, static_cast<std::size_t>(len)));
      w.buffer.erase(0, kRecordHeader + static_cast<std::size_t>(len));
    }
  };

  // The worker body: run the shard's pending units in order, stream each
  // payload back, then announce completion. Runs in the forked child —
  // it must reach the pipe or _exit, never unwind into the coordinator.
  const auto run_worker = [&](const std::vector<std::uint64_t>& units, int attempt,
                              int fd) -> void {
    for (const std::uint64_t unit : units) {
      if (opts.hooks.abort_unit >= 0 &&
          static_cast<std::int64_t>(unit) == opts.hooks.abort_unit &&
          attempt <= opts.hooks.abort_attempts) {
        ::raise(opts.hooks.abort_signal);
        ::_exit(86);  // reached only if the signal was ignorable
      }
      if (opts.hooks.hang_unit >= 0 && static_cast<std::int64_t>(unit) == opts.hooks.hang_unit &&
          attempt <= opts.hooks.hang_attempts) {
        for (;;) {
          struct timespec ts = {0, 50 * 1000 * 1000};
          ::nanosleep(&ts, nullptr);
        }
      }
      std::string payload;
      try {
        payload = fn(unit);
      } catch (...) {
        ::_exit(3);  // unit threw; the coordinator retries the shard
      }
      std::string frame;
      frame.reserve(kRecordHeader + payload.size());
      frame.push_back(kRecordFrame);
      append_u64le(frame, unit);
      append_u64le(frame, payload.size());
      frame += payload;
      if (!runner::write_all(fd, frame)) ::_exit(4);  // coordinator gone
    }
    const char done = kDoneFrame;
    runner::write_all(fd, std::string_view(&done, 1));
    ::close(fd);
    ::_exit(0);
  };

  const auto attempt_failed = [&](Shard& shard, std::string error) {
    shard.running = false;
    shard.last_error = std::move(error);
    if (shard.pending.empty()) {
      // Every unit arrived before the attempt died (e.g. killed between
      // the last record and DONE) — the shard's work is complete.
      shard.done = true;
      record_outcome(shard, ShardStatus::Completed);
      flush_checkpoint(true);
      return;
    }
    if (shard.attempts >= opts.max_attempts) {
      shard.failed = true;
      record_outcome(shard, ShardStatus::Failed);
      flush_checkpoint(true);
      return;
    }
    const int exponent = std::min(shard.attempts - 1, 16);
    shard.eligible_at =
        Clock::now() + std::chrono::milliseconds(static_cast<long long>(opts.backoff_ms)
                                                 << exponent);
  };

  // Reap one worker whose pipe hit EOF (exit or kill), deciding shard fate.
  const auto worker_finished = [&](Worker& w) {
    int status = 0;
    ::waitpid(w.pid, &status, 0);
    ::close(w.fd);
    Shard& shard = shards[w.shard];
    shard.running = false;
    if (shard.pending.empty()) {
      shard.done = true;
      record_outcome(shard, ShardStatus::Completed);
      flush_checkpoint(true);
      return;
    }
    std::string error;
    if (w.protocol_error) {
      error = "worker emitted a malformed frame";
    } else if (WIFSIGNALED(status)) {
      error = "worker killed by signal " + std::to_string(WTERMSIG(status));
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      error = "worker exited with code " + std::to_string(WEXITSTATUS(status)) +
              " before completing its shard";
    } else {
      error = "worker closed its pipe with " + std::to_string(shard.pending.size()) +
              " units still pending";
    }
    attempt_failed(shard, std::move(error));
  };

  const auto kill_all_workers = [&] {
    for (Worker& w : workers) {
      ::kill(w.pid, SIGKILL);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      ::close(w.fd);
    }
    workers.clear();
  };

  const auto shards_open = [&] {
    return std::any_of(shards.begin(), shards.end(),
                       [](const Shard& s) { return !s.done && !s.failed; });
  };

  try {
    while (shards_open() || !workers.empty()) {
      if (interrupted()) {
        kill_all_workers();
        result.interrupted = true;
        flush_checkpoint(false);
        break;
      }

      // Launch eligible shards into free worker slots.
      const auto now = Clock::now();
      for (std::size_t s = 0; s < shards.size(); ++s) {
        if (workers.size() >= static_cast<std::size_t>(result.procs_used)) break;
        Shard& shard = shards[s];
        if (shard.done || shard.failed || shard.running || shard.eligible_at > now) continue;
        int fds[2];
        if (::pipe(fds) != 0) {
          ++shard.attempts;
          attempt_failed(shard, "pipe() failed");
          continue;
        }
        ++shard.attempts;
        const pid_t pid = ::fork();
        if (pid < 0) {
          ::close(fds[0]);
          ::close(fds[1]);
          attempt_failed(shard, "fork() failed");
          continue;
        }
        if (pid == 0) {
          ::close(fds[0]);
          for (const Worker& other : workers) ::close(other.fd);
          run_worker(shard.pending, shard.attempts, fds[1]);
          ::_exit(0);  // unreachable
        }
        ::close(fds[1]);
        Worker w;
        w.pid = pid;
        w.fd = fds[0];
        w.shard = s;
        w.last_activity = Clock::now();
        workers.push_back(std::move(w));
        shard.running = true;
      }

      if (workers.empty()) {
        if (!shards_open()) break;
        // Every open shard is backing off — sleep a tick.
        struct timespec ts = {0, 10 * 1000 * 1000};
        ::nanosleep(&ts, nullptr);
        continue;
      }

      std::vector<struct pollfd> fds(workers.size());
      for (std::size_t i = 0; i < workers.size(); ++i) {
        fds[i] = {workers[i].fd, POLLIN, 0};
      }
      const int rc = ::poll(fds.data(), fds.size(), 50);
      if (rc < 0 && errno != EINTR) {
        kill_all_workers();
        throw std::runtime_error("campaign: poll() failed");
      }

      const auto after = Clock::now();
      std::vector<std::size_t> finished;
      for (std::size_t i = 0; i < workers.size(); ++i) {
        Worker& w = workers[i];
        bool eof = false;
        if (rc > 0 && (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          char buf[65536];
          const ssize_t n = ::read(w.fd, buf, sizeof(buf));
          if (n > 0) {
            w.buffer.append(buf, static_cast<std::size_t>(n));
            w.last_activity = after;
            parse_frames(w);
            if (w.protocol_error) {
              ::kill(w.pid, SIGKILL);
              eof = true;  // reap below; remaining pipe data is garbage
            }
          } else if (n == 0 || (n < 0 && errno != EINTR && errno != EAGAIN)) {
            eof = true;
          }
        }
        if (!eof &&
            after - w.last_activity > std::chrono::milliseconds(opts.heartbeat_timeout_ms)) {
          // Hung worker: SIGKILL it, then salvage whatever frames it
          // managed to send before stalling.
          ::kill(w.pid, SIGKILL);
          w.buffer += runner::read_all(w.fd);
          parse_frames(w);
          int status = 0;
          ::waitpid(w.pid, &status, 0);
          ::close(w.fd);
          attempt_failed(shards[w.shard],
                         "heartbeat timeout: worker silent for over " +
                             std::to_string(opts.heartbeat_timeout_ms) + "ms (SIGKILLed)");
          finished.push_back(i);
          continue;
        }
        if (eof) {
          w.buffer += runner::read_all(w.fd);  // drain anything past the last poll
          parse_frames(w);
          worker_finished(w);
          finished.push_back(i);
        }
      }
      for (auto it = finished.rbegin(); it != finished.rend(); ++it) {
        workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(*it));
      }
    }
  } catch (...) {
    kill_all_workers();
    throw;
  }
#else
  // No fork(): degrade to supervised in-process execution. Crash
  // isolation is gone (a crashing unit takes the campaign with it) but
  // checkpoints, retry-on-exception, shard outcomes and resume behave
  // identically. The crash/hang test hooks need processes and are
  // ignored here.
  for (Shard& shard : shards) {
    if (result.interrupted) break;
    bool give_up = false;
    while (!shard.pending.empty() && !give_up) {
      ++shard.attempts;
      try {
        while (!shard.pending.empty()) {
          if (interrupted()) {
            result.interrupted = true;
            break;
          }
          const std::uint64_t unit = shard.pending.front();
          result.payloads[unit] = fn(unit);
          result.completed[unit] = true;
          shard.pending.erase(shard.pending.begin());
          ++units_landed;
          report_progress();
        }
      } catch (const std::exception& e) {
        shard.last_error = std::string("unit threw: ") + e.what();
        if (shard.attempts >= opts.max_attempts) give_up = true;
      } catch (...) {
        shard.last_error = "unit threw: unknown exception";
        if (shard.attempts >= opts.max_attempts) give_up = true;
      }
      if (result.interrupted) break;
    }
    if (result.interrupted) {
      flush_checkpoint(false);
      break;
    }
    if (shard.pending.empty()) {
      shard.done = true;
      record_outcome(shard, ShardStatus::Completed);
    } else {
      shard.failed = true;
      record_outcome(shard, ShardStatus::Failed);
    }
    flush_checkpoint(true);
  }
#endif

  result.units_done = static_cast<std::uint64_t>(
      std::count(result.completed.begin(), result.completed.end(), true));
  result.complete = result.units_done == total_units;
  return result;
}

}  // namespace mvqoe::campaign
