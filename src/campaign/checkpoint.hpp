// Campaign progress checkpoints (the CAMP section of an MVQS blob).
//
// A campaign is a set of independently executable units (fuzz runs,
// sweep groups) whose per-unit result payloads are pure functions of the
// unit index and the campaign configuration. The checkpoint stores the
// configuration (opaque bytes + fingerprint), every completed unit's
// payload, and the cumulative shard supervision history — everything a
// later process needs to resume exactly where a killed campaign stopped
// and still produce the same campaign digest as an uninterrupted run
// (DESIGN.md §13).
//
// Checkpoints are written via Snapshot::write_file, which is atomic
// (temp + rename), so a kill -9 mid-flush leaves the previous complete
// checkpoint on disk, never a truncated one.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "snapshot/blob.hpp"

namespace mvqoe::campaign {

inline constexpr std::uint32_t kCampaignTag = snapshot::tag("CAMP");

enum class ShardStatus : std::uint8_t {
  Completed = 0,
  /// The shard exhausted its retry budget; its units are missing from
  /// the campaign and `error` records the last attempt's failure.
  Failed = 1,
};

/// Structured outcome of one shard's supervision: how many attempts it
/// took, and whether the campaign got its units in the end. A Failed
/// shard degrades the campaign (exit code 3) instead of sinking it.
struct ShardOutcome {
  std::uint64_t first_unit = 0;
  std::uint64_t unit_count = 0;
  int attempts = 0;
  ShardStatus status = ShardStatus::Completed;
  std::string error;
};

const char* to_string(ShardStatus status) noexcept;

struct CheckpointState {
  /// Guards resume compatibility: derived from the config bytes, so a
  /// checkpoint can never silently resume under different parameters.
  std::uint64_t fingerprint = 0;
  /// Opaque application configuration (e.g. the encoded FuzzOptions) —
  /// lets `--resume <state.mvqs>` reconstruct the campaign without
  /// repeating the original flags.
  std::string config;
  std::uint64_t total_units = 0;
  /// Completed unit payloads, in ascending unit order.
  std::vector<std::pair<std::uint64_t, std::string>> units;
  /// Cumulative shard history across every invocation of the campaign.
  std::vector<ShardOutcome> shards;
};

snapshot::Snapshot save_checkpoint(const CheckpointState& state);
CheckpointState load_checkpoint(const snapshot::Snapshot& blob);

/// Atomic write / diagnosed read of a checkpoint file. read throws with
/// the path and a parse-level reason on truncated or garbage input.
bool write_checkpoint_file(const std::string& path, const CheckpointState& state);
CheckpointState read_checkpoint_file(const std::string& path);

}  // namespace mvqoe::campaign
