#include "campaign/signal.hpp"

namespace mvqoe::campaign {

namespace {

volatile std::sig_atomic_t g_interrupt = 0;

void on_signal(int signo) { g_interrupt = signo; }

using Handler = void (*)(int);
Handler g_prev_int = SIG_DFL;
Handler g_prev_term = SIG_DFL;

}  // namespace

InterruptGuard::InterruptGuard() {
  g_interrupt = 0;
  g_prev_int = std::signal(SIGINT, on_signal);
  g_prev_term = std::signal(SIGTERM, on_signal);
}

InterruptGuard::~InterruptGuard() {
  std::signal(SIGINT, g_prev_int == SIG_ERR ? SIG_DFL : g_prev_int);
  std::signal(SIGTERM, g_prev_term == SIG_ERR ? SIG_DFL : g_prev_term);
}

const volatile std::sig_atomic_t* InterruptGuard::flag() const noexcept { return &g_interrupt; }

bool InterruptGuard::interrupted() const noexcept { return g_interrupt != 0; }

int InterruptGuard::signal_number() const noexcept { return static_cast<int>(g_interrupt); }

int InterruptGuard::exit_code() const noexcept { return 128 + signal_number(); }

}  // namespace mvqoe::campaign
