#include "campaign/fuzz_campaign.hpp"

#include <stdexcept>
#include <utility>

#include "snapshot/bytes.hpp"
#include "snapshot/digest.hpp"

namespace mvqoe::campaign {

std::string encode_fuzz_config(const check::FuzzOptions& opts) {
  snapshot::ByteWriter w;
  w.u32(1);  // config version
  w.u64(opts.seed);
  w.i32(opts.runs);
  w.i32(opts.generator.max_videos);
  w.i32(opts.generator.min_duration_s);
  w.i32(opts.generator.max_duration_s);
  w.f64(opts.generator.fault_probability);
  w.f64(opts.generator.background_probability);
  w.f64(opts.generator.pressure_workload_probability);
  w.f64(opts.generator.organic_probability);
  w.b(opts.check.meta_determinism);
  w.b(opts.check.perturb_at.has_value());
  w.i64(opts.check.perturb_at ? *opts.check.perturb_at : 0);
  w.u64(opts.check.livelock_limit);
  w.i32(opts.perturb_run);
  w.i64(opts.perturb_offset);
  // Optional tails (still config version 1), written only when set so
  // historical checkpoints keep their fingerprints. The cc tail sits
  // after the policy tail, so a non-empty cc axis forces the policy
  // count out even when empty (the decoder reads them in order).
  const bool has_ccs = !opts.generator.ccs.empty();
  if (!opts.generator.policies.empty() || has_ccs) {
    w.u32(static_cast<std::uint32_t>(opts.generator.policies.size()));
    for (const std::string& name : opts.generator.policies) w.str(name);
  }
  if (has_ccs) {
    w.u32(static_cast<std::uint32_t>(opts.generator.ccs.size()));
    for (const std::string& name : opts.generator.ccs) w.str(name);
    w.f64(opts.generator.cross_traffic_probability);
  }
  return std::move(w).take();
}

check::FuzzOptions decode_fuzz_config(const std::string& bytes) {
  snapshot::ByteReader r(bytes);
  const std::uint32_t version = r.u32();
  if (version != 1) {
    throw std::runtime_error("campaign: unsupported fuzz config version " +
                             std::to_string(version));
  }
  check::FuzzOptions opts;
  opts.seed = r.u64();
  opts.runs = r.i32();
  opts.generator.max_videos = r.i32();
  opts.generator.min_duration_s = r.i32();
  opts.generator.max_duration_s = r.i32();
  opts.generator.fault_probability = r.f64();
  opts.generator.background_probability = r.f64();
  opts.generator.pressure_workload_probability = r.f64();
  opts.generator.organic_probability = r.f64();
  opts.check.meta_determinism = r.b();
  const bool has_perturb_at = r.b();
  const sim::Time perturb_at = r.i64();
  if (has_perturb_at) opts.check.perturb_at = perturb_at;
  opts.check.livelock_limit = r.u64();
  opts.perturb_run = r.i32();
  opts.perturb_offset = r.i64();
  if (!r.done()) {
    const std::uint32_t policy_count = r.u32();
    opts.generator.policies.reserve(policy_count);
    for (std::uint32_t i = 0; i < policy_count; ++i) {
      opts.generator.policies.push_back(r.str());
    }
  }
  if (!r.done()) {
    const std::uint32_t cc_count = r.u32();
    opts.generator.ccs.reserve(cc_count);
    for (std::uint32_t i = 0; i < cc_count; ++i) {
      opts.generator.ccs.push_back(r.str());
    }
    opts.generator.cross_traffic_probability = r.f64();
  }
  if (!r.done()) {
    throw std::runtime_error("campaign: trailing bytes after the fuzz config");
  }
  if (opts.runs < 0) {
    throw std::runtime_error("campaign: fuzz config has a negative run count");
  }
  return opts;
}

std::uint64_t fuzz_config_fingerprint(const check::FuzzOptions& opts) {
  snapshot::StateHash hash;
  hash.mix_bytes(encode_fuzz_config(opts));
  return hash.value();
}

check::FuzzOptions load_fuzz_resume_config(const std::string& path) {
  const CheckpointState state = read_checkpoint_file(path);
  try {
    return decode_fuzz_config(state.config);
  } catch (const std::exception& e) {
    throw std::runtime_error("campaign: " + path + ": " + e.what());
  }
}

FuzzCampaignResult run_fuzz_campaign(const check::FuzzOptions& fuzz, CampaignOptions campaign) {
  campaign.config = encode_fuzz_config(fuzz);
  campaign.fingerprint = fuzz_config_fingerprint(fuzz);

  const auto unit_fn = [&fuzz](std::uint64_t unit) {
    snapshot::ByteWriter w;
    check::encode_run_record(w, check::execute_fuzz_run(fuzz, unit));
    return std::move(w).take();
  };

  FuzzCampaignResult result;
  result.campaign =
      run_campaign(static_cast<std::uint64_t>(fuzz.runs), unit_fn, campaign);

  std::vector<check::RunRecord> records;
  records.reserve(static_cast<std::size_t>(result.campaign.units_done));
  for (std::size_t i = 0; i < result.campaign.payloads.size(); ++i) {
    if (!result.campaign.completed[i]) continue;
    snapshot::ByteReader r(result.campaign.payloads[i]);
    check::RunRecord record = check::decode_run_record(r);
    if (record.index != i) {
      throw std::runtime_error("campaign: unit " + std::to_string(i) +
                               " carries a record for run " + std::to_string(record.index));
    }
    records.push_back(std::move(record));
  }
  result.summary = check::summarize_records(fuzz, records);
  if (!result.campaign.complete) {
    // A partial campaign has no comparable jobs-invariant digest.
    result.summary.digest = 0;
    result.summary.runs = fuzz.runs;
  }
  return result;
}

}  // namespace mvqoe::campaign
