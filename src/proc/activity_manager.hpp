// Activity lifecycle on top of the memory manager: launching apps,
// foreground/background transitions, oom_adj assignment, and the cached
// process LRU whose length drives the trim-signal thresholds (paper §2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <memory>

#include "mem/memory_manager.hpp"
#include "proc/app_catalog.hpp"
#include "sim/engine.hpp"

namespace mvqoe::proc {

using ProcessId = mem::ProcessId;

class ActivityManager {
 public:
  explicit ActivityManager(mem::MemoryManager& memory);

  /// Register the always-on system processes and a baseline population of
  /// cached processes (the LRU that Android "tries to aggressively cache
  /// at all times"). `system_scale` stretches system footprints,
  /// `cached_count` sets the initial cached-LRU length.
  void boot(double system_scale, int cached_count);

  /// Launch an app: registers the process, allocates its heap, maps its
  /// code pages and puts it in the foreground. Allocation proceeds
  /// asynchronously through the memory manager.
  ProcessId launch(const AppSpec& app, std::function<void()> on_kill = nullptr);

  /// Append one trimmed process to the cached LRU without a foreground
  /// launch: the footprint boot() gives its baseline population, scaled
  /// to the system image. This is how organic background state (e.g. a
  /// fleet cohort's preloaded apps) enters a world — backgrounded apps
  /// accumulated over days, not six synchronous foreground launches.
  ProcessId add_cached(const AppSpec& app);

  /// Foreground/background transitions adjust oom_adj and LRU warmth.
  void move_to_background(ProcessId pid);
  void bring_to_foreground(ProcessId pid);
  /// User closes the app (voluntary exit, frees memory, no kill callback).
  void close(ProcessId pid);

  /// Android aggressively re-caches processes: after lmkd kills shrink
  /// the cached LRU, services and recently-used apps restart and re-enter
  /// it. Every `period`, if the cached count is below `target`, one
  /// trimmed process is respawned. This is what makes Moderate pressure a
  /// sustainable oscillating state (paper Fig 6) and produces the
  /// repeated kills of Fig 15 rather than a one-shot massacre.
  void enable_respawn(sim::Engine& engine, int target, sim::Time period = sim::sec(8));
  void disable_respawn();
  std::uint64_t respawn_count() const noexcept { return respawns_; }

  ProcessId foreground() const noexcept { return foreground_; }
  int cached_count() const noexcept { return memory_.registry().cached_count(); }
  const std::vector<ProcessId>& launched() const noexcept { return launched_; }
  /// System processes registered by boot(), in catalog order.
  const std::vector<ProcessId>& system_pids() const noexcept { return system_pids_; }

  /// Allocate a fresh pid (monotonic; survives kill/relaunch cycles).
  ProcessId next_pid() noexcept { return next_pid_++; }

  mem::MemoryManager& memory() noexcept { return memory_; }

  /// Serialize lifecycle state: pid counter, foreground, launched/system
  /// pid lists and respawn bookkeeping.
  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;

 private:
  void respawn_one();

  mem::MemoryManager& memory_;
  ProcessId next_pid_ = 1000;
  ProcessId foreground_ = 0;
  std::vector<ProcessId> launched_;
  std::vector<ProcessId> system_pids_;
  std::unique_ptr<sim::PeriodicTask> respawner_;
  double system_scale_ = 1.0;
  int respawn_target_ = 0;
  std::uint64_t respawns_ = 0;
  std::size_t respawn_cursor_ = 0;
};

}  // namespace mvqoe::proc
