#include "proc/app_catalog.hpp"

namespace mvqoe::proc {

using mem::pages_from_mb;

const std::vector<AppSpec>& top_free_apps() {
  static const std::vector<AppSpec> apps = {
      {"com.whatsapp", pages_from_mb(95), pages_from_mb(30), pages_from_mb(1) / 4, false},
      {"com.instagram", pages_from_mb(160), pages_from_mb(45), pages_from_mb(1), false},
      {"com.facebook", pages_from_mb(180), pages_from_mb(55), pages_from_mb(1), false},
      {"com.tiktok", pages_from_mb(190), pages_from_mb(50), pages_from_mb(2), false},
      {"com.snapchat", pages_from_mb(150), pages_from_mb(40), pages_from_mb(1), false},
      {"com.twitter", pages_from_mb(110), pages_from_mb(35), pages_from_mb(1) / 2, false},
      {"com.spotify", pages_from_mb(105), pages_from_mb(35), pages_from_mb(1) / 4, false},
      {"com.amazon.shopping", pages_from_mb(120), pages_from_mb(40), pages_from_mb(1) / 2, false},
      {"com.gmail", pages_from_mb(85), pages_from_mb(28), 0, false},
      {"com.maps", pages_from_mb(140), pages_from_mb(48), pages_from_mb(1), false},
      {"com.telegram", pages_from_mb(90), pages_from_mb(28), pages_from_mb(1) / 4, false},
      {"com.uber", pages_from_mb(100), pages_from_mb(32), pages_from_mb(1) / 2, false},
  };
  return apps;
}

const std::vector<AppSpec>& game_apps() {
  static const std::vector<AppSpec> games = {
      {"com.pubg.mobile", pages_from_mb(420), pages_from_mb(90), pages_from_mb(2), true},
      {"com.supercell.clashofclans", pages_from_mb(260), pages_from_mb(60), pages_from_mb(1), true},
      {"com.candycrush", pages_from_mb(200), pages_from_mb(45), pages_from_mb(1) / 2, true},
      {"com.freefire", pages_from_mb(380), pages_from_mb(85), pages_from_mb(2), true},
  };
  return games;
}

std::vector<SystemProcessSpec> system_processes(double scale) {
  auto scaled = [scale](std::int64_t mb) {
    return pages_from_mb(static_cast<std::int64_t>(static_cast<double>(mb) * scale));
  };
  return {
      {"system_server", scaled(110), scaled(40), mem::OomAdj::kForeground, false},
      {"surfaceflinger", scaled(35), scaled(12), mem::OomAdj::kForeground, false},
      {"com.android.systemui", scaled(60), scaled(24), mem::OomAdj::kVisible, false},
      {"media.codec", scaled(20), scaled(10), mem::OomAdj::kVisible, false},
      {"com.android.phone", scaled(28), scaled(12), mem::OomAdj::kPerceptible, false},
      {"com.android.launcher", scaled(55), scaled(20), mem::OomAdj::kVisible, true},
      {"com.android.inputmethod", scaled(30), scaled(12), mem::OomAdj::kPerceptible, true},
      {"com.google.gms", scaled(70), scaled(28), mem::OomAdj::kService, true},
  };
}

std::vector<AppSpec> baseline_cached_apps(int count) {
  std::vector<AppSpec> cached;
  const auto& pool = top_free_apps();
  for (int i = 0; i < count; ++i) {
    AppSpec app = pool[static_cast<std::size_t>(i) % pool.size()];
    app.name += ".cached" + std::to_string(i);
    // Cached processes have been trimmed: they hold roughly a third of
    // their launch heap.
    app.heap_pages /= 3;
    app.code_pages /= 2;
    app.growth_pages_per_sec = 0;
    cached.push_back(std::move(app));
  }
  return cached;
}

}  // namespace mvqoe::proc
