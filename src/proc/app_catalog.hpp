// Application footprint catalog.
//
// Two uses in the paper's methodology we reproduce:
//   * §4.3 "organic memory pressure": opening 8 background applications
//     "selected from the top free applications available on Google Play
//     Store" (no games) before starting the video.
//   * §3 field study: the population simulator launches apps from this
//     catalog according to each user's usage profile.
// Footprints are representative PSS figures for popular Android apps on
// low/mid-range devices (order tens to a couple hundred MB).
#pragma once

#include <string>
#include <vector>

#include "mem/types.hpp"

namespace mvqoe::proc {

struct AppSpec {
  std::string name;
  mem::Pages heap_pages = 0;        // anonymous memory on launch
  mem::Pages code_pages = 0;        // file-backed working set
  /// Heap growth while foreground, pages per second (browsing feeds,
  /// buffering media). Zero for mostly-static apps.
  mem::Pages growth_pages_per_sec = 0;
  bool is_game = false;
};

/// "Top free apps" style catalog (no games included in the first eight —
/// matching the paper's organic-pressure selection).
const std::vector<AppSpec>& top_free_apps();

/// Games (heavier), used only by the field-study usage model.
const std::vector<AppSpec>& game_apps();

/// Always-running system processes: system_server, surfaceflinger, media
/// services, IME, launcher... `scale` stretches footprints for larger-RAM
/// devices (vendors ship heavier system images on bigger devices).
struct SystemProcessSpec {
  std::string name;
  mem::Pages heap_pages = 0;
  mem::Pages code_pages = 0;
  int oom_adj = 0;
  bool killable = false;
};
std::vector<SystemProcessSpec> system_processes(double scale);

/// Baseline cached/empty processes Android keeps around after boot (the
/// LRU the trim thresholds count). More RAM retains more of them.
std::vector<AppSpec> baseline_cached_apps(int count);

}  // namespace mvqoe::proc
