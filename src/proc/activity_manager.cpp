#include "proc/activity_manager.hpp"

#include "snapshot/digest.hpp"

namespace mvqoe::proc {

ActivityManager::ActivityManager(mem::MemoryManager& memory) : memory_(memory) {}

void ActivityManager::boot(double system_scale, int cached_count) {
  system_scale_ = system_scale;
  for (const SystemProcessSpec& spec : system_processes(system_scale)) {
    const ProcessId pid = next_pid();
    system_pids_.push_back(pid);
    memory_.register_process(pid, spec.name, spec.oom_adj);
    memory_.registry().set_killable(pid, spec.killable);
    memory_.alloc_anon(pid, spec.heap_pages, 0, [this, pid, heap = spec.heap_pages](bool ok) {
      // System services keep about a third of their heap actively in use.
      if (ok) memory_.set_hot_pages(pid, heap / 3);
    });
    // Code plus cached resources (fonts, assets, databases): file-backed.
    memory_.map_file(pid, spec.code_pages + spec.heap_pages / 3, 0, nullptr);
  }
  for (AppSpec app : baseline_cached_apps(cached_count)) {
    // Cached footprints scale with the system image: Go-edition devices
    // retain much slimmer cached processes than flagship builds.
    app.heap_pages = static_cast<mem::Pages>(static_cast<double>(app.heap_pages) * system_scale);
    app.code_pages = static_cast<mem::Pages>(static_cast<double>(app.code_pages) * system_scale);
    const ProcessId pid = next_pid();
    memory_.register_process(pid, app.name, mem::OomAdj::kCached);
    memory_.alloc_anon(pid, app.heap_pages, 0, [this, pid, heap = app.heap_pages](bool ok) {
      if (ok) memory_.set_hot_pages(pid, heap / 10);
    });
    memory_.map_file(pid, app.code_pages + app.heap_pages / 3, 0, nullptr);
  }
}

ProcessId ActivityManager::launch(const AppSpec& app, std::function<void()> on_kill) {
  const ProcessId pid = next_pid();
  memory_.register_process(pid, app.name, mem::OomAdj::kForeground, std::move(on_kill));
  memory_.alloc_anon(pid, app.heap_pages, 0, [this, pid, heap = app.heap_pages](bool ok) {
    // A foreground app actively uses a large share of its heap.
    if (ok) memory_.set_hot_pages(pid, heap * 2 / 5);
  });
  memory_.map_file(pid, app.code_pages + app.heap_pages / 3, 0, nullptr);
  if (foreground_ != 0 && memory_.registry().alive(foreground_)) {
    move_to_background(foreground_);
  }
  foreground_ = pid;
  launched_.push_back(pid);
  return pid;
}

ProcessId ActivityManager::add_cached(const AppSpec& app) {
  AppSpec spec = app;
  spec.heap_pages =
      static_cast<mem::Pages>(static_cast<double>(spec.heap_pages) * system_scale_ / 3.0);
  spec.code_pages =
      static_cast<mem::Pages>(static_cast<double>(spec.code_pages) * system_scale_ / 2.0);
  const ProcessId pid = next_pid();
  memory_.register_process(pid, spec.name, mem::OomAdj::kCached);
  memory_.alloc_anon(pid, spec.heap_pages, 0, [this, pid, heap = spec.heap_pages](bool ok) {
    if (ok) memory_.set_hot_pages(pid, heap / 10);
  });
  memory_.map_file(pid, spec.code_pages + spec.heap_pages / 3, 0, nullptr);
  return pid;
}

void ActivityManager::move_to_background(ProcessId pid) {
  const mem::ProcessMem* process = memory_.registry().find(pid);
  if (process == nullptr) return;
  memory_.set_oom_adj(pid, mem::OomAdj::kCached);
  // A backgrounded app stops touching its heap: it becomes compressible.
  memory_.set_hot_pages(pid, (process->anon_resident + process->anon_swapped) / 20);
  if (foreground_ == pid) foreground_ = 0;
}

void ActivityManager::bring_to_foreground(ProcessId pid) {
  if (!memory_.registry().alive(pid)) return;
  if (foreground_ != 0 && foreground_ != pid && memory_.registry().alive(foreground_)) {
    move_to_background(foreground_);
  }
  memory_.set_oom_adj(pid, mem::OomAdj::kForeground);
  memory_.touch_lru(pid);
  if (const mem::ProcessMem* process = memory_.registry().find(pid)) {
    memory_.set_hot_pages(pid, (process->anon_resident + process->anon_swapped) * 2 / 5);
  }
  foreground_ = pid;
}

void ActivityManager::enable_respawn(sim::Engine& engine, int target, sim::Time period) {
  respawn_target_ = target;
  respawner_ = std::make_unique<sim::PeriodicTask>(engine, period, [this] { respawn_one(); });
  respawner_->start();
}

void ActivityManager::disable_respawn() { respawner_.reset(); }

void ActivityManager::respawn_one() {
  if (memory_.registry().cached_count() >= respawn_target_) return;
  // Don't restart processes into a memory hole: wait until reclaim has at
  // least kept the system above the min watermark with a little headroom.
  if (memory_.free_pages() < 2 * memory_.config().watermark_min) return;
  const auto& pool = top_free_apps();
  AppSpec app = pool[respawn_cursor_ % pool.size()];
  ++respawn_cursor_;
  app.name += ".respawn" + std::to_string(respawns_);
  const ProcessId pid = next_pid();
  memory_.register_process(pid, app.name, mem::OomAdj::kCached);
  // Restarted cached processes come back trimmed, scaled to the system
  // image like the boot-time cached population.
  const auto heap = static_cast<mem::Pages>(static_cast<double>(app.heap_pages) * system_scale_ / 3.0);
  const auto code = static_cast<mem::Pages>(static_cast<double>(app.code_pages) * system_scale_ / 2.0);
  memory_.alloc_anon(pid, heap, 0, nullptr);
  memory_.map_file(pid, code, 0, nullptr);
  ++respawns_;
}

void ActivityManager::close(ProcessId pid) {
  if (foreground_ == pid) foreground_ = 0;
  memory_.exit_process(pid);
}

void ActivityManager::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.u32(next_pid_);
  w.u32(foreground_);
  w.u64(launched_.size());
  for (const ProcessId pid : launched_) w.u32(pid);
  w.u64(system_pids_.size());
  for (const ProcessId pid : system_pids_) w.u32(pid);
  w.f64(system_scale_);
  w.i32(respawn_target_);
  w.u64(respawns_);
  w.u64(respawn_cursor_);
  w.b(respawner_ != nullptr && respawner_->running());
}

std::uint64_t ActivityManager::digest() const { return snapshot::state_digest(*this); }

}  // namespace mvqoe::proc
