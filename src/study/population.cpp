#include "study/population.hpp"

#include <algorithm>
#include <cmath>

namespace mvqoe::study {

core::DeviceProfile StudyDevice::profile() const {
  return core::generic_device(ram_mb, cores, freq_ghz);
}

const std::vector<std::string>& manufacturers() {
  static const std::vector<std::string> names = {
      "Samsung", "Xiaomi", "Huawei",   "Oppo",    "Vivo",    "Nokia",
      "Tecno",   "Infinix", "Motorola", "Realme", "OnePlus", "Google",
  };
  return names;
}

namespace {

/// Draw a 1-5 rating with a given mode; mass concentrates around it.
int draw_rating(stats::Rng& rng, int mode) {
  const double value = rng.normal(static_cast<double>(mode), 1.1);
  return static_cast<int>(std::clamp(std::lround(value), 1L, 5L));
}

}  // namespace

StudyDevice generate_study_device(int i, std::uint64_t seed) {
  // RAM mix: skewed to 2-4 GB as in the study (total device memory
  // "ranged from 1 GB to 8 GB").
  static const std::vector<double> ram_weights = {0.08, 0.24, 0.26, 0.24, 0.12, 0.06};
  static const std::int64_t ram_options[] = {1024, 2048, 3072, 4096, 6144, 8192};

  stats::Rng rng(stats::derive_seed(seed, static_cast<std::uint64_t>(i)));
  StudyDevice device;
  device.index = i;
  device.manufacturer =
      manufacturers()[static_cast<std::size_t>(rng.uniform_int(0, 11))];
  device.ram_mb = ram_options[rng.weighted_index(ram_weights)];
  // Core count / frequency by tier.
  if (device.ram_mb <= 1024) {
    device.cores = 4;
    device.freq_ghz = rng.uniform(1.1, 1.5);
  } else if (device.ram_mb <= 3072) {
    device.cores = rng.bernoulli(0.5) ? 4 : 8;
    device.freq_ghz = rng.uniform(1.4, 2.1);
  } else {
    device.cores = 8;
    device.freq_ghz = rng.uniform(1.8, 2.8);
  }
  // Interactive hours: lognormal, median ~18 h, long tail; the paper's
  // cleaning rule (> 10 h) then keeps ~60% of devices.
  device.interactive_hours = std::clamp(rng.lognormal(2.9, 0.8), 1.0, 90.0);

  UserProfile& user = device.user;
  // Fig 1: video streaming most frequent, then music, then games.
  user.rating_video = draw_rating(rng, 4);
  user.rating_music = draw_rating(rng, 3);
  user.rating_games = draw_rating(rng, 2);
  user.rating_multitask_1 = draw_rating(rng, 4);
  user.rating_multitask_2 = draw_rating(rng, 3);
  user.app_switches_per_minute = rng.uniform(0.5, 2.0);
  user.max_open_apps = 2 + user.rating_multitask_2;
  return device;
}

std::vector<StudyDevice> generate_population(int n, std::uint64_t seed) {
  std::vector<StudyDevice> devices;
  devices.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) devices.push_back(generate_study_device(i, seed));
  return devices;
}

core::DeviceProfile FleetFamily::profile() const {
  core::DeviceProfile device = core::generic_device(ram_mb, cores, freq_ghz);
  // Fleet templates boot a tier-scaled cached-app set instead of
  // generic_device's study calibration (8 + 2 per GB): a 1 GB
  // Go-edition build does not hold eight cached apps at boot, and
  // booting one into an immediate kill cascade costs ~10x a clean boot
  // for every world template. Session pressure still builds the honest
  // way, from cohort preloads and in-session app churn.
  const std::int64_t ram_gb = std::max<std::int64_t>(1, ram_mb / 1024);
  device.baseline_cached = static_cast<int>(std::clamp<std::int64_t>(2 * ram_gb, 2, 8));
  return device;
}

const std::vector<FleetFamily>& fleet_families() {
  // Weights mirror the study's RAM mix; names are tiers, not brands, so
  // the catalog stays orthogonal to manufacturers().
  static const std::vector<FleetFamily> families = {
      {"entry-1g", 1024, 4, 1.3, 0.08},   {"budget-2g", 2048, 4, 1.6, 0.24},
      {"budget-3g", 3072, 8, 1.8, 0.26},  {"mid-4g", 4096, 8, 2.0, 0.24},
      {"upper-6g", 6144, 8, 2.4, 0.12},   {"flagship-8g", 8192, 8, 2.8, 0.06},
  };
  return families;
}

}  // namespace mvqoe::study
