#include "study/device_sim.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "mem/memory_manager.hpp"
#include "stats/summary.hpp"
#include "proc/activity_manager.hpp"
#include "sim/engine.hpp"

namespace mvqoe::study {

double DeviceStudyResult::signals_per_hour(int level) const noexcept {
  return hours_logged > 0.0
             ? static_cast<double>(signals[static_cast<std::size_t>(level)]) / hours_logged
             : 0.0;
}

double DeviceStudyResult::total_signals_per_hour() const noexcept {
  return signals_per_hour(1) + signals_per_hour(2) + signals_per_hour(3);
}

double DeviceStudyResult::fraction_in_level(int level) const noexcept {
  const double total = hours_logged * 3600.0;
  return total > 0.0 ? seconds_in_level[static_cast<std::size_t>(level)] / total : 0.0;
}

double DeviceStudyResult::fraction_not_normal() const noexcept {
  return fraction_in_level(1) + fraction_in_level(2) + fraction_in_level(3);
}

namespace {

/// Reservoir sampler with a fixed capacity.
class Reservoir {
 public:
  Reservoir(std::vector<double>& sink, std::size_t capacity, stats::Rng& rng)
      : sink_(sink), capacity_(capacity), rng_(rng) {}

  void add(double value) {
    ++seen_;
    if (sink_.size() < capacity_) {
      sink_.push_back(value);
      return;
    }
    const auto slot = static_cast<std::uint64_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(seen_) - 1));
    if (slot < capacity_) sink_[static_cast<std::size_t>(slot)] = value;
  }

 private:
  std::vector<double>& sink_;
  std::size_t capacity_;
  stats::Rng& rng_;
  std::uint64_t seen_ = 0;
};

/// Streaming apps the usage model can run in the foreground; heavier than
/// the catalog average and growing while streaming.
const std::vector<proc::AppSpec>& media_apps() {
  using mem::pages_from_mb;
  static const std::vector<proc::AppSpec> apps = {
      {"com.youtube", pages_from_mb(185), pages_from_mb(55), pages_from_mb(3), false},
      {"com.netflix", pages_from_mb(170), pages_from_mb(50), pages_from_mb(2), false},
      {"com.spotify.play", pages_from_mb(110), pages_from_mb(35), pages_from_mb(1) / 2, false},
  };
  return apps;
}

}  // namespace

DeviceStudyResult simulate_device(const StudyDevice& device, std::uint64_t seed) {
  DeviceStudyResult result;
  result.device = device;

  sim::Engine engine;
  const core::DeviceProfile profile = device.profile();
  mem::MemoryManager memory(engine, profile.memory);
  proc::ActivityManager am(memory);
  am.boot(profile.system_scale, profile.baseline_cached);
  am.enable_respawn(engine, profile.baseline_cached);

  stats::Rng rng(stats::derive_seed(seed, static_cast<std::uint64_t>(device.index) + 7777));
  Reservoir util_reservoir(result.utilization_samples, 7200, rng);
  std::array<std::unique_ptr<Reservoir>, kLevels> avail_reservoirs;
  for (int level = 0; level < kLevels; ++level) {
    avail_reservoirs[static_cast<std::size_t>(level)] = std::make_unique<Reservoir>(
        result.available_mb_by_state[static_cast<std::size_t>(level)], 2000, rng);
  }

  // Signals: count every delivery of a non-Normal level.
  memory.subscribe_trim([&result](mem::PressureLevel level) {
    ++result.signals[static_cast<std::size_t>(level)];
  });

  // Per-app bookkeeping for foreground growth and user app choices.
  std::unordered_map<proc::ProcessId, proc::AppSpec> user_apps;
  std::vector<proc::ProcessId> open_order;

  const UserProfile& user = device.user;
  const double action_prob = user.app_switches_per_minute / 60.0;

  auto pick_app = [&]() -> proc::AppSpec {
    // Activity ratings weight the choice: video streaming first.
    const double video_w = static_cast<double>(user.rating_video);
    const double music_w = static_cast<double>(user.rating_music) * 0.5;
    const double game_w = static_cast<double>(user.rating_games) * 0.4;
    const double social_w = 4.0;
    const std::size_t kind = rng.weighted_index({video_w, music_w, game_w, social_w});
    switch (kind) {
      case 0: return media_apps()[static_cast<std::size_t>(rng.uniform_int(0, 1))];
      case 1: return media_apps()[2];
      case 2: {
        const auto& games = proc::game_apps();
        return games[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(games.size()) - 1))];
      }
      default: {
        const auto& apps = proc::top_free_apps();
        return apps[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(apps.size()) - 1))];
      }
    }
  };

  auto cleanup_dead = [&] {
    open_order.erase(std::remove_if(open_order.begin(), open_order.end(),
                                    [&](proc::ProcessId pid) {
                                      if (memory.registry().alive(pid)) return false;
                                      user_apps.erase(pid);
                                      return true;
                                    }),
                     open_order.end());
  };

  const auto total_seconds = static_cast<std::int64_t>(device.interactive_hours * 3600.0);
  mem::PressureLevel previous_level = memory.level();
  sim::Time state_entered = engine.now();

  for (std::int64_t second = 0; second < total_seconds; ++second) {
    engine.run_until(engine.now() + sim::sec(1));
    cleanup_dead();

    // User action?
    if (rng.bernoulli(action_prob)) {
      const double action = rng.uniform();
      if (action < 0.45 || open_order.empty()) {
        const proc::AppSpec app = pick_app();
        const proc::ProcessId pid = am.launch(app);
        user_apps[pid] = app;
        open_order.push_back(pid);
      } else if (action < 0.85) {
        const auto index = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(open_order.size()) - 1));
        am.bring_to_foreground(open_order[index]);
      } else {
        am.close(open_order.front());
        user_apps.erase(open_order.front());
        open_order.erase(open_order.begin());
      }
      // Multitasking cap: close the oldest background apps beyond it.
      while (static_cast<int>(open_order.size()) > user.max_open_apps) {
        am.close(open_order.front());
        user_apps.erase(open_order.front());
        open_order.erase(open_order.begin());
      }
    }

    // Foreground app grows (feeds, buffers).
    const proc::ProcessId foreground = am.foreground();
    if (foreground != 0) {
      const auto it = user_apps.find(foreground);
      if (it != user_apps.end() && it->second.growth_pages_per_sec > 0) {
        memory.alloc_anon(foreground, it->second.growth_pages_per_sec, 0, nullptr);
      }
    }

    // SignalCapturer's per-second log line.
    const auto level = memory.level();
    const auto level_index = static_cast<std::size_t>(level);
    util_reservoir.add(memory.utilization());
    avail_reservoirs[level_index]->add(mem::mb_from_pages(memory.available_pages()));
    result.seconds_in_level[level_index] += 1.0;
    if (level != previous_level) {
      const auto from = static_cast<std::size_t>(previous_level);
      result.transitions[from][level_index] += 1;
      result.dwell_seconds[from].push_back(sim::to_seconds(engine.now() - state_entered));
      previous_level = level;
      state_entered = engine.now();
    }
  }

  result.hours_logged = static_cast<double>(total_seconds) / 3600.0;
  result.median_utilization = result.utilization_samples.empty()
                                  ? 0.0
                                  : stats::percentile(result.utilization_samples, 50.0);
  return result;
}

std::vector<DeviceStudyResult> run_study(const std::vector<StudyDevice>& population,
                                         std::uint64_t seed) {
  std::vector<DeviceStudyResult> results;
  results.reserve(population.size());
  for (const StudyDevice& device : population) {
    results.push_back(simulate_device(device, seed));
  }
  return results;
}

std::vector<DeviceStudyResult> clean(std::vector<DeviceStudyResult> results, double min_hours) {
  results.erase(std::remove_if(results.begin(), results.end(),
                               [min_hours](const DeviceStudyResult& result) {
                                 return result.hours_logged <= min_hours;
                               }),
                results.end());
  return results;
}

}  // namespace mvqoe::study
