// Cross-device aggregation of the field-study results: the queries behind
// Figures 1-6 and the §3 rows of Table 1.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "stats/summary.hpp"
#include "study/device_sim.hpp"

namespace mvqoe::study {

/// Fig 1: per-activity histogram of 1-5 ratings across users.
struct UsageHeatmap {
  /// counts[activity][rating-1]; activities: games, music, video,
  /// multitask(>1), multitask(>2).
  std::array<std::array<int, 5>, 5> counts{};
  static const char* activity_name(int activity) noexcept;
};
UsageHeatmap usage_heatmap(const std::vector<StudyDevice>& population);

/// Fig 2: sorted median utilizations (plot as empirical CDF).
std::vector<stats::CdfPoint> utilization_cdf(const std::vector<DeviceStudyResult>& results);

/// Fig 3: per-device scatter rows (RAM size vs signals/hour per level).
struct SignalScatterRow {
  std::int64_t ram_mb = 0;
  double moderate_per_hour = 0.0;
  double low_per_hour = 0.0;
  double critical_per_hour = 0.0;
};
std::vector<SignalScatterRow> signal_scatter(const std::vector<DeviceStudyResult>& results);

/// Fig 4: per-device fraction of time in each pressure state vs RAM.
struct TimeInStateRow {
  std::int64_t ram_mb = 0;
  std::array<double, kLevels> fraction{};
};
std::vector<TimeInStateRow> time_in_states(const std::vector<DeviceStudyResult>& results);

/// Fig 5: the `top_n` devices by time spent out of Normal, with their
/// per-state available-memory distributions summarized as violins.
struct AvailabilityViolin {
  int device_index = 0;
  std::string manufacturer;
  std::int64_t ram_mb = 0;
  std::array<stats::ViolinSummary, kLevels> by_state;
};
std::vector<AvailabilityViolin> availability_violins(
    const std::vector<DeviceStudyResult>& results, std::size_t top_n = 5);

/// Fig 6: transition percentages and dwell-time boxes, aggregated over
/// the devices that spent more than `min_fraction` of time out of Normal
/// (the paper uses the nine devices above 30%, falling back to the most
/// pressured ones available).
struct TransitionStats {
  /// percent[from][to]: share of transitions out of `from` landing in
  /// `to` (rows sum to 100 where any transitions exist).
  std::array<std::array<double, kLevels>, kLevels> percent{};
  std::array<std::array<std::uint64_t, kLevels>, kLevels> counts{};
  /// Dwell-time five-number summaries per from-state (seconds).
  std::array<stats::BoxStats, kLevels> dwell;
  std::size_t devices_used = 0;
};
TransitionStats transition_stats(const std::vector<DeviceStudyResult>& results,
                                 double min_fraction = 0.30, std::size_t min_devices = 9);

/// Table 1 §3 rows.
struct StudySummary {
  std::size_t devices = 0;
  double percent_median_util_ge_60 = 0.0;
  double percent_median_util_gt_75 = 0.0;
  double percent_with_any_signal_per_hour = 0.0;   // >= 1 signal/h (63%)
  double percent_with_10_critical_per_hour = 0.0;  // > 10 critical/h (19%)
  double percent_over_70_signals_per_hour = 0.0;   // > 70 signals/h (6.3%)
  double percent_time50_high_pressure = 0.0;       // > 50% of time (10%)
  double percent_time2_high_pressure = 0.0;        // >= 2% of time (35%)
};
StudySummary summarize(const std::vector<DeviceStudyResult>& results);

}  // namespace mvqoe::study
