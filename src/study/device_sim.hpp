// Per-device usage simulation for the field study: the SignalCapturer
// counterpart. Runs the device's interactive hours through an
// immediate-mode memory manager, driving app launches/switches/closes
// from the user profile, and streams the same observations the paper's
// app logged every second: available memory, current pressure state,
// plus derived statistics (signal counts, state dwell times,
// transitions).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "mem/types.hpp"
#include "study/population.hpp"

namespace mvqoe::study {

constexpr int kLevels = 4;  // Normal, Moderate, Low, Critical

struct DeviceStudyResult {
  StudyDevice device;
  double hours_logged = 0.0;

  /// Reservoir-sampled per-second RAM utilization (1 - available/total).
  std::vector<double> utilization_samples;
  double median_utilization = 0.0;

  /// Trim signals received, by level (index 1..3 meaningful).
  std::array<std::uint64_t, kLevels> signals{};
  /// Seconds spent with each level as the current state.
  std::array<double, kLevels> seconds_in_level{};

  /// Fig 6: transitions[from][to] counts, and dwell-time samples (s) in
  /// `from` before each transition.
  std::array<std::array<std::uint64_t, kLevels>, kLevels> transitions{};
  std::array<std::vector<double>, kLevels> dwell_seconds;

  /// Fig 5: available memory (MB) sampled while in each state.
  std::array<std::vector<double>, kLevels> available_mb_by_state;

  double signals_per_hour(int level) const noexcept;
  double total_signals_per_hour() const noexcept;
  double fraction_in_level(int level) const noexcept;
  double fraction_not_normal() const noexcept;
};

/// Simulate one device's interactive time. Deterministic per seed.
DeviceStudyResult simulate_device(const StudyDevice& device, std::uint64_t seed);

/// Run the whole study; returns one result per device (uncleaned —
/// apply the > 10 h rule downstream, as the paper does).
std::vector<DeviceStudyResult> run_study(const std::vector<StudyDevice>& population,
                                         std::uint64_t seed);

/// Data-cleaning rule (§3): keep devices with more than `min_hours` of
/// interactive data.
std::vector<DeviceStudyResult> clean(std::vector<DeviceStudyResult> results,
                                     double min_hours = 10.0);

}  // namespace mvqoe::study
