// Synthetic device/user population for the §3 field study.
//
// The paper recruited 80 users (mostly university students/staff),
// spanning 12 manufacturers and 1-8 GB of RAM, logged ~9950 hours of
// memory data (~124 h/device), and kept the 48 devices with > 10 h of
// interactive (screen-on) data. The generator reproduces those marginals;
// everything downstream (signal rates, dwell times, Fig 2-6
// distributions) then *emerges* from running each device's usage model
// through the memory-management engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "stats/rng.hpp"

namespace mvqoe::study {

struct UserProfile {
  /// Survey answers, 1-5 (Fig 1): how often the user plays games,
  /// listens to music, streams video.
  int rating_games = 1;
  int rating_music = 3;
  int rating_video = 4;
  /// Multitasking ratings: running with >1 / >2 background apps.
  int rating_multitask_1 = 3;
  int rating_multitask_2 = 2;

  /// Derived behaviour knobs.
  double app_switches_per_minute = 1.0;
  int max_open_apps = 4;
};

struct StudyDevice {
  int index = 0;
  std::string manufacturer;
  std::int64_t ram_mb = 2048;
  int cores = 4;
  double freq_ghz = 1.8;
  /// Interactive (screen-on) hours to simulate; total observation time in
  /// the paper averaged 124 h/device of which interactive is a fraction.
  double interactive_hours = 24.0;
  UserProfile user;

  core::DeviceProfile profile() const;
};

/// The 12 manufacturers represented in the study population.
const std::vector<std::string>& manufacturers();

/// Generate device `i` of the population — a pure function of
/// (i, seed), so fleet shards can sample any slice of a huge population
/// without materialising all of it. For every n > i,
/// generate_population(n, seed)[i] == generate_study_device(i, seed).
StudyDevice generate_study_device(int i, std::uint64_t seed);

/// Generate `n` devices (the paper's n = 80). Marginals: RAM mix skewed
/// to 2-4 GB with low-end and flagship tails; interactive hours 4-80 (so
/// the > 10 h cleaning rule keeps roughly the paper's 48/80 fraction);
/// survey ratings with video streaming as the most frequent activity.
std::vector<StudyDevice> generate_population(int n, std::uint64_t seed);

/// A concrete pinned device model for fleet simulation (DESIGN.md §15).
/// Unlike StudyDevice — which samples per-device hardware, making every
/// world unique — a family pins ram/cores/freq exactly, so one prepared
/// world template can be shared (and CoW-forked) across every device of
/// the family.
struct FleetFamily {
  std::string name;
  std::int64_t ram_mb = 2048;
  int cores = 4;
  double freq_ghz = 1.8;
  /// Population share used as the fleet sampling weight.
  double weight = 1.0;

  core::DeviceProfile profile() const;
};

/// Fixed catalog of six pinned device models whose weights mirror the
/// study's RAM mix (skewed to 2-4 GB, low-end and flagship tails).
const std::vector<FleetFamily>& fleet_families();

}  // namespace mvqoe::study
