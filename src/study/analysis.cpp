#include "study/analysis.hpp"

#include <algorithm>

namespace mvqoe::study {

const char* UsageHeatmap::activity_name(int activity) noexcept {
  switch (activity) {
    case 0: return "playing games";
    case 1: return "listening to music";
    case 2: return "streaming videos";
    case 3: return "multitask (>1 app)";
    case 4: return "multitask (>2 apps)";
  }
  return "?";
}

UsageHeatmap usage_heatmap(const std::vector<StudyDevice>& population) {
  UsageHeatmap heatmap;
  for (const StudyDevice& device : population) {
    const UserProfile& user = device.user;
    const int ratings[5] = {user.rating_games, user.rating_music, user.rating_video,
                            user.rating_multitask_1, user.rating_multitask_2};
    for (int activity = 0; activity < 5; ++activity) {
      const int rating = std::clamp(ratings[activity], 1, 5);
      ++heatmap.counts[static_cast<std::size_t>(activity)][static_cast<std::size_t>(rating - 1)];
    }
  }
  return heatmap;
}

std::vector<stats::CdfPoint> utilization_cdf(const std::vector<DeviceStudyResult>& results) {
  std::vector<double> medians;
  medians.reserve(results.size());
  for (const DeviceStudyResult& result : results) medians.push_back(result.median_utilization);
  return stats::empirical_cdf(std::move(medians));
}

std::vector<SignalScatterRow> signal_scatter(const std::vector<DeviceStudyResult>& results) {
  std::vector<SignalScatterRow> rows;
  rows.reserve(results.size());
  for (const DeviceStudyResult& result : results) {
    rows.push_back(SignalScatterRow{result.device.ram_mb, result.signals_per_hour(1),
                                    result.signals_per_hour(2), result.signals_per_hour(3)});
  }
  return rows;
}

std::vector<TimeInStateRow> time_in_states(const std::vector<DeviceStudyResult>& results) {
  std::vector<TimeInStateRow> rows;
  rows.reserve(results.size());
  for (const DeviceStudyResult& result : results) {
    TimeInStateRow row;
    row.ram_mb = result.device.ram_mb;
    for (int level = 0; level < kLevels; ++level) {
      row.fraction[static_cast<std::size_t>(level)] = result.fraction_in_level(level);
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<AvailabilityViolin> availability_violins(
    const std::vector<DeviceStudyResult>& results, std::size_t top_n) {
  std::vector<const DeviceStudyResult*> order;
  order.reserve(results.size());
  for (const DeviceStudyResult& result : results) order.push_back(&result);
  std::sort(order.begin(), order.end(), [](const DeviceStudyResult* a, const DeviceStudyResult* b) {
    return a->fraction_not_normal() > b->fraction_not_normal();
  });
  std::vector<AvailabilityViolin> violins;
  for (std::size_t i = 0; i < std::min(top_n, order.size()); ++i) {
    const DeviceStudyResult& result = *order[i];
    AvailabilityViolin violin;
    violin.device_index = result.device.index;
    violin.manufacturer = result.device.manufacturer;
    violin.ram_mb = result.device.ram_mb;
    for (int level = 0; level < kLevels; ++level) {
      const auto index = static_cast<std::size_t>(level);
      violin.by_state[index] = stats::violin_summary(result.available_mb_by_state[index]);
    }
    violins.push_back(std::move(violin));
  }
  return violins;
}

TransitionStats transition_stats(const std::vector<DeviceStudyResult>& results,
                                 double min_fraction, std::size_t min_devices) {
  // Pick pressured devices: above the threshold, topped up with the most
  // pressured remainder until min_devices.
  std::vector<const DeviceStudyResult*> order;
  for (const DeviceStudyResult& result : results) order.push_back(&result);
  std::sort(order.begin(), order.end(), [](const DeviceStudyResult* a, const DeviceStudyResult* b) {
    return a->fraction_not_normal() > b->fraction_not_normal();
  });
  std::vector<const DeviceStudyResult*> chosen;
  for (const DeviceStudyResult* result : order) {
    if (result->fraction_not_normal() > min_fraction || chosen.size() < min_devices) {
      chosen.push_back(result);
    }
  }

  TransitionStats stats;
  stats.devices_used = chosen.size();
  std::array<std::vector<double>, kLevels> dwell_pool;
  for (const DeviceStudyResult* result : chosen) {
    for (int from = 0; from < kLevels; ++from) {
      const auto f = static_cast<std::size_t>(from);
      for (int to = 0; to < kLevels; ++to) {
        stats.counts[f][static_cast<std::size_t>(to)] +=
            result->transitions[f][static_cast<std::size_t>(to)];
      }
      dwell_pool[f].insert(dwell_pool[f].end(), result->dwell_seconds[f].begin(),
                           result->dwell_seconds[f].end());
    }
  }
  for (int from = 0; from < kLevels; ++from) {
    const auto f = static_cast<std::size_t>(from);
    std::uint64_t total = 0;
    for (int to = 0; to < kLevels; ++to) total += stats.counts[f][static_cast<std::size_t>(to)];
    if (total > 0) {
      for (int to = 0; to < kLevels; ++to) {
        stats.percent[f][static_cast<std::size_t>(to)] =
            100.0 * static_cast<double>(stats.counts[f][static_cast<std::size_t>(to)]) /
            static_cast<double>(total);
      }
    }
    stats.dwell[f] = stats::box_stats(dwell_pool[f]);
  }
  return stats;
}

StudySummary summarize(const std::vector<DeviceStudyResult>& results) {
  StudySummary summary;
  summary.devices = results.size();
  if (results.empty()) return summary;
  const double n = static_cast<double>(results.size());
  std::size_t util60 = 0;
  std::size_t util75 = 0;
  std::size_t any_signal = 0;
  std::size_t crit10 = 0;
  std::size_t over70 = 0;
  std::size_t time50 = 0;
  std::size_t time2 = 0;
  for (const DeviceStudyResult& result : results) {
    if (result.median_utilization >= 0.60) ++util60;
    if (result.median_utilization > 0.75) ++util75;
    if (result.total_signals_per_hour() >= 1.0) ++any_signal;
    if (result.signals_per_hour(3) > 10.0) ++crit10;
    if (result.total_signals_per_hour() > 70.0) ++over70;
    if (result.fraction_not_normal() > 0.50) ++time50;
    if (result.fraction_not_normal() >= 0.02) ++time2;
  }
  summary.percent_median_util_ge_60 = 100.0 * static_cast<double>(util60) / n;
  summary.percent_median_util_gt_75 = 100.0 * static_cast<double>(util75) / n;
  summary.percent_with_any_signal_per_hour = 100.0 * static_cast<double>(any_signal) / n;
  summary.percent_with_10_critical_per_hour = 100.0 * static_cast<double>(crit10) / n;
  summary.percent_over_70_signals_per_hour = 100.0 * static_cast<double>(over70) / n;
  summary.percent_time50_high_pressure = 100.0 * static_cast<double>(time50) / n;
  summary.percent_time2_high_pressure = 100.0 * static_cast<double>(time2) / n;
  return summary;
}

}  // namespace mvqoe::study
