// Network substrate: the dedicated WiFi LAN of the paper's testbed
// (Fig 7). Two modes behind one facade:
//
//  - fifo (default NetSpec): a serialized FIFO link with fixed rate and
//    propagation delay — provisioned in the experiments so it is never
//    the bottleneck (§4.1: "the playback buffer filled up quickly and
//    then remained at maximum capacity"), but implemented rather than
//    assumed so the download path exists and can be throttled in
//    ablations. This path is byte-identical to the pre-CC link: same
//    events, same engine sequence numbers, same v1 snapshot section.
//
//  - congestion-controlled (NetSpec cc != "fifo"): a shared bottleneck
//    carrying N concurrent flows. Packets (~MSS) serialize through a
//    droptail queue at the link rate; each flow is driven by a pluggable
//    CongestionController (cubic / bbr / c4, see cc.hpp) fed by per-ack
//    RTT samples and drop notifications. Cross traffic and the video
//    session's segment fetches compete here, which is what opens the
//    memory-pressure × network-pressure scenario axis (ROADMAP item 3).
//
// Fault-injection support: transfers are cancellable, the in-flight
// transfer is re-paced from its remaining bytes whenever the rate
// changes, the link can go down entirely (payload progress freezes and
// resumes on restore), and a per-transfer timeout fails transfers that
// sit on the wire too long — the hooks the FaultInjector and the video
// session's retry path are built on. In CC mode the Gilbert-Elliott bad
// state additionally feeds a per-packet loss probability via
// set_loss_rate().
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "net/cc.hpp"
#include "sim/engine.hpp"
#include "stats/rng.hpp"

namespace mvqoe::net {

/// Handle to a queued or in-flight transfer; kInvalidTransfer is false-y.
using TransferId = std::uint64_t;
constexpr TransferId kInvalidTransfer = 0;

struct LinkConfig {
  double rate_mbps = 80.0;          // WiFi LAN application throughput
  sim::Time propagation = sim::msec(2);
  /// Fixed per-transfer overhead (HTTP request/response, TCP ramp).
  sim::Time per_transfer_overhead = sim::msec(6);
  /// Fail a transfer that has been active longer than this (0 = never).
  /// Time spent queued behind other transfers or frozen by an outage does
  /// not count.
  sim::Time transfer_timeout = 0;
};

struct LinkCounters {
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t outages = 0;  // down() transitions
};

/// Aggregate bottleneck-queue waiting-time distribution (microseconds a
/// packet spent queued behind other packets before serializing).
struct QueueDelayStats {
  std::uint64_t samples = 0;
  sim::Time total = 0;
  sim::Time max = 0;

  void add(sim::Time delay) noexcept {
    ++samples;
    total += delay;
    if (delay > max) max = delay;
  }
  double mean() const noexcept {
    return samples == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(samples);
  }
};

/// Introspection snapshot of one live flow (oracles, figures, tests).
struct FlowStats {
  TransferId id = kInvalidTransfer;
  std::uint64_t total_bytes = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t inflight_bytes = 0;
  std::uint64_t losses = 0;
  double cwnd_bytes = 0.0;
  double pacing_bytes_per_usec = 0.0;
  sim::Time min_rtt = 0;
  sim::Time last_rtt = 0;
  QueueDelayStats queue_delay;
};

/// One-direction link. FIFO-serial by default; a shared bottleneck with
/// congestion-controlled concurrent flows when the NetSpec says so.
class Link {
 public:
  /// Completion callback: ok=true when the last byte arrived, ok=false
  /// when the transfer timed out. Cancelled transfers never call back.
  using CompletionFn = std::function<void(bool ok)>;

  Link(sim::Engine& engine, LinkConfig config, NetSpec net = {});

  /// Deliver `bytes` to the receiver. In fifo mode transfers share the
  /// link serially (HTTP/1.1-style sequential segment fetches, as
  /// dash.js performs them); in CC mode each transfer is a concurrent
  /// flow competing through the bottleneck. Returns a handle usable
  /// with cancel().
  TransferId transfer(std::uint64_t bytes, CompletionFn on_complete);

  /// Abort a queued or in-flight transfer; its callback never fires.
  /// Returns true if the transfer was still pending. Partial bytes of an
  /// aborted in-flight transfer are discarded, and the next queued
  /// transfer starts immediately.
  bool cancel(TransferId id);

  /// Wall time a transfer of `bytes` takes on an idle link.
  sim::Time idle_transfer_time(std::uint64_t bytes) const noexcept;

  std::size_t queued() const noexcept { return queue_.size(); }
  bool busy() const noexcept {
    return cc_mode() ? !flows_.empty() : active_.id != kInvalidTransfer;
  }
  std::uint64_t bytes_delivered() const noexcept { return bytes_delivered_; }
  const LinkConfig& config() const noexcept { return config_; }
  const LinkCounters& counters() const noexcept { return counters_; }
  bool down() const noexcept { return down_; }

  /// Change the link rate mid-run (network-variability ablations and the
  /// fault injector's Gilbert-Elliott model). The in-flight transfer is
  /// re-paced: its completion is rescheduled from the bytes still
  /// outstanding at the new rate.
  void set_rate_mbps(double rate_mbps);

  /// Take the link down (outage) or bring it back up. While down, the
  /// in-flight transfer freezes (remaining bytes preserved) and queued
  /// transfers wait; on restore the transfer resumes where it stopped.
  /// In CC mode packets already on the wire still deliver, but no new
  /// packets are sent until the link comes back.
  void set_down(bool down);

  // --- CC-mode surface ------------------------------------------------------

  bool cc_mode() const noexcept { return cc_mode_; }
  const NetSpec& net() const noexcept { return net_; }

  /// Per-packet random loss probability (Gilbert-Elliott bad state feeds
  /// this in CC mode). A no-op signal in fifo mode: the serial path has
  /// no packets to drop, and the value never enters the v1 snapshot.
  void set_loss_rate(double probability) noexcept { cc_loss_rate_ = probability; }
  double loss_rate() const noexcept { return cc_loss_rate_; }

  /// Live flows in id order (empty in fifo mode).
  std::vector<FlowStats> flow_stats() const;
  /// Bytes delivered by flows already completed/failed/cancelled. The
  /// conservation invariant: retired_delivered() + sum of live flows'
  /// delivered == bytes_delivered().
  std::uint64_t retired_delivered() const noexcept { return cc_retired_delivered_; }
  /// Current modeled bottleneck backlog (bytes accepted but not yet
  /// serialized onto the wire) and the droptail capacity bounding it.
  std::uint64_t backlog_bytes() const;
  std::uint64_t queue_capacity_bytes() const noexcept { return cc_queue_capacity_; }
  const QueueDelayStats& queue_delay() const noexcept { return cc_qdelay_; }
  std::uint64_t packets_sent() const noexcept { return cc_packets_sent_; }
  std::uint64_t packets_dropped() const noexcept { return cc_packets_dropped_; }

  /// Serialize rate/outage state, counters, the transfer queue and the
  /// in-flight transfer's pacing (completion callbacks excluded —
  /// closures, replay-reconstructed per DESIGN.md §10). Section v1 in
  /// fifo mode (byte-identical to the pre-CC link); v2 in CC mode adds
  /// the spec, bottleneck queue and per-flow controller state.
  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;

 private:
  struct Pending {
    TransferId id = kInvalidTransfer;
    std::uint64_t bytes = 0;
    CompletionFn on_complete;
  };
  struct Active {
    TransferId id = kInvalidTransfer;
    std::uint64_t total_bytes = 0;
    double remaining_bytes = 0.0;   // payload not yet on the wire
    sim::Time setup_remaining = 0;  // propagation + overhead not yet paid
    sim::Time paced_at = 0;         // when remaining_* were last computed
    CompletionFn on_complete;
    sim::EventId completion = sim::kInvalidEvent;
    sim::EventId timeout = sim::kInvalidEvent;
    sim::Time timeout_remaining = 0;  // active-time budget left
    sim::Time timeout_armed_at = 0;
  };

  void pump();
  /// The timeout budget only burns while the link is up: an outage
  /// freezes it along with the payload.
  void arm_timeout();
  void suspend_timeout();
  /// Fold elapsed wall time into the active transfer's remaining setup /
  /// payload, then (unless down) schedule its completion at the current
  /// rate. The single source of truth for in-flight pacing.
  void repace_active();
  void finish_active(bool ok);
  /// Flat-event trampolines (engine hot path): one completion + one
  /// timeout timer per in-flight transfer.
  static void on_completion(void* ctx, std::uint64_t);
  static void on_timeout(void* ctx, std::uint64_t);
  double bytes_per_usec() const noexcept;

  // --- CC-mode flow engine --------------------------------------------------

  struct Packet {
    double bytes = 0.0;
    sim::Time sent_at = 0;
  };
  struct Flow {
    TransferId id = kInvalidTransfer;
    std::uint64_t total_bytes = 0;
    double remaining_bytes = 0.0;  // not yet sent (retransmits re-add)
    double inflight_bytes = 0.0;
    std::uint64_t delivered_bytes = 0;  // acked
    std::uint64_t losses = 0;
    bool started = false;  // request setup (propagation + overhead) paid
    CompletionFn on_complete;
    std::unique_ptr<CongestionController> cc;
    std::deque<Packet> in_flight;     // bottleneck is FIFO: acks pop front
    std::deque<double> loss_pending;  // dropped-packet bytes awaiting detection
    sim::Time pace_next = 0;
    sim::Time min_rtt = 0;
    sim::Time last_rtt = 0;
    QueueDelayStats qdelay;
    sim::EventId start_event = sim::kInvalidEvent;
    sim::EventId send_event = sim::kInvalidEvent;
    sim::EventId timeout_event = sim::kInvalidEvent;
  };

  TransferId cc_transfer(std::uint64_t bytes, CompletionFn on_complete);
  bool cc_cancel(TransferId id);
  void cc_try_send(Flow& flow);
  void cc_send_packet(Flow& flow, double pkt_bytes);
  /// Retire departed packets from the modeled backlog (lazy: a pure
  /// function of (departures, now), so callable from const accessors and
  /// save without perturbing determinism).
  void cc_prune_departures(sim::Time now) const;
  void cc_finish_flow(TransferId id, bool ok);
  static void on_flow_start(void* ctx, std::uint64_t id);
  static void on_flow_send(void* ctx, std::uint64_t id);
  static void on_flow_ack(void* ctx, std::uint64_t id);
  static void on_flow_loss(void* ctx, std::uint64_t id);
  static void on_flow_timeout(void* ctx, std::uint64_t id);

  sim::Engine& engine_;
  LinkConfig config_;
  std::deque<Pending> queue_;
  Active active_;
  bool down_ = false;
  std::uint64_t bytes_delivered_ = 0;
  TransferId next_id_ = 1;
  LinkCounters counters_;

  NetSpec net_;
  bool cc_mode_ = false;
  double cc_mss_ = 1500.0;
  std::uint64_t cc_queue_capacity_ = 64 * 1024;
  double cc_loss_rate_ = 0.0;
  stats::Rng cc_loss_rng_;
  std::map<TransferId, std::unique_ptr<Flow>> flows_;
  sim::Time cc_queue_busy_until_ = 0;
  mutable double cc_backlog_bytes_ = 0.0;
  mutable std::deque<std::pair<sim::Time, double>> cc_departures_;
  std::uint64_t cc_retired_delivered_ = 0;
  std::uint64_t cc_packets_sent_ = 0;
  std::uint64_t cc_packets_dropped_ = 0;
  QueueDelayStats cc_qdelay_;
};

}  // namespace mvqoe::net
