// Network substrate: the dedicated WiFi LAN of the paper's testbed
// (Fig 7). A serialized FIFO link with fixed rate and propagation delay —
// provisioned in the experiments so it is never the bottleneck (§4.1:
// "the playback buffer filled up quickly and then remained at maximum
// capacity"), but implemented rather than assumed so the download path
// exists and can be throttled in ablations.
//
// Fault-injection support: transfers are cancellable, the in-flight
// transfer is re-paced from its remaining bytes whenever the rate
// changes, the link can go down entirely (payload progress freezes and
// resumes on restore), and a per-transfer timeout fails transfers that
// sit on the wire too long — the hooks the FaultInjector and the video
// session's retry path are built on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/engine.hpp"

namespace mvqoe::net {

/// Handle to a queued or in-flight transfer; kInvalidTransfer is false-y.
using TransferId = std::uint64_t;
constexpr TransferId kInvalidTransfer = 0;

struct LinkConfig {
  double rate_mbps = 80.0;          // WiFi LAN application throughput
  sim::Time propagation = sim::msec(2);
  /// Fixed per-transfer overhead (HTTP request/response, TCP ramp).
  sim::Time per_transfer_overhead = sim::msec(6);
  /// Fail a transfer that has been active longer than this (0 = never).
  /// Time spent queued behind other transfers or frozen by an outage does
  /// not count.
  sim::Time transfer_timeout = 0;
};

struct LinkCounters {
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t outages = 0;  // down() transitions
};

/// One-direction link delivering transfers FIFO at the configured rate.
class Link {
 public:
  /// Completion callback: ok=true when the last byte arrived, ok=false
  /// when the transfer timed out. Cancelled transfers never call back.
  using CompletionFn = std::function<void(bool ok)>;

  Link(sim::Engine& engine, LinkConfig config);

  /// Deliver `bytes` to the receiver. Transfers share the link serially
  /// (HTTP/1.1-style sequential segment fetches, as dash.js performs
  /// them). Returns a handle usable with cancel().
  TransferId transfer(std::uint64_t bytes, CompletionFn on_complete);

  /// Abort a queued or in-flight transfer; its callback never fires.
  /// Returns true if the transfer was still pending. Partial bytes of an
  /// aborted in-flight transfer are discarded, and the next queued
  /// transfer starts immediately.
  bool cancel(TransferId id);

  /// Wall time a transfer of `bytes` takes on an idle link.
  sim::Time idle_transfer_time(std::uint64_t bytes) const noexcept;

  std::size_t queued() const noexcept { return queue_.size(); }
  bool busy() const noexcept { return active_.id != kInvalidTransfer; }
  std::uint64_t bytes_delivered() const noexcept { return bytes_delivered_; }
  const LinkConfig& config() const noexcept { return config_; }
  const LinkCounters& counters() const noexcept { return counters_; }
  bool down() const noexcept { return down_; }

  /// Change the link rate mid-run (network-variability ablations and the
  /// fault injector's Gilbert-Elliott model). The in-flight transfer is
  /// re-paced: its completion is rescheduled from the bytes still
  /// outstanding at the new rate.
  void set_rate_mbps(double rate_mbps);

  /// Take the link down (outage) or bring it back up. While down, the
  /// in-flight transfer freezes (remaining bytes preserved) and queued
  /// transfers wait; on restore the transfer resumes where it stopped.
  void set_down(bool down);

  /// Serialize rate/outage state, counters, the transfer queue and the
  /// in-flight transfer's pacing (completion callbacks excluded —
  /// closures, replay-reconstructed per DESIGN.md §10).
  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;

 private:
  struct Pending {
    TransferId id = kInvalidTransfer;
    std::uint64_t bytes = 0;
    CompletionFn on_complete;
  };
  struct Active {
    TransferId id = kInvalidTransfer;
    std::uint64_t total_bytes = 0;
    double remaining_bytes = 0.0;   // payload not yet on the wire
    sim::Time setup_remaining = 0;  // propagation + overhead not yet paid
    sim::Time paced_at = 0;         // when remaining_* were last computed
    CompletionFn on_complete;
    sim::EventId completion = sim::kInvalidEvent;
    sim::EventId timeout = sim::kInvalidEvent;
    sim::Time timeout_remaining = 0;  // active-time budget left
    sim::Time timeout_armed_at = 0;
  };

  void pump();
  /// The timeout budget only burns while the link is up: an outage
  /// freezes it along with the payload.
  void arm_timeout();
  void suspend_timeout();
  /// Fold elapsed wall time into the active transfer's remaining setup /
  /// payload, then (unless down) schedule its completion at the current
  /// rate. The single source of truth for in-flight pacing.
  void repace_active();
  void finish_active(bool ok);
  /// Flat-event trampolines (engine hot path): one completion + one
  /// timeout timer per in-flight transfer.
  static void on_completion(void* ctx, std::uint64_t);
  static void on_timeout(void* ctx, std::uint64_t);
  double bytes_per_usec() const noexcept;

  sim::Engine& engine_;
  LinkConfig config_;
  std::deque<Pending> queue_;
  Active active_;
  bool down_ = false;
  std::uint64_t bytes_delivered_ = 0;
  TransferId next_id_ = 1;
  LinkCounters counters_;
};

}  // namespace mvqoe::net
