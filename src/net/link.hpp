// Network substrate: the dedicated WiFi LAN of the paper's testbed
// (Fig 7). A serialized FIFO link with fixed rate and propagation delay —
// provisioned in the experiments so it is never the bottleneck (§4.1:
// "the playback buffer filled up quickly and then remained at maximum
// capacity"), but implemented rather than assumed so the download path
// exists and can be throttled in ablations.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/engine.hpp"

namespace mvqoe::net {

struct LinkConfig {
  double rate_mbps = 80.0;          // WiFi LAN application throughput
  sim::Time propagation = sim::msec(2);
  /// Fixed per-transfer overhead (HTTP request/response, TCP ramp).
  sim::Time per_transfer_overhead = sim::msec(6);
};

/// One-direction link delivering transfers FIFO at the configured rate.
class Link {
 public:
  Link(sim::Engine& engine, LinkConfig config);

  /// Deliver `bytes` to the receiver; `on_complete` fires when the last
  /// byte arrives. Transfers share the link serially (HTTP/1.1-style
  /// sequential segment fetches, as dash.js performs them).
  void transfer(std::uint64_t bytes, std::function<void()> on_complete);

  /// Wall time a transfer of `bytes` takes on an idle link.
  sim::Time idle_transfer_time(std::uint64_t bytes) const noexcept;

  std::size_t queued() const noexcept { return queue_.size(); }
  bool busy() const noexcept { return busy_; }
  std::uint64_t bytes_delivered() const noexcept { return bytes_delivered_; }
  const LinkConfig& config() const noexcept { return config_; }

  /// Change the link rate mid-run (network-variability ablations).
  void set_rate_mbps(double rate_mbps) noexcept { config_.rate_mbps = rate_mbps; }

 private:
  struct Pending {
    std::uint64_t bytes = 0;
    std::function<void()> on_complete;
  };
  void pump();

  sim::Engine& engine_;
  LinkConfig config_;
  std::deque<Pending> queue_;
  bool busy_ = false;
  std::uint64_t bytes_delivered_ = 0;
};

}  // namespace mvqoe::net
