#include "net/link.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "snapshot/digest.hpp"
#include "snapshot/rng_io.hpp"

namespace mvqoe::net {
namespace {

/// Seed stream for the CC-mode per-packet loss draw ("NETC"): one
/// deterministic stream per link, consumed only when a loss rate is
/// armed, so fault-free runs never touch it.
constexpr std::uint64_t kLossRngSeed = 0x4E455443ULL;

}  // namespace

Link::Link(sim::Engine& engine, LinkConfig config, NetSpec net)
    : engine_(engine),
      config_(config),
      net_(std::move(net)),
      cc_mode_(net_.cc != "fifo"),
      cc_loss_rng_(kLossRngSeed) {
  if (cc_mode_) {
    validate_net_spec(net_);
    cc_mss_ = std::max(1.0, net_param_or(net_, "mss", 1500.0));
    cc_queue_capacity_ = static_cast<std::uint64_t>(
        std::max(1.0, net_param_or(net_, "queue_kb", 64.0)) * 1024.0);
  }
}

double Link::bytes_per_usec() const noexcept { return config_.rate_mbps / 8.0; }

sim::Time Link::idle_transfer_time(std::uint64_t bytes) const noexcept {
  const double micros = static_cast<double>(bytes) * 8.0 / (config_.rate_mbps * 1e6) * 1e6;
  return config_.propagation + config_.per_transfer_overhead +
         static_cast<sim::Time>(std::ceil(micros));
}

TransferId Link::transfer(std::uint64_t bytes, CompletionFn on_complete) {
  if (cc_mode_) return cc_transfer(bytes, std::move(on_complete));
  const TransferId id = next_id_++;
  queue_.push_back(Pending{id, bytes, std::move(on_complete)});
  pump();
  return id;
}

bool Link::cancel(TransferId id) {
  if (id == kInvalidTransfer) return false;
  if (cc_mode_) return cc_cancel(id);
  if (active_.id == id) {
    if (active_.completion != sim::kInvalidEvent) engine_.cancel(active_.completion);
    if (active_.timeout != sim::kInvalidEvent) engine_.cancel(active_.timeout);
    active_ = Active{};
    ++counters_.cancelled;
    pump();
    return true;
  }
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      queue_.erase(it);
      ++counters_.cancelled;
      return true;
    }
  }
  return false;
}

void Link::set_rate_mbps(double rate_mbps) {
  if (cc_mode_) {
    const bool was_stalled = config_.rate_mbps <= 0.0;
    config_.rate_mbps = rate_mbps;
    if (was_stalled && rate_mbps > 0.0 && !down_) {
      for (auto& [id, flow] : flows_) cc_try_send(*flow);
    }
    return;
  }
  if (active_.id != kInvalidTransfer && !down_) {
    // Fold progress made at the old rate, then reschedule the completion
    // from the bytes still outstanding at the new rate — a mid-transfer
    // rate drop (or outage recovery at a different rate) must stretch the
    // in-flight transfer, not be silently ignored.
    repace_active();
  }
  config_.rate_mbps = rate_mbps;
  if (active_.id != kInvalidTransfer && !down_) repace_active();
}

void Link::set_down(bool down) {
  if (down == down_) return;
  if (cc_mode_) {
    down_ = down;
    if (down) {
      ++counters_.outages;
    } else {
      for (auto& [id, flow] : flows_) cc_try_send(*flow);
    }
    return;
  }
  if (down) {
    ++counters_.outages;
    if (active_.id != kInvalidTransfer) {
      repace_active();  // freeze remaining bytes as of now
      if (active_.completion != sim::kInvalidEvent) {
        engine_.cancel(active_.completion);
        active_.completion = sim::kInvalidEvent;
      }
      suspend_timeout();
    }
    down_ = true;
  } else {
    down_ = false;
    if (active_.id != kInvalidTransfer) {
      active_.paced_at = engine_.now();  // outage time transferred no bytes
      arm_timeout();
      repace_active();
    }
    pump();
  }
}

void Link::repace_active() {
  // Fold wall time since the last pacing point into setup, then payload.
  sim::Time elapsed = engine_.now() - active_.paced_at;
  const sim::Time setup_used = std::min(elapsed, active_.setup_remaining);
  active_.setup_remaining -= setup_used;
  elapsed -= setup_used;
  if (elapsed > 0 && bytes_per_usec() > 0.0) {
    active_.remaining_bytes =
        std::max(0.0, active_.remaining_bytes - static_cast<double>(elapsed) * bytes_per_usec());
  }
  active_.paced_at = engine_.now();

  if (active_.completion != sim::kInvalidEvent) {
    engine_.cancel(active_.completion);
    active_.completion = sim::kInvalidEvent;
  }
  if (down_ || config_.rate_mbps <= 0.0) return;  // frozen until restored
  const sim::Time payload = static_cast<sim::Time>(
      std::ceil(active_.remaining_bytes / bytes_per_usec()));
  const sim::Time duration = std::max<sim::Time>(1, active_.setup_remaining + payload);
  active_.completion = engine_.schedule_flat(duration, &Link::on_completion, this);
}

void Link::on_completion(void* ctx, std::uint64_t) {
  auto* self = static_cast<Link*>(ctx);
  self->active_.completion = sim::kInvalidEvent;
  self->active_.remaining_bytes = 0.0;
  self->active_.setup_remaining = 0;
  self->finish_active(true);
}

void Link::finish_active(bool ok) {
  if (active_.completion != sim::kInvalidEvent) engine_.cancel(active_.completion);
  if (active_.timeout != sim::kInvalidEvent) engine_.cancel(active_.timeout);
  if (ok) {
    bytes_delivered_ += active_.total_bytes;
    ++counters_.completed;
  } else {
    ++counters_.timed_out;
  }
  CompletionFn on_complete = std::move(active_.on_complete);
  active_ = Active{};
  if (on_complete) on_complete(ok);
  pump();
}

void Link::arm_timeout() {
  if (active_.timeout_remaining <= 0 || active_.timeout != sim::kInvalidEvent) return;
  active_.timeout_armed_at = engine_.now();
  active_.timeout = engine_.schedule_flat(active_.timeout_remaining, &Link::on_timeout, this);
}

void Link::on_timeout(void* ctx, std::uint64_t) {
  auto* self = static_cast<Link*>(ctx);
  self->active_.timeout = sim::kInvalidEvent;
  self->finish_active(false);
}

void Link::suspend_timeout() {
  if (active_.timeout == sim::kInvalidEvent) return;
  engine_.cancel(active_.timeout);
  active_.timeout = sim::kInvalidEvent;
  active_.timeout_remaining = std::max<sim::Time>(
      1, active_.timeout_remaining - (engine_.now() - active_.timeout_armed_at));
}

void Link::pump() {
  if (active_.id != kInvalidTransfer || queue_.empty()) return;
  Pending next = std::move(queue_.front());
  queue_.pop_front();
  active_.id = next.id;
  active_.total_bytes = next.bytes;
  active_.remaining_bytes = static_cast<double>(next.bytes);
  active_.setup_remaining = config_.propagation + config_.per_transfer_overhead;
  active_.paced_at = engine_.now();
  active_.on_complete = std::move(next.on_complete);
  active_.timeout_remaining = config_.transfer_timeout;
  if (!down_) {
    arm_timeout();
    if (config_.rate_mbps > 0.0) repace_active();
  }
}

// --- CC-mode flow engine ----------------------------------------------------

TransferId Link::cc_transfer(std::uint64_t bytes, CompletionFn on_complete) {
  const TransferId id = next_id_++;
  auto flow = std::make_unique<Flow>();
  flow->id = id;
  flow->total_bytes = bytes;
  flow->remaining_bytes = static_cast<double>(bytes);
  flow->on_complete = std::move(on_complete);
  flow->cc = make_congestion_controller(net_);
  // The request leg + server turnaround mirrors the fifo path's setup
  // charge; sending starts once it is paid.
  flow->start_event =
      engine_.schedule_flat(config_.propagation + config_.per_transfer_overhead,
                            &Link::on_flow_start, this, id);
  flows_.emplace(id, std::move(flow));
  return id;
}

bool Link::cc_cancel(TransferId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  Flow& flow = *it->second;
  if (flow.start_event != sim::kInvalidEvent) engine_.cancel(flow.start_event);
  if (flow.send_event != sim::kInvalidEvent) engine_.cancel(flow.send_event);
  if (flow.timeout_event != sim::kInvalidEvent) engine_.cancel(flow.timeout_event);
  cc_retired_delivered_ += flow.delivered_bytes;
  flows_.erase(it);  // stray ack/loss events find no flow and no-op
  ++counters_.cancelled;
  return true;
}

void Link::on_flow_start(void* ctx, std::uint64_t id) {
  auto* self = static_cast<Link*>(ctx);
  auto it = self->flows_.find(id);
  if (it == self->flows_.end()) return;
  Flow& flow = *it->second;
  flow.start_event = sim::kInvalidEvent;
  flow.started = true;
  if (self->config_.transfer_timeout > 0) {
    flow.timeout_event = self->engine_.schedule_flat(self->config_.transfer_timeout,
                                                     &Link::on_flow_timeout, self, id);
  }
  self->cc_try_send(flow);
}

void Link::cc_try_send(Flow& flow) {
  if (down_ || !flow.started || config_.rate_mbps <= 0.0) return;
  while (flow.remaining_bytes > 0.0) {
    const double pkt = std::min(cc_mss_, flow.remaining_bytes);
    const double cwnd = flow.cc->cwnd_bytes();
    // Window-limited: wait for acks (or loss detection) to re-open it.
    if (flow.inflight_bytes > 0.0 && flow.inflight_bytes + pkt > cwnd) return;
    const double pace = flow.cc->pacing_bytes_per_usec();
    const sim::Time now = engine_.now();
    if (pace > 0.0 && flow.pace_next > now) {
      if (flow.send_event == sim::kInvalidEvent) {
        flow.send_event =
            engine_.schedule_flat_at(flow.pace_next, &Link::on_flow_send, this, flow.id);
      }
      return;
    }
    cc_send_packet(flow, pkt);
    if (pace > 0.0) {
      flow.pace_next = std::max(now, flow.pace_next) +
                       std::max<sim::Time>(1, static_cast<sim::Time>(std::ceil(pkt / pace)));
    }
  }
}

void Link::cc_send_packet(Flow& flow, double pkt_bytes) {
  const sim::Time now = engine_.now();
  cc_prune_departures(now);
  const sim::Time serialize =
      std::max<sim::Time>(1, static_cast<sim::Time>(std::ceil(pkt_bytes / bytes_per_usec())));
  flow.remaining_bytes -= pkt_bytes;
  flow.inflight_bytes += pkt_bytes;

  bool drop = cc_backlog_bytes_ + pkt_bytes > static_cast<double>(cc_queue_capacity_);
  if (!drop && cc_loss_rate_ > 0.0) drop = cc_loss_rng_.bernoulli(cc_loss_rate_);
  if (drop) {
    ++flow.losses;
    ++cc_packets_dropped_;
    flow.loss_pending.push_back(pkt_bytes);
    // Loss surfaces after a feedback delay (dupack-style): one RTT past
    // where the ack would have been.
    engine_.schedule_flat(2 * config_.propagation + serialize + 1, &Link::on_flow_loss, this,
                          flow.id);
    return;
  }

  const sim::Time start = std::max(now, cc_queue_busy_until_);
  flow.qdelay.add(start - now);
  cc_qdelay_.add(start - now);
  cc_queue_busy_until_ = start + serialize;
  cc_backlog_bytes_ += pkt_bytes;
  cc_departures_.emplace_back(cc_queue_busy_until_, pkt_bytes);
  ++cc_packets_sent_;
  flow.in_flight.push_back(Packet{pkt_bytes, now});
  engine_.schedule_flat_at(cc_queue_busy_until_ + 2 * config_.propagation, &Link::on_flow_ack,
                           this, flow.id);
}

void Link::cc_prune_departures(sim::Time now) const {
  while (!cc_departures_.empty() && cc_departures_.front().first <= now) {
    cc_backlog_bytes_ = std::max(0.0, cc_backlog_bytes_ - cc_departures_.front().second);
    cc_departures_.pop_front();
  }
}

void Link::on_flow_ack(void* ctx, std::uint64_t id) {
  auto* self = static_cast<Link*>(ctx);
  auto it = self->flows_.find(id);
  if (it == self->flows_.end()) return;  // flow cancelled/failed meanwhile
  Flow& flow = *it->second;
  if (flow.in_flight.empty()) return;
  const Packet pkt = flow.in_flight.front();
  flow.in_flight.pop_front();
  flow.inflight_bytes = std::max(0.0, flow.inflight_bytes - pkt.bytes);
  const sim::Time now = self->engine_.now();
  const sim::Time rtt = now - pkt.sent_at;
  flow.last_rtt = rtt;
  if (flow.min_rtt <= 0 || rtt < flow.min_rtt) flow.min_rtt = rtt;
  const auto acked = static_cast<std::uint64_t>(std::llround(pkt.bytes));
  flow.delivered_bytes += acked;
  self->bytes_delivered_ += acked;
  flow.cc->on_ack(rtt, acked, now);
  if (flow.delivered_bytes >= flow.total_bytes) {
    self->cc_finish_flow(id, true);
    return;
  }
  self->cc_try_send(flow);
}

void Link::on_flow_loss(void* ctx, std::uint64_t id) {
  auto* self = static_cast<Link*>(ctx);
  auto it = self->flows_.find(id);
  if (it == self->flows_.end()) return;
  Flow& flow = *it->second;
  if (flow.loss_pending.empty()) return;
  const double bytes = flow.loss_pending.front();
  flow.loss_pending.pop_front();
  flow.inflight_bytes = std::max(0.0, flow.inflight_bytes - bytes);
  flow.remaining_bytes += bytes;  // retransmit
  flow.cc->on_loss(self->engine_.now());
  self->cc_try_send(flow);
}

void Link::on_flow_send(void* ctx, std::uint64_t id) {
  auto* self = static_cast<Link*>(ctx);
  auto it = self->flows_.find(id);
  if (it == self->flows_.end()) return;
  it->second->send_event = sim::kInvalidEvent;
  self->cc_try_send(*it->second);
}

void Link::on_flow_timeout(void* ctx, std::uint64_t id) {
  auto* self = static_cast<Link*>(ctx);
  auto it = self->flows_.find(id);
  if (it == self->flows_.end()) return;
  it->second->timeout_event = sim::kInvalidEvent;
  self->cc_finish_flow(id, false);
}

void Link::cc_finish_flow(TransferId id, bool ok) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow& flow = *it->second;
  if (flow.start_event != sim::kInvalidEvent) engine_.cancel(flow.start_event);
  if (flow.send_event != sim::kInvalidEvent) engine_.cancel(flow.send_event);
  if (flow.timeout_event != sim::kInvalidEvent) engine_.cancel(flow.timeout_event);
  cc_retired_delivered_ += flow.delivered_bytes;
  if (ok) {
    ++counters_.completed;
  } else {
    ++counters_.timed_out;
  }
  CompletionFn on_complete = std::move(flow.on_complete);
  flows_.erase(it);  // before the callback: it may start the next fetch
  if (on_complete) on_complete(ok);
}

std::vector<FlowStats> Link::flow_stats() const {
  std::vector<FlowStats> out;
  out.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) {
    FlowStats fs;
    fs.id = id;
    fs.total_bytes = flow->total_bytes;
    fs.delivered_bytes = flow->delivered_bytes;
    fs.inflight_bytes = static_cast<std::uint64_t>(std::llround(flow->inflight_bytes));
    fs.losses = flow->losses;
    fs.cwnd_bytes = flow->cc ? flow->cc->cwnd_bytes() : 0.0;
    fs.pacing_bytes_per_usec = flow->cc ? flow->cc->pacing_bytes_per_usec() : 0.0;
    fs.min_rtt = flow->min_rtt;
    fs.last_rtt = flow->last_rtt;
    fs.queue_delay = flow->qdelay;
    out.push_back(fs);
  }
  return out;
}

std::uint64_t Link::backlog_bytes() const {
  cc_prune_departures(engine_.now());
  return static_cast<std::uint64_t>(std::llround(cc_backlog_bytes_));
}

void Link::save(snapshot::ByteWriter& w) const {
  if (!cc_mode_) {
    w.u32(1);  // section version
    w.f64(config_.rate_mbps);
    w.b(down_);
    w.u64(bytes_delivered_);
    w.u64(next_id_);
    w.u64(counters_.completed);
    w.u64(counters_.cancelled);
    w.u64(counters_.timed_out);
    w.u64(counters_.outages);
    w.u64(queue_.size());
    for (const Pending& pending : queue_) {
      w.u64(pending.id);
      w.u64(pending.bytes);
    }
    w.u64(active_.id);
    if (active_.id != kInvalidTransfer) {
      w.u64(active_.total_bytes);
      w.f64(active_.remaining_bytes);
      w.i64(active_.setup_remaining);
      w.i64(active_.paced_at);
      w.i64(active_.timeout_remaining);
      w.i64(active_.timeout_armed_at);
    }
    return;
  }

  w.u32(2);  // section version: congestion-controlled flow engine
  save_net_spec(w, net_);
  w.f64(config_.rate_mbps);
  w.b(down_);
  w.u64(bytes_delivered_);
  w.u64(next_id_);
  w.u64(counters_.completed);
  w.u64(counters_.cancelled);
  w.u64(counters_.timed_out);
  w.u64(counters_.outages);
  w.f64(cc_loss_rate_);
  snapshot::write_rng(w, cc_loss_rng_);
  w.u64(cc_retired_delivered_);
  w.u64(cc_packets_sent_);
  w.u64(cc_packets_dropped_);
  w.u64(cc_qdelay_.samples);
  w.i64(cc_qdelay_.total);
  w.i64(cc_qdelay_.max);
  w.i64(cc_queue_busy_until_);
  cc_prune_departures(engine_.now());
  w.f64(cc_backlog_bytes_);
  w.u64(cc_departures_.size());
  for (const auto& [at, bytes] : cc_departures_) {
    w.i64(at);
    w.f64(bytes);
  }
  w.u64(flows_.size());
  for (const auto& [id, flow] : flows_) {
    w.u64(id);
    w.u64(flow->total_bytes);
    w.f64(flow->remaining_bytes);
    w.f64(flow->inflight_bytes);
    w.u64(flow->delivered_bytes);
    w.u64(flow->losses);
    w.b(flow->started);
    w.i64(flow->pace_next);
    w.i64(flow->min_rtt);
    w.i64(flow->last_rtt);
    w.u64(flow->qdelay.samples);
    w.i64(flow->qdelay.total);
    w.i64(flow->qdelay.max);
    w.u64(flow->in_flight.size());
    for (const Packet& pkt : flow->in_flight) {
      w.f64(pkt.bytes);
      w.i64(pkt.sent_at);
    }
    w.u64(flow->loss_pending.size());
    for (const double bytes : flow->loss_pending) w.f64(bytes);
    flow->cc->save(w);
  }
}

std::uint64_t Link::digest() const { return snapshot::state_digest(*this); }

}  // namespace mvqoe::net
