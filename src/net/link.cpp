#include "net/link.hpp"

#include <cmath>
#include <utility>

namespace mvqoe::net {

Link::Link(sim::Engine& engine, LinkConfig config) : engine_(engine), config_(config) {}

sim::Time Link::idle_transfer_time(std::uint64_t bytes) const noexcept {
  const double micros = static_cast<double>(bytes) * 8.0 / (config_.rate_mbps * 1e6) * 1e6;
  return config_.propagation + config_.per_transfer_overhead +
         static_cast<sim::Time>(std::ceil(micros));
}

void Link::transfer(std::uint64_t bytes, std::function<void()> on_complete) {
  queue_.push_back(Pending{bytes, std::move(on_complete)});
  if (!busy_) pump();
}

void Link::pump() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending next = std::move(queue_.front());
  queue_.pop_front();
  engine_.schedule(idle_transfer_time(next.bytes),
                   [this, next = std::move(next)]() mutable {
                     bytes_delivered_ += next.bytes;
                     if (next.on_complete) next.on_complete();
                     pump();
                   });
}

}  // namespace mvqoe::net
