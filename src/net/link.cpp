#include "net/link.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "snapshot/digest.hpp"

namespace mvqoe::net {

Link::Link(sim::Engine& engine, LinkConfig config) : engine_(engine), config_(config) {}

double Link::bytes_per_usec() const noexcept { return config_.rate_mbps / 8.0; }

sim::Time Link::idle_transfer_time(std::uint64_t bytes) const noexcept {
  const double micros = static_cast<double>(bytes) * 8.0 / (config_.rate_mbps * 1e6) * 1e6;
  return config_.propagation + config_.per_transfer_overhead +
         static_cast<sim::Time>(std::ceil(micros));
}

TransferId Link::transfer(std::uint64_t bytes, CompletionFn on_complete) {
  const TransferId id = next_id_++;
  queue_.push_back(Pending{id, bytes, std::move(on_complete)});
  pump();
  return id;
}

bool Link::cancel(TransferId id) {
  if (id == kInvalidTransfer) return false;
  if (active_.id == id) {
    if (active_.completion != sim::kInvalidEvent) engine_.cancel(active_.completion);
    if (active_.timeout != sim::kInvalidEvent) engine_.cancel(active_.timeout);
    active_ = Active{};
    ++counters_.cancelled;
    pump();
    return true;
  }
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      queue_.erase(it);
      ++counters_.cancelled;
      return true;
    }
  }
  return false;
}

void Link::set_rate_mbps(double rate_mbps) {
  if (active_.id != kInvalidTransfer && !down_) {
    // Fold progress made at the old rate, then reschedule the completion
    // from the bytes still outstanding at the new rate — a mid-transfer
    // rate drop (or outage recovery at a different rate) must stretch the
    // in-flight transfer, not be silently ignored.
    repace_active();
  }
  config_.rate_mbps = rate_mbps;
  if (active_.id != kInvalidTransfer && !down_) repace_active();
}

void Link::set_down(bool down) {
  if (down == down_) return;
  if (down) {
    ++counters_.outages;
    if (active_.id != kInvalidTransfer) {
      repace_active();  // freeze remaining bytes as of now
      if (active_.completion != sim::kInvalidEvent) {
        engine_.cancel(active_.completion);
        active_.completion = sim::kInvalidEvent;
      }
      suspend_timeout();
    }
    down_ = true;
  } else {
    down_ = false;
    if (active_.id != kInvalidTransfer) {
      active_.paced_at = engine_.now();  // outage time transferred no bytes
      arm_timeout();
      repace_active();
    }
    pump();
  }
}

void Link::repace_active() {
  // Fold wall time since the last pacing point into setup, then payload.
  sim::Time elapsed = engine_.now() - active_.paced_at;
  const sim::Time setup_used = std::min(elapsed, active_.setup_remaining);
  active_.setup_remaining -= setup_used;
  elapsed -= setup_used;
  if (elapsed > 0 && bytes_per_usec() > 0.0) {
    active_.remaining_bytes =
        std::max(0.0, active_.remaining_bytes - static_cast<double>(elapsed) * bytes_per_usec());
  }
  active_.paced_at = engine_.now();

  if (active_.completion != sim::kInvalidEvent) {
    engine_.cancel(active_.completion);
    active_.completion = sim::kInvalidEvent;
  }
  if (down_ || config_.rate_mbps <= 0.0) return;  // frozen until restored
  const sim::Time payload = static_cast<sim::Time>(
      std::ceil(active_.remaining_bytes / bytes_per_usec()));
  const sim::Time duration = std::max<sim::Time>(1, active_.setup_remaining + payload);
  active_.completion = engine_.schedule_flat(duration, &Link::on_completion, this);
}

void Link::on_completion(void* ctx, std::uint64_t) {
  auto* self = static_cast<Link*>(ctx);
  self->active_.completion = sim::kInvalidEvent;
  self->active_.remaining_bytes = 0.0;
  self->active_.setup_remaining = 0;
  self->finish_active(true);
}

void Link::finish_active(bool ok) {
  if (active_.completion != sim::kInvalidEvent) engine_.cancel(active_.completion);
  if (active_.timeout != sim::kInvalidEvent) engine_.cancel(active_.timeout);
  if (ok) {
    bytes_delivered_ += active_.total_bytes;
    ++counters_.completed;
  } else {
    ++counters_.timed_out;
  }
  CompletionFn on_complete = std::move(active_.on_complete);
  active_ = Active{};
  if (on_complete) on_complete(ok);
  pump();
}

void Link::arm_timeout() {
  if (active_.timeout_remaining <= 0 || active_.timeout != sim::kInvalidEvent) return;
  active_.timeout_armed_at = engine_.now();
  active_.timeout = engine_.schedule_flat(active_.timeout_remaining, &Link::on_timeout, this);
}

void Link::on_timeout(void* ctx, std::uint64_t) {
  auto* self = static_cast<Link*>(ctx);
  self->active_.timeout = sim::kInvalidEvent;
  self->finish_active(false);
}

void Link::suspend_timeout() {
  if (active_.timeout == sim::kInvalidEvent) return;
  engine_.cancel(active_.timeout);
  active_.timeout = sim::kInvalidEvent;
  active_.timeout_remaining = std::max<sim::Time>(
      1, active_.timeout_remaining - (engine_.now() - active_.timeout_armed_at));
}

void Link::pump() {
  if (active_.id != kInvalidTransfer || queue_.empty()) return;
  Pending next = std::move(queue_.front());
  queue_.pop_front();
  active_.id = next.id;
  active_.total_bytes = next.bytes;
  active_.remaining_bytes = static_cast<double>(next.bytes);
  active_.setup_remaining = config_.propagation + config_.per_transfer_overhead;
  active_.paced_at = engine_.now();
  active_.on_complete = std::move(next.on_complete);
  active_.timeout_remaining = config_.transfer_timeout;
  if (!down_) {
    arm_timeout();
    if (config_.rate_mbps > 0.0) repace_active();
  }
}

void Link::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.f64(config_.rate_mbps);
  w.b(down_);
  w.u64(bytes_delivered_);
  w.u64(next_id_);
  w.u64(counters_.completed);
  w.u64(counters_.cancelled);
  w.u64(counters_.timed_out);
  w.u64(counters_.outages);
  w.u64(queue_.size());
  for (const Pending& pending : queue_) {
    w.u64(pending.id);
    w.u64(pending.bytes);
  }
  w.u64(active_.id);
  if (active_.id != kInvalidTransfer) {
    w.u64(active_.total_bytes);
    w.f64(active_.remaining_bytes);
    w.i64(active_.setup_remaining);
    w.i64(active_.paced_at);
    w.i64(active_.timeout_remaining);
    w.i64(active_.timeout_armed_at);
  }
}

std::uint64_t Link::digest() const { return snapshot::state_digest(*this); }

}  // namespace mvqoe::net
