// Pluggable congestion control for the shared-bottleneck link (ROADMAP
// item 3). The paper provisioned its WiFi testbed so the network was
// never the bottleneck (§4.1); opening this axis lets scenarios run
// memory pressure × network pressure jointly. A `NetSpec` names the
// controller that drives every flow on the link:
//
//   fifo   — the paper's serialized link, byte-identical to the
//            pre-refactor `Link` (no flow engine is instantiated);
//   cubic  — loss-based cwnd growth (Cubic window curve) against the
//            droptail bottleneck queue;
//   bbr    — BBR-style pacing-gain cycle off the measured bottleneck
//            bandwidth × min-RTT;
//   c4     — delay-based "most restrictive signal" in the spirit of the
//            C4 spec: of the delay, loss and bandwidth signals, the one
//            demanding the smallest window wins.
//
// Controllers are factory-registered by name and must be fully
// deterministic: state is plain arithmetic off (rtt, bytes_acked, loss)
// callbacks, serialized into the LINK v2 snapshot section for digesting.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe::net {

/// Which congestion controller the link's flows run, plus optional
/// name=value tuning parameters (mss, queue_kb, ...). The default spec
/// selects the legacy serialized FIFO path; everything downstream
/// (SCEN encoding, sweep/fleet config tails, snapshots) keeps its
/// historical bytes when `is_default()` holds.
struct NetSpec {
  std::string cc = "fifo";
  std::vector<std::pair<std::string, double>> params;

  bool is_default() const noexcept { return cc == "fifo" && params.empty(); }
};

/// Serialize / parse a NetSpec (same shape as mem::save_policy_spec):
/// str(cc), u32(param count), then (str, f64) pairs.
void save_net_spec(snapshot::ByteWriter& w, const NetSpec& spec);
NetSpec load_net_spec(snapshot::ByteReader& r);

/// Registered controller names, fifo first.
const std::vector<std::string>& cc_names();

/// Throws std::runtime_error when the spec names an unknown controller
/// or carries malformed parameters (validated by construction).
void validate_net_spec(const NetSpec& spec);

/// First parameter named `key`, or `fallback` when absent.
double net_param_or(const NetSpec& spec, const std::string& key, double fallback);

/// Per-flow congestion controller. The flow engine calls on_ack with
/// every in-order ACK (rtt sample in microseconds, bytes newly acked)
/// and on_loss when a drop is detected; the controller answers with a
/// congestion window in bytes and an optional pacing rate
/// (bytes/microsecond, 0 = unpaced, window-limited only).
class CongestionController {
 public:
  virtual ~CongestionController() = default;
  virtual const char* name() const noexcept = 0;
  virtual void on_ack(sim::Time rtt, std::uint64_t bytes_acked, sim::Time now) = 0;
  virtual void on_loss(sim::Time now) = 0;
  virtual double cwnd_bytes() const noexcept = 0;
  virtual double pacing_bytes_per_usec() const noexcept = 0;
  /// Serialize controller state for the LINK v2 section (digest only;
  /// restore is replay-based per DESIGN.md §10).
  virtual void save(snapshot::ByteWriter& w) const = 0;
};

/// Factory: construct the controller `spec` names for one flow.
/// Returns nullptr for "fifo" (the legacy path needs no controller);
/// throws std::runtime_error for unknown names.
std::unique_ptr<CongestionController> make_congestion_controller(const NetSpec& spec);

}  // namespace mvqoe::net
