#include "net/cc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mvqoe::net {
namespace {

constexpr double kMssBytes = 1500.0;
constexpr double kCwndFloor = 2.0 * kMssBytes;
constexpr double kCwndCeiling = 64.0 * 1024.0 * 1024.0;

double clamp_cwnd(double cwnd) { return std::clamp(cwnd, kCwndFloor, kCwndCeiling); }

// --- Cubic ------------------------------------------------------------------
//
// Loss-based: the window follows the cubic curve
// W(t) = C * (t - K)^3 + w_max anchored at the last loss; a drop
// multiplies the window by beta and restarts the epoch. Against the
// droptail bottleneck this produces the classic sawtooth.
class CubicCc final : public CongestionController {
 public:
  explicit CubicCc(const NetSpec& spec)
      : mss_(net_param_or(spec, "mss", kMssBytes)),
        cwnd_(10.0 * mss_) {}

  const char* name() const noexcept override { return "cubic"; }

  void on_ack(sim::Time /*rtt*/, std::uint64_t /*bytes_acked*/, sim::Time now) override {
    if (epoch_start_ < 0) {
      epoch_start_ = now;
      w_max_ = std::max(w_max_, cwnd_);
      k_ = std::cbrt(w_max_ * (1.0 - kBeta) / (kC * mss_));
    }
    const double t = static_cast<double>(now - epoch_start_) * 1e-6;  // seconds
    const double target = kC * mss_ * std::pow(t - k_, 3.0) + w_max_;
    if (target > cwnd_) {
      cwnd_ = clamp_cwnd(target);
    } else {
      cwnd_ = clamp_cwnd(cwnd_ + 0.05 * mss_);  // TCP-friendly creep
    }
  }

  void on_loss(sim::Time /*now*/) override {
    w_max_ = cwnd_;
    cwnd_ = clamp_cwnd(cwnd_ * kBeta);
    epoch_start_ = -1;  // restart the cubic epoch on the next ack
  }

  double cwnd_bytes() const noexcept override { return cwnd_; }
  double pacing_bytes_per_usec() const noexcept override { return 0.0; }

  void save(snapshot::ByteWriter& w) const override {
    w.f64(cwnd_);
    w.f64(w_max_);
    w.f64(k_);
    w.i64(epoch_start_);
  }

 private:
  static constexpr double kBeta = 0.7;
  static constexpr double kC = 0.4;

  double mss_;
  double cwnd_;
  double w_max_ = 0.0;
  double k_ = 0.0;
  sim::Time epoch_start_ = -1;
};

// --- BBR-style --------------------------------------------------------------
//
// Model-based: estimate the bottleneck bandwidth as a decaying max of
// per-ack delivery-rate samples and the path's min RTT, then pace at
// gain × btlbw while capping the window at 2 × BDP. The gain cycles
// through the standard 8-phase probe pattern, one phase per min-RTT.
class BbrCc final : public CongestionController {
 public:
  explicit BbrCc(const NetSpec& spec) : mss_(net_param_or(spec, "mss", kMssBytes)) {}

  const char* name() const noexcept override { return "bbr"; }

  void on_ack(sim::Time rtt, std::uint64_t bytes_acked, sim::Time now) override {
    if (rtt > 0 && (min_rtt_ <= 0 || rtt < min_rtt_)) min_rtt_ = rtt;
    if (rtt > 0) {
      const double sample = static_cast<double>(bytes_acked) / static_cast<double>(rtt);
      btlbw_ = sample >= btlbw_ ? sample : std::max(sample, btlbw_ * 0.995);
    }
    if (min_rtt_ > 0 && now - phase_started_ >= min_rtt_) {
      phase_started_ = now;
      phase_ = (phase_ + 1) % 8;
    }
  }

  void on_loss(sim::Time /*now*/) override {
    // BBR ignores isolated losses; a droptail burst still trims the
    // model slightly so the estimator can re-probe.
    btlbw_ *= 0.98;
  }

  double cwnd_bytes() const noexcept override {
    if (btlbw_ <= 0.0 || min_rtt_ <= 0) return 10.0 * mss_;
    return clamp_cwnd(2.0 * btlbw_ * static_cast<double>(min_rtt_));
  }

  double pacing_bytes_per_usec() const noexcept override {
    if (btlbw_ <= 0.0) return 0.0;  // startup: unpaced until a sample lands
    return kGainCycle[phase_] * btlbw_;
  }

  void save(snapshot::ByteWriter& w) const override {
    w.f64(btlbw_);
    w.i64(min_rtt_);
    w.i64(phase_started_);
    w.u32(static_cast<std::uint32_t>(phase_));
  }

 private:
  static constexpr double kGainCycle[8] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

  double mss_;
  double btlbw_ = 0.0;           // bytes per microsecond
  sim::Time min_rtt_ = 0;
  sim::Time phase_started_ = 0;
  std::size_t phase_ = 0;
};

// --- C4-spirit --------------------------------------------------------------
//
// Delay-based "most restrictive signal": every RTT the controller
// evaluates its three signals — queuing delay above target, loss seen
// this round, and additive probe — and applies whichever demands the
// smallest window. Media-friendly: it backs off on standing queues
// long before droptail losses appear.
class C4Cc final : public CongestionController {
 public:
  explicit C4Cc(const NetSpec& spec)
      : mss_(net_param_or(spec, "mss", kMssBytes)),
        delay_target_(static_cast<sim::Time>(net_param_or(spec, "c4_delay_target_us", 10000.0))),
        cwnd_(10.0 * mss_) {}

  const char* name() const noexcept override { return "c4"; }

  void on_ack(sim::Time rtt, std::uint64_t /*bytes_acked*/, sim::Time now) override {
    if (rtt > 0 && (min_rtt_ <= 0 || rtt < min_rtt_)) min_rtt_ = rtt;
    last_rtt_ = rtt;
    if (min_rtt_ <= 0 || now - round_started_ < min_rtt_) return;
    round_started_ = now;
    const sim::Time queuing = last_rtt_ > min_rtt_ ? last_rtt_ - min_rtt_ : 0;
    // Most restrictive of: loss backoff, delay backoff, additive probe.
    double candidate = cwnd_ + mss_;
    if (queuing > delay_target_) candidate = std::min(candidate, cwnd_ * 0.9);
    if (loss_this_round_) candidate = std::min(candidate, cwnd_ * 0.7);
    loss_this_round_ = false;
    cwnd_ = clamp_cwnd(candidate);
  }

  void on_loss(sim::Time /*now*/) override { loss_this_round_ = true; }

  double cwnd_bytes() const noexcept override { return cwnd_; }

  double pacing_bytes_per_usec() const noexcept override {
    // Pace the window over the observed RTT to avoid self-inflicted
    // bursts (the delay signal would otherwise chase its own queue).
    if (min_rtt_ <= 0) return 0.0;
    const sim::Time horizon = std::max(last_rtt_, min_rtt_);
    return cwnd_ / static_cast<double>(horizon);
  }

  void save(snapshot::ByteWriter& w) const override {
    w.f64(cwnd_);
    w.i64(min_rtt_);
    w.i64(last_rtt_);
    w.i64(round_started_);
    w.b(loss_this_round_);
  }

 private:
  double mss_;
  sim::Time delay_target_;
  double cwnd_;
  sim::Time min_rtt_ = 0;
  sim::Time last_rtt_ = 0;
  sim::Time round_started_ = 0;
  bool loss_this_round_ = false;
};

}  // namespace

void save_net_spec(snapshot::ByteWriter& w, const NetSpec& spec) {
  w.str(spec.cc);
  w.u32(static_cast<std::uint32_t>(spec.params.size()));
  for (const auto& [key, value] : spec.params) {
    w.str(key);
    w.f64(value);
  }
}

NetSpec load_net_spec(snapshot::ByteReader& r) {
  NetSpec spec;
  spec.cc = r.str();
  const std::uint32_t count = r.u32();
  spec.params.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string key = r.str();
    const double value = r.f64();
    spec.params.emplace_back(std::move(key), value);
  }
  return spec;
}

const std::vector<std::string>& cc_names() {
  static const std::vector<std::string> names = {"fifo", "cubic", "bbr", "c4"};
  return names;
}

void validate_net_spec(const NetSpec& spec) {
  (void)make_congestion_controller(spec);
}

double net_param_or(const NetSpec& spec, const std::string& key, double fallback) {
  for (const auto& [name, value] : spec.params) {
    if (name == key) return value;
  }
  return fallback;
}

std::unique_ptr<CongestionController> make_congestion_controller(const NetSpec& spec) {
  if (spec.cc == "fifo") return nullptr;
  if (spec.cc == "cubic") return std::make_unique<CubicCc>(spec);
  if (spec.cc == "bbr") return std::make_unique<BbrCc>(spec);
  if (spec.cc == "c4") return std::make_unique<C4Cc>(spec);
  throw std::invalid_argument("net: unknown congestion controller '" + spec.cc + "'");
}

}  // namespace mvqoe::net
