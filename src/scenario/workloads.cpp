#include "scenario/workloads.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "proc/app_catalog.hpp"
#include "snapshot/digest.hpp"
#include "snapshot/rng_io.hpp"
#include "stats/rng.hpp"

namespace mvqoe::scenario {

namespace {

/// Session 0 keeps the legacy fourccs (byte-identity with pre-scenario
/// blobs); later sessions get numbered variants.
std::uint32_t indexed_tag(const char (&base)[5], const char (&numbered)[4], std::size_t index) {
  if (index == 0) return snapshot::tag(base);
  if (index > 9) throw std::invalid_argument("scenario: more than 10 workloads of one kind");
  const char digit = static_cast<char>('0' + index);
  const char buf[5] = {numbered[0], numbered[1], numbered[2], digit, '\0'};
  return snapshot::tag(buf);
}

std::string indexed_name(const char* base, std::size_t index) {
  return index == 0 ? std::string(base) : std::string(base) + std::to_string(index);
}

}  // namespace

VideoSessionWorkload::VideoSessionWorkload(VideoWorkloadSpec spec, video::PlayerPlatform platform,
                                           std::size_t index)
    : spec_(std::move(spec)), platform_(platform), index_(index) {}

VideoSessionWorkload::~VideoSessionWorkload() = default;

void VideoSessionWorkload::attach(core::Testbed& testbed) { (void)testbed; }

void VideoSessionWorkload::set_cell(int height, int fps, std::uint64_t video_seed) {
  if (session_ != nullptr) {
    throw std::logic_error("scenario: set_cell after the session started");
  }
  spec_.height = height;
  spec_.fps = fps;
  spec_.seed = video_seed;
}

void VideoSessionWorkload::start(core::Testbed& testbed) {
  if (session_ != nullptr) return;
  core::Testbed& tb = testbed;

  video::SessionConfig config = spec_.session_override.value_or(video::SessionConfig{});
  if (!spec_.session_override.has_value()) {
    config.asset = spec_.asset_override.value_or(video::dubai_flow_motion(spec_.duration_s));
    config.profile = video::PlayerProfile::for_platform(platform_);
    const auto rung = config.ladder.find(spec_.height, spec_.fps);
    config.initial_rung = rung.value_or(config.ladder.rungs().front());
    config.seed = stats::derive_seed(spec_.seed, 0xBEEF);
  }
  if (spec_.recovery.has_value()) config.recovery = *spec_.recovery;
  if (!config.next_pid) {
    config.next_pid = [&tb] { return tb.am.next_pid(); };
  }
  config_ = config;

  session_ = std::make_unique<video::VideoSession>(tb.engine, tb.scheduler, tb.memory, tb.link,
                                                   tb.tracer, config_, spec_.abr);
  tb.components().add(static_cast<int>(10 + 2 * index_), indexed_tag("VIDE", "VID", index_),
                      indexed_name("video", index_),
                      [this](snapshot::ByteWriter& w) { session_->save(w); },
                      [this] { return session_->digest(); });
  video_start_ = tb.engine.now();

  if (!spec_.fault_plan.empty()) {
    fault::FaultTargets targets;
    targets.engine = &tb.engine;
    targets.link = &tb.link;
    targets.storage = &tb.storage;
    targets.scheduler = &tb.scheduler;
    targets.memory = &tb.memory;
    targets.tracer = &tb.tracer;
    injector_ = std::make_unique<fault::FaultInjector>(targets, spec_.fault_plan);
    injector_->set_kill_target([this] { return session_->pid(); });
    injector_->arm(video_start_);
    tb.components().add(static_cast<int>(11 + 2 * index_), indexed_tag("FALT", "FLT", index_),
                        indexed_name("fault", index_),
                        [this](snapshot::ByteWriter& w) { injector_->save(w); },
                        [this] { return injector_->digest(); });
  }

  session_->start(tb.am.next_pid(), [this] { finished_ = true; });
}

void VideoSessionWorkload::finalize(core::Testbed& testbed) {
  (void)testbed;
  if (injector_ != nullptr) injector_->disarm();
}

core::VideoRunResult VideoSessionWorkload::result() const {
  if (session_ == nullptr) {
    throw std::logic_error("scenario: result() before the session started");
  }
  core::VideoRunResult result;
  result.metrics = session_->metrics();
  if (result.metrics.crashed) {
    result.status = core::RunStatus::Crashed;
    result.failure_reason = "client killed with no relaunch budget left";
  } else if (result.metrics.aborted) {
    result.status = core::RunStatus::Aborted;
    result.failure_reason = result.metrics.abort_reason;
  } else if (!finished_) {
    result.status = core::RunStatus::TimedOut;
    result.failure_reason = "session did not finish within the run horizon";
  }
  qoe::RunOutcome& outcome = result.outcome;
  outcome.crashed = result.metrics.crashed;
  outcome.aborted = result.metrics.aborted;
  outcome.relaunches = result.metrics.relaunches;
  outcome.rebuffer_events = result.metrics.rebuffer_events;
  outcome.relaunch_downtime_s = sim::to_seconds(result.metrics.relaunch_downtime);
  if (!finished_ && !result.metrics.crashed) {
    // Unplayable without a kill (starved forever): classify every frame
    // that never got presented as dropped (paper: "the video was either
    // unplayable or the video client crashed").
    const auto planned =
        static_cast<std::int64_t>(config_.asset.duration_s) * config_.initial_rung.fps;
    result.metrics.frames_dropped =
        std::max(result.metrics.frames_dropped, planned - result.metrics.frames_presented);
  }
  outcome.drop_rate = result.metrics.drop_rate();
  if (result.metrics.crashed &&
      result.metrics.frames_presented + result.metrics.frames_dropped < config_.initial_rung.fps) {
    // Killed before a single second played: unplayable (paper: "the
    // video was either unplayable or the video client crashed").
    outcome.drop_rate = 1.0;
  }
  outcome.mean_pss_mb = result.metrics.pss_mb.mean();
  outcome.peak_pss_mb = result.metrics.pss_mb.empty() ? 0.0 : result.metrics.pss_mb.max();
  if (result.metrics.playback_start >= 0) {
    outcome.startup_delay_s = sim::to_seconds(result.metrics.playback_start - video_start_);
  }
  return result;
}

BackgroundDutyWorkload::BackgroundDutyWorkload(std::string label, int count)
    : label_(std::move(label)), count_(count) {}

void BackgroundDutyWorkload::attach(core::Testbed& testbed) {
  core::Testbed& tb = testbed;
  // Half the opened apps keep working in the background (music,
  // messengers syncing, feeds refreshing): they hold part of their
  // working set hot, keep touching it, and — like real Android services
  // — RESTART a few seconds after lmkd kills them. That restart churn
  // is what makes organic pressure persist through the whole video
  // (paper §4.3 and the continuous kills of Fig 15).
  relaunch_ = std::make_shared<std::function<void(proc::AppSpec, bool)>>();
  // Weak refs only inside the chain: the workload owns the function for
  // the whole run, and a strong self-capture would be an unfreeable
  // shared_ptr cycle.
  std::weak_ptr<std::function<void(proc::AppSpec, bool)>> relaunch = relaunch_;
  *relaunch_ = [&tb, relaunch](proc::AppSpec app, bool active) {
    const auto pid = tb.am.next_pid();
    tb.memory.register_process(pid, app.name, mem::OomAdj::kService, [&tb, relaunch, app, active] {
      tb.engine.schedule(sim::sec(4), [relaunch, app, active] {
        if (const auto fn = relaunch.lock()) (*fn)(app, active);
      });
    });
    // Restarted trimmed: services come back with a reduced heap.
    const mem::Pages heap = app.heap_pages * 3 / 5;
    tb.memory.alloc_anon(pid, heap, 0, [&tb, pid, heap, active](bool ok) {
      if (ok && active) tb.memory.set_hot_pages(pid, heap / 3);
    });
    tb.memory.map_file(pid, app.code_pages / 2, 0, nullptr);
    if (active) tb.add_background_duty(pid);
  };

  const auto& catalog = proc::top_free_apps();
  for (int i = 0; i < count_; ++i) {
    const proc::AppSpec& app = catalog[static_cast<std::size_t>(i) % catalog.size()];
    const bool active = i % 2 == 0;
    const auto pid = tb.am.launch(app, [&tb, relaunch, app, active] {
      tb.engine.schedule(sim::sec(4), [relaunch, app, active] {
        if (const auto fn = relaunch.lock()) (*fn)(app, active);
      });
    });
    tb.engine.run_until(tb.engine.now() + sim::msec(800));
    if (active && tb.memory.registry().alive(pid)) {
      tb.memory.set_oom_adj(pid, mem::OomAdj::kService);
      tb.memory.set_hot_pages(pid, app.heap_pages / 3);
      tb.add_background_duty(pid);
    }
    observed_ = std::max(observed_, tb.memory.level());
  }
  // All opened apps end up in the background once the player launches.
  tb.engine.run_until(tb.engine.now() + sim::sec(1));
  observed_ = std::max(observed_, tb.memory.level());
}

PressureInducerWorkload::PressureInducerWorkload(std::string label, mem::PressureLevel target,
                                                 std::size_t index)
    : label_(std::move(label)), target_(target), index_(index) {}

PressureInducerWorkload::~PressureInducerWorkload() = default;

void PressureInducerWorkload::attach(core::Testbed& testbed) {
  core::Testbed& tb = testbed;
  inducer_ = std::make_unique<core::PressureInducer>(tb, target_);
  tb.components().add(static_cast<int>(110 + index_), indexed_tag("INDC", "IND", index_),
                      indexed_name("inducer", index_),
                      [this](snapshot::ByteWriter& w) { inducer_->save(w); },
                      [this] { return inducer_->digest(); });
  // Shared flags: the signal callback may fire after this wait loop
  // times out (while the video is already playing).
  auto reached = std::make_shared<bool>(false);
  auto level_at_signal = std::make_shared<mem::PressureLevel>(mem::PressureLevel::Normal);
  inducer_->start([reached, level_at_signal, &tb] {
    *reached = true;
    // Level at the moment the target signal arrived (it keeps
    // oscillating afterwards with the kill/respawn churn).
    *level_at_signal = tb.memory.level();
  });
  // Give the inducer up to 5 simulated minutes to reach the target.
  const sim::Time deadline = tb.engine.now() + sim::minutes(5);
  while (!*reached && tb.engine.now() < deadline) {
    tb.engine.run_until(tb.engine.now() + sim::msec(200));
  }
  observed_ = *level_at_signal;
}

CrossTrafficWorkload::CrossTrafficWorkload(CrossTrafficWorkloadSpec spec, std::size_t index)
    : spec_(std::move(spec)),
      index_(index),
      rng_(stats::derive_seed(spec_.seed, 0xC4C4)) {}

CrossTrafficWorkload::~CrossTrafficWorkload() = default;

void CrossTrafficWorkload::start(core::Testbed& testbed) {
  core::Testbed& tb = testbed;
  tb.components().add(static_cast<int>(130 + index_), indexed_tag("XTRC", "XTR", index_),
                      indexed_name("cross", index_),
                      [this](snapshot::ByteWriter& w) { save(w); }, [this] { return digest(); });
  bulk_.resize(static_cast<std::size_t>(std::max(0, spec_.bulk_flows)));
  onoff_.resize(static_cast<std::size_t>(std::max(0, spec_.onoff_flows)));
  // Seeded phase jitter: each lane kicks off within its first second so
  // competing flows don't toggle in lockstep. start() must not advance
  // the engine, so the kick-offs are scheduled, never run inline.
  for (std::size_t i = 0; i < bulk_.size(); ++i) {
    const sim::Time delay = 1 + rng_.uniform_int(0, sim::msec(900));
    tb.engine.schedule(delay, [this, &tb, i] {
      if (!stopped_) start_chunk(tb, /*bulk=*/true, i);
    });
  }
  for (std::size_t i = 0; i < onoff_.size(); ++i) {
    const sim::Time delay = 1 + rng_.uniform_int(0, sim::msec(900));
    tb.engine.schedule(delay, [this, &tb, i] {
      if (!stopped_) toggle(tb, i);
    });
  }
}

void CrossTrafficWorkload::start_chunk(core::Testbed& tb, bool bulk, std::size_t slot) {
  FlowLane& lane = bulk ? bulk_[slot] : onoff_[slot];
  lane.id = tb.link.transfer(spec_.chunk_bytes, [this, &tb, bulk, slot](bool ok) {
    FlowLane& done = bulk ? bulk_[slot] : onoff_[slot];
    done.id = net::kInvalidTransfer;
    if (ok) ++done.chunks;
    // Chain the next chunk while the lane is live (bulk: always; on/off:
    // only inside an on-phase).
    if (!stopped_ && done.on) start_chunk(tb, bulk, slot);
  });
}

void CrossTrafficWorkload::toggle(core::Testbed& tb, std::size_t slot) {
  FlowLane& lane = onoff_[slot];
  lane.on = !lane.on;
  if (lane.on) {
    start_chunk(tb, /*bulk=*/false, slot);
  } else if (lane.id != net::kInvalidTransfer) {
    tb.link.cancel(lane.id);
    lane.id = net::kInvalidTransfer;
  }
  const sim::Time phase = sim::sec(lane.on ? std::max(1, spec_.on_s) : std::max(1, spec_.off_s));
  tb.engine.schedule(phase, [this, &tb, slot] {
    if (!stopped_) toggle(tb, slot);
  });
}

void CrossTrafficWorkload::finalize(core::Testbed& testbed) {
  stopped_ = true;
  for (FlowLane& lane : bulk_) {
    if (lane.id != net::kInvalidTransfer) testbed.link.cancel(lane.id);
    lane.id = net::kInvalidTransfer;
  }
  for (FlowLane& lane : onoff_) {
    if (lane.id != net::kInvalidTransfer) testbed.link.cancel(lane.id);
    lane.id = net::kInvalidTransfer;
  }
}

std::uint64_t CrossTrafficWorkload::chunks_completed() const noexcept {
  std::uint64_t total = 0;
  for (const FlowLane& lane : bulk_) total += lane.chunks;
  for (const FlowLane& lane : onoff_) total += lane.chunks;
  return total;
}

void CrossTrafficWorkload::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.b(stopped_);
  snapshot::write_rng(w, rng_);
  w.u64(bulk_.size());
  for (const FlowLane& lane : bulk_) {
    w.u64(lane.id);
    w.u64(lane.chunks);
  }
  w.u64(onoff_.size());
  for (const FlowLane& lane : onoff_) {
    w.u64(lane.id);
    w.b(lane.on);
    w.u64(lane.chunks);
  }
}

std::uint64_t CrossTrafficWorkload::digest() const { return snapshot::state_digest(*this); }

}  // namespace mvqoe::scenario
