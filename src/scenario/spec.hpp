// Declarative scenario description (DESIGN.md §11).
//
// A ScenarioSpec is the single source of truth for one simulated device
// world: the device (named paper family or explicit profile), the
// pressure regime, the world/seed scheme, and an ordered list of
// WorkloadSpecs — each one actor on the device. Benches, the warm-start
// sweep, tools/mvqoe_replay and the MVQS blob all consume this one type
// instead of re-assembling (family, cell, state, seed) tuples by hand.
//
// The legacy single-video surface maps onto it exactly: a VideoRunSpec
// is a ScenarioSpec with one VideoWorkloadSpec (from_run_spec), and the
// old record/replay tuple is single_video(). Multi-session scenarios —
// two players contending, player + memory hog — are just longer
// workload lists on the same driver.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/run_spec.hpp"
#include "mem/policy.hpp"
#include "net/cc.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe::scenario {

/// One video playback session. Serializable except for the runtime-only
/// hooks (abr / session_override / asset_override / recovery) —
/// save_scenario throws if a spec carrying those is recorded.
struct VideoWorkloadSpec {
  std::string label = "video";
  int height = 1080;
  int fps = 30;
  int duration_s = 60;
  /// Player platform; unset = the scenario family's platform.
  std::optional<video::PlayerPlatform> platform;
  /// Video RNG stream for this session.
  std::uint64_t seed = 1;
  /// Fault script armed at video start (times relative to video start;
  /// kill entries with pid 0 target this session's client).
  fault::FaultPlan fault_plan;
  // --- Runtime-only knobs (not serializable) ---
  /// Asset override; unset = dubai_flow_motion(duration_s).
  std::optional<video::VideoAsset> asset_override;
  video::AbrPolicy* abr = nullptr;
  std::optional<video::SessionConfig> session_override;
  std::optional<video::RecoveryConfig> recovery;
};

/// A cohort of organically-launched background apps (paper §4.3) beyond
/// the scenario-level organic_background_apps count.
struct BackgroundAppsWorkloadSpec {
  std::string label = "background";
  int count = 8;
};

/// An extra MP-Simulator-style pressure inducer (memory hog) on top of
/// the scenario-level pressure state.
struct PressureWorkloadSpec {
  std::string label = "pressure";
  mem::PressureLevel target = mem::PressureLevel::Moderate;
};

/// Competing traffic through the shared bottleneck (meaningful when the
/// scenario's NetSpec selects a congestion controller): `bulk_flows`
/// long-lived chunked downloads that restart as soon as a chunk lands,
/// plus `onoff_flows` flows alternating `on_s` seconds of transfer with
/// `off_s` seconds of silence — the bursty competitor that perturbs
/// delay-based controllers hardest.
struct CrossTrafficWorkloadSpec {
  std::string label = "cross";
  int bulk_flows = 1;
  int onoff_flows = 0;
  int on_s = 2;
  int off_s = 2;
  std::uint64_t chunk_bytes = 2 * 1024 * 1024;
  /// Phase-jitter RNG stream (start offsets per flow).
  std::uint64_t seed = 1;
};

using WorkloadSpec = std::variant<VideoWorkloadSpec, BackgroundAppsWorkloadSpec,
                                  PressureWorkloadSpec, CrossTrafficWorkloadSpec>;

/// Scenario families map to the paper's evaluation setups:
///   fig09 / fig16 / table1 — Nokia 1, Firefox
///   fig11                  — Nexus 5, Firefox
///   fig18                  — Nexus 5, ExoPlayer
///   fig19                  — Nexus 5, Chrome
struct ScenarioSpec {
  /// Paper family; "" = custom (device_override required).
  std::string family = "fig16";
  /// Explicit device profile; wins over the family's preset.
  std::optional<core::DeviceProfile> device_override;
  /// Pressure regime established before workloads start: synthetic
  /// MP-Simulator induction to `state`, or — when
  /// organic_background_apps > 0 — organic background-app churn.
  mem::PressureLevel state = mem::PressureLevel::Normal;
  int organic_background_apps = 0;
  /// World stream seed (boot + pressure). Also the default video stream
  /// for single_video()/from_run_spec scenarios.
  std::uint64_t seed = 1;
  /// Override the world stream when it must differ from `seed` (the
  /// warm-start sweep's shared-world groups).
  std::optional<std::uint64_t> world_seed;
  bool run_watchdog = false;
  /// Memory reclaim/kill policy the world runs (mem/policy.hpp). The
  /// default (baseline) serializes as SCEN v2, byte-identical to
  /// pre-policy blobs; anything else bumps the section to v3.
  mem::MemPolicySpec mem_policy;
  /// Congestion-control spec for the link (net/cc.hpp). The default
  /// (fifo, no params) keeps the serial link and — together with an
  /// absence of cross-traffic workloads — the v2/v3 SCEN encoding;
  /// anything else bumps the section to v4.
  net::NetSpec net;
  std::vector<WorkloadSpec> workloads;
};

/// All recognised family names, in canonical order.
const std::vector<std::string>& scenario_families();

/// Device / platform resolution. Throws std::runtime_error for an
/// unknown family (and for family == "" without a device_override).
core::DeviceProfile device_for(const ScenarioSpec& scen);
video::PlayerPlatform platform_for(const ScenarioSpec& scen, const VideoWorkloadSpec& video);

/// The legacy record/replay tuple: one video session whose stream
/// follows the scenario seed.
ScenarioSpec single_video(std::string family, int height, int fps, int duration_s,
                          mem::PressureLevel state, std::uint64_t seed,
                          fault::FaultPlan fault_plan = {});

/// Translate the legacy single-video spec; core::VideoExperiment is a
/// thin adapter over the scenario driver via this mapping.
ScenarioSpec from_run_spec(const core::VideoRunSpec& spec);

/// The i-th video workload (throws if out of range) — convenience for
/// retargeting cells and asserting on loaded specs.
VideoWorkloadSpec& video_spec(ScenarioSpec& scen, std::size_t index = 0);
const VideoWorkloadSpec& video_spec(const ScenarioSpec& scen, std::size_t index = 0);
std::size_t video_count(const ScenarioSpec& scen);

/// SCEN blob section. save_scenario writes version 2 (workload lists);
/// load_scenario accepts both v2 and the legacy v1 single-video layout.
/// save_scenario throws std::invalid_argument for specs that carry
/// non-serializable runtime hooks (abr, overrides, device_override).
void save_scenario(snapshot::ByteWriter& w, const ScenarioSpec& scen);
ScenarioSpec load_scenario(snapshot::ByteReader& r);

void save_fault_plan(snapshot::ByteWriter& w, const fault::FaultPlan& plan);
fault::FaultPlan load_fault_plan(snapshot::ByteReader& r);

}  // namespace mvqoe::scenario
