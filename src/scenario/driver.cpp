#include "scenario/driver.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/system_activity.hpp"

namespace mvqoe::scenario {

namespace {

/// Severity for the scenario-level rollup: a crash anywhere outranks an
/// abort outranks a timeout.
int severity(core::RunStatus status) {
  switch (status) {
    case core::RunStatus::Completed: return 0;
    case core::RunStatus::TimedOut: return 1;
    case core::RunStatus::Aborted: return 2;
    case core::RunStatus::Crashed: return 3;
  }
  return 0;
}

}  // namespace

ScenarioDriver::ScenarioDriver(ScenarioSpec spec) : spec_(std::move(spec)) {
  testbed_ = std::make_unique<core::Testbed>(
      device_for(spec_), spec_.world_seed.value_or(spec_.seed), spec_.mem_policy, spec_.net);
  // The scenario-level pressure regime comes first (it must be
  // established before any session starts — §4.1); the spec's workload
  // list follows in order. The legacy experiment always ran a synthetic
  // inducer (even at a Normal target), so the scenario does too.
  std::size_t inducers = 0;
  if (spec_.organic_background_apps > 0) {
    testbed_->add_workload(
        std::make_unique<BackgroundDutyWorkload>("organic", spec_.organic_background_apps));
  } else {
    testbed_->add_workload(
        std::make_unique<PressureInducerWorkload>("pressure", spec_.state, inducers++));
  }
  // Fail at construction, not at start(): the numbered fourcc tags
  // (VID1..VID9, FLT1.., IND1..) only cover ten workloads of one kind.
  if (scenario::video_count(spec_) > 10) {
    throw std::invalid_argument("scenario: more than 10 video sessions per scenario");
  }
  std::size_t video_index = 0;
  std::size_t cross_traffic = 0;
  for (const WorkloadSpec& workload : spec_.workloads) {
    if (const auto* video = std::get_if<VideoWorkloadSpec>(&workload)) {
      auto& added = testbed_->add_workload(std::make_unique<VideoSessionWorkload>(
          *video, platform_for(spec_, *video), video_index++));
      videos_.push_back(static_cast<VideoSessionWorkload*>(&added));
    } else if (const auto* apps = std::get_if<BackgroundAppsWorkloadSpec>(&workload)) {
      testbed_->add_workload(std::make_unique<BackgroundDutyWorkload>(apps->label, apps->count));
    } else if (const auto* pressure = std::get_if<PressureWorkloadSpec>(&workload)) {
      testbed_->add_workload(std::make_unique<PressureInducerWorkload>(pressure->label,
                                                                       pressure->target,
                                                                       inducers++));
    } else {
      const auto& cross = std::get<CrossTrafficWorkloadSpec>(workload);
      testbed_->add_workload(std::make_unique<CrossTrafficWorkload>(cross, cross_traffic++));
    }
  }
}

ScenarioDriver::~ScenarioDriver() = default;

ScenarioResult ScenarioDriver::run() {
  prepare();
  start();
  while (advance_slice()) {
  }
  return finalize();
}

void ScenarioDriver::prepare() {
  if (prepared_) return;
  prepared_ = true;
  testbed_->boot();
  for (auto& workload : testbed_->workloads()) {
    workload->attach(*testbed_);
    start_level_ = std::max(start_level_, workload->observed_level());
  }
}

void ScenarioDriver::set_cell(int height, int fps, std::uint64_t video_seed) {
  video(0).set_cell(height, fps, video_seed);
}

void ScenarioDriver::start() {
  if (!prepared_) prepare();
  if (started_) return;
  started_ = true;
  core::Testbed& tb = *testbed_;

  start_level_ = std::max(start_level_, tb.memory.level());

  if (spec_.run_watchdog) {
    watchdog_ = std::make_unique<fault::InvariantWatchdog>(tb.engine, fault::WatchdogConfig{},
                                                           &tb.memory, &tb.tracer);
    watchdog_->start();
  }

  // Every session starts at this one instant: start() hooks must not
  // advance the engine (the Workload contract), so engine.now() is
  // constant across the loop.
  video_start_ = tb.engine.now();
  for (auto& workload : tb.workloads()) {
    workload->start(tb);
  }

  // Horizon: generous multiple of the longest video duration; a session
  // that cannot finish by then was unplayable.
  int max_duration_s = 0;
  for (const VideoSessionWorkload* video : videos_) {
    max_duration_s = std::max(max_duration_s, video->config().asset.duration_s);
  }
  horizon_ = video_start_ + sim::sec(max_duration_s * 3) + sim::minutes(2);
}

bool ScenarioDriver::done() const noexcept {
  bool all_done = true;
  for (const auto& workload : testbed_->workloads()) {
    all_done = all_done && workload->done();
  }
  return all_done || testbed_->engine.now() >= horizon_;
}

bool ScenarioDriver::advance_slice() {
  if (done()) return false;
  testbed_->engine.run_until(testbed_->engine.now() + sim::sec(1));
  for (auto& workload : testbed_->workloads()) {
    workload->advance_slice(*testbed_);
  }
  return true;
}

ScenarioResult ScenarioDriver::finalize() {
  core::Testbed& tb = *testbed_;
  ScenarioResult result;
  result.start_level = start_level_;
  for (auto& workload : tb.workloads()) {
    workload->finalize(tb);
  }
  if (watchdog_ != nullptr) {
    watchdog_->check_now();
    watchdog_->stop();
    result.watchdog_violations = watchdog_->violations();
  }
  tb.tracer.finalize(tb.engine.now());

  for (const VideoSessionWorkload* video : videos_) {
    SessionReport report;
    report.label = video->label();
    report.result = video->result();
    report.result.start_level = start_level_;
    if (severity(report.result.status) > severity(result.status)) {
      result.status = report.result.status;
    }
    result.sessions.push_back(std::move(report));
  }
  return result;
}

void ScenarioDriver::save_state(snapshot::Snapshot& snap) const {
  testbed_->components().save_state(snap);
}

std::uint64_t ScenarioDriver::state_digest() const { return testbed_->components().state_digest(); }

std::vector<std::pair<std::string, std::uint64_t>> ScenarioDriver::subsystem_digests() const {
  return testbed_->components().digests();
}

sim::Time ScenarioDriver::playback_start(std::size_t index) const {
  const VideoSessionWorkload& workload = video(index);
  return workload.session() != nullptr ? workload.session()->metrics().playback_start : -1;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) { return ScenarioDriver(spec).run(); }

}  // namespace mvqoe::scenario
