#include "scenario/spec.hpp"

#include <stdexcept>

namespace mvqoe::scenario {

namespace {

struct FamilySetup {
  const char* name;
  core::DeviceProfile (*device)();
  video::PlayerPlatform platform;
};

const FamilySetup kFamilies[] = {
    {"fig09", core::nokia1, video::PlayerPlatform::Firefox},
    {"fig11", core::nexus5, video::PlayerPlatform::Firefox},
    {"fig16", core::nokia1, video::PlayerPlatform::Firefox},
    {"fig18", core::nexus5, video::PlayerPlatform::ExoPlayer},
    {"fig19", core::nexus5, video::PlayerPlatform::Chrome},
    {"table1", core::nokia1, video::PlayerPlatform::Firefox},
};

const FamilySetup& find_family(const std::string& name) {
  for (const FamilySetup& family : kFamilies) {
    if (name == family.name) return family;
  }
  throw std::runtime_error("scenario: unknown family '" + name + "'");
}

}  // namespace

const std::vector<std::string>& scenario_families() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const FamilySetup& family : kFamilies) out.emplace_back(family.name);
    return out;
  }();
  return names;
}

core::DeviceProfile device_for(const ScenarioSpec& scen) {
  if (scen.device_override.has_value()) return *scen.device_override;
  if (scen.family.empty()) {
    throw std::runtime_error("scenario: custom scenario (family == \"\") needs a device_override");
  }
  return find_family(scen.family).device();
}

video::PlayerPlatform platform_for(const ScenarioSpec& scen, const VideoWorkloadSpec& video) {
  if (video.platform.has_value()) return *video.platform;
  if (scen.family.empty()) return video::PlayerPlatform::Firefox;
  return find_family(scen.family).platform;
}

ScenarioSpec single_video(std::string family, int height, int fps, int duration_s,
                          mem::PressureLevel state, std::uint64_t seed,
                          fault::FaultPlan fault_plan) {
  ScenarioSpec scen;
  scen.family = std::move(family);
  scen.state = state;
  scen.seed = seed;
  VideoWorkloadSpec video;
  video.height = height;
  video.fps = fps;
  video.duration_s = duration_s;
  video.seed = seed;
  video.fault_plan = std::move(fault_plan);
  scen.workloads.emplace_back(std::move(video));
  return scen;
}

ScenarioSpec from_run_spec(const core::VideoRunSpec& spec) {
  ScenarioSpec scen;
  scen.family.clear();
  scen.device_override = spec.device;
  scen.state = spec.pressure;
  scen.organic_background_apps = spec.organic_background_apps;
  scen.seed = spec.seed;
  scen.world_seed = spec.world_seed;
  scen.run_watchdog = spec.run_watchdog;
  VideoWorkloadSpec video;
  video.height = spec.height;
  video.fps = spec.fps;
  video.duration_s = spec.asset.duration_s;
  video.platform = spec.platform;
  video.seed = spec.seed;
  video.fault_plan = spec.fault_plan;
  video.asset_override = spec.asset;
  video.abr = spec.abr;
  video.session_override = spec.session_override;
  video.recovery = spec.recovery;
  scen.workloads.emplace_back(std::move(video));
  return scen;
}

VideoWorkloadSpec& video_spec(ScenarioSpec& scen, std::size_t index) {
  std::size_t seen = 0;
  for (WorkloadSpec& workload : scen.workloads) {
    if (auto* video = std::get_if<VideoWorkloadSpec>(&workload)) {
      if (seen++ == index) return *video;
    }
  }
  throw std::out_of_range("scenario: no video workload at index " + std::to_string(index));
}

const VideoWorkloadSpec& video_spec(const ScenarioSpec& scen, std::size_t index) {
  return video_spec(const_cast<ScenarioSpec&>(scen), index);
}

std::size_t video_count(const ScenarioSpec& scen) {
  std::size_t count = 0;
  for (const WorkloadSpec& workload : scen.workloads) {
    if (std::holds_alternative<VideoWorkloadSpec>(workload)) ++count;
  }
  return count;
}

namespace {

void require_serializable(const ScenarioSpec& scen) {
  if (scen.device_override.has_value()) {
    throw std::invalid_argument("scenario: device_override is not serializable — use a family");
  }
  find_family(scen.family);
  for (const WorkloadSpec& workload : scen.workloads) {
    const auto* video = std::get_if<VideoWorkloadSpec>(&workload);
    if (video == nullptr) continue;
    if (video->abr != nullptr || video->session_override.has_value() ||
        video->asset_override.has_value() || video->recovery.has_value()) {
      throw std::invalid_argument(
          "scenario: runtime-only video knobs (abr/session/asset/recovery overrides) are not "
          "serializable");
    }
  }
}

}  // namespace

void save_scenario(snapshot::ByteWriter& w, const ScenarioSpec& scen) {
  require_serializable(scen);
  bool has_cross_traffic = false;
  for (const WorkloadSpec& workload : scen.workloads) {
    if (std::holds_alternative<CrossTrafficWorkloadSpec>(workload)) has_cross_traffic = true;
  }
  // v2 = workload lists; v3 appends the memory-policy spec; v4 (any
  // non-default NetSpec or a cross-traffic workload) appends the policy
  // spec (even baseline) followed by the net spec. A baseline/fifo
  // scenario still writes v2, so every pre-policy blob and fingerprint
  // stays byte-identical.
  const bool v4 = !scen.net.is_default() || has_cross_traffic;
  w.u32(v4 ? 4 : (scen.mem_policy.is_baseline() ? 2 : 3));
  w.str(scen.family);
  w.u8(static_cast<std::uint8_t>(scen.state));
  w.i32(scen.organic_background_apps);
  w.u64(scen.seed);
  w.b(scen.world_seed.has_value());
  if (scen.world_seed.has_value()) w.u64(*scen.world_seed);
  w.b(scen.run_watchdog);
  w.u64(scen.workloads.size());
  for (const WorkloadSpec& workload : scen.workloads) {
    if (const auto* video = std::get_if<VideoWorkloadSpec>(&workload)) {
      w.u8(0);
      w.str(video->label);
      w.i32(video->height);
      w.i32(video->fps);
      w.i32(video->duration_s);
      w.b(video->platform.has_value());
      if (video->platform.has_value()) w.u8(static_cast<std::uint8_t>(*video->platform));
      w.u64(video->seed);
      save_fault_plan(w, video->fault_plan);
    } else if (const auto* apps = std::get_if<BackgroundAppsWorkloadSpec>(&workload)) {
      w.u8(1);
      w.str(apps->label);
      w.i32(apps->count);
    } else if (const auto* pressure = std::get_if<PressureWorkloadSpec>(&workload)) {
      w.u8(2);
      w.str(pressure->label);
      w.u8(static_cast<std::uint8_t>(pressure->target));
    } else {
      const auto& cross = std::get<CrossTrafficWorkloadSpec>(workload);
      w.u8(3);
      w.str(cross.label);
      w.i32(cross.bulk_flows);
      w.i32(cross.onoff_flows);
      w.i32(cross.on_s);
      w.i32(cross.off_s);
      w.u64(cross.chunk_bytes);
      w.u64(cross.seed);
    }
  }
  if (v4) {
    mem::save_policy_spec(w, scen.mem_policy);
    net::save_net_spec(w, scen.net);
  } else if (!scen.mem_policy.is_baseline()) {
    mem::save_policy_spec(w, scen.mem_policy);
  }
}

ScenarioSpec load_scenario(snapshot::ByteReader& r) {
  const std::uint32_t version = r.u32();
  if (version == 1) {
    // Legacy tuple: (family, height, fps, duration, state, seed, plan).
    ScenarioSpec scen;
    scen.family = r.str();
    const int height = r.i32();
    const int fps = r.i32();
    const int duration_s = r.i32();
    scen.state = static_cast<mem::PressureLevel>(r.u8());
    scen.seed = r.u64();
    fault::FaultPlan plan = load_fault_plan(r);
    find_family(scen.family);  // validate eagerly, before any sim is built
    return single_video(scen.family, height, fps, duration_s, scen.state, scen.seed,
                        std::move(plan));
  }
  if (version < 2 || version > 4) throw std::runtime_error("snapshot: unsupported SCEN version");
  ScenarioSpec scen;
  scen.family = r.str();
  scen.state = static_cast<mem::PressureLevel>(r.u8());
  scen.organic_background_apps = r.i32();
  scen.seed = r.u64();
  if (r.b()) scen.world_seed = r.u64();
  scen.run_watchdog = r.b();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t kind = r.u8();
    if (kind == 0) {
      VideoWorkloadSpec video;
      video.label = r.str();
      video.height = r.i32();
      video.fps = r.i32();
      video.duration_s = r.i32();
      if (r.b()) video.platform = static_cast<video::PlayerPlatform>(r.u8());
      video.seed = r.u64();
      video.fault_plan = load_fault_plan(r);
      scen.workloads.emplace_back(std::move(video));
    } else if (kind == 1) {
      BackgroundAppsWorkloadSpec apps;
      apps.label = r.str();
      apps.count = r.i32();
      scen.workloads.emplace_back(std::move(apps));
    } else if (kind == 2) {
      PressureWorkloadSpec pressure;
      pressure.label = r.str();
      pressure.target = static_cast<mem::PressureLevel>(r.u8());
      scen.workloads.emplace_back(std::move(pressure));
    } else if (kind == 3 && version >= 4) {
      CrossTrafficWorkloadSpec cross;
      cross.label = r.str();
      cross.bulk_flows = r.i32();
      cross.onoff_flows = r.i32();
      cross.on_s = r.i32();
      cross.off_s = r.i32();
      cross.chunk_bytes = r.u64();
      cross.seed = r.u64();
      scen.workloads.emplace_back(std::move(cross));
    } else {
      throw std::runtime_error("snapshot: unknown workload kind in SCEN section");
    }
  }
  if (version >= 3) {
    scen.mem_policy = mem::load_policy_spec(r);
    mem::validate_policy_spec(scen.mem_policy);
  }
  if (version >= 4) {
    scen.net = net::load_net_spec(r);
    net::validate_net_spec(scen.net);
  }
  find_family(scen.family);  // validate eagerly, before any sim is built
  return scen;
}

void save_fault_plan(snapshot::ByteWriter& w, const fault::FaultPlan& plan) {
  w.u32(1);  // sub-record version
  w.u64(plan.link_outages.size());
  for (const fault::LinkOutage& o : plan.link_outages) {
    w.i64(o.at);
    w.i64(o.duration);
  }
  w.u64(plan.link_rate_steps.size());
  for (const fault::LinkRateStep& s : plan.link_rate_steps) {
    w.i64(s.at);
    w.f64(s.rate_mbps);
  }
  w.u64(plan.storage_degradations.size());
  for (const fault::StorageDegradation& d : plan.storage_degradations) {
    w.i64(d.at);
    w.i64(d.duration);
    w.f64(d.latency_multiplier);
    w.f64(d.error_rate);
  }
  w.u64(plan.thermal_windows.size());
  for (const fault::ThermalWindow& t : plan.thermal_windows) {
    w.i64(t.at);
    w.i64(t.duration);
    w.f64(t.speed_scale);
  }
  w.u64(plan.kills.size());
  for (const fault::TargetedKill& k : plan.kills) {
    w.i64(k.at);
    w.u32(k.pid);
  }
  w.b(plan.gilbert_elliott.enabled);
  w.i64(plan.gilbert_elliott.mean_good);
  w.i64(plan.gilbert_elliott.mean_bad);
  w.f64(plan.gilbert_elliott.good_rate_mbps);
  w.f64(plan.gilbert_elliott.bad_rate_mbps);
  w.f64(plan.gilbert_elliott.bad_outage_probability);
  w.u64(plan.seed);
}

fault::FaultPlan load_fault_plan(snapshot::ByteReader& r) {
  const std::uint32_t version = r.u32();
  if (version != 1) throw std::runtime_error("snapshot: unsupported fault-plan version");
  fault::FaultPlan plan;
  plan.link_outages.resize(r.u64());
  for (fault::LinkOutage& o : plan.link_outages) {
    o.at = r.i64();
    o.duration = r.i64();
  }
  plan.link_rate_steps.resize(r.u64());
  for (fault::LinkRateStep& s : plan.link_rate_steps) {
    s.at = r.i64();
    s.rate_mbps = r.f64();
  }
  plan.storage_degradations.resize(r.u64());
  for (fault::StorageDegradation& d : plan.storage_degradations) {
    d.at = r.i64();
    d.duration = r.i64();
    d.latency_multiplier = r.f64();
    d.error_rate = r.f64();
  }
  plan.thermal_windows.resize(r.u64());
  for (fault::ThermalWindow& t : plan.thermal_windows) {
    t.at = r.i64();
    t.duration = r.i64();
    t.speed_scale = r.f64();
  }
  plan.kills.resize(r.u64());
  for (fault::TargetedKill& k : plan.kills) {
    k.at = r.i64();
    k.pid = r.u32();
  }
  plan.gilbert_elliott.enabled = r.b();
  plan.gilbert_elliott.mean_good = r.i64();
  plan.gilbert_elliott.mean_bad = r.i64();
  plan.gilbert_elliott.good_rate_mbps = r.f64();
  plan.gilbert_elliott.bad_rate_mbps = r.f64();
  plan.gilbert_elliott.bad_outage_probability = r.f64();
  plan.seed = r.u64();
  return plan;
}

}  // namespace mvqoe::scenario
