// Scenario execution driver (DESIGN.md §11).
//
// Generalizes the legacy VideoExperiment's phased prepare/start/advance/
// finalize API to N workloads on one Testbed: every workload attaches
// during the world phase (pressure regimes block until established),
// every session starts at the same instant, and one 1-second slice
// cadence advances them all — so concurrent video sessions contend for
// the same pages, CPU and link inside a single simulated device.
//
// For a single-video scenario the event sequence is byte-identical with
// the legacy experiment (the golden-blob replay test proves it); the
// snapshot surface walks the Testbed's component registry instead of a
// hand-maintained subsystem list.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/testbed.hpp"
#include "fault/watchdog.hpp"
#include "scenario/spec.hpp"
#include "scenario/workloads.hpp"

namespace mvqoe::scenario {

/// Per-session result, labelled with the workload's label.
struct SessionReport {
  std::string label;
  core::VideoRunResult result;
};

struct ScenarioResult {
  /// Worst session status (Completed < TimedOut < Aborted < Crashed).
  core::RunStatus status = core::RunStatus::Completed;
  /// Pressure level observed when the sessions started.
  mem::PressureLevel start_level = mem::PressureLevel::Normal;
  /// One report per video workload, in spec order.
  std::vector<SessionReport> sessions;
  /// Populated when spec.run_watchdog was set.
  std::vector<fault::WatchdogViolation> watchdog_violations;
};

class ScenarioDriver {
 public:
  explicit ScenarioDriver(ScenarioSpec spec);
  ~ScenarioDriver();

  /// prepare + start + advance to completion + finalize.
  ScenarioResult run();

  // --- Phased execution (checkpoint/replay + warm-start surface) ---------
  /// Phase 1: boot the testbed and attach every workload in order —
  /// pressure workloads establish their regime here (§4.1). Ends at the
  /// quiescent point right before sessions are built — the warm-start
  /// fork boundary.
  void prepare();
  /// Retarget video workload 0 between prepare() and start(): the warm
  /// path forks one prepared world for many (height, fps) cells, each
  /// with its own video seed.
  void set_cell(int height, int fps, std::uint64_t video_seed);
  /// Phase 2: arm faults/watchdog and start every session at one
  /// simulated instant. Playback deadlines begin here.
  void start();
  /// Phase 3: advance all workloads by one 1-second slice (the exact
  /// cadence the legacy run() used — slice boundaries are observable
  /// through the horizon check, so replay must reproduce them). Returns
  /// false when every session finished or the horizon passed, without
  /// advancing.
  bool advance_slice();
  bool done() const noexcept;
  /// Phase 4: disarm faults, finalize the trace and assemble per-session
  /// results.
  ScenarioResult finalize();

  // --- Snapshot surface (component registry; DESIGN.md §11) ---------------
  void save_state(snapshot::Snapshot& snap) const;
  std::uint64_t state_digest() const;
  std::vector<std::pair<std::string, std::uint64_t>> subsystem_digests() const;

  const ScenarioSpec& spec() const noexcept { return spec_; }
  core::Testbed& testbed() noexcept { return *testbed_; }
  const core::Testbed& testbed() const noexcept { return *testbed_; }

  std::size_t video_count() const noexcept { return videos_.size(); }
  VideoSessionWorkload& video(std::size_t index = 0) { return *videos_.at(index); }
  const VideoSessionWorkload& video(std::size_t index = 0) const { return *videos_.at(index); }
  /// Session index i's fault injector; null while no plan is armed.
  fault::FaultInjector* injector(std::size_t index = 0) { return videos_.at(index)->injector(); }

  /// Simulated time at which session `index`'s playback (frame
  /// deadlines) began; -1 before then.
  sim::Time playback_start(std::size_t index = 0) const;
  /// Simulated time start() ran at (-1 before then).
  sim::Time video_start() const noexcept { return video_start_; }
  sim::Time horizon() const noexcept { return horizon_; }

 private:
  ScenarioSpec spec_;
  std::unique_ptr<core::Testbed> testbed_;
  std::unique_ptr<fault::InvariantWatchdog> watchdog_;
  /// Views into testbed_->workloads(), in spec order.
  std::vector<VideoSessionWorkload*> videos_;

  bool prepared_ = false;
  bool started_ = false;
  mem::PressureLevel start_level_ = mem::PressureLevel::Normal;
  sim::Time video_start_ = -1;
  sim::Time horizon_ = -1;
};

/// Convenience single run.
ScenarioResult run_scenario(const ScenarioSpec& spec);

}  // namespace mvqoe::scenario
