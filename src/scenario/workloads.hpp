// First-party Workload implementations (DESIGN.md §11): the video
// session, the organic background-app cohort and the synthetic pressure
// inducer — the three actors the legacy VideoExperiment hard-wired, now
// composable in any number per scenario.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pressure_inducer.hpp"
#include "core/run_spec.hpp"
#include "core/testbed.hpp"
#include "core/workload.hpp"
#include "scenario/spec.hpp"
#include "stats/rng.hpp"

namespace mvqoe::scenario {

/// One video playback session. Blob sections VIDE/FALT for session 0 —
/// byte-compatible with the legacy experiment — and VIDn/FLTn for later
/// sessions (n = 1..9).
class VideoSessionWorkload final : public core::Workload {
 public:
  /// `index` is the session's position among the scenario's video
  /// workloads (drives snapshot tags and registry ordering keys);
  /// `platform` is pre-resolved via platform_for().
  VideoSessionWorkload(VideoWorkloadSpec spec, video::PlayerPlatform platform, std::size_t index);
  ~VideoSessionWorkload() override;

  std::string label() const override { return spec_.label; }
  void attach(core::Testbed& testbed) override;
  void start(core::Testbed& testbed) override;
  bool done() const override { return finished_; }
  void finalize(core::Testbed& testbed) override;
  mem::PressureLevel observed_level() const override { return mem::PressureLevel::Normal; }

  /// Retarget the video cell before start() (warm-start sweeps).
  void set_cell(int height, int fps, std::uint64_t video_seed);

  /// Assemble the per-session result; valid after finalize().
  core::VideoRunResult result() const;

  video::VideoSession* session() noexcept { return session_.get(); }
  const video::VideoSession* session() const noexcept { return session_.get(); }
  fault::FaultInjector* injector() noexcept { return injector_.get(); }
  const VideoWorkloadSpec& spec() const noexcept { return spec_; }
  const video::SessionConfig& config() const noexcept { return config_; }
  sim::Time video_start() const noexcept { return video_start_; }

 private:
  VideoWorkloadSpec spec_;
  video::PlayerPlatform platform_;
  std::size_t index_;
  video::SessionConfig config_;
  std::unique_ptr<video::VideoSession> session_;
  std::unique_ptr<fault::FaultInjector> injector_;
  bool finished_ = false;
  sim::Time video_start_ = -1;
};

/// Organic background-app churn (paper §4.3): launch `count` top-free
/// apps before the players start; half keep working (and respawning
/// after lmkd kills) for the whole run. Owns no snapshot sections — its
/// state lives in the memory manager / activity manager / system
/// activity sections.
class BackgroundDutyWorkload final : public core::Workload {
 public:
  BackgroundDutyWorkload(std::string label, int count);

  std::string label() const override { return label_; }
  void attach(core::Testbed& testbed) override;
  void start(core::Testbed& testbed) override { (void)testbed; }
  bool done() const override { return true; }
  mem::PressureLevel observed_level() const override { return observed_; }

 private:
  std::string label_;
  int count_;
  mem::PressureLevel observed_ = mem::PressureLevel::Normal;
  // Owns the service-restart chain; callbacks hold weak refs so the
  // chain dies with the workload instead of leaking through a
  // shared_ptr cycle.
  std::shared_ptr<std::function<void(proc::AppSpec, bool)>> relaunch_;
};

/// MP-Simulator-style synthetic pressure (paper §4.1): allocate until
/// the target pressure signal arrives, then maintain it. Blob section
/// INDC for inducer 0 (legacy-compatible), INDn for later ones.
class PressureInducerWorkload final : public core::Workload {
 public:
  PressureInducerWorkload(std::string label, mem::PressureLevel target, std::size_t index);
  ~PressureInducerWorkload() override;

  std::string label() const override { return label_; }
  void attach(core::Testbed& testbed) override;
  void start(core::Testbed& testbed) override { (void)testbed; }
  bool done() const override { return true; }
  mem::PressureLevel observed_level() const override { return observed_; }

  core::PressureInducer* inducer() noexcept { return inducer_.get(); }

 private:
  std::string label_;
  mem::PressureLevel target_;
  std::size_t index_;
  std::unique_ptr<core::PressureInducer> inducer_;
  mem::PressureLevel observed_ = mem::PressureLevel::Normal;
};

/// Competing traffic through the shared bottleneck (ROADMAP item 3):
/// bulk flows chain chunk downloads back-to-back for the whole run;
/// on/off flows alternate transfer bursts with silence, with seeded
/// phase jitter so flows don't toggle in lockstep. Meant for
/// congestion-controlled links (NetSpec cc != fifo), where the flows
/// genuinely compete with the video session's segment fetches; on a
/// fifo link they simply queue ahead of it. Blob section XTRC for
/// workload 0, XTRn for later ones (registry key 130+i).
class CrossTrafficWorkload final : public core::Workload {
 public:
  CrossTrafficWorkload(CrossTrafficWorkloadSpec spec, std::size_t index);
  ~CrossTrafficWorkload() override;

  std::string label() const override { return spec_.label; }
  void attach(core::Testbed& testbed) override { (void)testbed; }
  void start(core::Testbed& testbed) override;
  bool done() const override { return true; }
  void finalize(core::Testbed& testbed) override;
  mem::PressureLevel observed_level() const override { return mem::PressureLevel::Normal; }

  /// Chunks fully delivered across all flows so far.
  std::uint64_t chunks_completed() const noexcept;
  const CrossTrafficWorkloadSpec& spec() const noexcept { return spec_; }

  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;

 private:
  struct FlowLane {
    net::TransferId id = net::kInvalidTransfer;
    bool on = true;  // on/off phase; bulk lanes stay on
    std::uint64_t chunks = 0;
  };

  void start_chunk(core::Testbed& tb, bool bulk, std::size_t slot);
  void toggle(core::Testbed& tb, std::size_t slot);

  CrossTrafficWorkloadSpec spec_;
  std::size_t index_;
  bool stopped_ = false;
  stats::Rng rng_;
  std::vector<FlowLane> bulk_;
  std::vector<FlowLane> onoff_;
};

}  // namespace mvqoe::scenario
