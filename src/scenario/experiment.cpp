// core::VideoExperiment, implemented as an adapter over the scenario
// driver. Lives in the scenario library (core cannot link upward).
#include "core/experiment.hpp"

#include "stats/rng.hpp"

namespace mvqoe::core {

VideoExperiment::VideoExperiment(VideoRunSpec spec) : driver_(scenario::from_run_spec(spec)) {}

VideoExperiment::~VideoExperiment() = default;

VideoRunResult VideoExperiment::run() {
  prepare();
  start_video();
  while (advance_slice()) {
  }
  return finalize();
}

void VideoExperiment::prepare() { driver_.prepare(); }

void VideoExperiment::set_cell(int height, int fps, std::uint64_t video_seed) {
  driver_.set_cell(height, fps, video_seed);
}

void VideoExperiment::start_video() { driver_.start(); }

bool VideoExperiment::advance_slice() { return driver_.advance_slice(); }

bool VideoExperiment::video_done() const noexcept { return driver_.done(); }

VideoRunResult VideoExperiment::finalize() {
  scenario::ScenarioResult scen = driver_.finalize();
  VideoRunResult result = std::move(scen.sessions.at(0).result);
  result.watchdog_violations = std::move(scen.watchdog_violations);
  return result;
}

void VideoExperiment::save_state(snapshot::Snapshot& snap) const { driver_.save_state(snap); }

std::uint64_t VideoExperiment::state_digest() const { return driver_.state_digest(); }

std::vector<std::pair<std::string, std::uint64_t>> VideoExperiment::subsystem_digests() const {
  return driver_.subsystem_digests();
}

VideoRunResult run_video(const VideoRunSpec& spec) { return VideoExperiment(spec).run(); }

qoe::RunAggregate run_video_repeated(VideoRunSpec spec, int runs) {
  qoe::RunAggregate aggregate;
  const std::uint64_t base_seed = spec.seed;
  for (int i = 0; i < runs; ++i) {
    spec.seed = stats::derive_seed(base_seed, static_cast<std::uint64_t>(i) + 1);
    aggregate.add(run_video(spec).outcome);
  }
  return aggregate;
}

}  // namespace mvqoe::core
