#include "trace/tracer.hpp"

namespace mvqoe::trace {

const char* to_string(ThreadState s) noexcept {
  switch (s) {
    case ThreadState::Created: return "Created";
    case ThreadState::Running: return "Running";
    case ThreadState::Runnable: return "Runnable";
    case ThreadState::RunnablePreempted: return "Runnable (Preempted)";
    case ThreadState::Sleeping: return "Sleeping";
    case ThreadState::BlockedIo: return "Blocked I/O";
    case ThreadState::Terminated: return "Terminated";
  }
  return "?";
}

const char* to_string(InstantKind kind) noexcept {
  switch (kind) {
    case InstantKind::ProcessKilled: return "ProcessKilled";
    case InstantKind::ClientCrashed: return "ClientCrashed";
    case InstantKind::PressureState: return "PressureState";
    case InstantKind::TrimSignal: return "TrimSignal";
    case InstantKind::FramePresented: return "FramePresented";
    case InstantKind::FrameDropped: return "FrameDropped";
    case InstantKind::DirectReclaim: return "DirectReclaim";
    case InstantKind::SegmentDownloaded: return "SegmentDownloaded";
    case InstantKind::RungSwitch: return "RungSwitch";
    case InstantKind::LinkDown: return "LinkDown";
    case InstantKind::LinkUp: return "LinkUp";
    case InstantKind::LinkRateChange: return "LinkRateChange";
    case InstantKind::StorageDegraded: return "StorageDegraded";
    case InstantKind::StorageRestored: return "StorageRestored";
    case InstantKind::ThermalThrottle: return "ThermalThrottle";
    case InstantKind::ThermalRestored: return "ThermalRestored";
    case InstantKind::FaultKill: return "FaultKill";
    case InstantKind::SegmentRetry: return "SegmentRetry";
    case InstantKind::DownloadTimeout: return "DownloadTimeout";
    case InstantKind::SessionRelaunch: return "SessionRelaunch";
    case InstantKind::WatchdogViolation: return "WatchdogViolation";
  }
  return "?";
}

void Tracer::register_thread(const ThreadMeta& meta) { threads_[meta.tid] = meta; }

const ThreadMeta* Tracer::thread(ThreadId tid) const noexcept {
  const auto it = threads_.find(tid);
  return it == threads_.end() ? nullptr : &it->second;
}

void Tracer::state_change(ThreadId tid, sim::Time at, ThreadState next, ThreadId preemptor) {
  auto& open = open_[tid];
  if (open.open && at > open.begin) {
    intervals_.push_back(StateInterval{tid, open.begin, at, open.state, open.preemptor});
  }
  open.begin = at;
  open.state = next;
  open.preemptor = next == ThreadState::RunnablePreempted ? preemptor : kNoThread;
  open.open = next != ThreadState::Terminated;
}

void Tracer::preemption(const PreemptionRecord& rec) { preemptions_.push_back(rec); }

void Tracer::instant(InstantKind kind, sim::Time at, ThreadId tid, std::int64_t value) {
  instants_.push_back(InstantEvent{kind, at, tid, value});
}

void Tracer::counter(const std::string& name, sim::Time at, double value) {
  counters_.push_back(CounterSample{name, at, value});
}

void Tracer::finalize(sim::Time at) {
  for (auto& [tid, open] : open_) {
    if (open.open && at > open.begin) {
      intervals_.push_back(StateInterval{tid, open.begin, at, open.state, open.preemptor});
      open.begin = at;
    }
  }
}

void Tracer::clear_events() {
  intervals_.clear();
  preemptions_.clear();
  instants_.clear();
  counters_.clear();
  open_.clear();
}

}  // namespace mvqoe::trace
