#include "trace/analysis.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mvqoe::trace {

namespace {

/// Overlap of [a0,a1) with [b0,b1) in seconds.
double overlap_seconds(sim::Time a0, sim::Time a1, sim::Time b0, sim::Time b1) noexcept {
  const sim::Time lo = std::max(a0, b0);
  const sim::Time hi = std::min(a1, b1);
  return hi > lo ? sim::to_seconds(hi - lo) : 0.0;
}

sim::Time trace_end(const Tracer& tracer) noexcept {
  sim::Time end = 0;
  for (const auto& iv : tracer.intervals()) end = std::max(end, iv.end);
  for (const auto& ev : tracer.instants()) end = std::max(end, ev.at);
  for (const auto& cs : tracer.counters()) end = std::max(end, cs.at);
  return end;
}

}  // namespace

StateTimeTable state_times(const Tracer& tracer, const std::vector<ThreadId>& tids,
                           sim::Time begin, sim::Time end) {
  const std::unordered_set<ThreadId> wanted(tids.begin(), tids.end());
  StateTimeTable table;
  for (const auto& iv : tracer.intervals()) {
    if (wanted.count(iv.tid) == 0) continue;
    const double secs = overlap_seconds(iv.begin, iv.end, begin, end);
    if (secs <= 0.0) continue;
    switch (iv.state) {
      case ThreadState::Running: table.running += secs; break;
      case ThreadState::Runnable: table.runnable += secs; break;
      case ThreadState::RunnablePreempted: table.runnable_preempted += secs; break;
      case ThreadState::Sleeping: table.sleeping += secs; break;
      case ThreadState::BlockedIo: table.blocked_io += secs; break;
      default: break;
    }
  }
  return table;
}

std::vector<ThreadRunTime> top_running_threads(const Tracer& tracer, sim::Time begin,
                                               sim::Time end) {
  std::unordered_map<ThreadId, double> running;
  for (const auto& iv : tracer.intervals()) {
    if (iv.state != ThreadState::Running) continue;
    const double secs = overlap_seconds(iv.begin, iv.end, begin, end);
    if (secs > 0.0) running[iv.tid] += secs;
  }
  std::vector<ThreadRunTime> out;
  out.reserve(running.size());
  for (const auto& [tid, secs] : running) {
    ThreadRunTime row;
    row.tid = tid;
    row.running_seconds = secs;
    if (const ThreadMeta* meta = tracer.thread(tid)) {
      row.name = meta->name;
      row.process_name = meta->process_name;
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const ThreadRunTime& a, const ThreadRunTime& b) {
    return a.running_seconds != b.running_seconds ? a.running_seconds > b.running_seconds
                                                  : a.tid < b.tid;
  });
  for (std::size_t i = 0; i < out.size(); ++i) out[i].rank = i + 1;
  return out;
}

std::size_t running_rank(const Tracer& tracer, const std::string& thread_name, sim::Time begin,
                         sim::Time end) {
  for (const auto& row : top_running_threads(tracer, begin, end)) {
    if (row.name == thread_name) return row.rank;
  }
  return 0;
}

PreemptionStats preemption_stats(const Tracer& tracer, const std::vector<ThreadId>& victims,
                                 const std::string& preemptor_name) {
  const std::unordered_set<ThreadId> wanted(victims.begin(), victims.end());
  PreemptionStats stats;
  for (const auto& rec : tracer.preemptions()) {
    if (wanted.count(rec.victim) == 0) continue;
    const ThreadMeta* meta = tracer.thread(rec.preemptor);
    if (meta == nullptr || meta->name != preemptor_name) continue;
    ++stats.count;
    stats.preemptor_run_seconds += sim::to_seconds(rec.preemptor_run);
    stats.victim_wait_seconds += sim::to_seconds(rec.victim_wait);
  }
  return stats;
}

std::map<std::string, double> state_fractions(const Tracer& tracer, ThreadId tid, sim::Time begin,
                                              sim::Time end) {
  std::map<std::string, double> seconds;
  double total = 0.0;
  for (const auto& iv : tracer.intervals()) {
    if (iv.tid != tid) continue;
    const double secs = overlap_seconds(iv.begin, iv.end, begin, end);
    if (secs <= 0.0) continue;
    seconds[to_string(iv.state)] += secs;
    total += secs;
  }
  if (total > 0.0) {
    for (auto& [name, secs] : seconds) secs /= total;
  }
  return seconds;
}

std::vector<double> per_second_series(const Tracer& tracer, const std::string& counter_name,
                                      double default_value) {
  const sim::Time end = trace_end(tracer);
  const std::size_t seconds = static_cast<std::size_t>(end / sim::sec(1)) + 1;
  std::vector<double> sums(seconds, 0.0);
  std::vector<std::size_t> counts(seconds, 0);
  for (const auto& cs : tracer.counters()) {
    if (cs.name != counter_name) continue;
    const std::size_t bucket = static_cast<std::size_t>(cs.at / sim::sec(1));
    sums[bucket] += cs.value;
    ++counts[bucket];
  }
  std::vector<double> out(seconds, default_value);
  for (std::size_t i = 0; i < seconds; ++i) {
    if (counts[i] > 0) out[i] = sums[i] / static_cast<double>(counts[i]);
  }
  return out;
}

std::vector<std::size_t> instants_per_second(const Tracer& tracer, InstantKind kind) {
  const sim::Time end = trace_end(tracer);
  std::vector<std::size_t> out(static_cast<std::size_t>(end / sim::sec(1)) + 1, 0);
  for (const auto& ev : tracer.instants()) {
    if (ev.kind != kind) continue;
    ++out[static_cast<std::size_t>(ev.at / sim::sec(1))];
  }
  return out;
}

std::vector<double> running_fraction_per_second(const Tracer& tracer, ThreadId tid) {
  const sim::Time end = trace_end(tracer);
  std::vector<double> out(static_cast<std::size_t>(end / sim::sec(1)) + 1, 0.0);
  for (const auto& iv : tracer.intervals()) {
    if (iv.tid != tid || iv.state != ThreadState::Running) continue;
    for (sim::Time t = iv.begin - iv.begin % sim::sec(1); t < iv.end; t += sim::sec(1)) {
      const std::size_t bucket = static_cast<std::size_t>(t / sim::sec(1));
      if (bucket >= out.size()) break;
      out[bucket] += overlap_seconds(iv.begin, iv.end, t, t + sim::sec(1));
    }
  }
  return out;
}

std::vector<std::size_t> cumulative_instants(const Tracer& tracer, InstantKind kind) {
  std::vector<std::size_t> per_sec = instants_per_second(tracer, kind);
  std::size_t total = 0;
  for (std::size_t& n : per_sec) {
    total += n;
    n = total;
  }
  return per_sec;
}

}  // namespace mvqoe::trace
