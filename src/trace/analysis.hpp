// Trace analyzers — the queries the paper ran over its Perfetto traces.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace mvqoe::trace {

/// Total time each state was occupied, summed over a set of threads —
/// the Table 4 query ("mean time spent by video client process threads in
/// different process states"). Times in simulated seconds.
struct StateTimeTable {
  double running = 0.0;
  double runnable = 0.0;            // Runnable excluding preempted
  double runnable_preempted = 0.0;  // Runnable entered via preemption
  double sleeping = 0.0;
  double blocked_io = 0.0;
};
StateTimeTable state_times(const Tracer& tracer, const std::vector<ThreadId>& tids,
                           sim::Time begin = 0, sim::Time end = sim::kNever);

/// All threads ordered by total Running time, descending — the "top
/// running threads" query in §5. `rank` is 1-based.
struct ThreadRunTime {
  ThreadId tid = kNoThread;
  std::string name;
  std::string process_name;
  double running_seconds = 0.0;
  std::size_t rank = 0;
};
std::vector<ThreadRunTime> top_running_threads(const Tracer& tracer, sim::Time begin = 0,
                                               sim::Time end = sim::kNever);

/// Rank (1-based) of the named thread in the top-running list; 0 when the
/// thread never ran in the window.
std::size_t running_rank(const Tracer& tracer, const std::string& thread_name,
                         sim::Time begin = 0, sim::Time end = sim::kNever);

/// Table 5 aggregation: for preemptions of any of `victims` by the thread
/// named `preemptor_name`, the count, total preemptor run-after-preempt
/// time and total victim wait time (the paper reports means across runs of
/// these totals).
struct PreemptionStats {
  std::size_t count = 0;
  double preemptor_run_seconds = 0.0;
  double victim_wait_seconds = 0.0;
};
PreemptionStats preemption_stats(const Tracer& tracer, const std::vector<ThreadId>& victims,
                                 const std::string& preemptor_name);

/// Fraction of wall time a thread spent in each state within a window —
/// the Fig 13 query (kswapd state percentages). Keys are state names.
std::map<std::string, double> state_fractions(const Tracer& tracer, ThreadId tid,
                                              sim::Time begin = 0, sim::Time end = sim::kNever);

/// Per-second time series of a counter, averaging samples within each
/// second (Figs 14-17 plot per-second series). Missing seconds are 0.
std::vector<double> per_second_series(const Tracer& tracer, const std::string& counter_name,
                                      double default_value = 0.0);

/// Count of instant events of `kind` per second of the trace (e.g.
/// FrameDropped for rendered-FPS plots, ProcessKilled for Fig 15).
std::vector<std::size_t> instants_per_second(const Tracer& tracer, InstantKind kind);

/// Cumulative count of instant events of `kind` at each second boundary.
std::vector<std::size_t> cumulative_instants(const Tracer& tracer, InstantKind kind);

/// Per-second fraction of wall time a thread spent Running — the Fig 14
/// query (lmkd CPU utilization sampled during playback).
std::vector<double> running_fraction_per_second(const Tracer& tracer, ThreadId tid);

}  // namespace mvqoe::trace
