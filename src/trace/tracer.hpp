// In-simulator trace recorder — the stand-in for Perfetto in the paper's
// §5 analysis. The scheduler, memory manager, storage stack, and video
// client all emit events here; the analyzers in trace/analysis.hpp then
// answer the same queries the paper ran over its Perfetto traces:
// per-thread state dwell times (Table 4), top running threads, preemption
// statistics (Table 5), kswapd state breakdown (Fig 13), kill/crash
// timelines (Figs 14/15).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace mvqoe::trace {

using ThreadId = std::uint32_t;
using ProcessId = std::uint32_t;
constexpr ThreadId kNoThread = 0;

/// Scheduler thread states, matching the taxonomy the paper reports.
/// `RunnablePreempted` is Runnable entered *because* the kernel preempted
/// the thread in favor of a higher-priority one (paper Table 4).
enum class ThreadState : std::uint8_t {
  Created,
  Running,
  Runnable,
  RunnablePreempted,
  Sleeping,
  BlockedIo,
  Terminated,
};

const char* to_string(ThreadState s) noexcept;

struct ThreadMeta {
  ThreadId tid = kNoThread;
  ProcessId pid = 0;
  std::string name;
  std::string process_name;
};

/// A closed [begin, end) interval a thread spent in one state.
struct StateInterval {
  ThreadId tid = kNoThread;
  sim::Time begin = 0;
  sim::Time end = 0;
  ThreadState state = ThreadState::Created;
  /// For RunnablePreempted: who preempted us. kNoThread otherwise.
  ThreadId preemptor = kNoThread;
};

/// One completed preemption episode: `preemptor` took the CPU from
/// `victim` at `at`; the preemptor then ran continuously for
/// `preemptor_run`; the victim waited `victim_wait` to run again.
struct PreemptionRecord {
  ThreadId victim = kNoThread;
  ThreadId preemptor = kNoThread;
  sim::Time at = 0;
  sim::Time preemptor_run = 0;
  sim::Time victim_wait = 0;
};

/// Point events (process kills, crashes, pressure-state changes, frame
/// presentation/drop). Kept as a small closed enum so analyzers can
/// filter without string comparisons.
enum class InstantKind : std::uint8_t {
  ProcessKilled,     // value = oom_adj of the victim; tid = victim main thread
  ClientCrashed,     // video client process was killed
  PressureState,     // value = static_cast<int>(mem::PressureLevel)
  TrimSignal,        // value = trim level delivered to apps
  FramePresented,    // value = frame index
  FrameDropped,      // value = frame index
  DirectReclaim,     // tid = thread that entered direct reclaim; value = µs stalled
  SegmentDownloaded, // value = segment index
  RungSwitch,        // value = new rung index (ABR decision)
  // Fault-injection and recovery events (src/fault/, video session
  // recovery): the substrate robustness scenarios assert against.
  LinkDown,          // value = scheduled outage duration in µs (0 = stochastic)
  LinkUp,            // link restored
  LinkRateChange,    // value = new rate in kbps
  StorageDegraded,   // value = latency multiplier x1000
  StorageRestored,   // storage back to nominal
  ThermalThrottle,   // value = speed scale x1000
  ThermalRestored,   // SoC back to full speed
  FaultKill,         // value = pid the injector killed
  SegmentRetry,      // value = segment index being retried
  DownloadTimeout,   // value = segment index whose transfer timed out
  SessionRelaunch,   // value = relaunch ordinal (1 = first relaunch)
  WatchdogViolation, // value = violation ordinal
};

const char* to_string(InstantKind kind) noexcept;

struct InstantEvent {
  InstantKind kind{};
  sim::Time at = 0;
  ThreadId tid = kNoThread;
  std::int64_t value = 0;
};

/// Periodic numeric samples (e.g. lmkd CPU utilization per second for
/// Fig 14, rendered FPS per second for Figs 15-17).
struct CounterSample {
  std::string name;
  sim::Time at = 0;
  double value = 0.0;
};

class Tracer {
 public:
  void register_thread(const ThreadMeta& meta);
  const ThreadMeta* thread(ThreadId tid) const noexcept;

  /// Close the thread's current state interval at `at` and open a new one.
  /// `preemptor` is meaningful only for RunnablePreempted.
  void state_change(ThreadId tid, sim::Time at, ThreadState next,
                    ThreadId preemptor = kNoThread);

  void preemption(const PreemptionRecord& rec);
  void instant(InstantKind kind, sim::Time at, ThreadId tid = kNoThread,
               std::int64_t value = 0);
  void counter(const std::string& name, sim::Time at, double value);

  /// Close all open intervals at `at` (call once at end of run before
  /// analysis; idempotent for already-terminated threads).
  void finalize(sim::Time at);

  const std::vector<StateInterval>& intervals() const noexcept { return intervals_; }
  const std::vector<PreemptionRecord>& preemptions() const noexcept { return preemptions_; }
  const std::vector<InstantEvent>& instants() const noexcept { return instants_; }
  const std::vector<CounterSample>& counters() const noexcept { return counters_; }
  const std::unordered_map<ThreadId, ThreadMeta>& threads() const noexcept { return threads_; }

  /// Discard all recorded data but keep thread registrations; used between
  /// repeated runs that share a simulator.
  void clear_events();

 private:
  struct OpenInterval {
    sim::Time begin = 0;
    ThreadState state = ThreadState::Created;
    ThreadId preemptor = kNoThread;
    bool open = false;
  };

  std::unordered_map<ThreadId, ThreadMeta> threads_;
  std::unordered_map<ThreadId, OpenInterval> open_;
  std::vector<StateInterval> intervals_;
  std::vector<PreemptionRecord> preemptions_;
  std::vector<InstantEvent> instants_;
  std::vector<CounterSample> counters_;
};

}  // namespace mvqoe::trace
