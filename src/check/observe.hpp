// World observation for the invariant oracle suite (DESIGN.md §12).
//
// The fuzz harness evaluates oracles at every advance_slice boundary. To
// keep the oracles pure — unit-testable against synthetic corrupted
// worlds, with no live simulator in the loop — the harness first
// condenses the driver's observable surface into one WorldObservation
// struct per slice: memory pools and watermark state, per-thread
// scheduler state and vruntimes, the tracer intervals and kill audits
// that appeared since the previous slice, and per-video frame counters.
// Oracles consume only these structs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory_manager.hpp"
#include "scenario/driver.hpp"
#include "sched/scheduler.hpp"
#include "trace/tracer.hpp"

namespace mvqoe::check {

struct ThreadObs {
  sched::ThreadId tid = 0;
  trace::ThreadState state = trace::ThreadState::Created;
  double vruntime = 0.0;
};

struct VideoObs {
  std::string label;
  std::int64_t presented = 0;
  std::int64_t dropped = 0;
  std::int64_t lost_to_kill = 0;
  /// Fixed-ladder asset frame count; 0 when unknown (ABR in play).
  std::int64_t frame_total = 0;
  bool finished = false;
  bool crashed = false;
  bool aborted = false;
  int relaunches = 0;
};

struct MemObs {
  mem::Pages total = 0;
  mem::Pages kernel_reserved = 0;
  mem::Pages free = 0;
  mem::Pages available = 0;
  mem::Pages anon = 0;
  mem::Pages file = 0;
  mem::Pages zram_stored = 0;
  mem::Pages zram_capacity = 0;
  mem::Pages wm_min = 0;
  mem::Pages wm_low = 0;
  mem::Pages wm_high = 0;
  bool kswapd_active = false;
  std::uint64_t kswapd_wakeups = 0;
  double pressure = 0.0;
  bool conservation_ok = true;
  std::string conservation_detail;
  /// The active kill policy's declared decision rules (constant for the
  /// run) — the kill-ordering oracle replays every lmkd decision with
  /// mem::replay_kill_floor(charter, ...) plus each KillAudit's inputs,
  /// so the legality rules follow whatever policy the world runs instead
  /// of hard-coding baseline Android's bands.
  mem::KillCharter charter;
};

struct EngineObs {
  bool invariants_ok = true;
  std::uint64_t livelock_trips = 0;
};

struct NetFlowObs {
  std::uint64_t id = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t delivered_bytes = 0;
  std::uint64_t inflight_bytes = 0;
  double cwnd_bytes = 0.0;
  double pacing_bytes_per_usec = 0.0;
};

struct NetObs {
  /// False on the serial fifo link; the net oracles only engage when a
  /// congestion-controlled flow engine is actually running.
  bool cc_mode = false;
  std::string cc;
  std::uint64_t bytes_delivered = 0;
  std::uint64_t retired_delivered = 0;
  std::uint64_t backlog_bytes = 0;
  std::uint64_t queue_capacity_bytes = 0;
  std::vector<NetFlowObs> flows;
};

struct WorldObservation {
  sim::Time at = 0;
  sim::Time offset = 0;  ///< from video start
  bool final_obs = false;
  EngineObs engine;
  MemObs mem;
  NetObs net;
  std::vector<ThreadObs> threads;
  /// Tracer state intervals closed since the previous observation.
  std::vector<trace::StateInterval> new_intervals;
  /// Kill audits recorded since the previous observation.
  std::vector<mem::MemoryManager::KillAudit> new_kills;
  std::vector<VideoObs> videos;
};

/// Incremental collector: holds the cursors into the tracer's interval
/// log and the memory manager's kill-audit log, so each observation
/// carries only what is new since the last one. One observer per run.
class WorldObserver {
 public:
  WorldObservation observe(const scenario::ScenarioDriver& driver, bool final_obs = false);

 private:
  std::size_t interval_cursor_ = 0;
  std::size_t kill_cursor_ = 0;
};

}  // namespace mvqoe::check
