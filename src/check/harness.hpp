// Fuzz harness: runs one scenario under the full oracle suite at every
// slice boundary, then proves meta-determinism (run-twice digest
// identity and checkpoint-at-T/restore digest identity), fans campaigns
// out across the batch runner with a jobs-invariant summary digest, and
// packs failing runs into self-contained repro blobs (DESIGN.md §12).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "check/generator.hpp"
#include "check/oracles.hpp"
#include "snapshot/blob.hpp"
#include "snapshot/digest.hpp"
#include "snapshot/replay/record.hpp"

namespace mvqoe::check {

struct CheckOptions {
  /// Run the run-twice and checkpoint/restore digest-identity checks
  /// (two extra executions of the world).
  bool meta_determinism = true;
  /// Test/demo hook: flip one SystemActivity RNG bit at this offset in
  /// the primary run — manufactures a real meta-determinism failure.
  std::optional<sim::Time> perturb_at;
  /// Engine livelock tripwire threshold (0 = disabled).
  std::uint64_t livelock_limit = 500000;
};

/// One scenario checked end to end.
struct RunReport {
  bool ok = true;
  std::optional<Violation> violation;
  /// Digest trail: full-state digest at every slice boundary.
  std::vector<snapshot::replay::TrailEntry> trail;
  std::uint64_t final_digest = 0;
  int slices = 0;
  core::RunStatus status = core::RunStatus::Completed;
};

RunReport check_scenario(const scenario::ScenarioSpec& scen, const CheckOptions& opts = {});

// --- Campaign ----------------------------------------------------------------

struct FuzzOptions {
  std::uint64_t seed = 1;
  int runs = 100;
  int jobs = 1;
  GeneratorConfig generator;
  CheckOptions check;
  /// Perturb exactly this run index (-1 = none) at perturb_offset —
  /// the seeded failure-injection demo.
  int perturb_run = -1;
  sim::Time perturb_offset = sim::sec(2);
  /// Display-only (runs_done, runs_total) hook, called as runs finish
  /// (any worker thread, serialized by the harness). Not part of the
  /// campaign config encoding — resume never sees it.
  std::function<void(std::uint64_t, std::uint64_t)> progress;
};

struct FuzzFailure {
  int run = 0;
  std::uint64_t run_seed = 0;
  scenario::ScenarioSpec spec;
  Violation violation;
};

/// The flattened outcome of one fuzz run — everything the campaign
/// digest and failure reporting need, and nothing that cannot cross a
/// process boundary. The in-process pool (run_fuzz) and the
/// multi-process campaign (src/campaign/fuzz_campaign) both reduce
/// their runs to RunRecords, so their digests agree by construction.
struct RunRecord {
  std::uint64_t index = 0;
  /// False when the harness itself threw (world construction, OOM, ...);
  /// `error` carries the exception text and the report fields are unset.
  bool harness_ok = false;
  std::string error;
  /// Oracle verdict of the checked run (valid when harness_ok).
  bool report_ok = false;
  std::uint64_t final_digest = 0;
  int slices = 0;
  /// Violation context (empty/zero when report_ok).
  std::string oracle;
  std::string detail;
  sim::Time at = 0;
  sim::Time offset = 0;
};

/// Execute run `index` of a campaign exactly as run_fuzz would: derive
/// the run seed, generate the scenario, check it, flatten the outcome.
/// Never throws — harness exceptions become harness_ok == false records.
RunRecord execute_fuzz_run(const FuzzOptions& opts, std::uint64_t index);

/// Fold one record into a campaign digest (the order-sensitive per-run
/// mixing both execution paths share).
void mix_run_record(snapshot::StateHash& hash, const RunRecord& record);

/// Campaign digest over a complete, index-ordered record sequence.
std::uint64_t campaign_digest(const std::vector<RunRecord>& records);

/// Wire encoding of a RunRecord (the campaign worker's shard payload).
void encode_run_record(snapshot::ByteWriter& w, const RunRecord& record);
RunRecord decode_run_record(snapshot::ByteReader& r);

struct FuzzSummary {
  int runs = 0;
  int failed = 0;
  /// Jobs-invariant digest over (index, ok, oracle, final digest,
  /// slices) in run-index order — two invocations with the same seed
  /// must print the same value regardless of --jobs.
  std::uint64_t digest = 0;
  std::vector<FuzzFailure> failures;
};

/// Rebuild the FuzzSummary (failure list with regenerated specs, digest)
/// from a complete, index-ordered record sequence.
FuzzSummary summarize_records(const FuzzOptions& opts, const std::vector<RunRecord>& records);

/// Run i's world is generate_scenario(derive_seed(seed, i + 1)).
FuzzSummary run_fuzz(const FuzzOptions& opts);

// --- Repro blobs -------------------------------------------------------------

/// MVQS blob section carrying the failure context next to the SCEN spec.
inline constexpr std::uint32_t kReproTag = snapshot::tag("FZRP");

struct Repro {
  scenario::ScenarioSpec spec;
  std::uint64_t run_seed = 0;
  std::string oracle;
  std::string detail;
  sim::Time offset = 0;
  std::optional<sim::Time> perturb_at;
};

snapshot::Snapshot save_repro(const Repro& repro);
Repro load_repro(const snapshot::Snapshot& blob);

struct ReproReport {
  /// The recorded oracle tripped again.
  bool reproduced = false;
  std::optional<Violation> violation;
};
ReproReport replay_repro(const Repro& repro, const CheckOptions& base = {});

// --- Localization ------------------------------------------------------------

/// Name the first diverging/violating event of a failing spec.
/// Meta-determinism failures (perturb_at set) go through golden-trace
/// bisection (snapshot/replay); oracle violations re-run the world and
/// single-step the violating slice, re-checking the suite after every
/// event. Best-effort: located=false when the step budget runs out.
struct Localization {
  bool located = false;
  sim::Time event_time = 0;
  std::uint64_t event_seq = 0;
  /// Diverging subsystem (bisection) or tripped oracle (event stepping).
  std::string subsystem;
  int probes = 0;
  std::string detail;
};

Localization localize_violation(const scenario::ScenarioSpec& spec, const Violation& violation,
                                std::optional<sim::Time> perturb_at,
                                const CheckOptions& opts = {});

}  // namespace mvqoe::check
