#include "check/harness.hpp"

#include <mutex>
#include <sstream>
#include <stdexcept>

#include "runner/batch.hpp"
#include "snapshot/digest.hpp"
#include "stats/rng.hpp"

namespace mvqoe::check {
namespace {

Violation meta_violation(const std::string& oracle, std::string detail, sim::Time offset) {
  Violation v;
  v.oracle = oracle;
  v.detail = std::move(detail);
  v.offset = offset;
  v.at = offset;
  return v;
}

}  // namespace

RunReport check_scenario(const scenario::ScenarioSpec& scen, const CheckOptions& opts) {
  RunReport report;
  snapshot::replay::ReplayDriver drv(scen);
  if (opts.perturb_at) drv.set_perturb_at(*opts.perturb_at);
  drv.start();
  drv.driver().testbed().engine.set_livelock_limit(opts.livelock_limit);

  WorldObserver observer;
  OracleSuite suite;
  const auto sample = [&](bool final_obs) {
    const WorldObservation obs = observer.observe(drv.driver(), final_obs);
    const auto v = final_obs ? suite.final_check(obs) : suite.check(obs);
    if (v) {
      report.ok = false;
      report.violation = v;
    }
    return report.ok;
  };

  report.trail.push_back({drv.offset(), drv.digest()});
  if (!sample(false)) return report;
  while (!drv.done()) {
    drv.advance_to_offset(drv.offset() + sim::sec(1));
    ++report.slices;
    report.trail.push_back({drv.offset(), drv.digest()});
    if (!sample(false)) return report;
  }
  report.final_digest = report.trail.back().digest;
  const scenario::ScenarioResult result = drv.finalize();
  report.status = result.status;
  if (!sample(true)) return report;

  if (!opts.meta_determinism) return report;

  // Run-twice identity: a clean re-execution must hit every slice
  // digest of the primary run. A perturbed primary run fails here —
  // that is the manufactured meta-determinism violation.
  snapshot::replay::ReplayDriver rerun(scen);
  rerun.start();
  for (const snapshot::replay::TrailEntry& entry : report.trail) {
    if (entry.offset > rerun.offset()) rerun.advance_to_offset(entry.offset);
    if (rerun.offset() != entry.offset || rerun.digest() != entry.digest) {
      std::ostringstream why;
      why << "re-run digest diverged at offset " << entry.offset << "us: recorded " << std::hex
          << entry.digest << ", re-run " << rerun.digest() << std::dec << " (re-run offset "
          << rerun.offset() << "us)";
      report.ok = false;
      report.violation = meta_violation("meta-determinism", why.str(), entry.offset);
      return report;
    }
  }

  // Checkpoint/restore identity: replay a fresh world to one
  // deterministically-chosen mid-run slice T and require the digest the
  // trail recorded there (restore == replay-to-T, DESIGN.md §10).
  if (report.trail.size() > 2) {
    std::uint64_t pick = stats::derive_seed(scen.seed, 0x4348454Bu /* "CHEK" */);
    const std::size_t index =
        1 + static_cast<std::size_t>(pick % (report.trail.size() - 2));
    const snapshot::replay::TrailEntry& entry = report.trail[index];
    snapshot::replay::ReplayDriver restore(scen);
    restore.start();
    restore.advance_to_offset(entry.offset);
    if (restore.offset() != entry.offset || restore.digest() != entry.digest) {
      std::ostringstream why;
      why << "checkpoint restore to offset " << entry.offset << "us digested " << std::hex
          << restore.digest() << ", trail recorded " << entry.digest << std::dec;
      report.ok = false;
      report.violation = meta_violation("checkpoint-restore", why.str(), entry.offset);
      return report;
    }
  }
  return report;
}

// --- Campaign ----------------------------------------------------------------

RunRecord execute_fuzz_run(const FuzzOptions& opts, std::uint64_t index) {
  RunRecord record;
  record.index = index;
  try {
    const std::uint64_t run_seed = stats::derive_seed(opts.seed, index + 1);
    const scenario::ScenarioSpec spec = generate_scenario(run_seed, opts.generator);
    CheckOptions check = opts.check;
    if (static_cast<std::int64_t>(index) == opts.perturb_run) check.perturb_at = opts.perturb_offset;
    const RunReport report = check_scenario(spec, check);
    record.harness_ok = true;
    record.report_ok = report.ok;
    record.final_digest = report.final_digest;
    record.slices = report.slices;
    if (!report.ok && report.violation) {
      record.oracle = report.violation->oracle;
      record.detail = report.violation->detail;
      record.at = report.violation->at;
      record.offset = report.violation->offset;
    }
  } catch (const std::exception& e) {
    record.harness_ok = false;
    record.error = e.what();
  } catch (...) {
    record.harness_ok = false;
    record.error = "unknown exception";
  }
  return record;
}

void mix_run_record(snapshot::StateHash& hash, const RunRecord& record) {
  hash.mix(record.index);
  hash.mix(record.harness_ok ? 1 : 0);
  if (!record.harness_ok) {
    hash.mix_bytes(record.error);
    return;
  }
  hash.mix(record.report_ok ? 1 : 0);
  hash.mix(record.final_digest);
  hash.mix(static_cast<std::uint64_t>(record.slices));
  if (!record.report_ok) hash.mix_bytes(record.oracle);
}

std::uint64_t campaign_digest(const std::vector<RunRecord>& records) {
  snapshot::StateHash hash;
  for (const RunRecord& record : records) mix_run_record(hash, record);
  return hash.value();
}

FuzzSummary summarize_records(const FuzzOptions& opts, const std::vector<RunRecord>& records) {
  FuzzSummary summary;
  summary.runs = static_cast<int>(records.size());
  for (const RunRecord& record : records) {
    if (record.harness_ok && record.report_ok) continue;
    ++summary.failed;
    FuzzFailure failure;
    failure.run = static_cast<int>(record.index);
    failure.run_seed = stats::derive_seed(opts.seed, record.index + 1);
    // The spec is a pure function of (run_seed, generator config), so
    // regenerating it here works for records produced in this process
    // and for records decoded from a worker's shard payload alike.
    failure.spec = generate_scenario(failure.run_seed, opts.generator);
    if (!record.harness_ok) {
      failure.violation.oracle = "exception";
      failure.violation.detail = record.error;
    } else {
      failure.violation.oracle = record.oracle;
      failure.violation.detail = record.detail;
      failure.violation.at = record.at;
      failure.violation.offset = record.offset;
    }
    summary.failures.push_back(std::move(failure));
  }
  summary.digest = campaign_digest(records);
  return summary;
}

void encode_run_record(snapshot::ByteWriter& w, const RunRecord& record) {
  w.u32(1);  // record version
  w.u64(record.index);
  w.b(record.harness_ok);
  if (!record.harness_ok) {
    w.str(record.error);
    return;
  }
  w.b(record.report_ok);
  w.u64(record.final_digest);
  w.i32(record.slices);
  if (!record.report_ok) {
    w.str(record.oracle);
    w.str(record.detail);
    w.i64(record.at);
    w.i64(record.offset);
  }
}

RunRecord decode_run_record(snapshot::ByteReader& r) {
  const std::uint32_t version = r.u32();
  if (version != 1) {
    throw std::runtime_error("campaign: unsupported run-record version " +
                             std::to_string(version));
  }
  RunRecord record;
  record.index = r.u64();
  record.harness_ok = r.b();
  if (!record.harness_ok) {
    record.error = r.str();
    return record;
  }
  record.report_ok = r.b();
  record.final_digest = r.u64();
  record.slices = r.i32();
  if (!record.report_ok) {
    record.oracle = r.str();
    record.detail = r.str();
    record.at = r.i64();
    record.offset = r.i64();
  }
  return record;
}

FuzzSummary run_fuzz(const FuzzOptions& opts) {
  std::mutex progress_mutex;
  std::uint64_t runs_done = 0;
  const auto batch =
      runner::run_batch(static_cast<std::size_t>(opts.runs), opts.jobs, [&](std::size_t i) {
        RunRecord record = execute_fuzz_run(opts, i);
        if (opts.progress) {
          const std::lock_guard<std::mutex> lock(progress_mutex);
          opts.progress(++runs_done, static_cast<std::uint64_t>(opts.runs));
        }
        return record;
      });
  std::vector<RunRecord> records;
  records.reserve(batch.runs.size());
  for (const auto& slot : batch.runs) {
    if (slot.ok) {
      records.push_back(slot.value);
    } else {
      // execute_fuzz_run itself never throws; this is a belt-and-braces
      // path for allocation failure inside the batch machinery.
      RunRecord record;
      record.index = slot.index;
      record.harness_ok = false;
      record.error = slot.error;
      records.push_back(std::move(record));
    }
  }
  return summarize_records(opts, records);
}

// --- Repro blobs -------------------------------------------------------------

snapshot::Snapshot save_repro(const Repro& repro) {
  snapshot::Snapshot snap;
  {
    snapshot::ByteWriter w;
    scenario::save_scenario(w, repro.spec);
    snap.put(snapshot::replay::kScenTag, std::move(w));
  }
  snapshot::ByteWriter w;
  w.u32(1);  // section version
  w.u64(repro.run_seed);
  w.str(repro.oracle);
  w.str(repro.detail);
  w.i64(repro.offset);
  w.i64(repro.perturb_at ? *repro.perturb_at : -1);
  snap.put(kReproTag, std::move(w));
  return snap;
}

Repro load_repro(const snapshot::Snapshot& blob) {
  Repro repro;
  {
    snapshot::ByteReader r(blob.require(snapshot::replay::kScenTag));
    repro.spec = scenario::load_scenario(r);
  }
  snapshot::ByteReader r(blob.require(kReproTag));
  const std::uint32_t version = r.u32();
  if (version != 1) throw std::runtime_error("repro: unsupported FZRP section version");
  repro.run_seed = r.u64();
  repro.oracle = r.str();
  repro.detail = r.str();
  repro.offset = r.i64();
  const sim::Time perturb = r.i64();
  if (perturb >= 0) repro.perturb_at = perturb;
  return repro;
}

ReproReport replay_repro(const Repro& repro, const CheckOptions& base) {
  CheckOptions opts = base;
  opts.perturb_at = repro.perturb_at;
  const RunReport report = check_scenario(repro.spec, opts);
  ReproReport out;
  out.violation = report.violation;
  out.reproduced = !report.ok && report.violation && report.violation->oracle == repro.oracle;
  return out;
}

// --- Localization ------------------------------------------------------------

Localization localize_violation(const scenario::ScenarioSpec& spec, const Violation& violation,
                                std::optional<sim::Time> perturb_at, const CheckOptions& opts) {
  Localization loc;
  if (perturb_at) {
    // Determinism failures reduce to golden-trace divergence: record the
    // clean run at 1-second granularity, then bisect the perturbed
    // replay against it.
    snapshot::replay::RecordOptions record;
    record.interval = sim::sec(1);
    const snapshot::Snapshot blob = snapshot::replay::record_run(spec, record);
    const snapshot::replay::DivergenceReport report =
        snapshot::replay::bisect_divergence(blob, *perturb_at);
    loc.located = report.diverged;
    loc.event_time = report.event_time;
    loc.event_seq = report.event_seq;
    loc.subsystem = report.subsystem;
    loc.probes = report.probes;
    loc.detail = snapshot::replay::format_report(report);
    return loc;
  }

  // Oracle violations: re-run the world, warm the stateful oracles up to
  // the slice before the recorded violation, then single-step engine
  // events through the violating slice re-checking after each one.
  snapshot::replay::ReplayDriver drv(spec);
  drv.start();
  drv.driver().testbed().engine.set_livelock_limit(opts.livelock_limit);
  WorldObserver observer;
  OracleSuite suite;
  const auto trip = [&](bool final_obs) {
    const WorldObservation obs = observer.observe(drv.driver(), final_obs);
    return final_obs ? suite.final_check(obs) : suite.check(obs);
  };

  if (trip(false)) {
    loc.detail = "violation already present at the first slice boundary (offset 0)";
    return loc;
  }
  const sim::Time warm_to = violation.offset > 0 ? violation.offset - sim::sec(1) : 0;
  while (drv.offset() < warm_to && !drv.done()) {
    drv.advance_to_offset(drv.offset() + sim::sec(1));
    if (auto v = trip(false)) {
      loc.detail = "violation reproduced earlier than recorded (offset " +
                   std::to_string(drv.offset()) + "us)";
      return loc;
    }
  }

  constexpr int kMaxSteps = 2'000'000;
  const sim::Time slice_end = drv.video_start() + violation.offset;
  for (int steps = 1; steps <= kMaxSteps; ++steps) {
    const auto next = drv.next_event();
    if (!next || next->first > slice_end) break;
    if (!drv.step_event()) break;
    if (auto v = trip(false)) {
      loc.located = true;
      loc.event_time = next->first;
      loc.event_seq = next->second;
      loc.subsystem = v->oracle;
      loc.probes = steps;
      loc.detail = v->detail;
      return loc;
    }
  }
  loc.detail = "no single engine event tripped the oracle inside the violating slice "
               "(slice-level effect, e.g. a workload advance hook)";
  return loc;
}

}  // namespace mvqoe::check
