#include "check/harness.hpp"

#include <sstream>

#include "runner/batch.hpp"
#include "snapshot/digest.hpp"
#include "stats/rng.hpp"

namespace mvqoe::check {
namespace {

Violation meta_violation(const std::string& oracle, std::string detail, sim::Time offset) {
  Violation v;
  v.oracle = oracle;
  v.detail = std::move(detail);
  v.offset = offset;
  v.at = offset;
  return v;
}

}  // namespace

RunReport check_scenario(const scenario::ScenarioSpec& scen, const CheckOptions& opts) {
  RunReport report;
  snapshot::replay::ReplayDriver drv(scen);
  if (opts.perturb_at) drv.set_perturb_at(*opts.perturb_at);
  drv.start();
  drv.driver().testbed().engine.set_livelock_limit(opts.livelock_limit);

  WorldObserver observer;
  OracleSuite suite;
  const auto sample = [&](bool final_obs) {
    const WorldObservation obs = observer.observe(drv.driver(), final_obs);
    const auto v = final_obs ? suite.final_check(obs) : suite.check(obs);
    if (v) {
      report.ok = false;
      report.violation = v;
    }
    return report.ok;
  };

  report.trail.push_back({drv.offset(), drv.digest()});
  if (!sample(false)) return report;
  while (!drv.done()) {
    drv.advance_to_offset(drv.offset() + sim::sec(1));
    ++report.slices;
    report.trail.push_back({drv.offset(), drv.digest()});
    if (!sample(false)) return report;
  }
  report.final_digest = report.trail.back().digest;
  const scenario::ScenarioResult result = drv.finalize();
  report.status = result.status;
  if (!sample(true)) return report;

  if (!opts.meta_determinism) return report;

  // Run-twice identity: a clean re-execution must hit every slice
  // digest of the primary run. A perturbed primary run fails here —
  // that is the manufactured meta-determinism violation.
  snapshot::replay::ReplayDriver rerun(scen);
  rerun.start();
  for (const snapshot::replay::TrailEntry& entry : report.trail) {
    if (entry.offset > rerun.offset()) rerun.advance_to_offset(entry.offset);
    if (rerun.offset() != entry.offset || rerun.digest() != entry.digest) {
      std::ostringstream why;
      why << "re-run digest diverged at offset " << entry.offset << "us: recorded " << std::hex
          << entry.digest << ", re-run " << rerun.digest() << std::dec << " (re-run offset "
          << rerun.offset() << "us)";
      report.ok = false;
      report.violation = meta_violation("meta-determinism", why.str(), entry.offset);
      return report;
    }
  }

  // Checkpoint/restore identity: replay a fresh world to one
  // deterministically-chosen mid-run slice T and require the digest the
  // trail recorded there (restore == replay-to-T, DESIGN.md §10).
  if (report.trail.size() > 2) {
    std::uint64_t pick = stats::derive_seed(scen.seed, 0x4348454Bu /* "CHEK" */);
    const std::size_t index =
        1 + static_cast<std::size_t>(pick % (report.trail.size() - 2));
    const snapshot::replay::TrailEntry& entry = report.trail[index];
    snapshot::replay::ReplayDriver restore(scen);
    restore.start();
    restore.advance_to_offset(entry.offset);
    if (restore.offset() != entry.offset || restore.digest() != entry.digest) {
      std::ostringstream why;
      why << "checkpoint restore to offset " << entry.offset << "us digested " << std::hex
          << restore.digest() << ", trail recorded " << entry.digest << std::dec;
      report.ok = false;
      report.violation = meta_violation("checkpoint-restore", why.str(), entry.offset);
      return report;
    }
  }
  return report;
}

// --- Campaign ----------------------------------------------------------------

FuzzSummary run_fuzz(const FuzzOptions& opts) {
  struct Cell {
    std::uint64_t run_seed = 0;
    scenario::ScenarioSpec spec;
    RunReport report;
  };

  const auto batch = runner::run_batch(
      static_cast<std::size_t>(opts.runs), opts.jobs, [&opts](std::size_t i) {
        Cell cell;
        cell.run_seed = stats::derive_seed(opts.seed, i + 1);
        cell.spec = generate_scenario(cell.run_seed, opts.generator);
        CheckOptions check = opts.check;
        if (static_cast<int>(i) == opts.perturb_run) check.perturb_at = opts.perturb_offset;
        cell.report = check_scenario(cell.spec, check);
        return cell;
      });

  FuzzSummary summary;
  summary.runs = opts.runs;
  snapshot::StateHash hash;
  for (const auto& slot : batch.runs) {
    hash.mix(slot.index);
    hash.mix(slot.ok ? 1 : 0);
    if (!slot.ok) {
      // The world threw — report it as a harness-level failure.
      ++summary.failed;
      hash.mix_bytes(slot.error);
      FuzzFailure failure;
      failure.run = static_cast<int>(slot.index);
      failure.run_seed = stats::derive_seed(opts.seed, slot.index + 1);
      failure.spec = generate_scenario(failure.run_seed, opts.generator);
      failure.violation.oracle = "exception";
      failure.violation.detail = slot.error;
      summary.failures.push_back(std::move(failure));
      continue;
    }
    const RunReport& report = slot.value.report;
    hash.mix(report.ok ? 1 : 0);
    hash.mix(report.final_digest);
    hash.mix(static_cast<std::uint64_t>(report.slices));
    if (!report.ok) {
      ++summary.failed;
      hash.mix_bytes(report.violation->oracle);
      FuzzFailure failure;
      failure.run = static_cast<int>(slot.index);
      failure.run_seed = slot.value.run_seed;
      failure.spec = slot.value.spec;
      failure.violation = *report.violation;
      summary.failures.push_back(std::move(failure));
    }
  }
  summary.digest = hash.value();
  return summary;
}

// --- Repro blobs -------------------------------------------------------------

snapshot::Snapshot save_repro(const Repro& repro) {
  snapshot::Snapshot snap;
  {
    snapshot::ByteWriter w;
    scenario::save_scenario(w, repro.spec);
    snap.put(snapshot::replay::kScenTag, std::move(w));
  }
  snapshot::ByteWriter w;
  w.u32(1);  // section version
  w.u64(repro.run_seed);
  w.str(repro.oracle);
  w.str(repro.detail);
  w.i64(repro.offset);
  w.i64(repro.perturb_at ? *repro.perturb_at : -1);
  snap.put(kReproTag, std::move(w));
  return snap;
}

Repro load_repro(const snapshot::Snapshot& blob) {
  Repro repro;
  {
    snapshot::ByteReader r(blob.require(snapshot::replay::kScenTag));
    repro.spec = scenario::load_scenario(r);
  }
  snapshot::ByteReader r(blob.require(kReproTag));
  const std::uint32_t version = r.u32();
  if (version != 1) throw std::runtime_error("repro: unsupported FZRP section version");
  repro.run_seed = r.u64();
  repro.oracle = r.str();
  repro.detail = r.str();
  repro.offset = r.i64();
  const sim::Time perturb = r.i64();
  if (perturb >= 0) repro.perturb_at = perturb;
  return repro;
}

ReproReport replay_repro(const Repro& repro, const CheckOptions& base) {
  CheckOptions opts = base;
  opts.perturb_at = repro.perturb_at;
  const RunReport report = check_scenario(repro.spec, opts);
  ReproReport out;
  out.violation = report.violation;
  out.reproduced = !report.ok && report.violation && report.violation->oracle == repro.oracle;
  return out;
}

// --- Localization ------------------------------------------------------------

Localization localize_violation(const scenario::ScenarioSpec& spec, const Violation& violation,
                                std::optional<sim::Time> perturb_at, const CheckOptions& opts) {
  Localization loc;
  if (perturb_at) {
    // Determinism failures reduce to golden-trace divergence: record the
    // clean run at 1-second granularity, then bisect the perturbed
    // replay against it.
    snapshot::replay::RecordOptions record;
    record.interval = sim::sec(1);
    const snapshot::Snapshot blob = snapshot::replay::record_run(spec, record);
    const snapshot::replay::DivergenceReport report =
        snapshot::replay::bisect_divergence(blob, *perturb_at);
    loc.located = report.diverged;
    loc.event_time = report.event_time;
    loc.event_seq = report.event_seq;
    loc.subsystem = report.subsystem;
    loc.probes = report.probes;
    loc.detail = snapshot::replay::format_report(report);
    return loc;
  }

  // Oracle violations: re-run the world, warm the stateful oracles up to
  // the slice before the recorded violation, then single-step engine
  // events through the violating slice re-checking after each one.
  snapshot::replay::ReplayDriver drv(spec);
  drv.start();
  drv.driver().testbed().engine.set_livelock_limit(opts.livelock_limit);
  WorldObserver observer;
  OracleSuite suite;
  const auto trip = [&](bool final_obs) {
    const WorldObservation obs = observer.observe(drv.driver(), final_obs);
    return final_obs ? suite.final_check(obs) : suite.check(obs);
  };

  if (trip(false)) {
    loc.detail = "violation already present at the first slice boundary (offset 0)";
    return loc;
  }
  const sim::Time warm_to = violation.offset > 0 ? violation.offset - sim::sec(1) : 0;
  while (drv.offset() < warm_to && !drv.done()) {
    drv.advance_to_offset(drv.offset() + sim::sec(1));
    if (auto v = trip(false)) {
      loc.detail = "violation reproduced earlier than recorded (offset " +
                   std::to_string(drv.offset()) + "us)";
      return loc;
    }
  }

  constexpr int kMaxSteps = 2'000'000;
  const sim::Time slice_end = drv.video_start() + violation.offset;
  for (int steps = 1; steps <= kMaxSteps; ++steps) {
    const auto next = drv.next_event();
    if (!next || next->first > slice_end) break;
    if (!drv.step_event()) break;
    if (auto v = trip(false)) {
      loc.located = true;
      loc.event_time = next->first;
      loc.event_seq = next->second;
      loc.subsystem = v->oracle;
      loc.probes = steps;
      loc.detail = v->detail;
      return loc;
    }
  }
  loc.detail = "no single engine event tripped the oracle inside the violating slice "
               "(slice-level effect, e.g. a workload advance hook)";
  return loc;
}

}  // namespace mvqoe::check
