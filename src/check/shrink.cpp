#include "check/shrink.hpp"

#include <algorithm>
#include <variant>

namespace mvqoe::check {
namespace {

template <class T>
void truncate_half(std::vector<T>& v, bool& changed) {
  if (v.empty()) return;
  v.resize(v.size() / 2);
  changed = true;
}

/// All one-step reductions of `spec`, strictly smaller by construction
/// (so greedy acceptance terminates).
std::vector<scenario::ScenarioSpec> reductions(const scenario::ScenarioSpec& spec) {
  std::vector<scenario::ScenarioSpec> out;

  // Drop each workload (a scenario with no videos ends immediately, so
  // such candidates just fail to reproduce and are rejected).
  if (spec.workloads.size() > 1) {
    for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
      scenario::ScenarioSpec c = spec;
      c.workloads.erase(c.workloads.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(c));
    }
  }

  for (std::size_t i = 0; i < spec.workloads.size(); ++i) {
    if (const auto* video = std::get_if<scenario::VideoWorkloadSpec>(&spec.workloads[i])) {
      if (!video->fault_plan.empty()) {
        // Whole script gone.
        scenario::ScenarioSpec cleared = spec;
        std::get<scenario::VideoWorkloadSpec>(cleared.workloads[i]).fault_plan =
            fault::FaultPlan{};
        out.push_back(std::move(cleared));
        // Script truncated: halve every action vector, drop the
        // stochastic link model.
        scenario::ScenarioSpec truncated = spec;
        fault::FaultPlan& plan =
            std::get<scenario::VideoWorkloadSpec>(truncated.workloads[i]).fault_plan;
        bool changed = false;
        truncate_half(plan.link_outages, changed);
        truncate_half(plan.link_rate_steps, changed);
        truncate_half(plan.storage_degradations, changed);
        truncate_half(plan.thermal_windows, changed);
        truncate_half(plan.kills, changed);
        if (plan.gilbert_elliott.enabled) {
          plan.gilbert_elliott.enabled = false;
          changed = true;
        }
        if (changed) out.push_back(std::move(truncated));
      }
      if (video->duration_s > 1) {
        scenario::ScenarioSpec shorter = spec;
        auto& v = std::get<scenario::VideoWorkloadSpec>(shorter.workloads[i]);
        v.duration_s = std::max(1, v.duration_s / 2);
        out.push_back(std::move(shorter));
      }
    } else if (const auto* bg =
                   std::get_if<scenario::BackgroundAppsWorkloadSpec>(&spec.workloads[i])) {
      if (bg->count > 1) {
        scenario::ScenarioSpec fewer = spec;
        std::get<scenario::BackgroundAppsWorkloadSpec>(fewer.workloads[i]).count = bg->count / 2;
        out.push_back(std::move(fewer));
      }
    }
  }

  if (spec.organic_background_apps > 0) {
    scenario::ScenarioSpec c = spec;
    c.organic_background_apps /= 2;
    out.push_back(std::move(c));
  }
  if (spec.state != mem::PressureLevel::Normal) {
    scenario::ScenarioSpec c = spec;
    c.state = mem::PressureLevel::Normal;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

ShrinkResult shrink(const scenario::ScenarioSpec& spec, const Violation& original,
                    const ShrinkOptions& opts) {
  ShrinkResult result;
  result.minimal = spec;
  result.violation = original;

  CheckOptions check = opts.check;
  check.perturb_at = opts.perturb_at;

  bool improved = true;
  while (improved && result.attempts < opts.max_attempts) {
    improved = false;
    for (const scenario::ScenarioSpec& candidate : reductions(result.minimal)) {
      if (result.attempts >= opts.max_attempts) break;
      ++result.attempts;
      const RunReport report = check_scenario(candidate, check);
      if (!report.ok && report.violation && report.violation->oracle == original.oracle) {
        result.minimal = candidate;
        result.violation = *report.violation;
        ++result.accepted;
        improved = true;
        break;  // regenerate reductions from the new, smaller spec
      }
    }
  }
  return result;
}

}  // namespace mvqoe::check
