#include "check/oracles.hpp"

#include <climits>
#include <cmath>
#include <sstream>

namespace mvqoe::check {
namespace {

Violation make(const WorldObservation& obs, const std::string& oracle, std::string detail) {
  Violation v;
  v.oracle = oracle;
  v.detail = std::move(detail);
  v.at = obs.at;
  v.offset = obs.offset;
  return v;
}

}  // namespace

// --- MemConservationOracle --------------------------------------------------

std::optional<Violation> MemConservationOracle::check(const WorldObservation& obs) {
  if (obs.mem.conservation_ok) return std::nullopt;
  return make(obs, name(), obs.mem.conservation_detail);
}

// --- WatermarkOracle --------------------------------------------------------

std::optional<Violation> WatermarkOracle::check(const WorldObservation& obs) {
  const MemObs& m = obs.mem;
  std::ostringstream why;
  if (!(m.wm_min > 0 && m.wm_min <= m.wm_low && m.wm_low <= m.wm_high)) {
    why << "watermark ordering violated: min=" << m.wm_min << " low=" << m.wm_low
        << " high=" << m.wm_high;
  } else if (m.wm_high > m.total - m.kernel_reserved) {
    why << "watermark high " << m.wm_high << " above reclaimable ceiling "
        << (m.total - m.kernel_reserved);
  } else if (m.free < 0 || m.anon < 0 || m.file < 0 || m.zram_stored < 0) {
    why << "negative pool: free=" << m.free << " anon=" << m.anon << " file=" << m.file
        << " zram=" << m.zram_stored;
  } else if (m.zram_stored > m.zram_capacity) {
    why << "zram stored " << m.zram_stored << " exceeds capacity " << m.zram_capacity;
  } else if (m.available < m.free || m.available > m.free + m.file) {
    why << "available " << m.available << " outside [free=" << m.free
        << ", free+file=" << (m.free + m.file) << "]";
  } else {
    return std::nullopt;
  }
  return make(obs, name(), why.str());
}

// --- KswapdOracle -----------------------------------------------------------

std::optional<Violation> KswapdOracle::check(const WorldObservation& obs) {
  const MemObs& m = obs.mem;
  std::optional<Violation> out;
  if (have_prev_ && m.kswapd_wakeups < prev_wakeups_) {
    std::ostringstream why;
    why << "kswapd wakeup counter went backwards: " << prev_wakeups_ << " -> " << m.kswapd_wakeups;
    out = make(obs, name(), why.str());
  } else if (!m.kswapd_active && m.free < m.wm_min) {
    std::ostringstream why;
    why << "kswapd sleeping with free=" << m.free << " below watermark min=" << m.wm_min;
    out = make(obs, name(), why.str());
  } else if (have_prev_ && !prev_active_ && m.kswapd_active && m.kswapd_wakeups <= prev_wakeups_) {
    std::ostringstream why;
    why << "kswapd became active without a recorded wakeup (counter stuck at " << m.kswapd_wakeups
        << ")";
    out = make(obs, name(), why.str());
  }
  have_prev_ = true;
  prev_active_ = m.kswapd_active;
  prev_wakeups_ = m.kswapd_wakeups;
  return out;
}

// --- LmkdOrderOracle --------------------------------------------------------

std::optional<Violation> LmkdOrderOracle::check(const WorldObservation& obs) {
  using Audit = mem::MemoryManager::KillAudit;
  const mem::KillCharter& charter = obs.mem.charter;
  sim::Time prev_at = -1;
  for (const Audit& kill : obs.new_kills) {
    if (prev_at >= 0 && kill.at < prev_at) {
      std::ostringstream why;
      why << "kill audit times went backwards: " << prev_at << " -> " << kill.at;
      return make(obs, name(), why.str());
    }
    prev_at = kill.at;
    if (kill.reason == Audit::Reason::External) continue;

    // Victim selection: every killer respects the recorded floor...
    if (kill.oom_adj < kill.min_adj) {
      std::ostringstream why;
      why << "kill victim pid=" << kill.pid << " adj=" << kill.oom_adj
          << " below the killer's floor min_adj=" << kill.min_adj;
      return make(obs, name(), why.str());
    }
    // ...and under the HighestAdj rule (Android's pick_victim, and
    // always the OOM killer — that path is mechanism, not policy), the
    // victim must also be the highest killable adj alive. FloorOnly
    // policies (swam) score within the eligible set instead.
    const bool highest_adj_rule =
        kill.reason == Audit::Reason::Oom ||
        charter.victim_rule == mem::KillCharter::VictimRule::HighestAdj;
    if (highest_adj_rule && kill.oom_adj != kill.max_killable_adj) {
      std::ostringstream why;
      why << "kill victim pid=" << kill.pid << " adj=" << kill.oom_adj
          << " is not the highest killable adj alive (" << kill.max_killable_adj << ")";
      return make(obs, name(), why.str());
    }

    if (kill.reason == Audit::Reason::Lmkd) {
      // lmkd only fires inside the charter's pressure/minfree band;
      // replay the decision with the same function the live manager
      // uses, from the recorded decision inputs.
      const int expected = mem::replay_kill_floor(charter, kill.pressure, kill.available,
                                                  kill.zram_stored, obs.mem.zram_capacity);
      if (expected != kill.min_adj) {
        std::ostringstream why;
        why << "lmkd kill pid=" << kill.pid << " used min_adj=" << kill.min_adj
            << " but the " << charter.policy_name << " charter gives " << expected
            << " (P=" << kill.pressure << " available=" << kill.available
            << " zram=" << kill.zram_stored << ")";
        return make(obs, name(), why.str());
      }
      if (kill.at - last_lmkd_at_ < charter.kill_cooldown) {
        std::ostringstream why;
        why << "lmkd kills " << (kill.at - last_lmkd_at_) << " apart (t=" << kill.at
            << "): the " << charter.kill_cooldown << " post-kill cooldown forbids this";
        return make(obs, name(), why.str());
      }
      last_lmkd_at_ = kill.at;
    } else {  // Oom
      // The kernel OOM killer prefers the background floor and escalates
      // to the foreground only when nothing lower-priority exists.
      if (kill.min_adj != charter.background_adj_floor &&
          kill.min_adj != mem::OomAdj::kForeground) {
        std::ostringstream why;
        why << "oom kill pid=" << kill.pid << " used unexpected floor min_adj=" << kill.min_adj;
        return make(obs, name(), why.str());
      }
      if (kill.min_adj == mem::OomAdj::kForeground &&
          kill.oom_adj >= charter.background_adj_floor) {
        std::ostringstream why;
        why << "oom kill escalated to the foreground floor while a background victim (adj="
            << kill.oom_adj << ") existed";
        return make(obs, name(), why.str());
      }
    }
  }
  return std::nullopt;
}

// --- SchedStateOracle -------------------------------------------------------

std::optional<Violation> SchedStateOracle::check(const WorldObservation& obs) {
  // The tracer suppresses zero-length intervals, so a run of
  // instantaneous transitions (Running -> Sleeping -> Runnable ->
  // Running at one instant, the run_work self-loop) collapses and any
  // pair of legal states can appear adjacent. What stays observable:
  // intervals have positive length, tile time exactly, a Created record
  // can only open a thread's history, Terminated intervals never exist
  // (the transition just closes the last one), and the preemptor
  // annotation appears exactly on RunnablePreempted intervals.
  for (const trace::StateInterval& iv : obs.new_intervals) {
    PerThread& t = threads_[iv.tid];
    std::ostringstream why;
    if (iv.end <= iv.begin) {
      why << "tid " << iv.tid << ": non-positive-length " << trace::to_string(iv.state)
          << " interval (" << iv.begin << " -> " << iv.end
          << "); the tracer suppresses those";
    } else if (iv.state == trace::ThreadState::Terminated) {
      why << "tid " << iv.tid << ": Terminated recorded as an interval at t=" << iv.begin
          << "; termination only closes the previous one";
    } else if (t.seen && iv.state == trace::ThreadState::Created) {
      why << "tid " << iv.tid << ": Created interval at t=" << iv.begin
          << " after the thread already has history";
    } else if (t.seen && iv.begin != t.last_end) {
      why << "tid " << iv.tid << ": interval gap/overlap at t=" << iv.begin << " (previous "
          << trace::to_string(t.last_state) << " ended at " << t.last_end << ")";
    } else if (iv.state == trace::ThreadState::RunnablePreempted &&
               (iv.preemptor == trace::kNoThread || iv.preemptor == iv.tid)) {
      why << "tid " << iv.tid << ": RunnablePreempted interval at t=" << iv.begin
          << " without a valid preemptor";
    } else if (iv.state != trace::ThreadState::RunnablePreempted &&
               iv.preemptor != trace::kNoThread) {
      why << "tid " << iv.tid << ": " << trace::to_string(iv.state)
          << " interval carries preemptor " << iv.preemptor;
    }
    if (!why.str().empty()) {
      Violation v = make(obs, name(), why.str());
      return v;
    }
    t.seen = true;
    t.last_state = iv.state;
    t.last_end = iv.end;
  }
  return std::nullopt;
}

// --- VruntimeOracle ---------------------------------------------------------

std::optional<Violation> VruntimeOracle::check(const WorldObservation& obs) {
  for (const ThreadObs& t : obs.threads) {
    auto it = last_.find(t.tid);
    if (it != last_.end() && t.vruntime < it->second) {
      std::ostringstream why;
      why << "tid " << t.tid << ": vruntime went backwards " << it->second << " -> " << t.vruntime;
      return make(obs, name(), why.str());
    }
    last_[t.tid] = t.vruntime;
  }
  return std::nullopt;
}

// --- VideoFrameOracle -------------------------------------------------------

std::optional<Violation> VideoFrameOracle::check(const WorldObservation& obs) {
  for (const VideoObs& v : obs.videos) {
    Prev& p = prev_[v.label];
    std::ostringstream why;
    if (v.presented < p.presented || v.dropped < p.dropped || v.lost_to_kill < p.lost) {
      why << "session " << v.label << ": frame counters went backwards (presented " << p.presented
          << "->" << v.presented << ", dropped " << p.dropped << "->" << v.dropped << ", lost "
          << p.lost << "->" << v.lost_to_kill << ")";
    } else if (v.presented < 0 || v.dropped < 0 || v.lost_to_kill < 0) {
      why << "session " << v.label << ": negative frame counter";
    } else if (v.frame_total > 0 &&
               v.presented + v.dropped + v.lost_to_kill > v.frame_total) {
      why << "session " << v.label << ": presented+dropped+lost = "
          << (v.presented + v.dropped + v.lost_to_kill) << " exceeds asset frame total "
          << v.frame_total;
    }
    if (!why.str().empty()) return make(obs, name(), why.str());
    p.presented = v.presented;
    p.dropped = v.dropped;
    p.lost = v.lost_to_kill;
  }
  return std::nullopt;
}

std::optional<Violation> VideoFrameOracle::final_check(const WorldObservation& obs) {
  for (const VideoObs& v : obs.videos) {
    // Exact conservation holds for fixed-ladder sessions that ran to
    // playout or a kill — relaunch recoveries included (re-downloaded
    // segments are never double-counted) — but not horizon timeouts or
    // download aborts.
    if (v.frame_total <= 0 || !v.finished || v.aborted) continue;
    const std::int64_t sum = v.presented + v.dropped + v.lost_to_kill;
    if (sum != v.frame_total) {
      std::ostringstream why;
      why << "session " << v.label << ": presented+dropped+lost = " << sum
          << " != asset frame total " << v.frame_total << " (presented=" << v.presented
          << " dropped=" << v.dropped << " lost=" << v.lost_to_kill << ")";
      return make(obs, name(), why.str());
    }
  }
  return std::nullopt;
}

// --- EngineOracle -----------------------------------------------------------

std::optional<Violation> EngineOracle::check(const WorldObservation& obs) {
  if (!obs.engine.invariants_ok) {
    return make(obs, name(), "event-queue bookkeeping audit failed (check_invariants)");
  }
  if (obs.engine.livelock_trips > 0) {
    std::ostringstream why;
    why << "livelock tripwire fired " << obs.engine.livelock_trips << " time(s)";
    return make(obs, name(), why.str());
  }
  return std::nullopt;
}

// --- Net oracles ------------------------------------------------------------

std::optional<Violation> NetConservationOracle::check(const WorldObservation& obs) {
  if (!obs.net.cc_mode) return std::nullopt;
  std::uint64_t live = 0;
  for (const NetFlowObs& f : obs.net.flows) live += f.delivered_bytes;
  if (obs.net.retired_delivered + live != obs.net.bytes_delivered) {
    std::ostringstream why;
    why << "net byte conservation broken: retired " << obs.net.retired_delivered << " + live "
        << live << " != link delivered " << obs.net.bytes_delivered;
    return make(obs, name(), why.str());
  }
  return std::nullopt;
}

std::optional<Violation> NetQueueOracle::check(const WorldObservation& obs) {
  if (!obs.net.cc_mode) return std::nullopt;
  if (obs.net.backlog_bytes > obs.net.queue_capacity_bytes) {
    std::ostringstream why;
    why << "bottleneck backlog " << obs.net.backlog_bytes << " exceeds droptail capacity "
        << obs.net.queue_capacity_bytes;
    return make(obs, name(), why.str());
  }
  return std::nullopt;
}

std::optional<Violation> NetCwndOracle::check(const WorldObservation& obs) {
  if (!obs.net.cc_mode) return std::nullopt;
  constexpr double kCwndCeiling = 64.0 * 1024.0 * 1024.0;
  for (const NetFlowObs& f : obs.net.flows) {
    std::ostringstream why;
    // The fifo controller reports cwnd 0 (no window); every real
    // controller clamps to at least one packet.
    if (obs.net.cc != "fifo" && (f.cwnd_bytes < 1.0 || f.cwnd_bytes > kCwndCeiling)) {
      why << "flow " << f.id << ": cwnd " << f.cwnd_bytes << " outside [1 pkt, 64 MiB]";
    } else if (!(f.pacing_bytes_per_usec >= 0.0) ||
               !std::isfinite(f.pacing_bytes_per_usec)) {
      why << "flow " << f.id << ": pacing rate " << f.pacing_bytes_per_usec
          << " negative or non-finite";
    }
    if (!why.str().empty()) return make(obs, name(), why.str());
  }
  return std::nullopt;
}

std::optional<Violation> NetProgressOracle::check(const WorldObservation& obs) {
  if (!obs.net.cc_mode) return std::nullopt;
  for (const NetFlowObs& f : obs.net.flows) {
    std::ostringstream why;
    auto it = last_delivered_.find(f.id);
    if (f.delivered_bytes > f.total_bytes) {
      why << "flow " << f.id << ": delivered " << f.delivered_bytes << " exceeds transfer size "
          << f.total_bytes;
    } else if (it != last_delivered_.end() && f.delivered_bytes < it->second) {
      why << "flow " << f.id << ": delivered went backwards " << it->second << " -> "
          << f.delivered_bytes;
    }
    if (!why.str().empty()) return make(obs, name(), why.str());
    last_delivered_[f.id] = f.delivered_bytes;
  }
  return std::nullopt;
}

// --- OracleSuite ------------------------------------------------------------

OracleSuite::OracleSuite() {
  oracles_.push_back(std::make_unique<EngineOracle>());
  oracles_.push_back(std::make_unique<MemConservationOracle>());
  oracles_.push_back(std::make_unique<WatermarkOracle>());
  oracles_.push_back(std::make_unique<KswapdOracle>());
  oracles_.push_back(std::make_unique<LmkdOrderOracle>());
  oracles_.push_back(std::make_unique<SchedStateOracle>());
  oracles_.push_back(std::make_unique<VruntimeOracle>());
  oracles_.push_back(std::make_unique<VideoFrameOracle>());
  oracles_.push_back(std::make_unique<NetConservationOracle>());
  oracles_.push_back(std::make_unique<NetQueueOracle>());
  oracles_.push_back(std::make_unique<NetCwndOracle>());
  oracles_.push_back(std::make_unique<NetProgressOracle>());
}

std::optional<Violation> OracleSuite::check(const WorldObservation& obs) {
  for (auto& oracle : oracles_) {
    if (auto v = oracle->check(obs)) return v;
  }
  return std::nullopt;
}

std::optional<Violation> OracleSuite::final_check(const WorldObservation& obs) {
  if (auto v = check(obs)) return v;
  for (auto& oracle : oracles_) {
    if (auto v = oracle->final_check(obs)) return v;
  }
  return std::nullopt;
}

std::vector<Violation> OracleSuite::check_all(const WorldObservation& obs) {
  std::vector<Violation> out;
  for (auto& oracle : oracles_) {
    if (auto v = oracle->check(obs)) out.push_back(*v);
    if (auto v = oracle->final_check(obs)) out.push_back(*v);
  }
  return out;
}

std::vector<std::string> oracle_names() {
  OracleSuite suite;
  std::vector<std::string> names;
  names.reserve(suite.oracles().size());
  for (const auto& oracle : suite.oracles()) names.push_back(oracle->name());
  return names;
}

}  // namespace mvqoe::check
