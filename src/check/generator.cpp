#include "check/generator.hpp"

#include "stats/rng.hpp"
#include "video/ladder.hpp"

namespace mvqoe::check {
namespace {

fault::FaultPlan random_fault_plan(stats::Rng& rng, int duration_s) {
  fault::FaultPlan plan;
  plan.seed = rng.next();
  const auto offset = [&]() { return sim::msec(rng.uniform_int(0, duration_s * 1000)); };

  const int outages = static_cast<int>(rng.uniform_int(0, 2));
  for (int i = 0; i < outages; ++i) {
    fault::LinkOutage outage;
    outage.at = offset();
    outage.duration = sim::msec(rng.uniform_int(100, 2500));
    plan.link_outages.push_back(outage);
  }
  const int steps = static_cast<int>(rng.uniform_int(0, 2));
  for (int i = 0; i < steps; ++i) {
    fault::LinkRateStep step;
    step.at = offset();
    step.rate_mbps = rng.uniform(0.8, 80.0);
    plan.link_rate_steps.push_back(step);
  }
  if (rng.bernoulli(0.35)) {
    fault::StorageDegradation window;
    window.at = offset();
    window.duration = sim::msec(rng.uniform_int(200, 3000));
    window.latency_multiplier = rng.uniform(2.0, 10.0);
    window.error_rate = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.3) : 0.0;
    plan.storage_degradations.push_back(window);
  }
  if (rng.bernoulli(0.35)) {
    fault::ThermalWindow window;
    window.at = offset();
    window.duration = sim::msec(rng.uniform_int(500, 4000));
    window.speed_scale = rng.uniform(0.3, 0.9);
    plan.thermal_windows.push_back(window);
  }
  if (rng.bernoulli(0.3)) {
    // pid 0 = the owning session's client, resolved at fire time — the
    // targeted lmkd-style kill.
    fault::TargetedKill kill;
    kill.at = offset();
    kill.pid = 0;
    plan.kills.push_back(kill);
  }
  if (rng.bernoulli(0.15)) {
    plan.gilbert_elliott.enabled = true;
    plan.gilbert_elliott.mean_good = sim::msec(rng.uniform_int(2000, 20000));
    plan.gilbert_elliott.mean_bad = sim::msec(rng.uniform_int(300, 3000));
    plan.gilbert_elliott.good_rate_mbps = rng.uniform(20.0, 80.0);
    plan.gilbert_elliott.bad_rate_mbps = rng.uniform(0.5, 4.0);
    plan.gilbert_elliott.bad_outage_probability = rng.uniform(0.0, 0.5);
  }
  return plan;
}

}  // namespace

scenario::ScenarioSpec generate_scenario(std::uint64_t seed, const GeneratorConfig& config) {
  stats::Rng rng(seed);
  scenario::ScenarioSpec scen;
  scen.seed = seed;

  const auto& families = scenario::scenario_families();
  scen.family = families[rng.uniform_int(0, static_cast<std::int64_t>(families.size()) - 1)];

  // Pressure states weighted toward the interesting (pressured) regimes.
  scen.state = static_cast<mem::PressureLevel>(
      rng.weighted_index({0.35, 0.3, 0.2, 0.15}));
  if (rng.bernoulli(config.organic_probability)) {
    scen.organic_background_apps = static_cast<int>(rng.uniform_int(2, 8));
  }

  const video::BitrateLadder ladder = video::BitrateLadder::youtube();
  const auto& rungs = ladder.rungs();
  const int videos = static_cast<int>(rng.uniform_int(1, config.max_videos));
  for (int i = 0; i < videos; ++i) {
    scenario::VideoWorkloadSpec video;
    video.label = "video" + std::to_string(i);
    const video::Rung& rung = rungs[rng.uniform_int(0, static_cast<std::int64_t>(rungs.size()) - 1)];
    video.height = rung.resolution.height;
    video.fps = rung.fps;
    video.duration_s =
        static_cast<int>(rng.uniform_int(config.min_duration_s, config.max_duration_s));
    video.seed = rng.next();
    if (rng.bernoulli(config.fault_probability)) {
      video.fault_plan = random_fault_plan(rng, video.duration_s);
    }
    scen.workloads.emplace_back(std::move(video));
  }

  if (rng.bernoulli(config.background_probability)) {
    scenario::BackgroundAppsWorkloadSpec bg;
    bg.label = "bg";
    bg.count = static_cast<int>(rng.uniform_int(2, 8));
    scen.workloads.emplace_back(bg);
  }
  if (rng.bernoulli(config.pressure_workload_probability)) {
    scenario::PressureWorkloadSpec hog;
    hog.label = "hog";
    hog.target = static_cast<mem::PressureLevel>(rng.uniform_int(1, 3));
    scen.workloads.emplace_back(hog);
  }

  // Policy axis last: with the default (empty) list nothing is drawn, so
  // every historical (seed, i) -> spec mapping stays intact.
  if (!config.policies.empty()) {
    scen.mem_policy.name = config.policies[rng.uniform_int(
        0, static_cast<std::int64_t>(config.policies.size()) - 1)];
  }

  // Congestion-control axis after policies, same default-draws-nothing
  // rule. A non-fifo link may also carry competing cross traffic.
  if (!config.ccs.empty()) {
    scen.net.cc =
        config.ccs[rng.uniform_int(0, static_cast<std::int64_t>(config.ccs.size()) - 1)];
    if (scen.net.cc != "fifo" && rng.bernoulli(config.cross_traffic_probability)) {
      scenario::CrossTrafficWorkloadSpec cross;
      cross.label = "cross";
      cross.bulk_flows = static_cast<int>(rng.uniform_int(0, 2));
      cross.onoff_flows = static_cast<int>(rng.uniform_int(0, 2));
      if (cross.bulk_flows == 0 && cross.onoff_flows == 0) cross.bulk_flows = 1;
      cross.on_s = static_cast<int>(rng.uniform_int(1, 3));
      cross.off_s = static_cast<int>(rng.uniform_int(1, 3));
      cross.chunk_bytes = static_cast<std::uint64_t>(rng.uniform_int(256 * 1024, 2 * 1024 * 1024));
      cross.seed = rng.next();
      scen.workloads.emplace_back(std::move(cross));
    }
  }

  return scen;
}

}  // namespace mvqoe::check
