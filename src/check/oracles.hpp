// Cross-subsystem invariant oracles (DESIGN.md §12).
//
// Each oracle is a pure predicate over WorldObservation — no simulator
// access — so the corruption tests can feed hand-built observations and
// assert that exactly the intended oracle trips. Stateful oracles
// (scheduler state machine, vruntime monotonicity, counter monotonicity)
// carry their own per-run memory; use a fresh suite per run.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/observe.hpp"

namespace mvqoe::check {

struct Violation {
  std::string oracle;
  std::string detail;
  sim::Time at = 0;
  sim::Time offset = 0;
};

class Oracle {
 public:
  virtual ~Oracle() = default;
  virtual std::string name() const = 0;
  /// Per-slice check; nullopt = invariant holds.
  virtual std::optional<Violation> check(const WorldObservation& obs) = 0;
  /// End-of-run check (after finalize()); default: nothing extra.
  virtual std::optional<Violation> final_check(const WorldObservation& obs) {
    (void)obs;
    return std::nullopt;
  }
};

/// Page accounting: registry totals == pools, pools non-negative, and
/// free == total - kernel - anon - file - zram-physical (delegates to
/// MemoryManager::check_conservation, re-checked every slice).
class MemConservationOracle final : public Oracle {
 public:
  std::string name() const override { return "mem-conservation"; }
  std::optional<Violation> check(const WorldObservation& obs) override;
};

/// Watermark ordering and pool bounds: 0 < min <= low <= high, high
/// below reclaimable ceiling, zram within capacity, available =
/// free + file cache consistency bounds.
class WatermarkOracle final : public Oracle {
 public:
  std::string name() const override { return "watermarks"; }
  std::optional<Violation> check(const WorldObservation& obs) override;
};

/// kswapd wake/sleep legality: the daemon only sleeps with free memory
/// restored above the min watermark (sleep requires >= high, or >= low
/// on a fruitless batch; an allocation dropping free below min wakes it
/// synchronously), and the wakeup counter moves iff it can.
class KswapdOracle final : public Oracle {
 public:
  std::string name() const override { return "kswapd"; }
  std::optional<Violation> check(const WorldObservation& obs) override;

 private:
  bool have_prev_ = false;
  bool prev_active_ = false;
  std::uint64_t prev_wakeups_ = 0;
};

/// lmkd kill ordering: every kill victim carries the highest killable
/// oom_adj alive at decision time, and the band floor the killer used is
/// the one the pressure/minfree rules dictate for its recorded inputs.
class LmkdOrderOracle final : public Oracle {
 public:
  std::string name() const override { return "lmkd-order"; }
  std::optional<Violation> check(const WorldObservation& obs) override;

 private:
  /// Mirrors MemoryManager's last_lmkd_kill_ initializer so the charter
  /// cooldown check never trips on a world's very first lmkd kill.
  sim::Time last_lmkd_at_ = -sim::hours(1);
};

/// Scheduler per-thread state machine, restricted to what the interval
/// log can witness (the tracer suppresses zero-length intervals, so
/// instantaneous transition chains collapse): intervals have positive
/// length and tile time exactly, Created only opens a history,
/// Terminated never appears as an interval, and the preemptor
/// annotation appears exactly on RunnablePreempted intervals.
class SchedStateOracle final : public Oracle {
 public:
  std::string name() const override { return "sched-state"; }
  std::optional<Violation> check(const WorldObservation& obs) override;

 private:
  struct PerThread {
    bool seen = false;
    trace::ThreadState last_state = trace::ThreadState::Created;
    sim::Time last_end = 0;
  };
  std::map<trace::ThreadId, PerThread> threads_;
};

/// Per-thread vruntime monotonicity (enqueue clamps to the runqueue
/// minimum, never backwards).
class VruntimeOracle final : public Oracle {
 public:
  std::string name() const override { return "vruntime"; }
  std::optional<Violation> check(const WorldObservation& obs) override;

 private:
  std::map<sched::ThreadId, double> last_;
};

/// Frame/segment conservation per video session: presented / dropped /
/// lost-to-kill counters are monotone, never exceed the asset's frame
/// total, and — finally, for sessions that ended in playout or a
/// terminal kill — sum exactly to it.
class VideoFrameOracle final : public Oracle {
 public:
  std::string name() const override { return "video-frames"; }
  std::optional<Violation> check(const WorldObservation& obs) override;
  std::optional<Violation> final_check(const WorldObservation& obs) override;

 private:
  struct Prev {
    std::int64_t presented = 0;
    std::int64_t dropped = 0;
    std::int64_t lost = 0;
  };
  std::map<std::string, Prev> prev_;
};

/// Engine health: event-queue bookkeeping audit plus the livelock
/// tripwire (armed by the harness).
class EngineOracle final : public Oracle {
 public:
  std::string name() const override { return "engine"; }
  std::optional<Violation> check(const WorldObservation& obs) override;
};

/// Byte conservation on the congestion-controlled link: bytes delivered
/// by retired flows plus every live flow's delivered count must equal
/// the link's cumulative bytes_delivered. Inert in fifo mode.
class NetConservationOracle final : public Oracle {
 public:
  std::string name() const override { return "net-conservation"; }
  std::optional<Violation> check(const WorldObservation& obs) override;
};

/// Droptail bound: the modeled bottleneck backlog never exceeds the
/// configured queue capacity (admission must drop, not grow the queue).
class NetQueueOracle final : public Oracle {
 public:
  std::string name() const override { return "net-queue"; }
  std::optional<Violation> check(const WorldObservation& obs) override;
};

/// Controller sanity per flow: the congestion window stays within
/// [one packet, 64 MiB] and the pacing rate is non-negative and finite.
class NetCwndOracle final : public Oracle {
 public:
  std::string name() const override { return "net-cwnd"; }
  std::optional<Violation> check(const WorldObservation& obs) override;
};

/// Monotone per-flow progress: a flow's delivered byte count never goes
/// backwards and never exceeds its transfer size.
class NetProgressOracle final : public Oracle {
 public:
  std::string name() const override { return "net-progress"; }
  std::optional<Violation> check(const WorldObservation& obs) override;

 private:
  std::map<std::uint64_t, std::uint64_t> last_delivered_;
};

/// The full per-run suite. check() returns the first violation found
/// this slice; check_all() returns every oracle that trips (the
/// corruption tests assert |check_all| == 1).
class OracleSuite {
 public:
  OracleSuite();

  std::optional<Violation> check(const WorldObservation& obs);
  std::optional<Violation> final_check(const WorldObservation& obs);
  std::vector<Violation> check_all(const WorldObservation& obs);

  const std::vector<std::unique_ptr<Oracle>>& oracles() const noexcept { return oracles_; }

 private:
  std::vector<std::unique_ptr<Oracle>> oracles_;
};

/// Canonical oracle names, in suite order (docs + tests).
std::vector<std::string> oracle_names();

}  // namespace mvqoe::check
