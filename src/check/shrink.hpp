// Auto-shrinking of failing scenarios (DESIGN.md §12).
//
// Greedy delta-debugging to a fixpoint: drop workloads, clear or
// truncate fault scripts, shorten durations, relax the pressure regime —
// accepting a candidate only when it still trips the *same* oracle, so
// the minimized spec reproduces the original failure, not a new one.
#pragma once

#include "check/harness.hpp"

namespace mvqoe::check {

struct ShrinkOptions {
  /// Total candidate executions allowed (each one runs the world).
  int max_attempts = 80;
  CheckOptions check;
  /// Carried into every candidate run (meta-determinism failures need
  /// the perturbation to reproduce).
  std::optional<sim::Time> perturb_at;
};

struct ShrinkResult {
  scenario::ScenarioSpec minimal;
  Violation violation;  ///< the violation the minimal spec produces
  int attempts = 0;     ///< candidate runs spent
  int accepted = 0;     ///< shrink steps that kept the failure
};

/// `spec` must fail with `original.oracle` under (opts.check,
/// opts.perturb_at); the result's `minimal` is the smallest spec found
/// that still does.
ShrinkResult shrink(const scenario::ScenarioSpec& spec, const Violation& original,
                    const ShrinkOptions& opts = {});

}  // namespace mvqoe::check
