// Seeded random scenario generation (DESIGN.md §12).
//
// generate_scenario(seed) samples the full serializable ScenarioSpec
// space: every paper family, every pressure state, 1..max_videos
// concurrent sessions plus background/pressure workloads, and per-video
// fault scripts (outages, rate steps, storage windows, thermal windows,
// targeted lmkd-style kills, occasional Gilbert-Elliott links). One seed
// fully determines one spec — the fuzzer's run i uses
// derive_seed(campaign_seed, i), so any failing run is reproducible from
// (seed, i) alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/spec.hpp"

namespace mvqoe::check {

struct GeneratorConfig {
  int max_videos = 3;
  /// Video durations in [min, max] seconds — short by default so a fuzz
  /// run is a few wall-milliseconds per world.
  int min_duration_s = 3;
  int max_duration_s = 8;
  double fault_probability = 0.6;
  double background_probability = 0.35;
  double pressure_workload_probability = 0.25;
  double organic_probability = 0.2;
  /// Memory-policy axis: each generated world picks one name uniformly.
  /// Empty (the default) pins the baseline and draws nothing from the
  /// RNG, so historical (seed, i) -> spec mappings are unchanged.
  std::vector<std::string> policies;
  /// Congestion-control axis: each generated world picks one controller
  /// name uniformly and may add a cross-traffic workload. Empty (the
  /// default) pins the serial fifo link and draws nothing from the RNG.
  std::vector<std::string> ccs;
  /// Probability that a cc-mode world carries competing cross-traffic
  /// flows on the bottleneck (only consulted when ccs is non-empty).
  double cross_traffic_probability = 0.4;
};

/// Deterministic: same (seed, config) -> identical spec, always
/// serializable (save_scenario never throws on it).
scenario::ScenarioSpec generate_scenario(std::uint64_t seed, const GeneratorConfig& config = {});

}  // namespace mvqoe::check
