#include "check/observe.hpp"

namespace mvqoe::check {

WorldObservation WorldObserver::observe(const scenario::ScenarioDriver& driver, bool final_obs) {
  const core::Testbed& bed = driver.testbed();
  const mem::MemoryManager& memory = bed.memory;
  const sched::Scheduler& scheduler = bed.scheduler;
  const trace::Tracer& tracer = bed.tracer;

  WorldObservation obs;
  obs.at = bed.engine.now();
  obs.offset = driver.video_start() >= 0 ? obs.at - driver.video_start() : 0;
  obs.final_obs = final_obs;

  obs.engine.invariants_ok = bed.engine.check_invariants();
  obs.engine.livelock_trips = bed.engine.livelock_trips();

  const mem::MemoryConfig& mc = memory.config();
  obs.mem.total = mc.total;
  obs.mem.kernel_reserved = mc.kernel_reserved;
  obs.mem.free = memory.free_pages();
  obs.mem.available = memory.available_pages();
  obs.mem.anon = memory.anon_pages();
  obs.mem.file = memory.file_pages();
  obs.mem.zram_stored = memory.zram_stored();
  obs.mem.zram_capacity = mc.zram_capacity;
  obs.mem.wm_min = mc.watermark_min;
  obs.mem.wm_low = mc.watermark_low;
  obs.mem.wm_high = mc.watermark_high;
  obs.mem.kswapd_active = memory.kswapd_active();
  obs.mem.kswapd_wakeups = memory.vmstat().kswapd_wakeups;
  obs.mem.pressure = memory.pressure_P();
  const auto conservation = memory.check_conservation();
  obs.mem.conservation_ok = conservation.ok;
  obs.mem.conservation_detail = conservation.detail;
  obs.mem.charter = memory.kill_charter();

  const net::Link& link = bed.link;
  obs.net.cc_mode = link.cc_mode();
  if (link.cc_mode()) {
    obs.net.cc = link.net().cc;
    obs.net.bytes_delivered = link.bytes_delivered();
    obs.net.retired_delivered = link.retired_delivered();
    obs.net.backlog_bytes = link.backlog_bytes();
    obs.net.queue_capacity_bytes = link.queue_capacity_bytes();
    for (const net::FlowStats& fs : link.flow_stats()) {
      NetFlowObs f;
      f.id = fs.id;
      f.total_bytes = fs.total_bytes;
      f.delivered_bytes = fs.delivered_bytes;
      f.inflight_bytes = fs.inflight_bytes;
      f.cwnd_bytes = fs.cwnd_bytes;
      f.pacing_bytes_per_usec = fs.pacing_bytes_per_usec;
      obs.net.flows.push_back(f);
    }
  }

  obs.threads.reserve(scheduler.thread_count());
  for (sched::ThreadId tid = 1; tid <= scheduler.thread_count(); ++tid) {
    ThreadObs t;
    t.tid = tid;
    t.state = scheduler.state(tid);
    t.vruntime = scheduler.vruntime(tid);
    obs.threads.push_back(t);
  }

  const auto& intervals = tracer.intervals();
  obs.new_intervals.assign(intervals.begin() + static_cast<std::ptrdiff_t>(interval_cursor_),
                           intervals.end());
  interval_cursor_ = intervals.size();

  const auto& kills = memory.kill_audits();
  obs.new_kills.assign(kills.begin() + static_cast<std::ptrdiff_t>(kill_cursor_), kills.end());
  kill_cursor_ = kills.size();

  obs.videos.reserve(driver.video_count());
  for (std::size_t i = 0; i < driver.video_count(); ++i) {
    const scenario::VideoSessionWorkload& w = driver.video(i);
    VideoObs v;
    v.label = w.spec().label;
    if (const video::VideoSession* session = w.session()) {
      const video::SessionMetrics& m = session->metrics();
      v.presented = m.frames_presented;
      v.dropped = m.frames_dropped;
      v.lost_to_kill = m.frames_lost_to_kill;
      // Frame conservation only holds for a fixed-fps ladder; an ABR
      // policy switching fps changes the per-segment frame count.
      if (w.spec().abr == nullptr) v.frame_total = session->fixed_ladder_frame_total();
      v.finished = session->finished();
      v.crashed = m.crashed;
      v.aborted = m.aborted;
      v.relaunches = m.relaunches;
    }
    obs.videos.push_back(std::move(v));
  }

  return obs;
}

}  // namespace mvqoe::check
