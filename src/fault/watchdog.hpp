// Simulation invariant watchdog (debug/test builds).
//
// Fault injection stresses exactly the paths where bookkeeping bugs hide:
// cancel-vs-fire races in the event queue, page accounting across kills,
// zero-delay reschedule loops under outage. The watchdog samples the sim
// periodically and records violations of invariants that should hold in
// any run — it detects and reports, it never mutates, so a violating run
// still completes and the test harness can print what went wrong.
//
// Checks per tick:
//   * Engine lazy-cancel bookkeeping (Engine::check_invariants).
//   * Livelock tripwire delta (Engine::livelock_trips, armed with
//     `livelock_limit` at start()).
//   * Pending-event leak: the queue exceeding `max_pending_events`.
//   * Page-accounting conservation (MemoryManager::check_conservation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mem/memory_manager.hpp"
#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace mvqoe::fault {

struct WatchdogConfig {
  sim::Time period = sim::msec(250);
  /// Consecutive same-timestamp events tolerated before the engine's
  /// livelock tripwire counts a trip (0 = don't arm the tripwire).
  std::uint64_t livelock_limit = 100000;
  /// Pending-event count treated as a leak (0 = don't check).
  std::size_t max_pending_events = 1u << 20;
};

struct WatchdogViolation {
  sim::Time at = 0;
  std::string what;
};

class InvariantWatchdog {
 public:
  /// `memory` and `tracer` may be null (their checks/trace are skipped).
  InvariantWatchdog(sim::Engine& engine, WatchdogConfig config,
                    mem::MemoryManager* memory = nullptr, trace::Tracer* tracer = nullptr);

  void start();
  void stop();

  /// Run every check once, immediately. Returns true when all pass.
  bool check_now();

  bool running() const noexcept { return task_.running(); }
  std::uint64_t ticks() const noexcept { return ticks_; }
  const std::vector<WatchdogViolation>& violations() const noexcept { return violations_; }
  bool ok() const noexcept { return violations_.empty(); }

 private:
  void report(const std::string& what);

  sim::Engine& engine_;
  WatchdogConfig config_;
  mem::MemoryManager* memory_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  sim::PeriodicTask task_;
  std::uint64_t ticks_ = 0;
  std::uint64_t seen_livelock_trips_ = 0;
  std::vector<WatchdogViolation> violations_;
};

}  // namespace mvqoe::fault
