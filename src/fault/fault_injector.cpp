#include "fault/fault_injector.hpp"

#include <algorithm>
#include <cmath>

#include "snapshot/digest.hpp"
#include "snapshot/rng_io.hpp"

namespace mvqoe::fault {

namespace {

// Derived-seed streams so each stochastic consumer is independent of the
// others and of plan edits that add/remove scripted actions.
constexpr std::uint64_t kGeStream = 1;
constexpr std::uint64_t kStorageStream = 2;

// Per-packet corruption probability the Gilbert-Elliott bad state feeds
// into a congestion-controlled link (the CC loss signal). The value is
// part of the model, not the plan encoding, so fault-plan blobs keep
// their v1 bytes.
constexpr double kGeBadLossRate = 0.02;

sim::Time sample_sojourn(stats::Rng& rng, sim::Time mean) {
  const double us = rng.exponential(static_cast<double>(std::max<sim::Time>(mean, 1)));
  return std::max<sim::Time>(1, static_cast<sim::Time>(std::llround(us)));
}

}  // namespace

FaultInjector::FaultInjector(FaultTargets targets, FaultPlan plan)
    : targets_(targets),
      plan_(std::move(plan)),
      rng_(stats::derive_seed(plan_.seed, kGeStream)) {}

FaultInjector::~FaultInjector() {
  if (armed_) disarm();
}

void FaultInjector::set_kill_target(std::function<mem::ProcessId()> resolver) {
  kill_target_ = std::move(resolver);
}

void FaultInjector::schedule_action(sim::Time when, sim::Engine::Callback fn) {
  const sim::Time at = std::max(when, targets_.engine->now());
  const sim::EventId id = targets_.engine->schedule_at(when, std::move(fn));
  // Persist the seq, not the id: ids encode arena slot positions (an
  // allocation artifact), seqs are the engine's stable serializable
  // identity — and what the old id-equals-seq blobs recorded.
  pending_.push_back(PendingAction{id, targets_.engine->seq_of(id), at});
}

void FaultInjector::record(trace::InstantKind kind, std::int64_t value) {
  const sim::Time now = targets_.engine->now();
  log_.push_back(FaultRecord{kind, now, value});
  if (targets_.tracer) targets_.tracer->instant(kind, now, trace::kNoThread, value);
}

void FaultInjector::arm(sim::Time base) {
  if (armed_ || !targets_.engine) return;
  armed_ = true;
  nominal_rate_mbps_ = targets_.link ? targets_.link->config().rate_mbps
                                     : plan_.gilbert_elliott.good_rate_mbps;

  for (const auto& outage : plan_.link_outages) {
    schedule_action(base + outage.at, [this, outage] { begin_outage(outage); });
    schedule_action(base + outage.at + outage.duration, [this] { end_outage(); });
  }
  for (const auto& step : plan_.link_rate_steps) {
    schedule_action(base + step.at, [this, step] { apply_rate(step.rate_mbps); });
  }
  for (const auto& window : plan_.storage_degradations) {
    schedule_action(base + window.at, [this, window] { begin_storage_window(window); });
    schedule_action(base + window.at + window.duration, [this] { end_storage_window(); });
  }
  for (const auto& window : plan_.thermal_windows) {
    schedule_action(base + window.at, [this, window] { begin_thermal_window(window); });
    schedule_action(base + window.at + window.duration, [this] { end_thermal_window(); });
  }
  for (const auto& kill : plan_.kills) {
    schedule_action(base + kill.at, [this, kill] { fire_kill(kill); });
  }
  if (plan_.gilbert_elliott.enabled) {
    ge_bad_ = false;
    const sim::Time first = sample_sojourn(rng_, plan_.gilbert_elliott.mean_good);
    schedule_action(std::max(base, targets_.engine->now()) + first, [this] { ge_transition(); });
  }
}

void FaultInjector::disarm() {
  if (!armed_) return;
  for (const PendingAction& action : pending_) targets_.engine->cancel(action.id);
  pending_.clear();
  // Restore nominal conditions for any window still open.
  if (ge_bad_) {
    if (ge_outage_) {
      ge_outage_ = false;
      end_outage();
    } else {
      apply_rate(nominal_rate_mbps_);
    }
    if (targets_.link && targets_.link->cc_mode()) targets_.link->set_loss_rate(0.0);
    ge_bad_ = false;
  }
  while (open_outages_ > 0) end_outage();
  while (open_storage_windows_ > 0) end_storage_window();
  while (open_thermal_windows_ > 0) end_thermal_window();
  armed_ = false;
}

void FaultInjector::begin_outage(const LinkOutage& outage) {
  if (!targets_.link) {
    ++skipped_actions_;
    return;
  }
  if (++open_outages_ == 1) targets_.link->set_down(true);
  record(trace::InstantKind::LinkDown, outage.duration);
}

void FaultInjector::end_outage() {
  if (!targets_.link || open_outages_ == 0) return;
  if (--open_outages_ == 0) {
    targets_.link->set_down(false);
    record(trace::InstantKind::LinkUp, 0);
  }
}

void FaultInjector::apply_rate(double rate_mbps) {
  if (!targets_.link) {
    ++skipped_actions_;
    return;
  }
  targets_.link->set_rate_mbps(rate_mbps);
  record(trace::InstantKind::LinkRateChange,
         static_cast<std::int64_t>(std::llround(rate_mbps * 1000.0)));
}

void FaultInjector::begin_storage_window(const StorageDegradation& window) {
  if (!targets_.storage) {
    ++skipped_actions_;
    return;
  }
  ++open_storage_windows_;
  targets_.storage->set_latency_multiplier(window.latency_multiplier);
  targets_.storage->set_error_rate(window.error_rate,
                                   stats::derive_seed(plan_.seed, kStorageStream));
  record(trace::InstantKind::StorageDegraded,
         static_cast<std::int64_t>(std::llround(window.latency_multiplier * 1000.0)));
}

void FaultInjector::end_storage_window() {
  if (!targets_.storage || open_storage_windows_ == 0) return;
  if (--open_storage_windows_ == 0) {
    targets_.storage->set_latency_multiplier(1.0);
    targets_.storage->set_error_rate(0.0, stats::derive_seed(plan_.seed, kStorageStream));
    record(trace::InstantKind::StorageRestored, 0);
  }
}

void FaultInjector::begin_thermal_window(const ThermalWindow& window) {
  if (!targets_.scheduler) {
    ++skipped_actions_;
    return;
  }
  ++open_thermal_windows_;
  targets_.scheduler->set_speed_scale(window.speed_scale);
  record(trace::InstantKind::ThermalThrottle,
         static_cast<std::int64_t>(std::llround(window.speed_scale * 1000.0)));
}

void FaultInjector::end_thermal_window() {
  if (!targets_.scheduler || open_thermal_windows_ == 0) return;
  if (--open_thermal_windows_ == 0) {
    targets_.scheduler->set_speed_scale(1.0);
    record(trace::InstantKind::ThermalRestored, 0);
  }
}

void FaultInjector::fire_kill(const TargetedKill& kill) {
  if (!targets_.memory) {
    ++skipped_actions_;
    return;
  }
  mem::ProcessId pid = kill.pid;
  if (pid == 0 && kill_target_) pid = kill_target_();
  if (pid == 0 || !targets_.memory->registry().alive(pid)) {
    ++skipped_actions_;
    return;
  }
  record(trace::InstantKind::FaultKill, static_cast<std::int64_t>(pid));
  ++kills_injected_;
  targets_.memory->kill_process(pid);
}

void FaultInjector::ge_transition() {
  const auto& ge = plan_.gilbert_elliott;
  if (!ge_bad_) {
    // Good -> bad: draw the bad period's character once, deterministically.
    ge_bad_ = true;
    ge_outage_ = rng_.bernoulli(ge.bad_outage_probability);
    if (ge_outage_) {
      if (targets_.link && ++open_outages_ == 1) targets_.link->set_down(true);
      record(trace::InstantKind::LinkDown, 0);
    } else {
      apply_rate(ge.bad_rate_mbps);
    }
    // On a congestion-controlled link the bad state also corrupts
    // packets: the loss probability feeds every flow's controller as its
    // loss signal. No-op on the serial fifo path (no packets to drop).
    if (targets_.link && targets_.link->cc_mode()) {
      targets_.link->set_loss_rate(kGeBadLossRate);
    }
    schedule_action(targets_.engine->now() + sample_sojourn(rng_, ge.mean_bad),
                    [this] { ge_transition(); });
  } else {
    ge_bad_ = false;
    if (ge_outage_) {
      ge_outage_ = false;
      end_outage();
    } else {
      apply_rate(ge.good_rate_mbps);
    }
    if (targets_.link && targets_.link->cc_mode()) targets_.link->set_loss_rate(0.0);
    schedule_action(targets_.engine->now() + sample_sojourn(rng_, ge.mean_good),
                    [this] { ge_transition(); });
  }
}

std::vector<FaultInjector::PendingAction> FaultInjector::pending_schedule() const {
  std::vector<PendingAction> remaining;
  const sim::Time now = targets_.engine ? targets_.engine->now() : 0;
  for (const PendingAction& action : pending_) {
    // An already-fired action's event id is consumed; its entry is only
    // stale bookkeeping. Anything scheduled at or after now is still live
    // (the engine dispatches same-time events before advancing past them,
    // and pending_ is pruned nowhere else).
    if (action.at >= now) remaining.push_back(action);
  }
  std::sort(remaining.begin(), remaining.end(), [](const PendingAction& a, const PendingAction& b) {
    return a.at != b.at ? a.at < b.at : a.seq < b.seq;
  });
  return remaining;
}

void FaultInjector::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.b(armed_);
  w.b(ge_bad_);
  w.b(ge_outage_);
  w.i32(open_outages_);
  w.i32(open_storage_windows_);
  w.i32(open_thermal_windows_);
  w.u64(kills_injected_);
  w.u64(skipped_actions_);
  w.f64(nominal_rate_mbps_);
  snapshot::write_rng(w, rng_);
  w.u64(log_.size());
  for (const FaultRecord& rec : log_) {
    w.u8(static_cast<std::uint8_t>(rec.kind));
    w.i64(rec.at);
    w.i64(rec.value);
  }
  const auto remaining = pending_schedule();
  w.u64(remaining.size());
  for (const PendingAction& action : remaining) {
    w.u64(action.seq);
    w.i64(action.at);
  }
}

std::uint64_t FaultInjector::digest() const { return snapshot::state_digest(*this); }

}  // namespace mvqoe::fault
