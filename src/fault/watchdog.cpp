#include "fault/watchdog.hpp"

namespace mvqoe::fault {

InvariantWatchdog::InvariantWatchdog(sim::Engine& engine, WatchdogConfig config,
                                     mem::MemoryManager* memory, trace::Tracer* tracer)
    : engine_(engine),
      config_(config),
      memory_(memory),
      tracer_(tracer),
      task_(engine, config.period, [this] { check_now(); }) {}

void InvariantWatchdog::start() {
  if (config_.livelock_limit > 0) engine_.set_livelock_limit(config_.livelock_limit);
  seen_livelock_trips_ = engine_.livelock_trips();
  task_.start();
}

void InvariantWatchdog::stop() { task_.stop(); }

void InvariantWatchdog::report(const std::string& what) {
  violations_.push_back(WatchdogViolation{engine_.now(), what});
  if (tracer_) {
    tracer_->instant(trace::InstantKind::WatchdogViolation, engine_.now(), trace::kNoThread,
                     static_cast<std::int64_t>(violations_.size()));
  }
}

bool InvariantWatchdog::check_now() {
  ++ticks_;
  const std::size_t before = violations_.size();

  if (!engine_.check_invariants()) {
    report("engine event-queue bookkeeping violated (heap/callback/cancel mismatch)");
  }
  const std::uint64_t trips = engine_.livelock_trips();
  if (trips > seen_livelock_trips_) {
    report("engine livelock: " + std::to_string(trips - seen_livelock_trips_) +
           " run(s) of >" + std::to_string(config_.livelock_limit) +
           " events without the clock advancing");
    seen_livelock_trips_ = trips;
  }
  if (config_.max_pending_events > 0 && engine_.pending_events() > config_.max_pending_events) {
    report("pending-event leak: " + std::to_string(engine_.pending_events()) +
           " events queued (limit " + std::to_string(config_.max_pending_events) + ")");
  }
  if (memory_) {
    const auto conservation = memory_->check_conservation();
    if (!conservation.ok) report("page accounting: " + conservation.detail);
  }

  return violations_.size() == before;
}

}  // namespace mvqoe::fault
