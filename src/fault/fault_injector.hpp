// Seeded, deterministic fault injection for the simulated device.
//
// The paper's central claim is that QoE collapses under adverse
// conditions the player never anticipated — reclaim storms, lmkd kills,
// mmcqd preemption. The FaultInjector makes those conditions scriptable:
// a FaultPlan composes scripted actions (link outages and rate steps,
// storage latency spikes and transient I/O errors, CPU thermal-throttle
// windows, targeted process kills) with an optional stochastic
// Gilbert-Elliott link model, all driven off the sim Engine so that two
// runs with the same plan and seed replay byte-identically.
//
// Times in a plan are relative to the base passed to arm() — an
// experiment arms the plan at video start so "kill at t=30s" means 30
// seconds into playback regardless of how long boot and pressure
// induction took.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/memory_manager.hpp"
#include "net/link.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "stats/rng.hpp"
#include "storage/storage.hpp"
#include "trace/tracer.hpp"

namespace mvqoe::fault {

/// Non-owning handles to the components faults act on. Only the engine is
/// mandatory; actions targeting an absent component are skipped (counted
/// in FaultInjector::skipped_actions()).
struct FaultTargets {
  sim::Engine* engine = nullptr;
  net::Link* link = nullptr;
  storage::StorageDevice* storage = nullptr;
  sched::Scheduler* scheduler = nullptr;
  mem::MemoryManager* memory = nullptr;
  trace::Tracer* tracer = nullptr;
};

/// Complete link loss for `duration`; in-flight transfer progress freezes
/// and resumes on restore (see net::Link::set_down).
struct LinkOutage {
  sim::Time at = 0;
  sim::Time duration = sim::sec(1);
};

/// Step the link rate (rate fluctuation scripts).
struct LinkRateStep {
  sim::Time at = 0;
  double rate_mbps = 80.0;
};

/// Storage latency spike and/or transient-error window.
struct StorageDegradation {
  sim::Time at = 0;
  sim::Time duration = sim::sec(1);
  double latency_multiplier = 4.0;
  double error_rate = 0.0;  // per-attempt transient failure probability
};

/// SoC thermal-throttle window: every core slows to `speed_scale`.
struct ThermalWindow {
  sim::Time at = 0;
  sim::Time duration = sim::sec(5);
  double speed_scale = 0.6;
};

/// Targeted mid-run kill through the memory manager (fires the victim's
/// on_kill path exactly like lmkd). pid 0 = resolve the victim via
/// FaultInjector::set_kill_target at fire time — the hook sessions with a
/// relaunch path use, since their pid changes across relaunches.
struct TargetedKill {
  sim::Time at = 0;
  mem::ProcessId pid = 0;
};

/// Two-state Markov (Gilbert-Elliott style) link quality model: the link
/// alternates exponentially-distributed good/bad sojourns; a bad period
/// is either a rate collapse or, with `bad_outage_probability`, a full
/// outage. Deterministic per plan seed.
struct GilbertElliottLink {
  bool enabled = false;
  sim::Time mean_good = sim::sec(20);
  sim::Time mean_bad = sim::sec(2);
  double good_rate_mbps = 80.0;
  double bad_rate_mbps = 1.5;
  double bad_outage_probability = 0.25;
};

struct FaultPlan {
  std::vector<LinkOutage> link_outages;
  std::vector<LinkRateStep> link_rate_steps;
  std::vector<StorageDegradation> storage_degradations;
  std::vector<ThermalWindow> thermal_windows;
  std::vector<TargetedKill> kills;
  GilbertElliottLink gilbert_elliott;
  std::uint64_t seed = 1;

  bool empty() const noexcept {
    return link_outages.empty() && link_rate_steps.empty() && storage_degradations.empty() &&
           thermal_windows.empty() && kills.empty() && !gilbert_elliott.enabled;
  }
};

/// One applied fault, for post-run assertions and reporting.
struct FaultRecord {
  trace::InstantKind kind{};
  sim::Time at = 0;
  std::int64_t value = 0;
};

class FaultInjector {
 public:
  FaultInjector(FaultTargets targets, FaultPlan plan);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every plan action at `base + action.at` and start the
  /// stochastic link model (if enabled). Call at most once per injector.
  void arm(sim::Time base);
  /// Cancel everything still pending and restore nominal conditions for
  /// any window currently open (link up, storage nominal, full speed).
  void disarm();

  /// Resolver for TargetedKill entries with pid 0 (e.g. "the video
  /// client, whatever its pid is right now"). Returning 0 skips the kill.
  void set_kill_target(std::function<mem::ProcessId()> resolver);

  bool armed() const noexcept { return armed_; }
  const std::vector<FaultRecord>& log() const noexcept { return log_; }
  std::uint64_t kills_injected() const noexcept { return kills_injected_; }
  std::uint64_t skipped_actions() const noexcept { return skipped_actions_; }
  /// Nesting depth of currently-open windows per kind (outage windows may
  /// overlap; nominal conditions are restored when the last one closes).
  int open_outages() const noexcept { return open_outages_; }
  int open_storage_windows() const noexcept { return open_storage_windows_; }
  int open_thermal_windows() const noexcept { return open_thermal_windows_; }

  /// One scheduled-but-not-yet-fired plan action. `seq` is the engine's
  /// stable event identity (serialized and sorted on); `id` is only for
  /// cancellation and encodes arena slot placement.
  struct PendingAction {
    sim::EventId id = sim::kInvalidEvent;
    std::uint64_t seq = 0;
    sim::Time at = 0;
  };
  /// The remaining fault schedule: actions still pending at engine-now,
  /// sorted by (at, seq). This is what a checkpoint taken mid-outage must
  /// restore exactly — the close of an open window lives here.
  std::vector<PendingAction> pending_schedule() const;

  /// Serialize plan-progress state: window nesting, GE chain state + RNG,
  /// counters, the applied-fault log and the remaining schedule.
  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;

 private:
  void schedule_action(sim::Time when, sim::Engine::Callback fn);
  void record(trace::InstantKind kind, std::int64_t value);

  void begin_outage(const LinkOutage& outage);
  void end_outage();
  void apply_rate(double rate_mbps);
  void begin_storage_window(const StorageDegradation& window);
  void end_storage_window();
  void begin_thermal_window(const ThermalWindow& window);
  void end_thermal_window();
  void fire_kill(const TargetedKill& kill);
  void ge_transition();

  FaultTargets targets_;
  FaultPlan plan_;
  stats::Rng rng_;
  std::function<mem::ProcessId()> kill_target_;
  std::vector<PendingAction> pending_;
  std::vector<FaultRecord> log_;
  bool armed_ = false;
  bool ge_bad_ = false;
  bool ge_outage_ = false;
  int open_outages_ = 0;
  int open_storage_windows_ = 0;
  int open_thermal_windows_ = 0;
  std::uint64_t kills_injected_ = 0;
  std::uint64_t skipped_actions_ = 0;
  double nominal_rate_mbps_ = 0.0;
};

}  // namespace mvqoe::fault
