#include "video/ladder.hpp"

#include <algorithm>
#include <cmath>

namespace mvqoe::video {

namespace {

/// YouTube-recommended upload bitrates at standard frame rate (kbps).
int base_bitrate_kbps(int height) noexcept {
  switch (height) {
    case 240: return 500;
    case 360: return 1000;
    case 480: return 2500;
    case 720: return 5000;
    case 1080: return 8000;
    case 1440: return 16000;
  }
  return 0;
}

/// Frame-rate scaling: YouTube recommends 1.5x for high frame rate
/// (>= 48); intermediate encodes scale with frame count relative to the
/// anchor of their tier.
double fps_scale(int fps) noexcept {
  if (fps >= 48) return 1.5 * static_cast<double>(fps) / 60.0;
  return static_cast<double>(fps) / 30.0;
}

}  // namespace

BitrateLadder::BitrateLadder(std::vector<Rung> rungs) : rungs_(std::move(rungs)) {
  std::sort(rungs_.begin(), rungs_.end(), [](const Rung& a, const Rung& b) {
    if (a.resolution.height != b.resolution.height)
      return a.resolution.height < b.resolution.height;
    return a.fps < b.fps;
  });
}

BitrateLadder BitrateLadder::youtube() {
  static constexpr Resolution kResolutions[] = {res::k240p,  res::k360p,  res::k480p,
                                                res::k720p,  res::k1080p, res::k1440p};
  static constexpr int kFps[] = {24, 30, 48, 60};
  std::vector<Rung> rungs;
  for (const Resolution& resolution : kResolutions) {
    for (const int fps : kFps) {
      const int bitrate = static_cast<int>(
          std::lround(base_bitrate_kbps(resolution.height) * fps_scale(fps)));
      rungs.push_back(Rung{resolution, fps, bitrate});
    }
  }
  return BitrateLadder(std::move(rungs));
}

std::optional<Rung> BitrateLadder::find(int height, int fps) const noexcept {
  for (const Rung& rung : rungs_) {
    if (rung.resolution.height == height && rung.fps == fps) return rung;
  }
  return std::nullopt;
}

std::optional<Rung> BitrateLadder::step_down(const Rung& from) const noexcept {
  const Rung* best = nullptr;
  for (const Rung& rung : rungs_) {
    if (rung.fps != from.fps || rung.bitrate_kbps >= from.bitrate_kbps) continue;
    if (best == nullptr || rung.bitrate_kbps > best->bitrate_kbps) best = &rung;
  }
  return best != nullptr ? std::optional<Rung>(*best) : std::nullopt;
}

std::optional<Rung> BitrateLadder::step_up(const Rung& from) const noexcept {
  const Rung* best = nullptr;
  for (const Rung& rung : rungs_) {
    if (rung.fps != from.fps || rung.bitrate_kbps <= from.bitrate_kbps) continue;
    if (best == nullptr || rung.bitrate_kbps < best->bitrate_kbps) best = &rung;
  }
  return best != nullptr ? std::optional<Rung>(*best) : std::nullopt;
}

std::optional<Rung> BitrateLadder::with_fps(const Rung& from, int fps) const noexcept {
  return find(from.resolution.height, fps);
}

std::optional<Rung> BitrateLadder::best_under(int max_height, int max_fps) const noexcept {
  const Rung* best = nullptr;
  for (const Rung& rung : rungs_) {
    if (rung.resolution.height > max_height || rung.fps > max_fps) continue;
    if (best == nullptr || rung.bitrate_kbps > best->bitrate_kbps) best = &rung;
  }
  return best != nullptr ? std::optional<Rung>(*best) : std::nullopt;
}

std::vector<int> BitrateLadder::frame_rates() const {
  std::vector<int> rates;
  for (const Rung& rung : rungs_) {
    if (std::find(rates.begin(), rates.end(), rung.fps) == rates.end()) rates.push_back(rung.fps);
  }
  std::sort(rates.begin(), rates.end());
  return rates;
}

std::vector<int> BitrateLadder::heights() const {
  std::vector<int> heights;
  for (const Rung& rung : rungs_) {
    if (std::find(heights.begin(), heights.end(), rung.resolution.height) == heights.end()) {
      heights.push_back(rung.resolution.height);
    }
  }
  std::sort(heights.begin(), heights.end());
  return heights;
}

}  // namespace mvqoe::video
