#include "video/session.hpp"

#include <algorithm>
#include <cmath>

#include "snapshot/digest.hpp"
#include "snapshot/rng_io.hpp"

namespace mvqoe::video {

namespace {

void write_rung(snapshot::ByteWriter& w, const Rung& rung) {
  w.i32(rung.resolution.width);
  w.i32(rung.resolution.height);
  w.i32(rung.fps);
  w.i32(rung.bitrate_kbps);
}

void write_accumulator(snapshot::ByteWriter& w, const stats::Accumulator& acc) {
  w.u64(acc.count());
  w.f64(acc.mean());
  w.f64(acc.variance());
  w.f64(acc.min());
  w.f64(acc.max());
}

/// Lognormal multiplier with unit mean: exp(N(-sigma^2/2, sigma)).
double unit_lognormal(stats::Rng& rng, double sigma) {
  return std::exp(rng.normal(-0.5 * sigma * sigma, sigma));
}

sim::Time frame_pts(sim::Time segment_start, int frame_index, int fps) noexcept {
  return segment_start + static_cast<sim::Time>(frame_index) * 1'000'000 / fps;
}

}  // namespace

VideoSession::VideoSession(sim::Engine& engine, sched::Scheduler& scheduler,
                           mem::MemoryManager& memory, net::Link& link, trace::Tracer& tracer,
                           SessionConfig config, AbrPolicy* abr)
    : engine_(engine),
      scheduler_(scheduler),
      memory_(memory),
      link_(link),
      tracer_(tracer),
      config_(std::move(config)),
      rng_(config_.seed),
      current_rung_(config_.initial_rung),
      pool_rung_(config_.initial_rung) {
  if (abr == nullptr) {
    fallback_abr_ = std::make_unique<FixedAbr>(config_.initial_rung);
    abr_ = fallback_abr_.get();
  } else {
    abr_ = abr;
  }
  total_segments_ = (config_.asset.duration_s + config_.asset.segment_s - 1) /
                    config_.asset.segment_s;
}

VideoSession::~VideoSession() = default;

bool VideoSession::alive() const noexcept {
  return !crashed_ && memory_.registry().alive(pid_);
}

std::vector<trace::ThreadId> VideoSession::client_thread_ids() const {
  return {pl_tid_, mc_tid_, comp_tid_};
}

void VideoSession::spawn_client_threads() {
  sched::ThreadSpec player;
  player.name = config_.profile.main_thread;
  player.pid = pid_;
  player.process_name = config_.profile.process_name;
  pl_tid_ = scheduler_.create_thread(player);

  sched::ThreadSpec codec;
  codec.name = "MediaCodec";
  codec.pid = pid_;
  codec.process_name = config_.profile.process_name;
  mc_tid_ = scheduler_.create_thread(codec);

  sched::ThreadSpec compositor;
  compositor.name = "Compositor";
  compositor.pid = pid_;
  compositor.process_name = config_.profile.process_name;
  comp_tid_ = scheduler_.create_thread(compositor);
}

void VideoSession::start(mem::ProcessId pid, std::function<void()> on_finished) {
  pid_ = pid;
  on_finished_ = std::move(on_finished);
  started_ = true;

  memory_.register_process(pid_, config_.profile.process_name, mem::OomAdj::kForeground,
                           [this] { handle_crash(); });
  spawn_client_threads();

  sched::ThreadSpec sf;
  sf.name = "SurfaceFlinger";
  sf.pid = 3;  // system process: survives a client crash
  sf.process_name = "surfaceflinger";
  sf.priority = -8;  // boosted, but still Fair class (preemptible by mmcqd)
  sf_tid_ = scheduler_.create_thread(sf);

  // Launch footprint: heap in stages, then code, on the player thread so
  // the launch itself stalls under pressure (as real app launches do).
  launch_stage(0);
}

void VideoSession::launch_stage(int stage) {
  if (!alive() || finished_) return;
  const int epoch = epoch_;
  const int stages = std::max(1, config_.launch_stages);
  if (stage >= stages) {
    memory_.set_hot_pages(pid_, config_.profile.base_heap * 2 / 5);
    memory_.map_file(pid_, config_.profile.code_working_set, pl_tid_, [this, epoch](bool ok) {
      if (!ok || !epoch_ok(epoch) || !alive()) return;
      pss_sampler_ = std::make_unique<sim::PeriodicTask>(engine_, sim::msec(500),
                                                         [this] { sample_pss(); });
      pss_sampler_->start();
      ui_task_ = std::make_unique<sim::PeriodicTask>(engine_, config_.ui_period,
                                                     [this] { ui_tick(); });
      ui_task_->start();
      maybe_download();
    });
    return;
  }
  const mem::Pages slice = config_.profile.base_heap / stages;
  memory_.alloc_anon(pid_, slice, pl_tid_, [this, stage, epoch](bool ok) {
    if (!ok || !epoch_ok(epoch) || !alive()) return;
    scheduler_.sleep_for(pl_tid_, config_.launch_stage_pause, [this, stage, epoch] {
      if (epoch_ok(epoch)) launch_stage(stage + 1);
    });
  });
}

// --- Download pipeline -------------------------------------------------------

double VideoSession::buffered_seconds() const noexcept {
  sim::Time playhead = pts_origin_;
  if (playback_started_) {
    playhead = std::max(playhead, pts_origin_ + engine_.now() - playback_base_);
  }
  return std::max(0.0, sim::to_seconds(buffered_media_end_ - playhead));
}

AbrContext VideoSession::make_context() const {
  AbrContext context;
  context.buffer_seconds = buffered_seconds();
  context.throughput_mbps = throughput_estimate_mbps_;
  context.current = current_rung_;
  context.ladder = &config_.ladder;
  context.pressure = memory_.level();
  context.segment_index = next_segment_;
  // Drop rate over the trailing ~5 media seconds.
  std::int64_t presented = 0;
  std::int64_t dropped = 0;
  const std::size_t seconds = metrics_.presented_per_second.size();
  for (std::size_t i = seconds > 5 ? seconds - 5 : 0; i < seconds; ++i) {
    presented += metrics_.presented_per_second[i];
    if (i < metrics_.dropped_per_second.size()) dropped += metrics_.dropped_per_second[i];
  }
  const double total = static_cast<double>(presented + dropped);
  context.recent_drop_rate = total > 0.0 ? static_cast<double>(dropped) / total : 0.0;
  return context;
}

void VideoSession::maybe_download() {
  if (!alive() || finished_ || downloading_ || downloads_done_) return;
  if (next_segment_ >= total_segments_) {
    downloads_done_ = true;
    return;
  }
  if (buffered_seconds() >= sim::to_seconds(config_.buffer_capacity)) {
    const int epoch = epoch_;
    engine_.schedule(sim::msec(500), [this, epoch] {
      if (epoch_ok(epoch)) maybe_download();
    });
    return;
  }

  const Rung rung = abr_->choose(make_context());
  if (!(rung == current_rung_)) {
    current_rung_ = rung;
    tracer_.instant(trace::InstantKind::RungSwitch, engine_.now(), pl_tid_, rung.bitrate_kbps);
  }
  downloading_ = true;
  const double size_jitter = unit_lognormal(rng_, config_.asset.size_sigma);
  const auto bytes = static_cast<std::uint64_t>(static_cast<double>(rung.bitrate_kbps) * 1000.0 /
                                                8.0 * config_.asset.segment_s * size_jitter);
  const int index = next_segment_;
  ++next_segment_;
  request_segment(index, rung, bytes, 1);
}

void VideoSession::request_segment(int index, Rung rung, std::uint64_t bytes, int attempt) {
  const int epoch = epoch_;
  const sim::Time requested_at = engine_.now();
  active_transfer_ =
      link_.transfer(bytes, [this, epoch, index, rung, bytes, attempt, requested_at](bool ok) {
        if (!epoch_ok(epoch)) return;
        active_transfer_ = net::kInvalidTransfer;
        if (watchdog_event_ != sim::kInvalidEvent) {
          engine_.cancel(watchdog_event_);
          watchdog_event_ = sim::kInvalidEvent;
        }
        if (!alive() || finished_) return;
        if (!ok) {
          // Link-level transfer timeout.
          ++metrics_.download_timeouts;
          tracer_.instant(trace::InstantKind::DownloadTimeout, engine_.now(), pl_tid_, index);
          retry_segment(index, rung, bytes, attempt);
          return;
        }
        const sim::Time elapsed = std::max<sim::Time>(1, engine_.now() - requested_at);
        const double mbps = static_cast<double>(bytes) * 8.0 / sim::to_seconds(elapsed) / 1e6;
        throughput_estimate_mbps_ = throughput_estimate_mbps_ <= 0.0
                                        ? mbps
                                        : 0.7 * throughput_estimate_mbps_ + 0.3 * mbps;
        on_segment_arrived(index, rung, mem::pages_from_bytes(static_cast<std::int64_t>(bytes)));
      });

  if (config_.recovery.download_watchdog > 0) {
    // Flat event (engine hot path): at most one watchdog is pending per
    // session, so its context lives in a member instead of a closure.
    watchdog_ctx_ = WatchdogCtx{epoch, active_transfer_, index, rung, bytes, attempt};
    watchdog_event_ =
        engine_.schedule_flat(config_.recovery.download_watchdog, &VideoSession::on_watchdog, this);
  }
}

void VideoSession::on_watchdog(void* ctx, std::uint64_t) {
  auto* self = static_cast<VideoSession*>(ctx);
  const WatchdogCtx wd = self->watchdog_ctx_;
  if (!self->epoch_ok(wd.epoch) || self->active_transfer_ != wd.xfer) return;
  self->watchdog_event_ = sim::kInvalidEvent;
  self->link_.cancel(wd.xfer);
  self->active_transfer_ = net::kInvalidTransfer;
  ++self->metrics_.download_timeouts;
  self->tracer_.instant(trace::InstantKind::DownloadTimeout, self->engine_.now(), self->pl_tid_,
                        wd.index);
  if (!self->alive() || self->finished_) return;
  self->retry_segment(wd.index, wd.rung, wd.bytes, wd.attempt);
}

void VideoSession::retry_segment(int index, Rung rung, std::uint64_t bytes, int attempt) {
  if (attempt > config_.recovery.max_segment_retries) {
    // Retry budget exhausted: end the session with a structured failure
    // instead of spinning forever against a dead link.
    downloading_ = false;
    metrics_.aborted = true;
    metrics_.abort_reason =
        "segment " + std::to_string(index) + " failed after " + std::to_string(attempt) +
        " attempts";
    finish();
    return;
  }
  ++metrics_.segment_retries;
  tracer_.instant(trace::InstantKind::SegmentRetry, engine_.now(), pl_tid_, index);
  double backoff = static_cast<double>(config_.recovery.retry_backoff_initial);
  for (int i = 1; i < attempt; ++i) backoff *= config_.recovery.retry_backoff_factor;
  const sim::Time delay = std::min<sim::Time>(config_.recovery.retry_backoff_max,
                                              static_cast<sim::Time>(std::llround(backoff)));
  const int epoch = epoch_;
  engine_.schedule(delay, [this, epoch, index, rung, bytes, attempt] {
    if (!epoch_ok(epoch) || !alive() || finished_) return;
    request_segment(index, rung, bytes, attempt + 1);
  });
}

void VideoSession::on_segment_arrived(int index, Rung rung, mem::Pages pages) {
  const int epoch = epoch_;
  // Demux on the player thread, then commit the buffer memory.
  auto demux = [this, index, rung, pages, epoch] {
    scheduler_.run_work(pl_tid_, config_.profile.demux_cost_refus,
                        [this, index, rung, pages, epoch] {
      memory_.alloc_anon(pid_, pages, pl_tid_, [this, index, rung, pages, epoch](bool ok) {
        if (!ok || !epoch_ok(epoch) || !alive() || finished_) return;
        Segment segment;
        segment.index = index;
        segment.rung = rung;
        segment.pages = pages;
        segment.frames = rung.fps * config_.asset.segment_s;
        segment.start_pts = next_segment_pts_;
        next_segment_pts_ += sim::sec(config_.asset.segment_s);
        buffered_media_end_ = next_segment_pts_;
        buffer_.push_back(segment);
        metrics_.rung_history.push_back(rung);
        tracer_.instant(trace::InstantKind::SegmentDownloaded, engine_.now(), pl_tid_, index);
        downloading_ = false;
        if (!playback_started_) begin_playback();
        if (waiting_for_segment_) {
          waiting_for_segment_ = false;
          decode_next();
        }
        maybe_download();
      });
    });
  };
  // The player thread may be mid-UI-burst; wait for it.
  if (scheduler_.exists(pl_tid_) && scheduler_.is_idle(pl_tid_)) {
    demux();
  } else {
    engine_.schedule(sim::msec(1), [this, index, rung, pages, epoch] {
      if (epoch_ok(epoch)) on_segment_arrived(index, rung, pages);
    });
  }
}

void VideoSession::ui_tick() {
  if (!alive() || finished_) return;
  if (!scheduler_.exists(pl_tid_) || !scheduler_.is_idle(pl_tid_)) return;
  const double cost =
      downloading_ && link_.busy() ? config_.ui_cost_refus * 0.3 : config_.ui_cost_refus;
  const int epoch = epoch_;
  scheduler_.run_work(pl_tid_, cost, [this, epoch] {
    // Runtime allocation churn: grab this tick's share, release it after
    // its GC lifetime.
    const auto ticks_per_sec =
        std::max<sim::Time>(1, sim::sec(1) / std::max<sim::Time>(1, config_.ui_period));
    const mem::Pages churn = config_.churn_pages_per_sec / ticks_per_sec;
    if (churn <= 0 || !epoch_ok(epoch) || !alive() || finished_) return;
    memory_.alloc_anon(pid_, churn, pl_tid_, [this, churn, epoch](bool ok) {
      if (!ok) return;
      engine_.schedule(config_.churn_lifetime, [this, churn, epoch] {
        // Epoch guard: the kill already freed this incarnation's pages;
        // releasing them against a relaunched process would corrupt the
        // page accounting.
        if (epoch_ok(epoch) && memory_.registry().alive(pid_)) memory_.free_anon(pid_, churn);
      });
    });
  });
}

// --- Decode pipeline ---------------------------------------------------------

void VideoSession::begin_playback() {
  playback_started_ = true;
  playback_base_ = engine_.now() + config_.startup_delay;
  pts_origin_ = buffer_.front().start_pts;
  if (metrics_.playback_start < 0) metrics_.playback_start = playback_base_;
  if (pending_kill_time_ >= 0) {
    metrics_.relaunch_downtime += playback_base_ - pending_kill_time_;
    pending_kill_time_ = -1;
  }
  decode_next();
}

void VideoSession::decode_next() {
  if (!alive() || finished_) return;
  if (buffer_.empty()) {
    if (downloads_done_) {
      maybe_finish_playout();
      return;
    }
    ++metrics_.rebuffer_events;
    waiting_for_segment_ = true;
    return;
  }
  Segment& segment = buffer_.front();
  if (frame_in_segment_ >= segment.frames) {
    memory_.free_anon(pid_, segment.pages);
    buffer_.pop_front();
    frame_in_segment_ = 0;
    decode_next();
    return;
  }

  const sim::Time pts = frame_pts(segment.start_pts, frame_in_segment_, segment.rung.fps);
  const sim::Time deadline = playback_base_ + (pts - pts_origin_);
  const sim::Time now = engine_.now();

  if (now > deadline + config_.present_slack) {
    // Frame is already unpresentable: skip-decode it cheaply and move on
    // (the decoder catching up — this is what a stutter looks like).
    note_dropped(pts);
    const double skip_cost =
        0.15 * config_.profile.decode_cost_refus(segment.rung, config_.asset.complexity);
    advance_frame();
    scheduler_.run_work(mc_tid_, skip_cost, [this] { decode_next(); });
    return;
  }
  if (now < deadline - config_.decode_lead) {
    scheduler_.sleep_for(mc_tid_, deadline - config_.decode_lead - now, [this] { decode_next(); });
    return;
  }

  // Per-frame working-set touch: decoding a frame walks the heap, codec
  // buffers and code pages; under pressure the evicted/compressed share
  // faults back in (decompression CPU + storage reads) *inside the frame
  // deadline* — the §2 "extra I/O wait in any thread" stretched across
  // every frame, which is what turns memory pressure into dropped frames
  // at any resolution.
  const mem::ProcessMem* process = memory_.registry().find(pid_);
  if (process != nullptr) {
    const auto window_anon = static_cast<mem::Pages>(
        config_.heap_touch_fraction *
        static_cast<double>(process->anon_resident + process->anon_swapped));
    const auto window_file = static_cast<mem::Pages>(
        config_.code_touch_fraction * static_cast<double>(process->file_working_set));
    // The touched window is the client's hot floor: kswapd cannot
    // usefully compress it (it would fault right back).
    memory_.set_hot_pages(pid_, window_anon);
    // Per-frame share of the touch window.
    const double scale =
        std::min(1.0, static_cast<double>(sim::sec(1) / segment.rung.fps) /
                          static_cast<double>(std::max<sim::Time>(1, config_.touch_period)));
    const auto anon_touch = static_cast<mem::Pages>(static_cast<double>(window_anon) * scale);
    const auto file_touch = static_cast<mem::Pages>(static_cast<double>(window_file) * scale);
    const Segment snapshot = segment;
    const int epoch = epoch_;
    memory_.touch_working_set(pid_, mc_tid_, anon_touch, file_touch,
                              [this, snapshot, deadline, pts, epoch](bool ok) {
                                if (!ok || !epoch_ok(epoch) || !alive() || finished_) return;
                                decode_current_frame(snapshot, deadline, pts);
                              });
    return;
  }
  decode_current_frame(segment, deadline, pts);
}

void VideoSession::ensure_decoder_pool(const Rung& rung, std::function<void()> next) {
  if (pool_pages_ > 0 && pool_rung_ == rung) {
    next();
    return;
  }
  const mem::Pages new_pool = config_.profile.decoder_pool_pages(rung);
  const int epoch = epoch_;
  // Allocate the new pool before releasing the old one — the transient
  // double allocation is exactly what a live rung switch costs.
  memory_.alloc_anon(pid_, new_pool, mc_tid_, [this, rung, new_pool, epoch,
                                               next = std::move(next)](bool ok) {
    if (!ok || !epoch_ok(epoch) || !alive() || finished_) return;
    if (pool_pages_ > 0) memory_.free_anon(pid_, pool_pages_);
    pool_pages_ = new_pool;
    pool_rung_ = rung;
    next();
  });
}

void VideoSession::decode_current_frame(const Segment& segment, sim::Time deadline,
                                        sim::Time pts) {
  ensure_decoder_pool(segment.rung, [this, segment, deadline, pts] {
    const double cost =
        config_.profile.decode_cost_refus(segment.rung, config_.asset.complexity) *
        unit_lognormal(rng_, config_.decode_sigma);
    scheduler_.run_work(mc_tid_, cost, [this, segment, deadline, pts] {
      if (!alive() || finished_) return;
      if (engine_.now() > deadline + config_.present_slack) {
        note_dropped(pts);
      } else {
        enqueue_compose(deadline, pts, segment.rung);
      }
      advance_frame();
      decode_next();
    });
  });
}

void VideoSession::advance_frame() { ++frame_in_segment_; }

// --- In-process compositor ----------------------------------------------------

void VideoSession::enqueue_compose(sim::Time deadline, sim::Time pts, const Rung& rung) {
  compose_queue_.push_back(PresentItem{deadline, pts, rung});
  comp_pump();
}

void VideoSession::comp_pump() {
  if (comp_busy_ || compose_queue_.empty()) return;
  if (!scheduler_.exists(comp_tid_)) return;
  comp_busy_ = true;
  const PresentItem item = compose_queue_.front();
  compose_queue_.pop_front();
  const double cost = config_.profile.compositor_cost_refus(item.rung);
  scheduler_.run_work(comp_tid_, cost, [this, item] {
    if (engine_.now() > item.deadline + config_.present_slack) {
      note_dropped(item.pts);
    } else {
      enqueue_present(item.deadline, item.pts, item.rung);
    }
    comp_busy_ = false;
    comp_pump();
    maybe_finish_playout();
  });
}

// --- Presentation ------------------------------------------------------------

void VideoSession::enqueue_present(sim::Time deadline, sim::Time pts, const Rung& rung) {
  present_queue_.push_back(PresentItem{deadline, pts, rung});
  sf_pump();
}

void VideoSession::sf_pump() {
  if (sf_busy_ || present_queue_.empty()) return;
  if (!scheduler_.exists(sf_tid_)) return;
  sf_busy_ = true;
  const PresentItem item = present_queue_.front();
  present_queue_.pop_front();
  const double cost = config_.profile.compose_cost_refus(item.rung);
  // SurfaceFlinger lives in the system process and survives a client
  // kill, so this callback can fire for a dead incarnation: the frame was
  // already accounted as lost at kill time — just release the stage.
  const int epoch = epoch_;
  scheduler_.run_work(sf_tid_, cost, [this, item, epoch] {
    if (epoch_ok(epoch)) {
      if (engine_.now() <= item.deadline + config_.present_slack) {
        note_presented(item.pts);
      } else {
        note_dropped(item.pts);
      }
    }
    sf_busy_ = false;
    sf_pump();
    if (epoch_ok(epoch)) maybe_finish_playout();
  });
}

// --- Accounting ---------------------------------------------------------------

std::size_t VideoSession::media_second(sim::Time pts) const noexcept {
  return static_cast<std::size_t>(std::max<sim::Time>(0, pts) / sim::sec(1));
}

void VideoSession::note_presented(sim::Time pts) {
  ++metrics_.frames_presented;
  const std::size_t second = media_second(pts);
  if (metrics_.presented_per_second.size() <= second) {
    metrics_.presented_per_second.resize(second + 1, 0);
  }
  ++metrics_.presented_per_second[second];
  tracer_.instant(trace::InstantKind::FramePresented, engine_.now(), mc_tid_,
                  static_cast<std::int64_t>(second));
}

void VideoSession::note_dropped(sim::Time pts) {
  ++metrics_.frames_dropped;
  const std::size_t second = media_second(pts);
  if (metrics_.dropped_per_second.size() <= second) {
    metrics_.dropped_per_second.resize(second + 1, 0);
  }
  ++metrics_.dropped_per_second[second];
  tracer_.instant(trace::InstantKind::FrameDropped, engine_.now(), mc_tid_,
                  static_cast<std::int64_t>(second));
}

void VideoSession::sample_pss() {
  const mem::ProcessMem* process = memory_.registry().find(pid_);
  if (process == nullptr) return;
  const double pss_mb = mem::mb_from_pages(mem::pss_pages(*process));
  metrics_.pss_mb.add(pss_mb);
  tracer_.counter("pss_mb", engine_.now(), pss_mb);
}

void VideoSession::account_kill_losses() {
  // Frames in flight past the decoder (compose/present queues and the
  // stage slots) die with the display pipeline; the played segment's
  // undecoded remainder dies with the buffer. Segments buffered beyond
  // the playhead were freed by the kill but never entered playback — the
  // relaunch re-downloads them, so their frames are not lost.
  std::int64_t lost = static_cast<std::int64_t>(compose_queue_.size() + present_queue_.size());
  if (comp_busy_) ++lost;
  if (sf_busy_) ++lost;
  int resume = downloading_ ? next_segment_ - 1 : next_segment_;
  if (!buffer_.empty()) {
    const Segment& front = buffer_.front();
    if (frame_in_segment_ > 0) {
      lost += front.frames - frame_in_segment_;
      resume = front.index + 1;
    } else {
      resume = front.index;
    }
  }
  metrics_.frames_lost_to_kill += lost;
  resume_segment_ = resume;
}

void VideoSession::handle_crash() {
  if (finished_ || crashed_) return;
  const sim::Time now = engine_.now();
  metrics_.kill_times.push_back(now);
  tracer_.instant(trace::InstantKind::ClientCrashed, now, pl_tid_, 0);

  // Invalidate every outstanding callback of this incarnation, stop the
  // periodic work, and cancel the in-flight download.
  ++epoch_;
  crashed_ = true;
  if (active_transfer_ != net::kInvalidTransfer) {
    link_.cancel(active_transfer_);
    active_transfer_ = net::kInvalidTransfer;
  }
  if (watchdog_event_ != sim::kInvalidEvent) {
    engine_.cancel(watchdog_event_);
    watchdog_event_ = sim::kInvalidEvent;
  }
  if (pss_sampler_ != nullptr) pss_sampler_->stop();
  if (ui_task_ != nullptr) ui_task_->stop();

  account_kill_losses();

  // The kill already freed the process's pages (playback buffer and
  // decoder pool included): forget them without a second free.
  buffer_.clear();
  compose_queue_.clear();
  present_queue_.clear();
  comp_busy_ = false;  // compositor thread died with the process
  // sf_busy_ is left alone: SurfaceFlinger survives, and its in-flight
  // callback (epoch-guarded) releases the stage itself.
  pool_pages_ = 0;
  frame_in_segment_ = 0;
  downloading_ = false;
  downloads_done_ = false;
  waiting_for_segment_ = false;

  const bool relaunch_allowed = config_.recovery.relaunch_on_kill &&
                                metrics_.relaunches < config_.recovery.max_relaunches &&
                                resume_segment_ < total_segments_;
  if (!relaunch_allowed) {
    // Terminal crash: no relaunch will ever re-download the remainder,
    // so every segment at or past the resume point is forfeited with
    // the process. Charging it here keeps the frame identity
    // (presented + dropped + lost == asset frames) exact for
    // kill-terminated fixed-ladder runs, not just recovered ones.
    // Drop statistics still cover the *played* portion only; the crash
    // itself is reported separately (the paper's Fig 9 drop bars and
    // Table 2 crash rates are separate panels over the same runs).
    if (resume_segment_ < total_segments_) {
      metrics_.frames_lost_to_kill +=
          static_cast<std::int64_t>(total_segments_ - resume_segment_) *
          config_.initial_rung.fps * config_.asset.segment_s;
    }
    metrics_.crashed = true;
    metrics_.crash_time = now;
    finished_ = true;
    metrics_.finished_at = now;
    if (on_finished_) {
      engine_.schedule(0, [fn = std::move(on_finished_)] { fn(); });
      on_finished_ = nullptr;
    }
    return;
  }

  // Absorbed kill: cold restart after the relaunch delay. Counted as a
  // rebuffer + relaunch rather than a terminal crash.
  ++metrics_.rebuffer_events;
  pending_kill_time_ = now;
  const int epoch = epoch_;
  engine_.schedule(config_.recovery.relaunch_delay, [this, epoch] {
    if (!epoch_ok(epoch) || finished_) return;
    relaunch();
  });
}

void VideoSession::relaunch() {
  ++metrics_.relaunches;
  if (config_.next_pid) pid_ = config_.next_pid();
  crashed_ = false;

  memory_.register_process(pid_, config_.profile.process_name, mem::OomAdj::kForeground,
                           [this] { handle_crash(); });
  spawn_client_threads();  // fresh pl/mc/comp; SurfaceFlinger is still up

  // Resume playback at the next clean segment boundary; everything the
  // dead incarnation had buffered past it is re-downloaded.
  next_segment_ = resume_segment_;
  next_segment_pts_ = sim::sec(config_.asset.segment_s) * resume_segment_;
  buffered_media_end_ = next_segment_pts_;
  pts_origin_ = next_segment_pts_;
  playback_started_ = false;

  tracer_.instant(trace::InstantKind::SessionRelaunch, engine_.now(), pl_tid_,
                  metrics_.relaunches);
  launch_stage(0);
}

bool VideoSession::pipeline_idle() const noexcept {
  return compose_queue_.empty() && present_queue_.empty() && !comp_busy_ && !sf_busy_;
}

void VideoSession::maybe_finish_playout() {
  if (finished_ || !downloads_done_ || !buffer_.empty() || !pipeline_idle()) return;
  finish();
}

void VideoSession::finish() {
  if (finished_) return;
  finished_ = true;
  metrics_.finished_at = engine_.now();
  if (memory_.registry().alive(pid_)) {
    for (const Segment& segment : buffer_) memory_.free_anon(pid_, segment.pages);
  }
  buffer_.clear();
  if (pss_sampler_ != nullptr) pss_sampler_->stop();
  if (ui_task_ != nullptr) ui_task_->stop();
  if (on_finished_) {
    engine_.schedule(0, [fn = std::move(on_finished_)] { fn(); });
    on_finished_ = nullptr;
  }
}

void VideoSession::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.u32(pid_);
  w.u64(pl_tid_);
  w.u64(mc_tid_);
  w.u64(comp_tid_);
  w.u64(sf_tid_);
  snapshot::write_rng(w, rng_);

  // Download pipeline + playback buffer.
  w.i32(total_segments_);
  w.i32(next_segment_);
  w.b(downloading_);
  w.b(downloads_done_);
  w.u64(buffer_.size());
  for (const Segment& segment : buffer_) {
    w.i32(segment.index);
    write_rung(w, segment.rung);
    w.i64(segment.pages);
    w.i32(segment.frames);
    w.i64(segment.start_pts);
  }
  w.i64(buffered_media_end_);
  w.i64(next_segment_pts_);
  w.u64(active_transfer_);

  // Incarnation / playback clock.
  w.i32(epoch_);
  w.i64(playback_base_);
  w.i64(pts_origin_);
  w.i32(resume_segment_);
  w.i64(pending_kill_time_);

  // Decode cursor + pools.
  w.b(playback_started_);
  w.b(waiting_for_segment_);
  w.i32(frame_in_segment_);
  write_rung(w, current_rung_);
  write_rung(w, pool_rung_);
  w.i64(pool_pages_);
  w.i64(last_touch_);
  w.f64(throughput_estimate_mbps_);

  // Compose/present stages.
  w.u64(compose_queue_.size());
  for (const PresentItem& item : compose_queue_) {
    w.i64(item.deadline);
    w.i64(item.pts);
    write_rung(w, item.rung);
  }
  w.b(comp_busy_);
  w.u64(present_queue_.size());
  for (const PresentItem& item : present_queue_) {
    w.i64(item.deadline);
    w.i64(item.pts);
    write_rung(w, item.rung);
  }
  w.b(sf_busy_);

  w.b(started_);
  w.b(finished_);
  w.b(crashed_);

  // Metrics.
  w.i64(metrics_.frames_presented);
  w.i64(metrics_.frames_dropped);
  w.i64(metrics_.frames_lost_to_kill);
  w.b(metrics_.crashed);
  w.i64(metrics_.crash_time);
  w.b(metrics_.aborted);
  w.str(metrics_.abort_reason);
  w.i64(metrics_.playback_start);
  w.i64(metrics_.finished_at);
  w.i32(metrics_.relaunches);
  w.i32(metrics_.rebuffer_events);
  w.i32(metrics_.segment_retries);
  w.i32(metrics_.download_timeouts);
  w.u64(metrics_.kill_times.size());
  for (const sim::Time t : metrics_.kill_times) w.i64(t);
  w.i64(metrics_.relaunch_downtime);
  w.u64(metrics_.presented_per_second.size());
  for (const int n : metrics_.presented_per_second) w.i32(n);
  w.u64(metrics_.dropped_per_second.size());
  for (const int n : metrics_.dropped_per_second) w.i32(n);
  w.u64(metrics_.rung_history.size());
  for (const Rung& rung : metrics_.rung_history) write_rung(w, rung);
  write_accumulator(w, metrics_.pss_mb);
}

std::uint64_t VideoSession::digest() const { return snapshot::state_digest(*this); }

}  // namespace mvqoe::video
