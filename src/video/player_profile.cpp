#include "video/player_profile.hpp"

#include <algorithm>
#include <cmath>

namespace mvqoe::video {

const char* to_string(PlayerPlatform platform) noexcept {
  switch (platform) {
    case PlayerPlatform::Firefox: return "Firefox";
    case PlayerPlatform::Chrome: return "Chrome";
    case PlayerPlatform::ExoPlayer: return "ExoPlayer";
  }
  return "?";
}

mem::Pages PlayerProfile::decoder_pool_pages(const Rung& rung) const noexcept {
  const double hfr_frames = std::max(0, rung.fps - 30);
  const double bytes_per_pixel =
      pool_bytes_per_pixel + pool_bytes_per_pixel_hfr * hfr_frames / 30.0;
  const double bytes = static_cast<double>(rung.resolution.pixels()) * bytes_per_pixel;
  return mem::pages_from_bytes(static_cast<std::int64_t>(bytes));
}

double PlayerProfile::decode_cost_refus(const Rung& rung, double complexity) const noexcept {
  return decode_fixed_refus * decode_overhead +
         static_cast<double>(rung.resolution.pixels()) / 1000.0 * decode_cycles_per_pixel *
             decode_overhead * complexity;
}

double PlayerProfile::compose_cost_refus(const Rung& rung) const noexcept {
  return static_cast<double>(rung.resolution.pixels()) / 1000.0 * compose_cycles_per_pixel;
}

double PlayerProfile::compositor_cost_refus(const Rung& rung) const noexcept {
  return static_cast<double>(rung.resolution.pixels()) / 1000.0 * compositor_cycles_per_pixel *
         decode_overhead;
}

PlayerProfile PlayerProfile::firefox() {
  PlayerProfile profile;
  profile.platform = PlayerPlatform::Firefox;
  profile.process_name = "org.mozilla.firefox";
  profile.main_thread = "Firefox";
  profile.base_heap = mem::pages_from_mb(200);
  profile.code_working_set = mem::pages_from_mb(60);
  profile.pool_bytes_per_pixel = 40.0;
  profile.pool_bytes_per_pixel_hfr = 20.0;
  profile.decode_cycles_per_pixel = 11.8;
  profile.decode_fixed_refus = 2000.0;
  profile.decode_overhead = 1.0;
  return profile;
}

PlayerProfile PlayerProfile::chrome() {
  PlayerProfile profile;
  profile.platform = PlayerPlatform::Chrome;
  profile.process_name = "com.android.chrome";
  profile.main_thread = "CrRendererMain";
  profile.base_heap = mem::pages_from_mb(145);
  profile.code_working_set = mem::pages_from_mb(48);
  profile.pool_bytes_per_pixel = 30.0;
  profile.pool_bytes_per_pixel_hfr = 16.0;
  profile.decode_cycles_per_pixel = 13.0;
  profile.decode_fixed_refus = 4200.0;
  profile.decode_overhead = 0.95;
  return profile;
}

PlayerProfile PlayerProfile::exoplayer() {
  PlayerProfile profile;
  profile.platform = PlayerPlatform::ExoPlayer;
  profile.process_name = "com.example.videoapp";
  profile.main_thread = "ExoPlayer";
  profile.base_heap = mem::pages_from_mb(58);
  profile.code_working_set = mem::pages_from_mb(26);
  profile.pool_bytes_per_pixel = 10.0;
  profile.pool_bytes_per_pixel_hfr = 7.0;
  // Native app leans on the hardware decode path far more than the
  // browsers' software fallback/composite pipeline.
  profile.decode_cycles_per_pixel = 9.0;
  profile.decode_fixed_refus = 1600.0;  // hardware path: thin per-frame shim
  profile.decode_overhead = 0.7;
  profile.compositor_cycles_per_pixel = 2.0;  // direct-to-surface, no raster copy
  profile.demux_cost_refus = 1200.0;
  return profile;
}

PlayerProfile PlayerProfile::for_platform(PlayerPlatform platform) {
  switch (platform) {
    case PlayerPlatform::Firefox: return firefox();
    case PlayerPlatform::Chrome: return chrome();
    case PlayerPlatform::ExoPlayer: return exoplayer();
  }
  return firefox();
}

}  // namespace mvqoe::video
