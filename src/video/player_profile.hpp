// Player platform models: mobile Firefox (the paper's main client),
// Chrome, and an ExoPlayer-based native app (Appendix B). Appendix B
// attributes their QoE differences to memory footprint — Chrome and
// ExoPlayer "induce a lower memory overhead" — so platforms differ here
// in base heap, code working set, per-pixel buffer pools, and decode
// overhead (browsers do extra copy/composite work per frame).
#pragma once

#include <string>

#include "mem/types.hpp"
#include "video/ladder.hpp"

namespace mvqoe::video {

enum class PlayerPlatform { Firefox, Chrome, ExoPlayer };

const char* to_string(PlayerPlatform platform) noexcept;

struct PlayerProfile {
  PlayerPlatform platform = PlayerPlatform::Firefox;
  std::string process_name;   // traced process name
  std::string main_thread;    // traced main-thread name ("Firefox", ...)

  /// Anonymous heap at player start (UI, JS engine, page, media stack).
  mem::Pages base_heap = 0;
  /// File-backed code/resource working set.
  mem::Pages code_working_set = 0;

  /// Decoder + compositor buffer pool, bytes per pixel at <= 30 FPS.
  double pool_bytes_per_pixel = 30.0;
  /// Additional pool bytes per pixel at 60 FPS (scaled linearly with
  /// frames above 30).
  double pool_bytes_per_pixel_hfr = 20.0;

  /// Decode CPU in cycles per pixel (reference-µs = cycles/1000), before
  /// genre complexity and per-frame variability.
  double decode_cycles_per_pixel = 14.0;
  /// Fixed per-frame pipeline cost (buffer management, color convert
  /// setup, IPC to the compositor) — why 60 FPS hurts low-end devices
  /// even at small resolutions.
  double decode_fixed_refus = 5000.0;
  /// Multiplier on decode cost (browser copy/convert overhead).
  double decode_overhead = 1.0;
  /// SurfaceFlinger composition cycles per pixel.
  double compose_cycles_per_pixel = 2.5;
  /// In-process compositor/rasterizer stage between decode and
  /// SurfaceFlinger (color convert, layerize, upload), cycles per pixel.
  double compositor_cycles_per_pixel = 7.0;
  /// Player main thread demux/buffering cost per segment, reference-µs.
  double demux_cost_refus = 2500.0;

  /// Decoder/compositor pool size for a rung.
  mem::Pages decoder_pool_pages(const Rung& rung) const noexcept;
  /// Mean decode cost for one frame of a rung (reference-µs).
  double decode_cost_refus(const Rung& rung, double complexity) const noexcept;
  double compose_cost_refus(const Rung& rung) const noexcept;
  double compositor_cost_refus(const Rung& rung) const noexcept;

  static PlayerProfile firefox();
  static PlayerProfile chrome();
  static PlayerProfile exoplayer();
  static PlayerProfile for_platform(PlayerPlatform platform);
};

}  // namespace mvqoe::video
