// DASH bitrate ladder. The paper encodes five videos with H.264 at 240p
// through 1440p, 30 and 60 FPS, "at bit rates recommended by YouTube"
// (§4.1), in ~4-second chunks. §6 additionally evaluates 24 and 48 FPS
// encodes, and §7 argues providers should ship such frame-rate variants —
// so the ladder here carries the full resolution x frame-rate grid.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mvqoe::video {

struct Resolution {
  int width = 0;
  int height = 0;

  std::int64_t pixels() const noexcept {
    return static_cast<std::int64_t>(width) * height;
  }
  std::string label() const { return std::to_string(height) + "p"; }
  bool operator==(const Resolution&) const = default;
};

struct Rung {
  Resolution resolution;
  int fps = 30;
  int bitrate_kbps = 0;

  std::string label() const {
    return resolution.label() + "@" + std::to_string(fps);
  }
  bool operator==(const Rung&) const = default;
};

/// Standard resolutions used in the paper's sweeps.
namespace res {
inline constexpr Resolution k240p{426, 240};
inline constexpr Resolution k360p{640, 360};
inline constexpr Resolution k480p{854, 480};
inline constexpr Resolution k720p{1280, 720};
inline constexpr Resolution k1080p{1920, 1080};
inline constexpr Resolution k1440p{2560, 1440};
}  // namespace res

class BitrateLadder {
 public:
  /// YouTube-recommended ladder: 240p-1440p at 24/30/48/60 FPS. 30 FPS
  /// bitrates follow YouTube's upload recommendations; high-frame-rate
  /// variants carry YouTube's 1.5x premium, scaled by frame count for the
  /// 24/48 FPS encodes.
  static BitrateLadder youtube();

  const std::vector<Rung>& rungs() const noexcept { return rungs_; }

  /// Exact (height, fps) lookup.
  std::optional<Rung> find(int height, int fps) const noexcept;

  /// Next rung down/up in bitrate order with the same fps; nullopt at the
  /// ladder edge.
  std::optional<Rung> step_down(const Rung& from) const noexcept;
  std::optional<Rung> step_up(const Rung& from) const noexcept;

  /// Same resolution at a different frame rate (the §6 adaptation axis).
  std::optional<Rung> with_fps(const Rung& from, int fps) const noexcept;

  /// Highest-bitrate rung with fps <= max_fps and height <= max_height.
  std::optional<Rung> best_under(int max_height, int max_fps) const noexcept;

  /// All distinct frame rates present, ascending.
  std::vector<int> frame_rates() const;
  /// All distinct heights present, ascending.
  std::vector<int> heights() const;

 private:
  explicit BitrateLadder(std::vector<Rung> rungs);
  std::vector<Rung> rungs_;  // sorted by (height, fps)
};

}  // namespace mvqoe::video
