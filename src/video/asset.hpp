// The five evaluation videos (paper §4.3 "Performance over different
// videos"): one per genre — travel, sports, gaming, news, nature. Genre
// enters the model through decode complexity (motion/detail raise
// per-frame decode cost) and segment-size variability around the target
// bitrate.
#pragma once

#include <string>
#include <vector>

namespace mvqoe::video {

enum class Genre { Travel, Sports, Gaming, News, Nature };

const char* to_string(Genre genre) noexcept;

struct VideoAsset {
  std::string title;
  Genre genre = Genre::Travel;
  /// Playback duration in seconds.
  int duration_s = 120;
  /// Decode-cost multiplier relative to an average H.264 stream.
  double complexity = 1.0;
  /// Lognormal sigma of per-segment encoded size around the rung bitrate.
  double size_sigma = 0.15;
  /// Segment (chunk) duration — ~4 s in the paper's setup.
  int segment_s = 4;
};

/// The paper's single-video experiments use the travel video ("Dubai Flow
/// Motion in 4K — A Rob Whitworth Film").
VideoAsset dubai_flow_motion(int duration_s = 120);

/// All five genre videos of Fig 12.
std::vector<VideoAsset> genre_suite(int duration_s = 120);

}  // namespace mvqoe::video
