// The DASH video client: the simulation counterpart of the paper's
// dash.js-in-Firefox setup (§4.1, Fig 7).
//
// Threads (named to match the paper's §5 trace analysis):
//   * player main ("Firefox"/"CrRendererMain"/"ExoPlayer") — segment
//     download/demux, periodic UI/JS upkeep;
//   * "MediaCodec" — per-frame decode, plus the process's working-set
//     touches (so reclaim-induced refaults stall *decode*);
//   * "SurfaceFlinger" — per-frame composition against the vsync
//     deadline; runs in its own (system) process and survives a client
//     crash.
//
// Frame-drop semantics follow §4.1: playback holds 1x; a frame whose
// decode or composition misses its presentation deadline is dropped and
// the pipeline skips ahead. A client crash (lmkd kill) marks the session
// crashed and the un-played remainder dropped — matching the paper's
// "video was either unplayable or the video client crashed" at Critical.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mem/memory_manager.hpp"
#include "net/link.hpp"
#include "sched/scheduler.hpp"
#include "stats/rng.hpp"
#include "stats/summary.hpp"
#include "video/abr_policy.hpp"
#include "video/asset.hpp"
#include "video/player_profile.hpp"

namespace mvqoe::video {

/// Recovery / robustness knobs for the fault-injection scenarios.
/// Defaults are conservative and backwards compatible: downloads retry a
/// few times with exponential backoff, but there is no watchdog and a
/// kill still ends the session terminally.
struct RecoveryConfig {
  /// Relaunch the client after an lmkd/fault kill instead of ending the
  /// session: cold restart (relaunch_delay, heap re-committed in stages),
  /// playback buffer lost, playback resumes at the next segment boundary.
  /// The kill is accounted as a rebuffer + relaunch, not a terminal crash.
  bool relaunch_on_kill = false;
  int max_relaunches = 1;
  /// Process cold-start cost (zygote fork + activity restart) before the
  /// relaunched client begins re-allocating its footprint.
  sim::Time relaunch_delay = sim::msec(2500);
  /// Per-segment retry budget for failed/timed-out downloads; exhausting
  /// it aborts the session (SessionMetrics::aborted) instead of hanging.
  int max_segment_retries = 6;
  sim::Time retry_backoff_initial = sim::msec(250);
  double retry_backoff_factor = 2.0;
  sim::Time retry_backoff_max = sim::sec(8);
  /// Session-level download watchdog: a segment transfer still in flight
  /// after this long is cancelled and retried (0 = disabled). Must exceed
  /// the worst honest transfer time of the ladder on the slowest link
  /// profile in use.
  sim::Time download_watchdog = 0;
};

struct SessionConfig {
  VideoAsset asset;
  Rung initial_rung;
  PlayerProfile profile = PlayerProfile::firefox();
  BitrateLadder ladder = BitrateLadder::youtube();
  sim::Time buffer_capacity = sim::sec(60);
  std::uint64_t seed = 1;

  /// Lognormal sigma of per-frame decode cost.
  double decode_sigma = 0.15;
  /// How late a frame may still be presented (half a 60 Hz vsync plus
  /// scheduling slack).
  sim::Time present_slack = sim::msec(10);
  /// How far ahead of its deadline the decoder works.
  sim::Time decode_lead = sim::msec(90);
  /// Working-set touch cadence on the decode thread, and the fractions of
  /// heap / code working set touched each period.
  sim::Time touch_period = sim::msec(250);
  double heap_touch_fraction = 0.30;
  double code_touch_fraction = 0.50;
  /// Player main-thread UI/JS upkeep.
  sim::Time ui_period = sim::msec(100);
  double ui_cost_refus = 900.0;
  /// Allocation churn of the player runtime (JS garbage, media-source
  /// buffer copies): allocated and freed continuously. Harmless with
  /// free memory to spare; under pressure it keeps kswapd reclaiming for
  /// the whole session — the §5 "kswapd becomes the most-run thread"
  /// behaviour — and exposes the player to direct-reclaim stalls.
  mem::Pages churn_pages_per_sec = mem::pages_from_mb(14);
  /// How long a churn allocation lives before the GC releases it.
  sim::Time churn_lifetime = sim::msec(300);
  /// Delay between first buffered segment and the first frame deadline.
  sim::Time startup_delay = sim::msec(150);
  /// The launch heap is committed in stages (a real app's footprint grows
  /// over seconds); this is the pause between stages. Without it the
  /// launch demand spikes faster than reclaim or lmkd can respond, which
  /// no real allocation pattern does.
  sim::Time launch_stage_pause = sim::msec(180);
  int launch_stages = 16;
  RecoveryConfig recovery;
  /// Fresh pid source for the relaunch path (a relaunched app gets a new
  /// pid from zygote). Null = reuse the old pid.
  std::function<mem::ProcessId()> next_pid;
};

struct SessionMetrics {
  std::int64_t frames_presented = 0;
  std::int64_t frames_dropped = 0;
  /// Frames forfeited by kills: the undecoded remainder of the segment
  /// being played plus decoded frames in flight toward the display. With
  /// a fixed-fps ladder, presented + dropped + lost_to_kill equals the
  /// asset's frame count for any run that ends in playout or a kill.
  std::int64_t frames_lost_to_kill = 0;
  bool crashed = false;
  sim::Time crash_time = -1;
  /// Unrecoverable download failure (retry budget exhausted); the session
  /// ends early rather than hanging.
  bool aborted = false;
  std::string abort_reason;
  sim::Time playback_start = -1;
  sim::Time finished_at = -1;
  /// Recovery accounting (see RecoveryConfig).
  int relaunches = 0;
  int rebuffer_events = 0;
  int segment_retries = 0;
  int download_timeouts = 0;
  std::vector<sim::Time> kill_times;
  /// Wall time from each absorbed kill to playback resuming.
  sim::Time relaunch_downtime = 0;
  /// Presented / dropped frame counts per media-time second.
  std::vector<int> presented_per_second;
  std::vector<int> dropped_per_second;
  /// Rung used for each downloaded segment.
  std::vector<Rung> rung_history;
  stats::Accumulator pss_mb;

  double drop_rate() const noexcept {
    const double total = static_cast<double>(frames_presented + frames_dropped);
    return total > 0.0 ? static_cast<double>(frames_dropped) / total : 0.0;
  }
};

class VideoSession {
 public:
  VideoSession(sim::Engine& engine, sched::Scheduler& scheduler, mem::MemoryManager& memory,
               net::Link& link, trace::Tracer& tracer, SessionConfig config,
               AbrPolicy* abr = nullptr);
  ~VideoSession();

  VideoSession(const VideoSession&) = delete;
  VideoSession& operator=(const VideoSession&) = delete;

  /// Register the client process under `pid` and begin: launch
  /// allocation, segment downloads, playback. `on_finished` fires once,
  /// when the video completes or the client crashes.
  void start(mem::ProcessId pid, std::function<void()> on_finished = nullptr);

  bool finished() const noexcept { return finished_; }
  const SessionMetrics& metrics() const noexcept { return metrics_; }
  Rung current_rung() const noexcept { return current_rung_; }
  mem::ProcessId pid() const noexcept { return pid_; }
  int total_segments() const noexcept { return total_segments_; }
  /// Asset frame count under a fixed-fps ladder (no ABR): every segment
  /// carries initial_rung.fps * segment_s frames, the padded tail
  /// included. This is the right-hand side of the frame-conservation
  /// invariant documented on SessionMetrics::frames_lost_to_kill.
  std::int64_t fixed_ladder_frame_total() const noexcept {
    return static_cast<std::int64_t>(total_segments_) * config_.initial_rung.fps *
           config_.asset.segment_s;
  }

  /// App-process threads (player main + MediaCodec) — the paper's "video
  /// client process threads" of Table 4 include these plus SurfaceFlinger.
  std::vector<trace::ThreadId> client_thread_ids() const;

  /// Serialize the full playback pipeline: download/buffer state, decode
  /// cursor, compose/present queues, ABR throughput estimate, the
  /// session RNG stream and all metrics. In-flight async callbacks are
  /// closures and replay-reconstructed (DESIGN.md §10).
  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;
  trace::ThreadId surfaceflinger_tid() const noexcept { return sf_tid_; }
  trace::ThreadId mediacodec_tid() const noexcept { return mc_tid_; }
  trace::ThreadId player_tid() const noexcept { return pl_tid_; }
  trace::ThreadId compositor_tid() const noexcept { return comp_tid_; }

 private:
  struct Segment {
    int index = 0;
    Rung rung;
    mem::Pages pages = 0;
    int frames = 0;
    sim::Time start_pts = 0;
  };
  struct PresentItem {
    sim::Time deadline = 0;
    sim::Time pts = 0;
    Rung rung;
  };

  // Download pipeline (player thread).
  void maybe_download();
  void request_segment(int index, Rung rung, std::uint64_t bytes, int attempt);
  void retry_segment(int index, Rung rung, std::uint64_t bytes, int attempt);
  void on_segment_arrived(int index, Rung rung, mem::Pages pages);
  double buffered_seconds() const noexcept;

  // Decode pipeline (MediaCodec thread).
  void decode_next();
  void decode_current_frame(const Segment& segment, sim::Time deadline, sim::Time pts);
  void ensure_decoder_pool(const Rung& rung, std::function<void()> next);
  void advance_frame();

  // In-process compositor stage (decode -> compositor -> SurfaceFlinger).
  void enqueue_compose(sim::Time deadline, sim::Time pts, const Rung& rung);
  void comp_pump();
  // Presentation (SurfaceFlinger thread).
  void enqueue_present(sim::Time deadline, sim::Time pts, const Rung& rung);
  void sf_pump();

  void spawn_client_threads();
  void launch_stage(int stage);
  void begin_playback();
  void note_presented(sim::Time pts);
  void note_dropped(sim::Time pts);
  std::size_t media_second(sim::Time pts) const noexcept;
  void handle_crash();
  void account_kill_losses();
  void relaunch();
  /// True when no decoded frame is waiting in or occupying the
  /// compositor / SurfaceFlinger stages.
  bool pipeline_idle() const noexcept;
  /// Finish playout once downloads are done, the buffer is drained AND
  /// the present pipeline is idle — finishing with a frame still in
  /// flight would forfeit it when the driver tears the client down,
  /// breaking frame conservation by one.
  void maybe_finish_playout();
  void finish();
  /// Flat-event trampoline for the download watchdog (ctx in watchdog_ctx_).
  static void on_watchdog(void* ctx, std::uint64_t);
  void sample_pss();
  void ui_tick();
  AbrContext make_context() const;

  bool alive() const noexcept;
  /// True while `epoch` is the current session incarnation. Every async
  /// callback captures the epoch at issue time; a kill bumps it, making
  /// all outstanding callbacks of the dead incarnation inert so they
  /// cannot corrupt the relaunched one.
  bool epoch_ok(int epoch) const noexcept { return epoch == epoch_; }

  sim::Engine& engine_;
  sched::Scheduler& scheduler_;
  mem::MemoryManager& memory_;
  net::Link& link_;
  trace::Tracer& tracer_;
  SessionConfig config_;
  std::unique_ptr<AbrPolicy> fallback_abr_;
  AbrPolicy* abr_ = nullptr;
  stats::Rng rng_;

  mem::ProcessId pid_ = 0;
  trace::ThreadId pl_tid_ = 0;
  trace::ThreadId mc_tid_ = 0;
  trace::ThreadId comp_tid_ = 0;
  trace::ThreadId sf_tid_ = 0;

  int total_segments_ = 0;
  int next_segment_ = 0;
  bool downloading_ = false;
  bool downloads_done_ = false;
  std::deque<Segment> buffer_;
  sim::Time buffered_media_end_ = 0;  // pts of last buffered media
  sim::Time next_segment_pts_ = 0;
  net::TransferId active_transfer_ = net::kInvalidTransfer;
  sim::EventId watchdog_event_ = sim::kInvalidEvent;
  /// Context for the (single) pending download watchdog, scheduled as a
  /// flat engine event instead of a per-segment closure.
  struct WatchdogCtx {
    int epoch = 0;
    net::TransferId xfer = net::kInvalidTransfer;
    int index = 0;
    Rung rung{};
    std::uint64_t bytes = 0;
    int attempt = 0;
  };
  WatchdogCtx watchdog_ctx_{};

  int epoch_ = 0;
  /// Wall time of pts_origin_'s presentation deadline; a frame at `pts`
  /// is due at playback_base_ + (pts - pts_origin_). Re-derived per
  /// incarnation so a relaunch resumes with achievable deadlines.
  sim::Time playback_base_ = 0;
  sim::Time pts_origin_ = 0;
  int resume_segment_ = 0;
  sim::Time pending_kill_time_ = -1;

  bool playback_started_ = false;
  bool waiting_for_segment_ = false;
  int frame_in_segment_ = 0;
  Rung current_rung_;
  Rung pool_rung_;
  mem::Pages pool_pages_ = 0;
  sim::Time last_touch_ = 0;
  double throughput_estimate_mbps_ = 0.0;

  std::deque<PresentItem> compose_queue_;
  bool comp_busy_ = false;
  std::deque<PresentItem> present_queue_;
  bool sf_busy_ = false;

  bool started_ = false;
  bool finished_ = false;
  bool crashed_ = false;
  SessionMetrics metrics_;
  std::function<void()> on_finished_;
  std::unique_ptr<sim::PeriodicTask> pss_sampler_;
  std::unique_ptr<sim::PeriodicTask> ui_task_;
};

}  // namespace mvqoe::video
