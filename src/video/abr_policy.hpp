// ABR policy interface and concrete policies. The session consults the
// policy before every segment download; the context deliberately
// includes *both* the network-side signals classic ABR uses (buffer,
// throughput) and the device-side signals the paper argues for (§6/§7):
// the current onTrimMemory pressure level and the recently observed
// frame-drop rate.
//
// The network-driven baselines (rate-based, buffer-based/BBA, BOLA) are
// the algorithms the paper cites as the state of practice that is blind
// to device bottlenecks (§1, §7: adaptation "traditionally focused on
// network bottlenecks"). MemoryAwareAbr is the paper's proposal made
// concrete (§6/§7): it wraps any network policy and additionally adapts
// the *frame rate* and resolution from onTrimMemory pressure signals and
// the observed frame-drop rate — reproducing the Fig 16/17 result that
// dropping 60 -> 24 FPS restores smooth playback under pressure.
#pragma once

#include <memory>
#include <string>

#include "mem/types.hpp"
#include "video/ladder.hpp"

namespace mvqoe::video {

struct AbrContext {
  /// Media seconds currently buffered ahead of the playhead.
  double buffer_seconds = 0.0;
  /// Smoothed download throughput estimate.
  double throughput_mbps = 0.0;
  Rung current;
  const BitrateLadder* ladder = nullptr;
  /// Device memory-pressure level at decision time (onTrimMemory).
  mem::PressureLevel pressure = mem::PressureLevel::Normal;
  /// Frame-drop fraction over the recent window (~5 s).
  double recent_drop_rate = 0.0;
  int segment_index = 0;
};

class AbrPolicy {
 public:
  virtual ~AbrPolicy() = default;
  virtual Rung choose(const AbrContext& context) = 0;
  virtual std::string name() const = 0;
};

/// Plays one rung for the whole session — the paper's controlled sweeps.
class FixedAbr final : public AbrPolicy {
 public:
  explicit FixedAbr(Rung rung) : rung_(rung) {}
  Rung choose(const AbrContext&) override { return rung_; }
  std::string name() const override { return "fixed(" + rung_.label() + ")"; }

 private:
  Rung rung_;
};

/// Scripted rung schedule keyed by segment index — used to regenerate the
/// §6 frame-rate switching timelines (Figs 16/17).
class ScheduledAbr final : public AbrPolicy {
 public:
  /// `schedule` maps a segment index to the rung to use from that segment
  /// on; must be sorted by segment index ascending.
  struct Step {
    int from_segment = 0;
    Rung rung;
  };
  explicit ScheduledAbr(std::vector<Step> schedule) : schedule_(std::move(schedule)) {}

  Rung choose(const AbrContext& context) override {
    Rung rung = schedule_.empty() ? context.current : schedule_.front().rung;
    for (const Step& step : schedule_) {
      if (context.segment_index >= step.from_segment) rung = step.rung;
    }
    return rung;
  }
  std::string name() const override { return "scheduled"; }

 private:
  std::vector<Step> schedule_;
};

/// Pick the highest rung whose bitrate fits a safety fraction of the
/// throughput estimate. Frame rate fixed at construction.
class RateBasedAbr final : public AbrPolicy {
 public:
  RateBasedAbr(int fps, double safety = 0.8) : fps_(fps), safety_(safety) {}
  Rung choose(const AbrContext& context) override;
  std::string name() const override { return "rate-based"; }

 private:
  int fps_;
  double safety_;
};

/// BBA-style buffer-based policy: map buffer occupancy linearly between a
/// reservoir and a cushion onto the rung ladder (Huang et al., SIGCOMM'14).
class BufferBasedAbr final : public AbrPolicy {
 public:
  BufferBasedAbr(int fps, double reservoir_s = 10.0, double cushion_s = 40.0)
      : fps_(fps), reservoir_s_(reservoir_s), cushion_s_(cushion_s) {}
  Rung choose(const AbrContext& context) override;
  std::string name() const override { return "buffer-based"; }

 private:
  int fps_;
  double reservoir_s_;
  double cushion_s_;
};

/// BOLA-BASIC (Spiteri et al., INFOCOM'16): maximize per-segment
/// (V * (utility + gamma_p) - buffer_level) / segment_size over rungs,
/// with ln-bitrate utilities.
class BolaAbr final : public AbrPolicy {
 public:
  BolaAbr(int fps, double buffer_target_s = 40.0);
  Rung choose(const AbrContext& context) override;
  std::string name() const override { return "bola"; }

 private:
  int fps_;
  double buffer_target_s_;
};

/// Memory-aware wrapper (the paper's §6/§7 proposal): delegate the
/// network decision to an inner policy, then clamp the result according
/// to the device's memory-pressure level with hysteresis, preferring
/// frame-rate reduction over resolution reduction (§6: "a video can
/// continue to be rendered at high resolution by decreasing the encoded
/// frame rate").
struct MemoryAwareConfig {
  /// Per-level caps (indexed by mem::PressureLevel): max fps and height.
  int max_fps[4] = {60, 48, 24, 24};
  int max_height[4] = {1440, 1080, 720, 480};
  /// If the recent drop rate exceeds this while any pressure is present,
  /// step the frame rate down one notch further.
  double drop_rate_trigger = 0.10;
  /// Segments to hold a cap after pressure clears (hysteresis).
  int hold_segments = 3;
};

class MemoryAwareAbr final : public AbrPolicy {
 public:
  /// `inner` may be null: then the policy holds the session's current
  /// rung as its network choice.
  MemoryAwareAbr(std::unique_ptr<AbrPolicy> inner, MemoryAwareConfig config = {});
  Rung choose(const AbrContext& context) override;
  std::string name() const override;

 private:
  std::unique_ptr<AbrPolicy> inner_;
  MemoryAwareConfig config_;
  int worst_recent_level_ = 0;
  int segments_since_pressure_ = 1 << 20;
};

/// Frame rates the ladder offers, descending, for stepping down.
int next_fps_down(const BitrateLadder& ladder, int fps);

}  // namespace mvqoe::video
