// ABR policy interface. The session consults the policy before every
// segment download; the context deliberately includes *both* the
// network-side signals classic ABR uses (buffer, throughput) and the
// device-side signals the paper argues for (§6/§7): the current
// onTrimMemory pressure level and the recently observed frame-drop rate.
// Concrete policies live in src/abr; the video module ships only the
// fixed-rung policy the controlled experiments (§4) use.
#pragma once

#include <string>

#include "mem/types.hpp"
#include "video/ladder.hpp"

namespace mvqoe::video {

struct AbrContext {
  /// Media seconds currently buffered ahead of the playhead.
  double buffer_seconds = 0.0;
  /// Smoothed download throughput estimate.
  double throughput_mbps = 0.0;
  Rung current;
  const BitrateLadder* ladder = nullptr;
  /// Device memory-pressure level at decision time (onTrimMemory).
  mem::PressureLevel pressure = mem::PressureLevel::Normal;
  /// Frame-drop fraction over the recent window (~5 s).
  double recent_drop_rate = 0.0;
  int segment_index = 0;
};

class AbrPolicy {
 public:
  virtual ~AbrPolicy() = default;
  virtual Rung choose(const AbrContext& context) = 0;
  virtual std::string name() const = 0;
};

/// Plays one rung for the whole session — the paper's controlled sweeps.
class FixedAbr final : public AbrPolicy {
 public:
  explicit FixedAbr(Rung rung) : rung_(rung) {}
  Rung choose(const AbrContext&) override { return rung_; }
  std::string name() const override { return "fixed(" + rung_.label() + ")"; }

 private:
  Rung rung_;
};

/// Scripted rung schedule keyed by segment index — used to regenerate the
/// §6 frame-rate switching timelines (Figs 16/17).
class ScheduledAbr final : public AbrPolicy {
 public:
  /// `schedule` maps a segment index to the rung to use from that segment
  /// on; must be sorted by segment index ascending.
  struct Step {
    int from_segment = 0;
    Rung rung;
  };
  explicit ScheduledAbr(std::vector<Step> schedule) : schedule_(std::move(schedule)) {}

  Rung choose(const AbrContext& context) override {
    Rung rung = schedule_.empty() ? context.current : schedule_.front().rung;
    for (const Step& step : schedule_) {
      if (context.segment_index >= step.from_segment) rung = step.rung;
    }
    return rung;
  }
  std::string name() const override { return "scheduled"; }

 private:
  std::vector<Step> schedule_;
};

}  // namespace mvqoe::video
