#include "video/asset.hpp"

namespace mvqoe::video {

const char* to_string(Genre genre) noexcept {
  switch (genre) {
    case Genre::Travel: return "travel";
    case Genre::Sports: return "sports";
    case Genre::Gaming: return "gaming";
    case Genre::News: return "news";
    case Genre::Nature: return "nature";
  }
  return "?";
}

VideoAsset dubai_flow_motion(int duration_s) {
  // High-motion time-lapse: dense detail, frequent full-frame change.
  return VideoAsset{"Dubai Flow Motion in 4K - A Rob Whitworth Film", Genre::Travel,
                    duration_s, 1.12, 0.18, 4};
}

std::vector<VideoAsset> genre_suite(int duration_s) {
  return {
      dubai_flow_motion(duration_s),
      {"Djokovic vs Shapovalov (4K 60FPS) Match Highlights", Genre::Sports, duration_s, 1.06,
       0.16, 4},
      {"NIGMA vs OG - TI Champions Game DPC EU", Genre::Gaming, duration_s, 1.00, 0.12, 4},
      {"Clarissa Ward presses Taliban fighter", Genre::News, duration_s, 0.88, 0.10, 4},
      {"Bali in 8k ULTRA HD HDR - Paradise of Asia", Genre::Nature, duration_s, 1.04, 0.14, 4},
  };
}

}  // namespace mvqoe::video
