#include "video/abr_policy.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace mvqoe::video {

namespace {

/// Rungs at a fixed fps, ascending by bitrate.
std::vector<Rung> fps_ladder(const BitrateLadder& ladder, int fps) {
  std::vector<Rung> rungs;
  for (const Rung& rung : ladder.rungs()) {
    if (rung.fps == fps) rungs.push_back(rung);
  }
  std::sort(rungs.begin(), rungs.end(),
            [](const Rung& a, const Rung& b) { return a.bitrate_kbps < b.bitrate_kbps; });
  return rungs;
}

}  // namespace

int next_fps_down(const BitrateLadder& ladder, int fps) {
  const std::vector<int> rates = ladder.frame_rates();  // ascending
  int best = rates.front();
  for (const int rate : rates) {
    if (rate < fps) best = rate;
  }
  return best;
}

Rung RateBasedAbr::choose(const AbrContext& context) {
  const auto rungs = fps_ladder(*context.ladder, fps_);
  Rung best = rungs.front();
  const double budget_kbps = context.throughput_mbps * 1000.0 * safety_;
  for (const Rung& rung : rungs) {
    if (context.throughput_mbps <= 0.0 || rung.bitrate_kbps <= budget_kbps) best = rung;
  }
  // With no estimate yet, start conservatively at the bottom rung — but
  // the loop above already selected the top in that case; reset:
  if (context.throughput_mbps <= 0.0) best = rungs.front();
  return best;
}

Rung BufferBasedAbr::choose(const AbrContext& context) {
  const auto rungs = fps_ladder(*context.ladder, fps_);
  if (context.buffer_seconds <= reservoir_s_) return rungs.front();
  if (context.buffer_seconds >= cushion_s_) return rungs.back();
  const double fraction =
      (context.buffer_seconds - reservoir_s_) / (cushion_s_ - reservoir_s_);
  const auto index = static_cast<std::size_t>(fraction * static_cast<double>(rungs.size() - 1));
  return rungs[std::min(index, rungs.size() - 1)];
}

BolaAbr::BolaAbr(int fps, double buffer_target_s)
    : fps_(fps), buffer_target_s_(buffer_target_s) {}

Rung BolaAbr::choose(const AbrContext& context) {
  const auto rungs = fps_ladder(*context.ladder, fps_);
  const double min_bitrate = rungs.front().bitrate_kbps;
  // BOLA-BASIC parameters: utilities u_m = ln(S_m / S_min); V and gamma_p
  // chosen so the top rung is selected at the buffer target and the
  // bottom rung at ~25% of it.
  const double u_max = std::log(static_cast<double>(rungs.back().bitrate_kbps) / min_bitrate);
  const double gamma_p = 5.0;
  const double V = buffer_target_s_ / (u_max + gamma_p);

  Rung best = rungs.front();
  double best_score = -1e18;
  for (const Rung& rung : rungs) {
    const double utility = std::log(static_cast<double>(rung.bitrate_kbps) / min_bitrate);
    const double score = (V * (utility + gamma_p) - context.buffer_seconds) /
                         static_cast<double>(rung.bitrate_kbps);
    if (score > best_score) {
      best_score = score;
      best = rung;
    }
  }
  return best;
}

MemoryAwareAbr::MemoryAwareAbr(std::unique_ptr<AbrPolicy> inner, MemoryAwareConfig config)
    : inner_(std::move(inner)), config_(config) {}

std::string MemoryAwareAbr::name() const {
  return "memory-aware(" + (inner_ != nullptr ? inner_->name() : std::string("hold")) + ")";
}

Rung MemoryAwareAbr::choose(const AbrContext& context) {
  Rung network_choice = inner_ != nullptr ? inner_->choose(context) : context.current;

  const int level = static_cast<int>(context.pressure);
  if (level > 0) {
    // Track the worst level seen recently; decay only after hold_segments
    // of calm (trim signals are bursty — §3 Fig 6 shows pressure states
    // persist and recur, so reacting to the instantaneous level thrashes).
    worst_recent_level_ = std::max(worst_recent_level_, level);
    segments_since_pressure_ = 0;
  } else {
    ++segments_since_pressure_;
    if (segments_since_pressure_ > config_.hold_segments && worst_recent_level_ > 0) {
      --worst_recent_level_;
      segments_since_pressure_ = 0;
    }
  }

  const int effective = worst_recent_level_;
  int max_fps = config_.max_fps[effective];
  int max_height = config_.max_height[effective];
  if (effective > 0 && context.recent_drop_rate > config_.drop_rate_trigger) {
    // Still dropping frames under the current cap: trade frame rate first.
    max_fps = next_fps_down(*context.ladder, max_fps);
  }

  if (network_choice.fps <= max_fps && network_choice.resolution.height <= max_height) {
    return network_choice;
  }
  const auto capped = context.ladder->best_under(
      std::min(max_height, network_choice.resolution.height),
      std::min(max_fps, network_choice.fps));
  return capped.value_or(network_choice);
}

}  // namespace mvqoe::video
