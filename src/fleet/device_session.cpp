#include "fleet/device_session.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "net/link.hpp"
#include "proc/app_catalog.hpp"
#include "runner/ipc.hpp"
#include "stats/rng.hpp"
#include "study/population.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define MVQOE_FLEET_FORK 1
#else
#define MVQOE_FLEET_FORK 0
#endif

namespace mvqoe::fleet {

void encode_observations(snapshot::ByteWriter& w, const DeviceObservations& obs) {
  w.u32(obs.family);
  w.u32(obs.cohort);
  for (const std::uint64_t s : obs.signals) w.u64(s);
  for (const std::uint32_t s : obs.seconds_in_level) w.u32(s);
  for (const auto& row : obs.transitions) {
    for (const std::uint32_t t : row) w.u32(t);
  }
  w.u32(static_cast<std::uint32_t>(obs.dwell.size()));
  for (const auto& [from, seconds] : obs.dwell) {
    w.u8(from);
    w.f64(seconds);
  }
  w.u32(static_cast<std::uint32_t>(obs.util_samples.size()));
  for (const double u : obs.util_samples) w.f64(u);
  w.u32(static_cast<std::uint32_t>(obs.avail_samples.size()));
  for (const auto& [level, mb] : obs.avail_samples) {
    w.u8(level);
    w.f64(mb);
  }
}

DeviceObservations decode_observations(snapshot::ByteReader& r) {
  DeviceObservations obs;
  obs.family = r.u32();
  obs.cohort = r.u32();
  for (std::uint64_t& s : obs.signals) s = r.u64();
  for (std::uint32_t& s : obs.seconds_in_level) s = r.u32();
  for (auto& row : obs.transitions) {
    for (std::uint32_t& t : row) t = r.u32();
  }
  const std::uint32_t dwell_count = r.u32();
  obs.dwell.reserve(dwell_count);
  for (std::uint32_t i = 0; i < dwell_count; ++i) {
    const std::uint8_t from = r.u8();
    if (from >= kLevels) throw std::runtime_error("fleet: dwell level byte out of range");
    const double seconds = r.f64();
    obs.dwell.emplace_back(from, seconds);
  }
  const std::uint32_t util_count = r.u32();
  obs.util_samples.reserve(util_count);
  for (std::uint32_t i = 0; i < util_count; ++i) obs.util_samples.push_back(r.f64());
  const std::uint32_t avail_count = r.u32();
  obs.avail_samples.reserve(avail_count);
  for (std::uint32_t i = 0; i < avail_count; ++i) {
    const std::uint8_t level = r.u8();
    if (level >= kLevels) throw std::runtime_error("fleet: avail level byte out of range");
    const double mb = r.f64();
    obs.avail_samples.emplace_back(level, mb);
  }
  return obs;
}

FleetWorld::FleetWorld(const core::DeviceProfile& profile, const mem::MemPolicySpec& mem_policy)
    : engine(), memory(engine, profile.memory, mem_policy), am(memory) {}

namespace {

/// Streaming apps the fleet usage model can foreground; same footprints
/// as the study's media set (study/device_sim) so fleet pressure
/// dynamics stay comparable to the §3 results.
const std::vector<proc::AppSpec>& media_apps() {
  using mem::pages_from_mb;
  static const std::vector<proc::AppSpec> apps = {
      {"com.youtube", pages_from_mb(185), pages_from_mb(55), pages_from_mb(3), false},
      {"com.netflix", pages_from_mb(170), pages_from_mb(50), pages_from_mb(2), false},
      {"com.spotify.play", pages_from_mb(110), pages_from_mb(35), pages_from_mb(1) / 2, false},
  };
  return apps;
}

const study::FleetFamily& family_at(std::uint32_t family) {
  const auto& families = study::fleet_families();
  if (family >= families.size()) throw std::runtime_error("fleet: family index out of range");
  return families[family];
}

}  // namespace

void prepare_world(FleetWorld& world, std::uint32_t family, std::uint32_t cohort,
                   const FleetSpec& spec) {
  const study::FleetFamily& fam = family_at(family);
  const core::DeviceProfile profile = fam.profile();
  world.am.boot(profile.system_scale, profile.baseline_cached);
  world.am.enable_respawn(world.engine, profile.baseline_cached);

  stats::Rng rng(fleet_world_seed(spec.seed, family, cohort));
  const auto& pool = proc::top_free_apps();
  const int preload = cohort_preload_apps(cohort, fam.ram_mb);
  for (int i = 0; i < preload; ++i) {
    proc::AppSpec app = pool[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pool.size()) - 1))];
    app.name += ".preload" + std::to_string(i);
    world.am.add_cached(app);
  }
  world.engine.run_until(world.engine.now() + sim::sec(spec.warmup_s));
}

DeviceObservations drive_session(FleetWorld& world, const FleetDevice& device,
                                 const FleetSpec& spec) {
  DeviceObservations obs;
  obs.family = device.family;
  obs.cohort = device.cohort;

  sim::Engine& engine = world.engine;
  mem::MemoryManager& memory = world.memory;
  proc::ActivityManager& am = world.am;

  stats::Rng rng(device.session_seed);
  memory.subscribe_trim([&obs](mem::PressureLevel level) {
    ++obs.signals[static_cast<std::size_t>(level)];
  });

  std::unordered_map<proc::ProcessId, proc::AppSpec> user_apps;
  std::vector<proc::ProcessId> open_order;

  const study::UserProfile& user = device.user;
  const double action_prob = user.app_switches_per_minute / 60.0;

  auto pick_app = [&]() -> proc::AppSpec {
    // Activity ratings weight the choice, video streaming first — the
    // same mix as the study's per-device usage model.
    const double video_w = static_cast<double>(user.rating_video);
    const double music_w = static_cast<double>(user.rating_music) * 0.5;
    const double game_w = static_cast<double>(user.rating_games) * 0.4;
    const double social_w = 4.0;
    const std::size_t kind = rng.weighted_index({video_w, music_w, game_w, social_w});
    switch (kind) {
      case 0: return media_apps()[static_cast<std::size_t>(rng.uniform_int(0, 1))];
      case 1: return media_apps()[2];
      case 2: {
        const auto& games = proc::game_apps();
        return games[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(games.size()) - 1))];
      }
      default: {
        const auto& apps = proc::top_free_apps();
        return apps[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(apps.size()) - 1))];
      }
    }
  };

  auto cleanup_dead = [&] {
    open_order.erase(std::remove_if(open_order.begin(), open_order.end(),
                                    [&](proc::ProcessId pid) {
                                      if (memory.registry().alive(pid)) return false;
                                      user_apps.erase(pid);
                                      return true;
                                    }),
                     open_order.end());
  };

  // Congestion-controlled network duty (--cc fleets): the device gets
  // its own bottleneck link and the foreground app's feed growth is
  // gated on the link actually delivering a feed chunk — a slow or
  // lossy network starves the growth that drives memory pressure. The
  // fifo default constructs no link and leaves the session bit-identical
  // to pre-cc fleets.
  std::unique_ptr<net::Link> link;
  net::TransferId net_fetch = net::kInvalidTransfer;
  bool net_fed = true;
  if (!spec.net.is_default()) {
    link = std::make_unique<net::Link>(engine, net::LinkConfig{}, spec.net);
    net_fed = false;
  }

  mem::PressureLevel previous_level = memory.level();
  sim::Time state_entered = engine.now();

  for (int second = 0; second < spec.session_s; ++second) {
    engine.run_until(engine.now() + sim::sec(1));
    cleanup_dead();

    if (rng.bernoulli(action_prob)) {
      const double action = rng.uniform();
      if (action < 0.45 || open_order.empty()) {
        const proc::AppSpec app = pick_app();
        const proc::ProcessId pid = am.launch(app);
        user_apps[pid] = app;
        open_order.push_back(pid);
      } else if (action < 0.85) {
        const auto index = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(open_order.size()) - 1));
        am.bring_to_foreground(open_order[index]);
      } else {
        am.close(open_order.front());
        user_apps.erase(open_order.front());
        open_order.erase(open_order.begin());
      }
      while (static_cast<int>(open_order.size()) > user.max_open_apps) {
        am.close(open_order.front());
        user_apps.erase(open_order.front());
        open_order.erase(open_order.begin());
      }
    }

    // Foreground app grows (feeds, buffers) — gated on the network
    // duty's chunk delivery when a congestion-controlled link is in play.
    const proc::ProcessId foreground = am.foreground();
    if (foreground != 0) {
      const auto it = user_apps.find(foreground);
      if (it != user_apps.end() && it->second.growth_pages_per_sec > 0) {
        if (link != nullptr) {
          if (net_fetch == net::kInvalidTransfer) {
            // One ~256 KiB feed chunk per growth appetite; its delivery
            // unlocks the next growth tick.
            net_fetch = link->transfer(256 * 1024, [&net_fetch, &net_fed](bool ok) {
              net_fetch = net::kInvalidTransfer;
              net_fed = ok;
            });
          }
          if (net_fed) {
            net_fed = false;
            memory.alloc_anon(foreground, it->second.growth_pages_per_sec, 0, nullptr);
          }
        } else {
          memory.alloc_anon(foreground, it->second.growth_pages_per_sec, 0, nullptr);
        }
      }
    }

    // Level dwell/transitions every second; heavyweight samples gated.
    const auto level = memory.level();
    const auto level_index = static_cast<std::size_t>(level);
    obs.seconds_in_level[level_index] += 1;
    if (level != previous_level) {
      const auto from = static_cast<std::size_t>(previous_level);
      obs.transitions[from][level_index] += 1;
      obs.dwell.emplace_back(static_cast<std::uint8_t>(from),
                             sim::to_seconds(engine.now() - state_entered));
      previous_level = level;
      state_entered = engine.now();
    }
    if (second % spec.sample_period_s == 0) {
      obs.util_samples.push_back(memory.utilization());
      obs.avail_samples.emplace_back(static_cast<std::uint8_t>(level),
                                     mem::mb_from_pages(memory.available_pages()));
    }
  }
  // The callback captures stack locals; make sure it can never fire
  // after this frame unwinds (the engine is done, but be explicit).
  if (link != nullptr && net_fetch != net::kInvalidTransfer) link->cancel(net_fetch);
  return obs;
}

namespace {

DeviceObservations run_device_cold(const FleetDevice& device, const FleetSpec& spec) {
  FleetWorld world(family_at(device.family).profile(), spec.mem_policy);
  prepare_world(world, device.family, device.cohort, spec);
  return drive_session(world, device, spec);
}

#if MVQOE_FLEET_FORK

/// Fork one CoW child per device of a prepared (family, cohort)
/// template. Children run sequentially — the fleet's parallelism axis
/// is shards, not devices — and a child that dies before reporting
/// fails the whole shard so the campaign retry machinery re-runs it.
DeviceObservations run_device_forked(FleetWorld& world, const FleetDevice& device,
                                     const FleetSpec& spec) {
  int fds[2];
  if (::pipe(fds) != 0) throw std::runtime_error("fleet: pipe() failed");
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw std::runtime_error("fleet: fork() failed");
  }
  if (pid == 0) {
    ::close(fds[0]);
    snapshot::ByteWriter w;
    encode_observations(w, drive_session(world, device, spec));
    runner::write_all(fds[1], w.view());
    ::close(fds[1]);
    ::_exit(0);  // no destructors/atexit — the child is a throwaway world
  }
  ::close(fds[1]);
  const std::string payload = runner::read_all(fds[0]);
  ::close(fds[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0 || payload.empty()) {
    throw std::runtime_error("fleet: warm-start child died before reporting device " +
                             std::to_string(device.index));
  }
  snapshot::ByteReader r(payload);
  DeviceObservations obs = decode_observations(r);
  if (!r.done()) throw std::runtime_error("fleet: trailing bytes after device observations");
  return obs;
}

#endif  // MVQOE_FLEET_FORK

}  // namespace

std::vector<DeviceObservations> run_shard_observations(const FleetSpec& spec, std::uint64_t unit,
                                                       bool warm) {
  const std::uint64_t first = unit * spec.shard_size;
  if (first >= spec.devices) throw std::invalid_argument("fleet: unit past the fleet");
  const std::uint64_t last = std::min(first + spec.shard_size, spec.devices);

  std::vector<FleetDevice> devices;
  devices.reserve(static_cast<std::size_t>(last - first));
  for (std::uint64_t d = first; d < last; ++d) {
    devices.push_back(sample_fleet_device(d, spec.seed));
  }

  std::vector<DeviceObservations> observations(devices.size());
#if MVQOE_FLEET_FORK
  if (warm && runner::fork_supported()) {
    // One prepared template per (family, cohort) present in the shard;
    // devices grouped under it, each forked CoW. Results land in slot
    // [device - first] so the fold order stays ascending-device no
    // matter how the groups interleave.
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < devices.size(); ++i) {
      groups[{devices[i].family, devices[i].cohort}].push_back(i);
    }
    for (const auto& [key, slots] : groups) {
      FleetWorld world(family_at(key.first).profile(), spec.mem_policy);
      prepare_world(world, key.first, key.second, spec);
      for (const std::size_t slot : slots) {
        observations[slot] = run_device_forked(world, devices[slot], spec);
      }
    }
    return observations;
  }
#endif
  (void)warm;
  for (std::size_t i = 0; i < devices.size(); ++i) {
    observations[i] = run_device_cold(devices[i], spec);
  }
  return observations;
}

}  // namespace mvqoe::fleet
