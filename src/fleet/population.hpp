// Fleet population sampling (DESIGN.md §15).
//
// Where the §3 field study samples per-device *hardware* (every
// StudyDevice is a unique world), a fleet device is drawn from a small
// catalog of pinned device families × organic-preload cohorts, so that
// one prepared world template per (family, cohort) can serve — and, in
// warm mode, be CoW-forked for — millions of devices. Usage behaviour
// (survey ratings, switch rate, multitasking cap) is still sampled per
// device with the study's distributions, so the population marginals
// match the paper's.
//
// Every function here is a pure function of (index, seed): shards can
// sample any slice of a 10^6-device population without materialising
// the rest, and a resumed shard resamples its devices bit-identically.
#pragma once

#include <cstdint>

#include "study/population.hpp"

namespace mvqoe::fleet {

/// Organic-preload cohorts: how crowded the device's cached-app LRU is
/// before the session starts (0 = light, 1 = typical, 2 = heavy).
inline constexpr std::uint32_t kCohorts = 3;

struct FleetDevice {
  std::uint64_t index = 0;
  /// Index into study::fleet_families().
  std::uint32_t family = 0;
  /// Organic preload cohort, < kCohorts.
  std::uint32_t cohort = 0;
  study::UserProfile user;
  /// Seed for the device's session stream (user actions, app choices).
  std::uint64_t session_seed = 0;
};

/// Sample device `index` of the fleet population (pure in (index, seed)).
FleetDevice sample_fleet_device(std::uint64_t index, std::uint64_t seed);

/// Extra cached apps preloaded into a cohort's world template on top of
/// the family's baseline: 0 / 3 / 6 for light / typical / heavy usage,
/// capped at what the tier's RAM can physically retain (2 per GB) — a
/// 1 GB device never *holds* six preloaded apps, lmkd would already
/// have evicted them before the session started.
int cohort_preload_apps(std::uint32_t cohort, std::int64_t ram_mb) noexcept;

/// World-template stream for a (family, cohort) pair — disjoint from
/// every device stream by construction (bit 32 set).
std::uint64_t fleet_world_seed(std::uint64_t seed, std::uint32_t family,
                               std::uint32_t cohort) noexcept;

}  // namespace mvqoe::fleet
