#include "fleet/population.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/rng.hpp"

namespace mvqoe::fleet {

namespace {

/// Same rating distribution as the study generator: mass concentrated
/// around the mode, clamped to the 1-5 survey scale.
int draw_rating(stats::Rng& rng, int mode) {
  const double value = rng.normal(static_cast<double>(mode), 1.1);
  return static_cast<int>(std::clamp(std::lround(value), 1L, 5L));
}

const std::vector<double>& family_weights() {
  static const std::vector<double> weights = [] {
    std::vector<double> w;
    for (const study::FleetFamily& family : study::fleet_families()) w.push_back(family.weight);
    return w;
  }();
  return weights;
}

}  // namespace

FleetDevice sample_fleet_device(std::uint64_t index, std::uint64_t seed) {
  // Stream 2d samples the device, stream 2d+1 drives its session; the
  // two never collide with each other or with world streams (bit 32).
  stats::Rng rng(stats::derive_seed(seed, index * 2));
  FleetDevice device;
  device.index = index;
  device.session_seed = stats::derive_seed(seed, index * 2 + 1);
  device.family = static_cast<std::uint32_t>(rng.weighted_index(family_weights()));
  device.cohort = static_cast<std::uint32_t>(rng.uniform_int(0, kCohorts - 1));

  study::UserProfile& user = device.user;
  // Fig 1 marginals: video streaming most frequent, then music, games.
  user.rating_video = draw_rating(rng, 4);
  user.rating_music = draw_rating(rng, 3);
  user.rating_games = draw_rating(rng, 2);
  user.rating_multitask_1 = draw_rating(rng, 4);
  user.rating_multitask_2 = draw_rating(rng, 3);
  user.app_switches_per_minute = rng.uniform(0.5, 2.0);
  user.max_open_apps = 2 + user.rating_multitask_2;
  return device;
}

int cohort_preload_apps(std::uint32_t cohort, std::int64_t ram_mb) noexcept {
  const int retainable = static_cast<int>(std::max<std::int64_t>(2, ram_mb / 512));
  return std::min(static_cast<int>(cohort) * 3, retainable);
}

std::uint64_t fleet_world_seed(std::uint64_t seed, std::uint32_t family,
                               std::uint32_t cohort) noexcept {
  return stats::derive_seed(seed, (1ULL << 32) | (static_cast<std::uint64_t>(family) * 16 +
                                                  cohort));
}

}  // namespace mvqoe::fleet
