#include "fleet/aggregate.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "runner/json_writer.hpp"
#include "snapshot/digest.hpp"

namespace mvqoe::fleet {

namespace {

constexpr std::uint32_t kAggregateVersion = 1;
const char* const kLevelNames[kLevels] = {"normal", "moderate", "low", "critical"};

stats::Histogram track_histogram(double lo, double hi, std::size_t bins) {
  return stats::Histogram(lo, hi, bins, stats::Overflow::Track);
}

void encode_histogram(snapshot::ByteWriter& w, const stats::Histogram& h) {
  w.f64(h.low());
  w.f64(h.high());
  w.u8(static_cast<std::uint8_t>(h.policy()));
  w.u32(static_cast<std::uint32_t>(h.bin_count()));
  for (std::size_t b = 0; b < h.bin_count(); ++b) w.u64(h.count(b));
  w.u64(h.below());
  w.u64(h.above());
}

stats::Histogram decode_histogram(snapshot::ByteReader& r) {
  const double lo = r.f64();
  const double hi = r.f64();
  const std::uint8_t policy = r.u8();
  if (policy > static_cast<std::uint8_t>(stats::Overflow::Track)) {
    throw std::runtime_error("fleet: histogram overflow-policy byte out of range");
  }
  const std::uint32_t bins = r.u32();
  stats::Histogram h(lo, hi, bins, static_cast<stats::Overflow>(policy));
  for (std::uint32_t b = 0; b < bins; ++b) {
    const std::uint64_t count = r.u64();
    if (count > 0) h.add_count(b, static_cast<std::size_t>(count));
  }
  const std::uint64_t below = r.u64();
  const std::uint64_t above = r.u64();
  if (below > 0 || above > 0) {
    h.add_overflow(static_cast<std::size_t>(below), static_cast<std::size_t>(above));
  }
  return h;
}

void encode_sketch(snapshot::ByteWriter& w, const stats::QuantileSketch& s) {
  const stats::QuantileSketch::State state = s.save_state();
  w.u64(state.k);
  w.u64(state.n);
  w.f64(state.min);
  w.f64(state.max);
  w.u32(static_cast<std::uint32_t>(state.levels.size()));
  for (std::size_t l = 0; l < state.levels.size(); ++l) {
    w.u8(state.parity[l]);
    w.u32(static_cast<std::uint32_t>(state.levels[l].size()));
    for (const double v : state.levels[l]) w.f64(v);
  }
}

stats::QuantileSketch decode_sketch(snapshot::ByteReader& r) {
  stats::QuantileSketch::State state;
  state.k = static_cast<std::size_t>(r.u64());
  state.n = r.u64();
  state.min = r.f64();
  state.max = r.f64();
  const std::uint32_t level_count = r.u32();
  state.parity.resize(level_count);
  state.levels.resize(level_count);
  for (std::uint32_t l = 0; l < level_count; ++l) {
    state.parity[l] = r.u8();
    const std::uint32_t count = r.u32();
    state.levels[l].reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) state.levels[l].push_back(r.f64());
  }
  stats::QuantileSketch sketch;
  sketch.restore_state(state);
  return sketch;
}

void encode_accumulator(snapshot::ByteWriter& w, const stats::Accumulator& a) {
  const stats::Accumulator::State state = a.save_state();
  w.u64(state.n);
  w.f64(state.mean);
  w.f64(state.m2);
  w.f64(state.min);
  w.f64(state.max);
}

stats::Accumulator decode_accumulator(snapshot::ByteReader& r) {
  stats::Accumulator::State state;
  state.n = static_cast<std::size_t>(r.u64());
  state.mean = r.f64();
  state.m2 = r.f64();
  state.min = r.f64();
  state.max = r.f64();
  stats::Accumulator acc;
  acc.restore_state(state);
  return acc;
}

}  // namespace

FleetAggregate::FleetAggregate()
    : utilization(track_histogram(0.0, 1.0, 100)),
      signals_per_hour(track_histogram(0.0, 600.0, 120)),
      not_normal_fraction(track_histogram(0.0, 1.0, 50)),
      available_mb{track_histogram(0.0, 8192.0, 128), track_histogram(0.0, 8192.0, 128),
                   track_histogram(0.0, 8192.0, 128), track_histogram(0.0, 8192.0, 128)} {}

void FleetAggregate::fold(const DeviceObservations& obs, const FleetSpec& spec) {
  ++device_count;
  session_seconds += static_cast<std::uint64_t>(spec.session_s);
  for (std::size_t l = 0; l < kLevels; ++l) {
    signals[l] += obs.signals[l];
    seconds_in_level[l] += obs.seconds_in_level[l];
    for (std::size_t t = 0; t < kLevels; ++t) transitions[l][t] += obs.transitions[l][t];
  }
  for (const auto& [from, seconds] : obs.dwell) dwell[from].add(seconds);
  for (const double u : obs.util_samples) {
    utilization.add(u);
    utilization_quantiles.add(u);
  }
  for (const auto& [level, mb] : obs.avail_samples) {
    available_mb[level].add(mb);
    available_acc[level].add(mb);
  }
  const double hours = static_cast<double>(spec.session_s) / 3600.0;
  const double rate =
      static_cast<double>(obs.signals[1] + obs.signals[2] + obs.signals[3]) / hours;
  signals_per_hour.add(rate);
  signals_rate.add(rate);
  const double not_normal =
      1.0 - static_cast<double>(obs.seconds_in_level[0]) / static_cast<double>(spec.session_s);
  not_normal_fraction.add(not_normal);
}

void FleetAggregate::merge(const FleetAggregate& other) {
  device_count += other.device_count;
  session_seconds += other.session_seconds;
  for (std::size_t l = 0; l < kLevels; ++l) {
    signals[l] += other.signals[l];
    seconds_in_level[l] += other.seconds_in_level[l];
    for (std::size_t t = 0; t < kLevels; ++t) transitions[l][t] += other.transitions[l][t];
    available_mb[l].merge(other.available_mb[l]);
    available_acc[l].merge(other.available_acc[l]);
    dwell[l].merge(other.dwell[l]);
  }
  utilization.merge(other.utilization);
  utilization_quantiles.merge(other.utilization_quantiles);
  signals_per_hour.merge(other.signals_per_hour);
  signals_rate.merge(other.signals_rate);
  not_normal_fraction.merge(other.not_normal_fraction);
}

void FleetAggregate::save(snapshot::ByteWriter& w) const {
  w.u32(kAggregateVersion);
  w.u64(device_count);
  w.u64(session_seconds);
  for (const std::uint64_t s : signals) w.u64(s);
  for (const std::uint64_t s : seconds_in_level) w.u64(s);
  for (const auto& row : transitions) {
    for (const std::uint64_t t : row) w.u64(t);
  }
  encode_histogram(w, utilization);
  encode_sketch(w, utilization_quantiles);
  encode_histogram(w, signals_per_hour);
  encode_accumulator(w, signals_rate);
  encode_histogram(w, not_normal_fraction);
  for (const stats::Histogram& h : available_mb) encode_histogram(w, h);
  for (const stats::Accumulator& a : available_acc) encode_accumulator(w, a);
  for (const stats::QuantileSketch& s : dwell) encode_sketch(w, s);
}

FleetAggregate FleetAggregate::load(snapshot::ByteReader& r) {
  const std::uint32_t version = r.u32();
  if (version != kAggregateVersion) {
    throw std::runtime_error("fleet: unsupported aggregate version " + std::to_string(version));
  }
  FleetAggregate a;
  a.device_count = r.u64();
  a.session_seconds = r.u64();
  for (std::uint64_t& s : a.signals) s = r.u64();
  for (std::uint64_t& s : a.seconds_in_level) s = r.u64();
  for (auto& row : a.transitions) {
    for (std::uint64_t& t : row) t = r.u64();
  }
  a.utilization = decode_histogram(r);
  a.utilization_quantiles = decode_sketch(r);
  a.signals_per_hour = decode_histogram(r);
  a.signals_rate = decode_accumulator(r);
  a.not_normal_fraction = decode_histogram(r);
  for (stats::Histogram& h : a.available_mb) h = decode_histogram(r);
  for (stats::Accumulator& acc : a.available_acc) acc = decode_accumulator(r);
  for (stats::QuantileSketch& s : a.dwell) s = decode_sketch(r);
  return a;
}

std::string FleetAggregate::encode() const {
  snapshot::ByteWriter w;
  save(w);
  return std::move(w).take();
}

FleetAggregate FleetAggregate::decode(std::string_view bytes) {
  snapshot::ByteReader r(bytes);
  FleetAggregate a = load(r);
  if (!r.done()) throw std::runtime_error("fleet: trailing bytes after the fleet aggregate");
  return a;
}

std::uint64_t FleetAggregate::digest() const { return snapshot::digest_bytes(encode()); }

void FleetAggregate::save_section(snapshot::Snapshot& blob) const {
  blob.put(kFleetTag, encode());
}

FleetAggregate FleetAggregate::load_section(const snapshot::Snapshot& blob) {
  return decode(blob.require(kFleetTag));
}

snapshot::Snapshot save_fleet_blob(const FleetSpec& spec, const FleetAggregate& aggregate) {
  snapshot::Snapshot blob;
  blob.put(kFleetConfigTag, encode_fleet_config(spec));
  aggregate.save_section(blob);
  return blob;
}

std::pair<FleetSpec, FleetAggregate> load_fleet_blob(const snapshot::Snapshot& blob) {
  return {decode_fleet_config(std::string(blob.require(kFleetConfigTag))),
          FleetAggregate::load_section(blob)};
}

namespace {

void quantile_field(runner::JsonWriter& w, const stats::QuantileSketch& s, const char* name,
                    double q) {
  w.key(name);
  if (s.empty()) {
    w.null();
  } else {
    w.value(s.quantile(q));
  }
}

void write_accumulator(runner::JsonWriter& w, const stats::Accumulator& a) {
  w.begin_object()
      .field("n", static_cast<std::uint64_t>(a.count()))
      .field("mean", a.mean())
      .field("stddev", a.stddev())
      .field("min", a.min())
      .field("max", a.max())
      .end_object();
}

}  // namespace

std::string fleet_report_json(const FleetSpec& spec, const FleetAggregate& a) {
  runner::JsonWriter w;
  w.begin_object()
      .field("bench", "fleet")
      .field("devices", a.device_count)
      .field("session_s", spec.session_s)
      .field("sample_period_s", spec.sample_period_s)
      .field("warmup_s", spec.warmup_s)
      .field("shard_size", spec.shard_size)
      .field("seed", spec.seed);
  char digest_hex[24];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(a.digest()));
  w.field("aggregate_digest", digest_hex);

  w.key("fig2_utilization").begin_object();
  w.key("histogram");
  runner::write_histogram(w, a.utilization);
  w.key("quantiles").begin_object();
  quantile_field(w, a.utilization_quantiles, "p10", 0.10);
  quantile_field(w, a.utilization_quantiles, "p25", 0.25);
  quantile_field(w, a.utilization_quantiles, "p50", 0.50);
  quantile_field(w, a.utilization_quantiles, "p75", 0.75);
  quantile_field(w, a.utilization_quantiles, "p90", 0.90);
  quantile_field(w, a.utilization_quantiles, "p99", 0.99);
  w.end_object().end_object();

  w.key("fig3_signals_per_hour").begin_object();
  w.key("histogram");
  runner::write_histogram(w, a.signals_per_hour);
  w.key("per_device_rate");
  write_accumulator(w, a.signals_rate);
  w.end_object();

  w.key("fig4_time_in_states").begin_object();
  w.key("fraction_in_level").begin_array();
  for (std::size_t l = 0; l < kLevels; ++l) {
    w.value(a.session_seconds == 0 ? 0.0
                                   : static_cast<double>(a.seconds_in_level[l]) /
                                         static_cast<double>(a.session_seconds));
  }
  w.end_array();
  w.key("per_device_not_normal");
  runner::write_histogram(w, a.not_normal_fraction);
  w.end_object();

  w.key("fig5_available_mb").begin_array();
  for (std::size_t l = 0; l < kLevels; ++l) {
    w.begin_object().field("level", kLevelNames[l]);
    w.key("histogram");
    runner::write_histogram(w, a.available_mb[l]);
    w.key("summary");
    write_accumulator(w, a.available_acc[l]);
    w.end_object();
  }
  w.end_array();

  w.key("fig6_dwell").begin_object();
  w.key("transitions").begin_array();
  for (const auto& row : a.transitions) {
    w.begin_array();
    for (const std::uint64_t t : row) w.value(t);
    w.end_array();
  }
  w.end_array();
  w.key("dwell_s").begin_array();
  for (std::size_t l = 0; l < kLevels; ++l) {
    w.begin_object()
        .field("level", kLevelNames[l])
        .field("n", a.dwell[l].count());
    quantile_field(w, a.dwell[l], "p25", 0.25);
    quantile_field(w, a.dwell[l], "p50", 0.50);
    quantile_field(w, a.dwell[l], "p75", 0.75);
    quantile_field(w, a.dwell[l], "p90", 0.90);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("signals").begin_array();
  for (const std::uint64_t s : a.signals) w.value(s);
  w.end_array();
  w.field("total_session_hours", static_cast<double>(a.session_seconds) / 3600.0);
  w.end_object();
  return w.str();
}

}  // namespace mvqoe::fleet
