// Fleet campaign specification (DESIGN.md §15).
//
// A fleet run drives `devices` independent device-sessions and reduces
// them into one streaming FleetAggregate. The spec holds only the
// result-defining parameters: everything here is covered by the config
// fingerprint, so a checkpoint can never silently resume under a
// different population. Execution knobs (--jobs/--procs/warm-vs-cold)
// live in fleet::FleetRunOptions instead — like the sweep campaign's
// group_workers, they may change across resumes without changing a
// single output byte.
#pragma once

#include <cstdint>
#include <string>

#include "mem/policy.hpp"
#include "net/cc.hpp"

namespace mvqoe::fleet {

struct FleetSpec {
  /// Device-sessions to simulate.
  std::uint64_t devices = 1000;
  /// Root seed; device d's sampling/session streams are
  /// derive_seed(seed, 2d) / derive_seed(seed, 2d+1), world templates
  /// use derive_seed(seed, (1<<32) | family*16 + cohort).
  std::uint64_t seed = 7;
  /// Interactive seconds simulated per device-session.
  int session_s = 60;
  /// Heavyweight signal sampling (utilization, available MB) happens
  /// every this many sim-seconds; level dwell/transitions are still
  /// tracked every second.
  int sample_period_s = 5;
  /// Sim-seconds the prepared world template idles after boot +
  /// cohort preload, before any session starts.
  int warmup_s = 10;
  /// Devices per campaign unit — the granularity of parallelism,
  /// checkpointing and crash retry. Peak memory is O(shard), never
  /// O(fleet).
  std::uint64_t shard_size = 256;
  /// Memory reclaim/kill policy every device in the fleet runs.
  /// Baseline (the default) encodes to nothing, so historical
  /// checkpoint fingerprints are unchanged.
  mem::MemPolicySpec mem_policy;
  /// Link congestion controller every device-session runs. The fifo
  /// default likewise encodes to nothing (and skips the network phase
  /// entirely, keeping pre-cc fleets bit-identical).
  net::NetSpec net;
};

/// Campaign units: ceil(devices / shard_size). Unit u covers device
/// indices [u*shard_size, min((u+1)*shard_size, devices)).
std::uint64_t fleet_total_units(const FleetSpec& spec);

/// Canonical wire encoding (campaign checkpoint config), its inverse,
/// and the resume-guard fingerprint. Throws on malformed bytes.
std::string encode_fleet_config(const FleetSpec& spec);
FleetSpec decode_fleet_config(const std::string& bytes);
std::uint64_t fleet_config_fingerprint(const FleetSpec& spec);

/// Read a campaign checkpoint and reconstruct the fleet spec it was
/// recorded under (--resume without re-specifying the fleet).
FleetSpec load_fleet_resume_spec(const std::string& path);

}  // namespace mvqoe::fleet
