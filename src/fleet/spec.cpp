#include "fleet/spec.hpp"

#include <stdexcept>
#include <utility>

#include "campaign/checkpoint.hpp"
#include "snapshot/bytes.hpp"
#include "snapshot/digest.hpp"

namespace mvqoe::fleet {

namespace {

void validate(const FleetSpec& spec) {
  if (spec.devices == 0) throw std::invalid_argument("fleet: devices must be >= 1");
  if (spec.session_s <= 0) throw std::invalid_argument("fleet: session seconds must be >= 1");
  if (spec.sample_period_s <= 0) {
    throw std::invalid_argument("fleet: sample period must be >= 1s");
  }
  if (spec.warmup_s < 0) throw std::invalid_argument("fleet: warmup must be >= 0s");
  if (spec.shard_size == 0) throw std::invalid_argument("fleet: shard size must be >= 1");
  mem::validate_policy_spec(spec.mem_policy);
  net::validate_net_spec(spec.net);
}

}  // namespace

std::uint64_t fleet_total_units(const FleetSpec& spec) {
  return (spec.devices + spec.shard_size - 1) / spec.shard_size;
}

std::string encode_fleet_config(const FleetSpec& spec) {
  snapshot::ByteWriter w;
  w.u32(1);  // config version
  w.u64(spec.devices);
  w.u64(spec.seed);
  w.i32(spec.session_s);
  w.i32(spec.sample_period_s);
  w.i32(spec.warmup_s);
  w.u64(spec.shard_size);
  // Optional tails (still config version 1), written only when
  // non-default so historical checkpoints keep their fingerprints; a
  // non-fifo net spec forces the policy spec out even at baseline.
  if (!spec.mem_policy.is_baseline() || !spec.net.is_default()) {
    mem::save_policy_spec(w, spec.mem_policy);
  }
  if (!spec.net.is_default()) net::save_net_spec(w, spec.net);
  return std::move(w).take();
}

FleetSpec decode_fleet_config(const std::string& bytes) {
  snapshot::ByteReader r(bytes);
  const std::uint32_t version = r.u32();
  if (version != 1) {
    throw std::runtime_error("fleet: unsupported config version " + std::to_string(version));
  }
  FleetSpec spec;
  spec.devices = r.u64();
  spec.seed = r.u64();
  spec.session_s = r.i32();
  spec.sample_period_s = r.i32();
  spec.warmup_s = r.i32();
  spec.shard_size = r.u64();
  if (!r.done()) spec.mem_policy = mem::load_policy_spec(r);
  if (!r.done()) spec.net = net::load_net_spec(r);
  if (!r.done()) throw std::runtime_error("fleet: trailing bytes after the fleet config");
  validate(spec);
  return spec;
}

std::uint64_t fleet_config_fingerprint(const FleetSpec& spec) {
  snapshot::StateHash hash;
  hash.mix_bytes(encode_fleet_config(spec));
  return hash.value();
}

FleetSpec load_fleet_resume_spec(const std::string& path) {
  const campaign::CheckpointState state = campaign::read_checkpoint_file(path);
  try {
    return decode_fleet_config(state.config);
  } catch (const std::exception& e) {
    throw std::runtime_error("fleet: " + path + ": " + e.what());
  }
}

}  // namespace mvqoe::fleet
