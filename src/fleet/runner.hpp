// Fleet execution front-end (DESIGN.md §15).
//
// One fleet unit = one shard of devices; its payload is the shard's
// encoded FleetAggregate — a pure function of (spec, unit), exactly the
// contract the campaign coordinator and the thread-pool batch runner
// already guarantee for their payloads. run_fleet picks the execution
// lane (serial / --jobs threads / --procs supervised processes /
// resume) and then reduces the payloads identically in every lane:
// decode and merge in ascending unit order. Byte-identical digests
// across lanes are therefore a construction property, not a test hope —
// but tests/fleet_test.cpp asserts them anyway.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>

#include "campaign/coordinator.hpp"
#include "fleet/aggregate.hpp"
#include "fleet/spec.hpp"

namespace mvqoe::fleet {

struct FleetRunOptions {
  /// Worker threads for the in-process lane (used when procs == 0 and
  /// no checkpointing is requested). 1 = serial reference.
  int jobs = 1;
  /// Worker processes; > 0 (or a state_path/resume) engages the
  /// campaign coordinator.
  int procs = 0;
  /// Fork-per-device CoW warm start inside each shard (bit-identical to
  /// cold; see fleet/device_session).
  bool warm = false;
  /// Campaign units per coordinator shard (crash-retry granularity).
  std::size_t units_per_proc_shard = 2;
  /// Campaign checkpoint file ("" = no checkpointing).
  std::string state_path;
  bool resume = false;
  int max_attempts = 3;
  int heartbeat_timeout_ms = 120000;
  const volatile std::sig_atomic_t* interrupt = nullptr;
  /// (devices_done, devices_total), called as shard payloads land.
  std::function<void(std::uint64_t, std::uint64_t)> progress;
  campaign::TestHooks hooks;
};

struct FleetRunResult {
  FleetAggregate aggregate;
  /// Order-sensitive digest over (unit, payload) — the campaign digest.
  /// 0 unless complete.
  std::uint64_t digest = 0;
  bool complete = false;
  bool interrupted = false;
  std::uint64_t devices_done = 0;
  /// Throughput bookkeeping for BENCH_fleet.json.
  double wall_s = 0.0;
  double devices_per_sec = 0.0;
  /// Peak RSS (MB) of this process and, in the procs lane, the largest
  /// worker — the O(shard) bound the fleet design promises.
  double peak_rss_mb = 0.0;
  /// Filled in the coordinator lane; empty shards vector otherwise.
  campaign::CampaignResult campaign;
};

/// One shard's payload: observations for every device of `unit`, folded
/// in ascending device order into a fresh aggregate, encoded.
std::string run_fleet_unit(const FleetSpec& spec, std::uint64_t unit, bool warm);

/// Run (or resume) the fleet and reduce to a single aggregate.
FleetRunResult run_fleet(const FleetSpec& spec, const FleetRunOptions& opts);

}  // namespace mvqoe::fleet
