// One fleet device-session: world template preparation and the
// per-second usage loop (DESIGN.md §15).
//
// The session splits like the warm-start sweeps (runner/warm_sweep):
// a *template* phase — boot the family's device, preload the cohort's
// organic apps, idle through warmup — that is identical for every
// device of a (family, cohort) pair, and a *session* phase driven by
// the device's own seed. Warm mode prepares the template once per
// group and forks a copy-on-write child per device; cold mode rebuilds
// the template in-process per device from the same world stream. Both
// produce bit-identical DeviceObservations — the fleet test asserts it.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "fleet/population.hpp"
#include "fleet/spec.hpp"
#include "mem/memory_manager.hpp"
#include "proc/activity_manager.hpp"
#include "sim/engine.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe::fleet {

inline constexpr int kLevels = 4;  // Normal, Moderate, Low, Critical

/// What one device-session observed — the SignalCapturer counterpart at
/// fleet scale. Sample vectors are in capture (time) order so folding
/// them preserves the aggregate's deterministic input sequence.
struct DeviceObservations {
  std::uint32_t family = 0;
  std::uint32_t cohort = 0;
  /// Trim signals delivered, by level.
  std::array<std::uint64_t, kLevels> signals{};
  /// Whole seconds spent with each level as the current state.
  std::array<std::uint32_t, kLevels> seconds_in_level{};
  std::array<std::array<std::uint32_t, kLevels>, kLevels> transitions{};
  /// (from-level, seconds) per completed dwell, in time order.
  std::vector<std::pair<std::uint8_t, double>> dwell;
  /// RAM utilization every sample_period_s, in time order.
  std::vector<double> util_samples;
  /// (level, available MB) every sample_period_s, in time order.
  std::vector<std::pair<std::uint8_t, double>> avail_samples;
};

void encode_observations(snapshot::ByteWriter& w, const DeviceObservations& obs);
DeviceObservations decode_observations(snapshot::ByteReader& r);

/// A device world: engine + memory manager + activity manager, bound
/// together in construction order. Non-copyable (the memory manager
/// holds an engine reference); warm mode shares it across devices via
/// fork, never via copy.
class FleetWorld {
 public:
  explicit FleetWorld(const core::DeviceProfile& profile,
                      const mem::MemPolicySpec& mem_policy = {});
  FleetWorld(const FleetWorld&) = delete;
  FleetWorld& operator=(const FleetWorld&) = delete;

  sim::Engine engine;
  mem::MemoryManager memory;
  proc::ActivityManager am;
};

/// Boot + cohort preload + warmup idle. Pure in (family, cohort,
/// spec.seed, spec.warmup_s): cold rebuilds and warm forks of the same
/// template are indistinguishable.
void prepare_world(FleetWorld& world, std::uint32_t family, std::uint32_t cohort,
                   const FleetSpec& spec);

/// Run one device's session_s seconds of usage on a prepared world.
/// Consumes the world (the session mutates it).
DeviceObservations drive_session(FleetWorld& world, const FleetDevice& device,
                                 const FleetSpec& spec);

/// Observations for every device of shard `unit`, in ascending device
/// order. Cold mode (warm == false) rebuilds each device's template
/// in-process; warm mode prepares one template per (family, cohort)
/// group present in the shard and forks a child per device, falling
/// back to cold when fork is unavailable. Identical output either way.
std::vector<DeviceObservations> run_shard_observations(const FleetSpec& spec, std::uint64_t unit,
                                                       bool warm);

}  // namespace mvqoe::fleet
