#include "fleet/runner.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "runner/batch.hpp"
#include "snapshot/digest.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define MVQOE_FLEET_RUSAGE 1
#else
#define MVQOE_FLEET_RUSAGE 0
#endif

namespace mvqoe::fleet {

namespace {

double peak_rss_mb_now() {
#if MVQOE_FLEET_RUSAGE
  long kb = 0;
  struct rusage self{};
  if (::getrusage(RUSAGE_SELF, &self) == 0) kb = self.ru_maxrss;
  struct rusage children{};
  if (::getrusage(RUSAGE_CHILDREN, &children) == 0) kb = std::max(kb, children.ru_maxrss);
#if defined(__APPLE__)
  return static_cast<double>(kb) / (1024.0 * 1024.0);  // ru_maxrss is bytes on macOS
#else
  return static_cast<double>(kb) / 1024.0;
#endif
#else
  return 0.0;
#endif
}

}  // namespace

std::string run_fleet_unit(const FleetSpec& spec, std::uint64_t unit, bool warm) {
  const std::vector<DeviceObservations> observations = run_shard_observations(spec, unit, warm);
  FleetAggregate shard;
  for (const DeviceObservations& obs : observations) shard.fold(obs, spec);
  return shard.encode();
}

FleetRunResult run_fleet(const FleetSpec& spec, const FleetRunOptions& opts) {
  // Round-trip the config once up front: decode validates every field,
  // so a bad spec fails loudly here instead of inside a forked worker.
  decode_fleet_config(encode_fleet_config(spec));

  const auto start = std::chrono::steady_clock::now();
  const std::uint64_t total_units = fleet_total_units(spec);

  FleetRunResult result;
  std::vector<std::string> payloads;
  std::vector<bool> completed;

  const auto devices_done_for = [&spec](std::uint64_t units_done) {
    return std::min(units_done * spec.shard_size, spec.devices);
  };

  const bool use_campaign = opts.procs > 0 || !opts.state_path.empty() || opts.resume;
  if (use_campaign) {
    campaign::CampaignOptions campaign_opts;
    campaign_opts.procs = opts.procs > 0 ? opts.procs : 1;
    campaign_opts.shard_size = opts.units_per_proc_shard;
    campaign_opts.max_attempts = opts.max_attempts;
    campaign_opts.heartbeat_timeout_ms = opts.heartbeat_timeout_ms;
    campaign_opts.state_path = opts.state_path;
    campaign_opts.resume = opts.resume;
    campaign_opts.interrupt = opts.interrupt;
    campaign_opts.hooks = opts.hooks;
    campaign_opts.config = encode_fleet_config(spec);
    campaign_opts.fingerprint = fleet_config_fingerprint(spec);
    if (opts.progress) {
      campaign_opts.progress = [&](std::uint64_t units_done, std::uint64_t) {
        opts.progress(devices_done_for(units_done), spec.devices);
      };
    }
    result.campaign = campaign::run_campaign(
        total_units, [&](std::uint64_t unit) { return run_fleet_unit(spec, unit, opts.warm); },
        campaign_opts);
    payloads = std::move(result.campaign.payloads);
    completed = result.campaign.completed;
    result.interrupted = result.campaign.interrupted;
    result.complete = result.campaign.complete;
  } else {
    std::mutex progress_mutex;
    std::uint64_t units_done = 0;
    auto batch = runner::run_batch(
        static_cast<std::size_t>(total_units), opts.jobs, [&](std::size_t unit) {
          if (opts.interrupt != nullptr && *opts.interrupt != 0) {
            throw std::runtime_error("fleet: interrupted");
          }
          std::string payload = run_fleet_unit(spec, static_cast<std::uint64_t>(unit), opts.warm);
          if (opts.progress) {
            const std::lock_guard<std::mutex> lock(progress_mutex);
            opts.progress(devices_done_for(++units_done), spec.devices);
          }
          return payload;
        });
    payloads.resize(batch.runs.size());
    completed.resize(batch.runs.size());
    for (std::size_t i = 0; i < batch.runs.size(); ++i) {
      payloads[i] = std::move(batch.runs[i].value);
      completed[i] = batch.runs[i].ok;
    }
    result.interrupted = opts.interrupt != nullptr && *opts.interrupt != 0;
    result.complete = batch.failures == 0 && !result.interrupted;
  }

  // The reduction every lane shares: ascending unit order, digest over
  // (unit, payload), merge decoded shard partials into one aggregate.
  snapshot::StateHash digest;
  for (std::uint64_t unit = 0; unit < payloads.size(); ++unit) {
    if (unit < completed.size() && !completed[unit]) continue;
    digest.mix(unit);
    digest.mix_bytes(payloads[unit]);
    result.aggregate.merge(FleetAggregate::decode(payloads[unit]));
  }
  result.digest = result.complete ? digest.value() : 0;
  result.devices_done = result.aggregate.device_count;

  const auto elapsed = std::chrono::steady_clock::now() - start;
  result.wall_s = std::chrono::duration<double>(elapsed).count();
  result.devices_per_sec =
      result.wall_s > 0.0 ? static_cast<double>(result.devices_done) / result.wall_s : 0.0;
  result.peak_rss_mb = peak_rss_mb_now();
  return result;
}

}  // namespace mvqoe::fleet
