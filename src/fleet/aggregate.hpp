// Streaming mergeable fleet aggregate (DESIGN.md §15).
//
// The whole point of the fleet subsystem: per-run JSON accumulation
// keeps O(devices) state, which dies at 10^6 devices. A FleetAggregate
// is instead a fixed-size reduction — histograms, quantile sketches and
// Welford accumulators for every Figs 2–6 signal — folded per device
// and merged per shard, so peak memory is O(shard) no matter the fleet.
//
// Merge-order contract: histogram and accumulator merges are exact, but
// the quantile sketches are only deterministic, not order-independent.
// Every path to a full-fleet aggregate therefore folds devices in
// ascending index order within a shard and merges shard partials in
// ascending unit order — serial, --jobs, --procs and kill-and-resume
// all reduce the identical sequence, which is what makes the aggregate
// digest and every report byte-identical across them.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "fleet/device_session.hpp"
#include "fleet/spec.hpp"
#include "snapshot/blob.hpp"
#include "stats/histogram.hpp"
#include "stats/sketch.hpp"
#include "stats/summary.hpp"

namespace mvqoe::fleet {

/// The FLEE section of an MVQS blob: a serialized fleet aggregate, as
/// written by `mvqoe_fleet run --save` and read back by `report`.
inline constexpr std::uint32_t kFleetTag = snapshot::tag("FLEE");
/// Companion section: the fleet config the aggregate was reduced under,
/// so `mvqoe_fleet report` can rebuild the exact report JSON.
inline constexpr std::uint32_t kFleetConfigTag = snapshot::tag("FLCF");

struct FleetAggregate {
  FleetAggregate();

  /// Fold one device-session's observations, in capture order.
  void fold(const DeviceObservations& obs, const FleetSpec& spec);
  /// Merge a shard partial. Exact for histograms/accumulators; sketches
  /// require the deterministic ascending merge order (see header note).
  void merge(const FleetAggregate& other);

  void save(snapshot::ByteWriter& w) const;
  static FleetAggregate load(snapshot::ByteReader& r);
  /// Canonical byte encoding — the shard payload — and its digest.
  std::string encode() const;
  static FleetAggregate decode(std::string_view bytes);
  std::uint64_t digest() const;

  void save_section(snapshot::Snapshot& blob) const;
  static FleetAggregate load_section(const snapshot::Snapshot& blob);

  std::uint64_t device_count = 0;
  std::uint64_t session_seconds = 0;
  std::array<std::uint64_t, kLevels> signals{};
  std::array<std::uint64_t, kLevels> seconds_in_level{};
  std::array<std::array<std::uint64_t, kLevels>, kLevels> transitions{};

  /// Fig 2: per-sample RAM utilization distribution + quantiles.
  stats::Histogram utilization;
  stats::QuantileSketch utilization_quantiles;
  /// Fig 3: per-device non-Normal signals per interactive hour.
  stats::Histogram signals_per_hour;
  stats::Accumulator signals_rate;
  /// Fig 4: per-device fraction of session time outside Normal.
  stats::Histogram not_normal_fraction;
  /// Fig 5: available memory (MB) sampled while in each state.
  std::array<stats::Histogram, kLevels> available_mb;
  std::array<stats::Accumulator, kLevels> available_acc;
  /// Fig 6: dwell-time quantiles per from-state.
  std::array<stats::QuantileSketch, kLevels> dwell;
};

/// Figs 2–6 report JSON for an aggregate — a pure function of
/// (spec, aggregate), so identical aggregates render identical bytes.
std::string fleet_report_json(const FleetSpec& spec, const FleetAggregate& aggregate);

/// Bundle (config, aggregate) as one MVQS blob (FLCF + FLEE sections)
/// and read it back; load throws when either section is missing or
/// malformed.
snapshot::Snapshot save_fleet_blob(const FleetSpec& spec, const FleetAggregate& aggregate);
std::pair<FleetSpec, FleetAggregate> load_fleet_blob(const snapshot::Snapshot& blob);

}  // namespace mvqoe::fleet
