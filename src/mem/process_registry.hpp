// Per-process memory accounting and oom_adj bookkeeping.
//
// Android classifies processes into priority groups scored by oom_adj
// (paper §2 "Killing of processes"); lmkd kills the highest-scored
// process when pressure demands it, and the count of *cached* processes
// remaining in the LRU drives the trim-signal level (paper footnote 6).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/types.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe::mem {

using ProcessId = std::uint32_t;

/// Field order is hot-first: every field a reclaim/victim scan reads sits
/// in the leading bytes, and the cold std::string/std::function members
/// (half the struct) are pushed to the tail so scans touch one cache line
/// per process instead of two.
struct ProcessMem {
  ProcessId pid = 0;
  int oom_adj = OomAdj::kCached;
  /// Resident anonymous (heap) pages.
  Pages anon_resident = 0;
  /// Anonymous pages compressed into zRAM.
  Pages anon_swapped = 0;
  /// Resident file-backed (code/resource) pages.
  Pages file_resident = 0;
  /// The process's file-backed working set: pages it re-touches while
  /// running. Evicting below this causes refaults (thrashing).
  Pages file_working_set = 0;
  /// Hot (actively-used / pinned) anonymous pages: kswapd will not
  /// compress below this floor — reclaim scanning them yields nothing,
  /// which is exactly how the reclaim-efficiency pressure P collapses
  /// when only working sets remain (paper §2: P high when few pages can
  /// be reclaimed). The MP Simulator's allocations are fully hot.
  Pages hot_pages = 0;
  /// LRU stamp; smaller = colder = reclaimed/killed first within a band.
  std::uint64_t lru_seq = 0;
  bool alive = true;
  /// lmkd may kill this process. The synthetic memory-pressure app is
  /// marked unkillable, matching the paper's methodology where the MP
  /// Simulator keeps pressure applied while victims die around it.
  bool killable = true;
  /// mlocked/pinned memory: excluded from the reclaim scanner's candidate
  /// pool entirely (kernel unevictable list). The MP Simulator's native
  /// allocations live here; ordinary hot working sets do NOT — they are
  /// scanned fruitlessly, which is what degrades reclaim efficiency.
  bool unevictable = false;
  // --- cold fields below: never read by the hot scans ---
  std::string name;
  /// Invoked when lmkd kills the process (after its memory is freed).
  std::function<void()> on_kill;
};

/// PSS proxy: resident anon + resident file pages. Shared-page
/// proportionality is folded into the calibrated footprints.
Pages pss_pages(const ProcessMem& process) noexcept;

class ProcessRegistry {
 public:
  /// Register a process; replaces any dead entry with the same pid.
  /// Registering an *alive* pid twice is a programming error.
  ProcessMem& add(ProcessId pid, std::string name, int oom_adj,
                  std::function<void()> on_kill = nullptr);

  ProcessMem* find(ProcessId pid) noexcept;
  const ProcessMem* find(ProcessId pid) const noexcept;
  bool alive(ProcessId pid) const noexcept;

  /// Mark most-recently-used (moves to the hot end of the LRU).
  void touch(ProcessId pid) noexcept;
  void set_oom_adj(ProcessId pid, int adj) noexcept;
  void set_killable(ProcessId pid, bool killable) noexcept;

  /// Remove from the registry, returning the pages it held.
  struct FreedPages {
    Pages anon = 0;
    Pages swapped = 0;
    Pages file = 0;
  };
  FreedPages remove(ProcessId pid);

  /// Number of live processes with oom_adj >= OomAdj::kCached — the
  /// cached/empty LRU count that drives trim levels.
  int cached_count() const noexcept;

  /// lmkd victim selection: the live killable process with the highest
  /// oom_adj at or above `min_adj` (coldest LRU breaks ties). Returns
  /// nullopt when no process qualifies.
  std::optional<ProcessId> pick_victim(int min_adj) const noexcept;

  /// Reclaim-order iteration: live processes sorted by (oom_adj desc,
  /// LRU cold-first) — kswapd takes pages from these before warmer ones.
  /// The order is cached and only rebuilt after a mutation that can
  /// change it (add/remove/touch/set_oom_adj): one reclaim batch calls
  /// this three times while mutating nothing but page counters, so two
  /// of the three sorts are free. The reference is invalidated by the
  /// next mutation.
  const std::vector<ProcessMem*>& reclaim_order();

  std::vector<const ProcessMem*> all() const;
  std::size_t live_count() const noexcept { return alive_.size(); }

  /// Serialize every process sorted by pid — the unordered_map's bucket
  /// layout must not leak into the bytes. on_kill closures are not
  /// serializable and are excluded (see DESIGN.md §10).
  void save(snapshot::ByteWriter& w) const;

 private:
  /// Stable owner: values never move, so ProcessMem pointers handed out
  /// by find()/reclaim_order() stay valid for the registry's lifetime.
  std::unordered_map<ProcessId, ProcessMem> processes_;
  /// Dense scan index of live processes (membership order): the hot
  /// iteration surface for pick_victim/cached_count, replacing sparse
  /// hash-bucket walks. Order is irrelevant — every consumer either
  /// counts or resolves ties through the unique lru_seq.
  std::vector<ProcessMem*> alive_;
  /// Every entry (dead included) sorted by pid, maintained by sorted
  /// insert on first registration — save()/all() no longer sort.
  std::vector<ProcessMem*> by_pid_;
  /// reclaim_order() cache; rebuilt lazily from SoA-extracted sort keys.
  std::vector<ProcessMem*> order_cache_;
  bool order_dirty_ = true;
  std::uint64_t lru_clock_ = 0;
};

}  // namespace mvqoe::mem
