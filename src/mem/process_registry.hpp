// Per-process memory accounting and oom_adj bookkeeping.
//
// Android classifies processes into priority groups scored by oom_adj
// (paper §2 "Killing of processes"); lmkd kills the highest-scored
// process when pressure demands it, and the count of *cached* processes
// remaining in the LRU drives the trim-signal level (paper footnote 6).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/types.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe::mem {

using ProcessId = std::uint32_t;

struct ProcessMem {
  ProcessId pid = 0;
  std::string name;
  int oom_adj = OomAdj::kCached;
  /// Resident anonymous (heap) pages.
  Pages anon_resident = 0;
  /// Anonymous pages compressed into zRAM.
  Pages anon_swapped = 0;
  /// Resident file-backed (code/resource) pages.
  Pages file_resident = 0;
  /// The process's file-backed working set: pages it re-touches while
  /// running. Evicting below this causes refaults (thrashing).
  Pages file_working_set = 0;
  /// Hot (actively-used / pinned) anonymous pages: kswapd will not
  /// compress below this floor — reclaim scanning them yields nothing,
  /// which is exactly how the reclaim-efficiency pressure P collapses
  /// when only working sets remain (paper §2: P high when few pages can
  /// be reclaimed). The MP Simulator's allocations are fully hot.
  Pages hot_pages = 0;
  /// LRU stamp; smaller = colder = reclaimed/killed first within a band.
  std::uint64_t lru_seq = 0;
  bool alive = true;
  /// lmkd may kill this process. The synthetic memory-pressure app is
  /// marked unkillable, matching the paper's methodology where the MP
  /// Simulator keeps pressure applied while victims die around it.
  bool killable = true;
  /// mlocked/pinned memory: excluded from the reclaim scanner's candidate
  /// pool entirely (kernel unevictable list). The MP Simulator's native
  /// allocations live here; ordinary hot working sets do NOT — they are
  /// scanned fruitlessly, which is what degrades reclaim efficiency.
  bool unevictable = false;
  /// Invoked when lmkd kills the process (after its memory is freed).
  std::function<void()> on_kill;
};

/// PSS proxy: resident anon + resident file pages. Shared-page
/// proportionality is folded into the calibrated footprints.
Pages pss_pages(const ProcessMem& process) noexcept;

class ProcessRegistry {
 public:
  /// Register a process; replaces any dead entry with the same pid.
  /// Registering an *alive* pid twice is a programming error.
  ProcessMem& add(ProcessId pid, std::string name, int oom_adj,
                  std::function<void()> on_kill = nullptr);

  ProcessMem* find(ProcessId pid) noexcept;
  const ProcessMem* find(ProcessId pid) const noexcept;
  bool alive(ProcessId pid) const noexcept;

  /// Mark most-recently-used (moves to the hot end of the LRU).
  void touch(ProcessId pid) noexcept;
  void set_oom_adj(ProcessId pid, int adj) noexcept;
  void set_killable(ProcessId pid, bool killable) noexcept;

  /// Remove from the registry, returning the pages it held.
  struct FreedPages {
    Pages anon = 0;
    Pages swapped = 0;
    Pages file = 0;
  };
  FreedPages remove(ProcessId pid);

  /// Number of live processes with oom_adj >= OomAdj::kCached — the
  /// cached/empty LRU count that drives trim levels.
  int cached_count() const noexcept;

  /// lmkd victim selection: the live killable process with the highest
  /// oom_adj at or above `min_adj` (coldest LRU breaks ties). Returns
  /// nullopt when no process qualifies.
  std::optional<ProcessId> pick_victim(int min_adj) const noexcept;

  /// Reclaim-order iteration: live processes sorted by (oom_adj desc,
  /// LRU cold-first) — kswapd takes pages from these before warmer ones.
  std::vector<ProcessMem*> reclaim_order();

  std::vector<const ProcessMem*> all() const;
  std::size_t live_count() const noexcept;

  /// Serialize every process sorted by pid — the unordered_map's bucket
  /// layout must not leak into the bytes. on_kill closures are not
  /// serializable and are excluded (see DESIGN.md §10).
  void save(snapshot::ByteWriter& w) const;

 private:
  std::unordered_map<ProcessId, ProcessMem> processes_;
  std::uint64_t lru_clock_ = 0;
};

}  // namespace mvqoe::mem
