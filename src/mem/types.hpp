// Shared types for the Android-like memory-management model (paper §2).
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mvqoe::mem {

/// Page counts. 4 KiB pages, as on the paper's devices.
using Pages = std::int64_t;
constexpr std::int64_t kPageBytes = 4096;

constexpr Pages pages_from_bytes(std::int64_t bytes) noexcept {
  return (bytes + kPageBytes - 1) / kPageBytes;
}
constexpr Pages pages_from_mb(std::int64_t mb) noexcept { return mb * (1 << 20) / kPageBytes; }
constexpr std::int64_t bytes_from_pages(Pages pages) noexcept { return pages * kPageBytes; }
constexpr double mb_from_pages(Pages pages) noexcept {
  return static_cast<double>(pages) * kPageBytes / (1 << 20);
}

/// Memory-pressure levels delivered to applications via onTrimMemory()
/// (paper §2 "Memory pressure signals for applications"). Order matters:
/// higher enum value = more severe.
enum class PressureLevel : std::uint8_t { Normal = 0, Moderate = 1, Low = 2, Critical = 3 };

const char* to_string(PressureLevel level) noexcept;

/// Android oom_adj priority bands (paper §2 "Killing of processes").
/// Higher score = lower priority = killed earlier.
struct OomAdj {
  static constexpr int kForeground = 0;
  static constexpr int kVisible = 100;
  static constexpr int kPerceptible = 200;
  static constexpr int kService = 500;
  static constexpr int kCached = 900;
};

struct MemoryConfig {
  Pages total = pages_from_mb(1024);
  /// Kernel text/reserved carve-out, never reclaimable.
  Pages kernel_reserved = pages_from_mb(280);
  /// zRAM pool capacity, counted in *uncompressed* pages stored.
  Pages zram_capacity = pages_from_mb(450);
  /// Compression ratio: stored page occupies 1/ratio physical pages.
  double zram_compression = 2.8;

  /// Low-memory watermarks (paper §2: kswapd wakes below `low`, reclaims
  /// until `high`; allocations below `min` enter direct reclaim).
  Pages watermark_min = pages_from_mb(8);
  Pages watermark_low = pages_from_mb(36);
  Pages watermark_high = pages_from_mb(56);

  /// Reclaim CPU costs, reference-µs per page. Compression includes the
  /// LRU manipulation + zsmalloc overhead on the kswapd thread; a swap-in
  /// costs a full page-fault path (trap, lookup, decompress, map) on the
  /// *faulting* thread — tens of µs on the little cores the paper's
  /// devices use, which is precisely why thrashing murders the decoder.
  /// LRU scanning with workingset checks costs ~2 µs/page on a little
  /// core; LZ4+zsmalloc store ~20-25 µs/page. These are what make kswapd
  /// a top-running thread under sustained reclaim (paper Fig 13).
  double scan_cpu_refus = 2.0;
  double compress_cpu_refus = 22.0;
  double decompress_cpu_refus = 30.0;
  /// Page-fault CPU for a file refault (readahead amortizes the trap).
  double file_fault_cpu_refus = 5.0;
  Pages kswapd_batch = 192;
  /// Back-off when a batch reclaims nothing (avoids a busy spin while
  /// waiting for lmkd or writeback to make progress).
  sim::Time kswapd_backoff = sim::msec(40);

  /// Trim-signal thresholds: number of cached/empty processes in the LRU
  /// at or below which each level fires (paper footnote 6: 6/5/3 on the
  /// 1 GB Nokia 1).
  int trim_moderate = 6;
  int trim_low = 5;
  int trim_critical = 3;

  /// lmkd pressure bands (paper §2): 60 < P < 95 kills high-oom_adj
  /// processes, P >= 95 makes the foreground itself eligible.
  double lmkd_kill_threshold = 60.0;
  double lmkd_foreground_threshold = 95.0;
  /// oom_adj floor for the 60<P<95 band.
  int lmkd_background_adj_floor = OomAdj::kService;
  double lmkd_kill_cpu_refus = 2500.0;
  /// EMA smoothing for P across scan batches.
  double pressure_ema_alpha = 0.35;

  /// lmkd minfree table: kill processes of (at least) the given band when
  /// available memory (free + file cache) drops below the threshold —
  /// Android's classic low-memory-killer levels, which fire long before
  /// reclaim actually fails. Scaled up on larger-RAM devices, which is
  /// why bigger devices emit pressure signals at higher available memory
  /// (paper Fig 5).
  /// Ordering note: these sit *below* the kswapd watermarks in practice —
  /// reclaim (compression, writeback, thrashing) engages first; kills
  /// start only once reclaim cannot hold available memory up.
  Pages minfree_cached = pages_from_mb(44);       // oom_adj >= kCached
  Pages minfree_service = pages_from_mb(28);      // oom_adj >= kService
  Pages minfree_perceptible = pages_from_mb(19);  // oom_adj >= kPerceptible
  Pages minfree_foreground = pages_from_mb(12);   // oom_adj >= kForeground

  /// Direct reclaim: scan rounds attempted synchronously before the
  /// allocation parks on the waiter queue.
  int direct_reclaim_rounds = 3;
  /// Kernel OOM killer: an allocation parked longer than this triggers an
  /// out-of-memory kill of the highest-score victim (paper §2: direct
  /// reclaim blocks "until it can free up the memory requested").
  sim::Time oom_kill_timeout = sim::msec(1500);
};

/// /proc/vmstat-like counters.
struct VmStat {
  std::uint64_t pgscan_kswapd = 0;
  std::uint64_t pgsteal_kswapd = 0;
  std::uint64_t pgscan_direct = 0;
  std::uint64_t pgsteal_direct = 0;
  std::uint64_t pswpout = 0;  // pages compressed to zram
  std::uint64_t pswpin = 0;   // pages decompressed from zram
  std::uint64_t pgpgin = 0;   // file pages read from storage
  std::uint64_t pgpgout = 0;  // dirty file pages written back
  std::uint64_t kswapd_wakeups = 0;
  std::uint64_t direct_reclaim_entries = 0;
  std::uint64_t kills_lmkd = 0;
  std::uint64_t trim_signals[4] = {0, 0, 0, 0};  // indexed by PressureLevel
};

}  // namespace mvqoe::mem
