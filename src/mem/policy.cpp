#include "mem/policy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "snapshot/digest.hpp"

namespace mvqoe::mem {

void save_policy_spec(snapshot::ByteWriter& w, const MemPolicySpec& spec) {
  w.str(spec.name);
  w.u32(static_cast<std::uint32_t>(spec.params.size()));
  for (const auto& [key, value] : spec.params) {
    w.str(key);
    w.f64(value);
  }
}

MemPolicySpec load_policy_spec(snapshot::ByteReader& r) {
  MemPolicySpec spec;
  spec.name = r.str();
  const std::uint32_t count = r.u32();
  spec.params.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string key = r.str();
    const double value = r.f64();
    spec.params.emplace_back(std::move(key), value);
  }
  return spec;
}

const std::vector<std::string>& mem_policy_names() {
  static const std::vector<std::string> names = {"baseline", "swam", "ariadne", "partitioned"};
  return names;
}

void validate_policy_spec(const MemPolicySpec& spec) {
  // Construction performs the full name + per-policy parameter checks;
  // the config only scales thresholds and cannot affect validity.
  make_mem_policy(spec, MemoryConfig{});
}

int replay_kill_floor(const KillCharter& charter, double pressure, Pages available,
                      Pages zram_stored, Pages zram_capacity) noexcept {
  int min_adj = kNoKillFloor;
  if (pressure >= charter.foreground_threshold) {
    // Critical vmpressure makes the foreground eligible — but, as in
    // lmkd's swap_free_low_percentage check, only once swap (zRAM) is
    // nearly exhausted or available memory is truly scraping bottom.
    const bool swap_depleted =
        charter.swap_aware_escalation && zram_capacity - zram_stored < zram_capacity / 10;
    if (swap_depleted || available < charter.minfree_perceptible) {
      min_adj = OomAdj::kForeground;
    } else {
      min_adj = charter.background_adj_floor;
    }
  } else if (pressure > charter.kill_threshold) {
    min_adj = charter.background_adj_floor;
  }
  // Joint swap/kill decision (swam): once the zRAM store passes its fill
  // fraction, killing background apps beats compressing into a full pool.
  if (charter.swap_full_kill_fraction < 1.0) {
    const Pages full_mark = static_cast<Pages>(charter.swap_full_kill_fraction *
                                               static_cast<double>(zram_capacity));
    if (zram_stored >= full_mark) min_adj = std::min(min_adj, charter.background_adj_floor);
  }
  // minfree ladder. The background levels see available memory minus the
  // foreground reserve (partitioned; 0 = Android's ladder); the
  // foreground bottom level always reads the raw number — a reserve must
  // make background kills *earlier*, never delay saving the foreground.
  const Pages ladder_available = available - charter.reserve_pages;
  if (available < charter.minfree_foreground) {
    min_adj = std::min(min_adj, OomAdj::kForeground);
  } else if (ladder_available < charter.minfree_perceptible) {
    min_adj = std::min(min_adj, OomAdj::kPerceptible);
  } else if (ladder_available < charter.minfree_service) {
    min_adj = std::min(min_adj, OomAdj::kService);
  } else if (ladder_available < charter.minfree_cached) {
    min_adj = std::min(min_adj, OomAdj::kCached);
  }
  return min_adj;
}

Pages ReclaimPolicy::zram_physical(Pages stored) const noexcept {
  if (stored <= 0) return 0;
  return static_cast<Pages>(
      std::ceil(static_cast<double>(stored) / config_.zram_compression));
}

std::optional<ProcessId> KillPolicy::pick_victim(ProcessRegistry& registry, int min_adj) {
  return registry.pick_victim(min_adj);
}

void MemPolicy::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // MPOL section version
  save_policy_spec(w, spec_);
  reclaim_->save(w);
}

std::uint64_t MemPolicy::digest() const { return snapshot::state_digest(*this); }

KillCharter kill_charter_for(const MemPolicySpec& spec, const MemoryConfig& config) {
  return make_mem_policy(spec, config)->charter();
}

}  // namespace mvqoe::mem
