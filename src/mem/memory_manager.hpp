// The Android-like kernel memory-management model (paper §2).
//
// Mechanisms implemented, and the paper sections they reproduce:
//   * Page pools: free / anonymous / file-clean / file-dirty / zRAM, with
//     a fixed kernel carve-out. Available memory = free + file cache.
//   * kswapd: woken when free memory drops below the `low` watermark,
//     reclaims in batches until `high`. Clean file pages are dropped,
//     anonymous pages are *compressed to zRAM* (CPU work on the kswapd
//     thread — why kswapd becomes the top-running thread in Fig 13),
//     dirty file pages are written back through the storage stack (mmcqd
//     traffic). kswapd runs at Fair priority like foreground threads, so
//     it steals CPU by fair-sharing, not preemption (paper §5).
//   * Direct reclaim: an allocation below the `min` watermark blocks the
//     allocating thread and makes it scan/reclaim itself, possibly
//     waiting for writeback or an lmkd kill (paper §2 "this can cause an
//     extra I/O wait in any thread").
//   * Pressure P = (1 - reclaimed/scanned) * 100, EMA-smoothed across
//     scan batches. lmkd kills the highest-oom_adj process when
//     60 < P < 95 and makes the foreground eligible at P >= 95
//     (paper §2 "Killing of processes").
//   * Trim signals: Moderate / Low / Critical levels derived from the
//     number of cached processes left in the LRU (6/5/3 on the 1 GB
//     preset, paper footnote 6), delivered to subscribed applications —
//     the onTrimMemory() path a memory-aware ABR listens to.
//   * Refault ("thrashing") support: touch_working_set() models a
//     process re-touching its heap and code pages; pages that were
//     compressed or evicted fault back in (decompression CPU, storage
//     reads) — the paper's §2 thrashing mechanism and the source of the
//     mmcqd storm in Table 5.
//
// Two driver modes:
//   * Scheduled — kswapd/lmkd are real threads on the simulated CPU and
//     I/O goes through the storage stack. Used by all video experiments.
//   * Immediate — reclaim applies instantly with no CPU/IO cost. Used by
//     the §3 field-study population simulator where only the *accounting*
//     (signal rates, dwell times, available memory) matters.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "mem/policy.hpp"
#include "mem/process_registry.hpp"
#include "mem/types.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "storage/storage.hpp"
#include "trace/tracer.hpp"

namespace mvqoe::mem {

class MemoryManager {
 public:
  using AllocCallback = std::function<void(bool ok)>;
  using TrimListener = std::function<void(PressureLevel)>;

  /// Scheduled mode: full CPU and I/O fidelity. `policy` selects the
  /// reclaim/kill regime (DESIGN.md §16); the default is the baseline
  /// Android model, byte-identical to the pre-policy manager.
  MemoryManager(sim::Engine& engine, MemoryConfig config, sched::Scheduler& scheduler,
                storage::StorageDevice& storage, trace::Tracer& tracer,
                const MemPolicySpec& policy = {});
  /// Immediate mode: reclaim is free and instant (field-study simulator).
  MemoryManager(sim::Engine& engine, MemoryConfig config, const MemPolicySpec& policy = {});

  MemoryManager(const MemoryManager&) = delete;
  MemoryManager& operator=(const MemoryManager&) = delete;

  // --- Process lifecycle -------------------------------------------------
  ProcessMem& register_process(ProcessId pid, std::string name, int oom_adj,
                               std::function<void()> on_kill = nullptr);
  /// Voluntary exit: frees everything, no kill callback.
  void exit_process(ProcessId pid);
  /// lmkd-style kill: frees everything, fires on_kill, traces the kill.
  void kill_process(ProcessId pid);
  void set_oom_adj(ProcessId pid, int adj);
  void touch_lru(ProcessId pid);
  /// Declare the process's hot (actively-used / pinned) anon floor;
  /// kswapd will not compress the process below it. Clamped to the
  /// process's current anon total.
  void set_hot_pages(ProcessId pid, Pages hot);

  // --- Allocation --------------------------------------------------------
  /// Grow the process heap by `pages`. `tid` is the allocating thread
  /// (used for direct-reclaim CPU/stall; pass 0 for no thread, e.g. in
  /// Immediate mode). `done(ok)` may fire synchronously on the fast path;
  /// ok=false means the process died while the allocation waited.
  void alloc_anon(ProcessId pid, Pages pages, sched::ThreadId tid, AllocCallback done);
  void free_anon(ProcessId pid, Pages pages);

  /// Map `pages` of file-backed (code/resource) pages, reading them from
  /// storage. Also raises the process's file working set by `pages`.
  void map_file(ProcessId pid, Pages pages, sched::ThreadId tid, AllocCallback done);
  void unmap_file(ProcessId pid, Pages pages);

  /// Create `pages` of dirty file pages (app writes); they occupy memory
  /// until kswapd writes them back.
  void dirty_file(Pages pages);

  /// Model the process touching `anon_touch` heap pages and `file_touch`
  /// working-set file pages. Swapped/evicted portions fault back in:
  /// decompression CPU on `tid` plus storage reads, both of which may
  /// recurse into direct reclaim. `done(ok)` fires when resident.
  void touch_working_set(ProcessId pid, sched::ThreadId tid, Pages anon_touch, Pages file_touch,
                         AllocCallback done);

  // --- Introspection -----------------------------------------------------
  Pages free_pages() const noexcept;
  /// free + file cache, Android's availMem (§3 "available memory").
  Pages available_pages() const noexcept;
  Pages anon_pages() const noexcept { return anon_pool_; }
  Pages file_pages() const noexcept { return file_clean_ + file_dirty_; }
  Pages zram_stored() const noexcept { return zram_stored_; }
  double utilization() const noexcept;
  /// Reclaim-efficiency pressure estimate, decayed since the last scan
  /// batch: vmpressure is only meaningful while reclaim is running, and a
  /// stale reading must not keep lmkd killing after pressure passed.
  double pressure_P() const noexcept;
  PressureLevel level() const noexcept { return level_; }
  const VmStat& vmstat() const noexcept { return vmstat_; }
  const MemoryConfig& config() const noexcept { return config_; }
  const ProcessRegistry& registry() const noexcept { return registry_; }
  ProcessRegistry& registry() noexcept { return registry_; }
  bool kswapd_active() const noexcept { return kswapd_active_; }
  sched::ThreadId kswapd_tid() const noexcept { return kswapd_tid_; }
  sched::ThreadId lmkd_tid() const noexcept { return lmkd_tid_; }
  /// The active reclaim/kill policy bundle (MPOL snapshot section when
  /// the policy carries state).
  const MemPolicy& policy() const noexcept { return *policy_; }
  MemPolicy& policy() noexcept { return *policy_; }
  /// The kill rules the active policy declared — the observation surface
  /// the lmkd-ordering oracle replays against.
  const KillCharter& kill_charter() const noexcept { return policy_->charter(); }

  /// Subscribe to trim-signal deliveries (every transition into a
  /// non-Normal level). Listeners must outlive the manager or the run.
  void subscribe_trim(TrimListener listener);

  /// Page-accounting conservation audit (invariant watchdog hook): the
  /// per-process registry totals must equal the global pools, every pool
  /// must be non-negative, and in-flight writeback bounded by the dirty
  /// pool. `detail` names the first violated invariant.
  struct ConservationReport {
    bool ok = true;
    std::string detail;
  };
  ConservationReport check_conservation() const;

  /// One process kill with the killer's decision inputs captured at the
  /// moment of the decision — the observation record the lmkd-ordering
  /// oracle (src/check) replays the band rules against. Not serialized:
  /// audits are observations, like the tracer, not simulation state.
  struct KillAudit {
    enum class Reason : std::uint8_t { Lmkd, Oom, External };
    sim::Time at = 0;
    ProcessId pid = 0;
    int oom_adj = 0;            ///< victim's band at kill time
    Reason reason = Reason::External;
    int min_adj = 0;            ///< band floor the killer used
    int max_killable_adj = -1;  ///< highest killable adj alive at decision (-1 none)
    double pressure = 0.0;      ///< pressure_P() at decision
    Pages available = 0;        ///< available_pages() at decision
    Pages zram_stored = 0;
    /// The deciding policy — replay-bisection divergence reports name it.
    std::string policy_name = "baseline";
  };
  const std::vector<KillAudit>& kill_audits() const noexcept { return kill_audits_; }

  /// Serialize pools, pressure state, vmstat, the process registry and
  /// parked allocation waiters (ids/sizes only — their completion
  /// callbacks are closures and replay-reconstructed, DESIGN.md §10).
  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;

 private:
  struct ReclaimOutcome {
    Pages scanned = 0;
    Pages freed_now = 0;     // immediately available (clean file, zram net)
    Pages writeback = 0;     // dirty pages queued for writeback
    double cpu_refus = 0.0;  // scan + compression work
  };

  bool scheduled() const noexcept { return scheduler_ != nullptr; }

  /// Core slow/fast allocation path: obtain `pages` of free memory.
  void acquire_pages(Pages pages, ProcessId pid, sched::ThreadId tid,
                     std::function<void(bool)> done);
  void direct_reclaim(Pages pages, ProcessId pid, sched::ThreadId tid, int rounds_left,
                      sim::Time started, std::function<void(bool)> done);
  void park_waiter(Pages pages, ProcessId pid, sched::ThreadId tid, sim::Time started,
                   std::function<void(bool)> done);
  void pump_waiters();
  void fault_anon_pages(ProcessId pid, sched::ThreadId tid, Pages remaining,
                        std::function<void()> next);
  void fault_file_pages(ProcessId pid, sched::ThreadId tid, Pages remaining, AllocCallback done);

  /// Ask the policy what one scan batch reclaims, apply the plan's
  /// instantly-free part, and submit writeback I/O.
  ReclaimOutcome run_reclaim_batch(bool kswapd);
  void record_pressure(const ReclaimOutcome& outcome);
  /// Recompute the cached zRAM physical footprint from the policy.
  /// Called after every zram_stored_ mutation so free_pages() stays a
  /// virtual-free pure arithmetic hot path.
  void refresh_zram_physical() noexcept;

  void wake_kswapd();
  void kswapd_step();
  void kswapd_sleep();
  void immediate_reclaim_to_high();

  void maybe_activate_lmkd();
  void lmkd_do_kill();
  int lmkd_min_adj() const noexcept;

  void update_pressure_level();
  void free_process_pages(ProcessId pid);
  /// Common kill path; records a KillAudit with the caller's decision
  /// inputs before the victim's pages are freed.
  void kill_with_audit(ProcessId pid, KillAudit::Reason reason, int min_adj);

  sim::Engine& engine_;
  MemoryConfig config_;
  sched::Scheduler* scheduler_ = nullptr;   // null in Immediate mode
  storage::StorageDevice* storage_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  std::unique_ptr<MemPolicy> policy_;

  ProcessRegistry registry_;
  VmStat vmstat_;

  // Page pools (invariant: free = total - kernel - anon - file - zram).
  Pages anon_pool_ = 0;
  Pages file_clean_ = 0;
  Pages file_dirty_ = 0;
  Pages dirty_in_flight_ = 0;  // subset of file_dirty_ being written back
  Pages zram_stored_ = 0;      // uncompressed pages stored in zRAM
  Pages zram_physical_ = 0;    // cached policy_->reclaim().zram_physical(zram_stored_)

  double pressure_ema_ = 0.0;
  sim::Time last_pressure_sample_ = 0;
  PressureLevel level_ = PressureLevel::Normal;

  sched::ThreadId kswapd_tid_ = 0;
  sched::ThreadId lmkd_tid_ = 0;
  bool kswapd_active_ = false;
  bool kswapd_running_ = false;  // a batch is in flight on the thread
  bool immediate_reclaiming_ = false;
  bool lmkd_busy_ = false;
  sim::Time last_lmkd_kill_ = -sim::hours(1);

  struct Waiter {
    std::uint64_t id = 0;
    Pages pages = 0;
    ProcessId pid = 0;
    sched::ThreadId tid = 0;
    sim::Time started = 0;
    std::function<void(bool)> done;
  };
  std::deque<Waiter> waiters_;
  std::uint64_t next_waiter_id_ = 1;
  bool pumping_ = false;

  void oom_check(std::uint64_t waiter_id);
  /// Flat-event trampolines (engine hot path): the OOM watchdog re-arms
  /// per parked waiter and kswapd's step loop re-enters per batch.
  static void on_oom_check(void* ctx, std::uint64_t waiter_id);
  static void on_kswapd_step(void* ctx, std::uint64_t);

  std::vector<TrimListener> trim_listeners_;
  std::vector<KillAudit> kill_audits_;
};

}  // namespace mvqoe::mem
