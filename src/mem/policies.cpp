// The registered reclaim/kill policy variants (DESIGN.md §16).
//
// `baseline` is the pre-refactor MemoryManager logic moved verbatim: the
// plan it produces and the cpu_refus expression are arithmetic-for-
// arithmetic identical, which is what keeps golden blobs and every
// BENCH_fig* JSON byte-identical. `swam`, `ariadne` and `partitioned`
// implement the published alternatives described in mem/policy.hpp.
#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <utility>

#include "mem/policy.hpp"
#include "sched/scheduler.hpp"

namespace mvqoe::mem {

namespace {

// --- shared single-tier planner ---------------------------------------------

/// One scan batch against a single-tier zRAM store, with a per-process
/// swap-admission predicate. With admit-everything this IS the baseline
/// batch: same walks, same expressions, same rounding.
template <typename AdmitCompress>
ReclaimPlan plan_single_tier(const MemoryConfig& config, ReclaimView& view,
                             AdmitCompress admit) {
  ReclaimPlan plan;
  const Pages budget = config.kswapd_batch;
  plan.scanned = budget;

  // Scan efficiency: the reclaimer walks `budget` LRU candidates; only
  // the reclaimable fraction of the candidate pool yields pages. When
  // most resident pages are hot working sets, a batch scans a lot and
  // frees little — this ratio IS the paper's pressure metric
  // P = (1 - reclaimed/scanned) * 100 (§2), and it is why reclaim slows
  // to a crawl (and direct-reclaim stalls stretch) under real pressure.
  const bool desperate = view.available < config.minfree_service;
  Pages candidates = 0;
  Pages reclaimable = 0;
  const Pages zram_headroom = config.zram_capacity - view.zram_stored;
  Pages compressible_total = 0;
  for (ProcessMem* process : view.registry.reclaim_order()) {
    if (process->unevictable) continue;  // pinned: not on the LRU at all
    candidates += process->anon_resident + process->file_resident;
    const Pages protected_file =
        desperate ? 0 : std::min(process->file_resident, process->file_working_set / 2);
    reclaimable += process->file_resident - protected_file;
    if (admit(*process)) {
      compressible_total += std::max<Pages>(0, process->anon_resident - process->hot_pages);
    }
  }
  reclaimable += std::min(compressible_total, zram_headroom);
  reclaimable += view.file_dirty - view.dirty_in_flight;
  candidates += view.file_dirty;
  const double efficiency =
      candidates > 0 ? static_cast<double>(reclaimable) / static_cast<double>(candidates) : 0.0;
  Pages remaining = static_cast<Pages>(
      std::ceil(static_cast<double>(budget) * std::min(1.0, efficiency)));

  // 1. Drop clean file pages, coldest/lowest-priority processes first.
  // The active file list is protected (workingset detection): roughly
  // half of a process's file working set survives eviction until the
  // system is desperate (below the service minfree level).
  for (ProcessMem* process : view.registry.reclaim_order()) {
    if (remaining <= 0) break;
    if (process->unevictable) continue;
    const Pages protected_file =
        desperate ? 0 : std::min(process->file_resident, process->file_working_set / 2);
    const Pages take = std::min(process->file_resident - protected_file, remaining);
    if (take <= 0) continue;
    plan.file_drops.push_back({process, take});
    remaining -= take;
  }

  // 2. Compress admitted anonymous pages into zRAM (CPU work). Only
  // pages outside the owners' hot working sets are takeable.
  Pages compressed = 0;
  if (remaining > 0) {
    Pages zram_space = config.zram_capacity - view.zram_stored;
    for (ProcessMem* process : view.registry.reclaim_order()) {
      if (remaining <= 0 || zram_space <= 0) break;
      if (process->unevictable) continue;
      if (!admit(*process)) continue;
      const Pages cold = std::max<Pages>(0, process->anon_resident - process->hot_pages);
      const Pages take = std::min({cold, remaining, zram_space});
      if (take <= 0) continue;
      plan.compress.push_back({process, take, 0});
      remaining -= take;
      zram_space -= take;
      compressed += take;
    }
  }

  // 3. Queue dirty file pages for writeback through the storage stack.
  if (remaining > 0) {
    const Pages dirty_available = view.file_dirty - view.dirty_in_flight;
    const Pages writeback = std::min(remaining, dirty_available);
    if (writeback > 0) plan.writeback = writeback;
  }

  plan.cpu_refus = static_cast<double>(plan.scanned) * config.scan_cpu_refus +
                   static_cast<double>(compressed) * config.compress_cpu_refus;
  return plan;
}

// --- baseline ----------------------------------------------------------------

class BaselineReclaim final : public ReclaimPolicy {
 public:
  explicit BaselineReclaim(const MemoryConfig& config) : ReclaimPolicy(config) {}

  ReclaimPlan plan_batch(ReclaimView& view) override {
    return plan_single_tier(config_, view, [](const ProcessMem&) { return true; });
  }
};

// --- swam (arXiv 2306.08345) -------------------------------------------------

/// Swap admission: cached apps are kill-fodder — compressing them wastes
/// zRAM space and CPU on pages a cheap relaunch would regenerate, so
/// they are excluded from the store (the charter's swap_full_kill_fraction
/// handles the other half of the joint decision).
class SwamReclaim final : public ReclaimPolicy {
 public:
  explicit SwamReclaim(const MemoryConfig& config) : ReclaimPolicy(config) {}

  ReclaimPlan plan_batch(ReclaimView& view) override {
    return plan_single_tier(config_, view, [](const ProcessMem& process) {
      return process.oom_adj < OomAdj::kCached;
    });
  }
};

/// Victim selection by relaunch cost: among eligible processes, kill the
/// one freeing the most pages per unit of relaunch pain (cached apps
/// relaunch almost free; killing the foreground costs a full cold
/// start). Ties keep the reclaim-order winner (higher adj, colder LRU),
/// so selection is deterministic.
class SwamKill final : public KillPolicy {
 public:
  using KillPolicy::KillPolicy;

  std::optional<ProcessId> pick_victim(ProcessRegistry& registry, int min_adj) override {
    const ProcessMem* best = nullptr;
    double best_score = -1.0;
    for (ProcessMem* process : registry.reclaim_order()) {
      if (!process->killable || process->oom_adj < min_adj) continue;
      const double freed = static_cast<double>(process->anon_resident +
                                               process->file_resident + process->anon_swapped);
      const double score = freed / relaunch_weight(process->oom_adj);
      if (score > best_score) {
        best_score = score;
        best = process;
      }
    }
    if (best == nullptr) return std::nullopt;
    return best->pid;
  }

  static double relaunch_weight(int adj) noexcept {
    if (adj >= OomAdj::kCached) return 1.0;
    if (adj >= OomAdj::kService) return 4.0;
    if (adj >= OomAdj::kPerceptible) return 16.0;
    if (adj >= OomAdj::kVisible) return 32.0;
    return 64.0;
  }
};

// --- ariadne (arXiv 2502.12826) ----------------------------------------------

/// Hotness-aware size-adaptive compressed swap: a per-process hotness
/// EMA (recent CPU consumption sampled from the scheduler each batch)
/// orders compression coldest-process-first into two zRAM tiers — a
/// high-ratio/slow tier for cold processes and a low-ratio/fast tier for
/// warm ones — and the batch size doubles when the system is desperate.
/// Carries real state (hotness EMAs, per-process tier counts), so it
/// registers an MPOL snapshot section.
class AriadneReclaim final : public ReclaimPolicy {
 public:
  AriadneReclaim(const MemoryConfig& config, double hot_cut_refus, double cold_ratio,
                 double warm_ratio, double cold_cpu_refus, double warm_cpu_refus)
      : ReclaimPolicy(config),
        hot_cut_refus_(hot_cut_refus),
        cold_ratio_(cold_ratio),
        warm_ratio_(warm_ratio),
        cold_cpu_refus_(cold_cpu_refus),
        warm_cpu_refus_(warm_cpu_refus) {}

  void attach_scheduler(const sched::Scheduler* scheduler) override { scheduler_ = scheduler; }

  ReclaimPlan plan_batch(ReclaimView& view) override {
    sample_hotness();
    ReclaimPlan plan;
    const bool desperate = view.available < config_.minfree_service;
    // Size-adaptive batching: scan twice as hard once the system is
    // below the service minfree level.
    const Pages budget = desperate ? config_.kswapd_batch * 2 : config_.kswapd_batch;
    plan.scanned = budget;

    Pages candidates = 0;
    Pages reclaimable = 0;
    const Pages zram_headroom = config_.zram_capacity - view.zram_stored;
    Pages compressible_total = 0;
    for (ProcessMem* process : view.registry.reclaim_order()) {
      if (process->unevictable) continue;
      candidates += process->anon_resident + process->file_resident;
      const Pages protected_file =
          desperate ? 0 : std::min(process->file_resident, process->file_working_set / 2);
      reclaimable += process->file_resident - protected_file;
      compressible_total += std::max<Pages>(0, process->anon_resident - process->hot_pages);
    }
    reclaimable += std::min(compressible_total, zram_headroom);
    reclaimable += view.file_dirty - view.dirty_in_flight;
    candidates += view.file_dirty;
    const double efficiency =
        candidates > 0 ? static_cast<double>(reclaimable) / static_cast<double>(candidates)
                       : 0.0;
    Pages remaining = static_cast<Pages>(
        std::ceil(static_cast<double>(budget) * std::min(1.0, efficiency)));

    // File drops: baseline order (adj desc, LRU cold-first).
    for (ProcessMem* process : view.registry.reclaim_order()) {
      if (remaining <= 0) break;
      if (process->unevictable) continue;
      const Pages protected_file =
          desperate ? 0 : std::min(process->file_resident, process->file_working_set / 2);
      const Pages take = std::min(process->file_resident - protected_file, remaining);
      if (take <= 0) continue;
      plan.file_drops.push_back({process, take});
      remaining -= take;
    }

    // Compression: coldest process first (hotness asc, unique lru_seq
    // breaks ties → deterministic total order), tier by hotness cut.
    Pages cold_pages = 0;
    Pages warm_pages = 0;
    if (remaining > 0) {
      std::vector<ProcessMem*> order;
      for (ProcessMem* process : view.registry.reclaim_order()) {
        if (!process->unevictable) order.push_back(process);
      }
      std::sort(order.begin(), order.end(), [this](const ProcessMem* a, const ProcessMem* b) {
        const double ha = hotness_of(a->pid);
        const double hb = hotness_of(b->pid);
        if (ha != hb) return ha < hb;
        return a->lru_seq < b->lru_seq;
      });
      Pages zram_space = config_.zram_capacity - view.zram_stored;
      for (ProcessMem* process : order) {
        if (remaining <= 0 || zram_space <= 0) break;
        const Pages cold = std::max<Pages>(0, process->anon_resident - process->hot_pages);
        const Pages take = std::min({cold, remaining, zram_space});
        if (take <= 0) continue;
        const bool cold_tier = hotness_of(process->pid) <= hot_cut_refus_;
        plan.compress.push_back({process, take, cold_tier ? 0 : 1});
        (cold_tier ? cold_pages : warm_pages) += take;
        remaining -= take;
        zram_space -= take;
      }
    }

    if (remaining > 0) {
      const Pages dirty_available = view.file_dirty - view.dirty_in_flight;
      const Pages writeback = std::min(remaining, dirty_available);
      if (writeback > 0) plan.writeback = writeback;
    }

    plan.cpu_refus = static_cast<double>(plan.scanned) * config_.scan_cpu_refus +
                     static_cast<double>(cold_pages) * cold_cpu_refus_ +
                     static_cast<double>(warm_pages) * warm_cpu_refus_;
    return plan;
  }

  Pages zram_physical(Pages stored) const noexcept override {
    (void)stored;  // == cold_stored_ + warm_stored_ (conservation-checked)
    Pages physical = 0;
    if (cold_stored_ > 0) {
      physical += static_cast<Pages>(
          std::ceil(static_cast<double>(cold_stored_) / cold_ratio_));
    }
    if (warm_stored_ > 0) {
      physical += static_cast<Pages>(
          std::ceil(static_cast<double>(warm_stored_) / warm_ratio_));
    }
    return physical;
  }

  void note_swap_out(ProcessId pid, Pages pages, int tier) override {
    TierCount& count = stored_[pid];
    if (tier == 0) {
      count.cold += pages;
      cold_stored_ += pages;
    } else {
      count.warm += pages;
      warm_stored_ += pages;
    }
  }

  void note_swap_release(ProcessId pid, Pages pages) override {
    const auto it = stored_.find(pid);
    if (it == stored_.end()) return;
    // Warm pages come back first: the fast tier doubles as the staging
    // area for likely-soon faults.
    const Pages from_warm = std::min(pages, it->second.warm);
    it->second.warm -= from_warm;
    warm_stored_ -= from_warm;
    const Pages from_cold = std::min(pages - from_warm, it->second.cold);
    it->second.cold -= from_cold;
    cold_stored_ -= from_cold;
    if (it->second.cold == 0 && it->second.warm == 0) stored_.erase(it);
  }

  bool has_state() const noexcept override { return true; }

  void save(snapshot::ByteWriter& w) const override {
    w.u32(1);  // ariadne state version
    w.i64(cold_stored_);
    w.i64(warm_stored_);
    w.u64(stored_.size());
    for (const auto& [pid, count] : stored_) {
      w.u32(pid);
      w.i64(count.cold);
      w.i64(count.warm);
    }
    w.u64(hotness_.size());
    for (const auto& [pid, hot] : hotness_) {
      w.u32(pid);
      w.f64(hot);
    }
    w.u64(prev_cpu_.size());
    for (const auto& [pid, cpu] : prev_cpu_) {
      w.u32(pid);
      w.f64(cpu);
    }
  }

 private:
  double hotness_of(ProcessId pid) const noexcept {
    const auto it = hotness_.find(pid);
    return it == hotness_.end() ? 0.0 : it->second;
  }

  /// Fold the scheduler's cumulative per-thread CPU counters into a
  /// per-process hotness EMA (one sample per batch). Ascending-tid
  /// iteration makes the per-process fold deterministic; terminated
  /// threads keep their final counters, so deltas stay non-negative.
  void sample_hotness() {
    if (scheduler_ == nullptr) return;  // Immediate mode: LRU order only
    std::map<ProcessId, double> cumulative;
    const auto count = static_cast<sched::ThreadId>(scheduler_->thread_count());
    for (sched::ThreadId tid = 1; tid <= count; ++tid) {
      cumulative[static_cast<ProcessId>(scheduler_->pid_of(tid))] +=
          scheduler_->counters(tid).cpu_refus_consumed;
    }
    for (const auto& [pid, total] : cumulative) {
      double& prev = prev_cpu_[pid];
      const double delta = total - prev;
      prev = total;
      double& hot = hotness_[pid];
      hot = 0.5 * hot + 0.5 * delta;
    }
  }

  struct TierCount {
    Pages cold = 0;
    Pages warm = 0;
  };

  const sched::Scheduler* scheduler_ = nullptr;
  double hot_cut_refus_;
  double cold_ratio_;
  double warm_ratio_;
  double cold_cpu_refus_;
  double warm_cpu_refus_;
  Pages cold_stored_ = 0;
  Pages warm_stored_ = 0;
  std::map<ProcessId, TierCount> stored_;
  std::map<ProcessId, double> hotness_;
  std::map<ProcessId, double> prev_cpu_;
};

// --- partitioned (arXiv 2101.10707) ------------------------------------------

/// Reserved foreground partition: the foreground/visible/perceptible set
/// is never compressed to zRAM (its pages stay resident, so the user-
/// facing app never pays decompression stalls), and the kill charter
/// carves `reserve_pages` out of the background minfree ladder so
/// background kills fire early enough to keep the partition whole.
class PartitionedReclaim final : public ReclaimPolicy {
 public:
  explicit PartitionedReclaim(const MemoryConfig& config) : ReclaimPolicy(config) {}

  ReclaimPlan plan_batch(ReclaimView& view) override {
    return plan_single_tier(config_, view, [](const ProcessMem& process) {
      return process.oom_adj > OomAdj::kPerceptible;
    });
  }
};

// --- factory -----------------------------------------------------------------

void require_params(const MemPolicySpec& spec, std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : spec.params) {
    (void)value;
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      throw std::invalid_argument("mem policy '" + spec.name + "': unknown parameter '" + key +
                                  "'");
    }
  }
}

double param_or(const MemPolicySpec& spec, const char* key, double fallback) {
  for (const auto& [k, v] : spec.params) {
    if (k == key) return v;
  }
  return fallback;
}

bool has_param(const MemPolicySpec& spec, const char* key) {
  for (const auto& [k, v] : spec.params) {
    (void)v;
    if (k == key) return true;
  }
  return false;
}

KillCharter base_charter(const MemPolicySpec& spec, const MemoryConfig& config) {
  KillCharter charter;
  charter.policy_name = spec.name;
  charter.kill_threshold = config.lmkd_kill_threshold;
  charter.foreground_threshold = config.lmkd_foreground_threshold;
  charter.background_adj_floor = config.lmkd_background_adj_floor;
  charter.minfree_cached = config.minfree_cached;
  charter.minfree_service = config.minfree_service;
  charter.minfree_perceptible = config.minfree_perceptible;
  charter.minfree_foreground = config.minfree_foreground;
  return charter;
}

}  // namespace

std::unique_ptr<MemPolicy> make_mem_policy(const MemPolicySpec& spec,
                                           const MemoryConfig& config) {
  KillCharter charter = base_charter(spec, config);
  if (spec.name == "baseline") {
    require_params(spec, {});
    return std::make_unique<MemPolicy>(spec, std::make_unique<BaselineReclaim>(config),
                                       std::make_unique<KillPolicy>(std::move(charter)));
  }
  if (spec.name == "swam") {
    require_params(spec, {"swap_full_fraction", "kill_cooldown_ms"});
    charter.victim_rule = KillCharter::VictimRule::FloorOnly;
    const double fraction = param_or(spec, "swap_full_fraction", 0.85);
    if (fraction <= 0.0 || fraction > 1.0) {
      throw std::invalid_argument("mem policy 'swam': swap_full_fraction must be in (0, 1]");
    }
    charter.swap_full_kill_fraction = fraction;
    const double cooldown_ms = param_or(spec, "kill_cooldown_ms", 250.0);
    if (cooldown_ms < 0.0) {
      throw std::invalid_argument("mem policy 'swam': kill_cooldown_ms must be >= 0");
    }
    charter.kill_cooldown = sim::msec(static_cast<std::int64_t>(std::llround(cooldown_ms)));
    return std::make_unique<MemPolicy>(spec, std::make_unique<SwamReclaim>(config),
                                       std::make_unique<SwamKill>(std::move(charter)));
  }
  if (spec.name == "ariadne") {
    require_params(spec,
                   {"hot_cut_refus", "cold_ratio", "warm_ratio", "cold_cpu_refus",
                    "warm_cpu_refus"});
    const double hot_cut = param_or(spec, "hot_cut_refus", 500.0);
    const double cold_ratio = param_or(spec, "cold_ratio", 3.9);
    const double warm_ratio = param_or(spec, "warm_ratio", 2.2);
    const double cold_cpu = param_or(spec, "cold_cpu_refus", 34.0);
    const double warm_cpu = param_or(spec, "warm_cpu_refus", 14.0);
    if (cold_ratio < 1.0 || warm_ratio < 1.0) {
      throw std::invalid_argument("mem policy 'ariadne': compression ratios must be >= 1");
    }
    if (cold_cpu < 0.0 || warm_cpu < 0.0 || hot_cut < 0.0) {
      throw std::invalid_argument("mem policy 'ariadne': CPU costs and hot cut must be >= 0");
    }
    return std::make_unique<MemPolicy>(
        spec,
        std::make_unique<AriadneReclaim>(config, hot_cut, cold_ratio, warm_ratio, cold_cpu,
                                         warm_cpu),
        std::make_unique<KillPolicy>(std::move(charter)));
  }
  if (spec.name == "partitioned") {
    require_params(spec, {"reserve_mb"});
    charter.reserve_pages = config.minfree_perceptible;
    if (has_param(spec, "reserve_mb")) {
      const double reserve_mb = param_or(spec, "reserve_mb", 0.0);
      if (reserve_mb < 0.0) {
        throw std::invalid_argument("mem policy 'partitioned': reserve_mb must be >= 0");
      }
      charter.reserve_pages = pages_from_mb(static_cast<std::int64_t>(std::llround(reserve_mb)));
    }
    return std::make_unique<MemPolicy>(spec, std::make_unique<PartitionedReclaim>(config),
                                       std::make_unique<KillPolicy>(std::move(charter)));
  }
  throw std::invalid_argument("unknown mem policy '" + spec.name +
                              "' (known: baseline, swam, ariadne, partitioned)");
}

}  // namespace mvqoe::mem
