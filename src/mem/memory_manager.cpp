#include "mem/memory_manager.hpp"

#include <algorithm>
#include <cassert>
#include <climits>
#include <cmath>
#include <memory>

#include "snapshot/digest.hpp"

namespace mvqoe::mem {

namespace {

/// Largest single internal allocation step. Public allocations are
/// chunked so a big request can always be satisfied incrementally as
/// reclaim makes progress (and so one request can never demand more
/// headroom than the high watermark provides).
constexpr Pages kAllocChunk = 1024;  // 4 MiB

/// Storage read batching for refaults: pages per I/O request.
constexpr Pages kReadBatch = 64;  // 256 KiB

}  // namespace

const char* to_string(PressureLevel level) noexcept {
  switch (level) {
    case PressureLevel::Normal: return "Normal";
    case PressureLevel::Moderate: return "Moderate";
    case PressureLevel::Low: return "Low";
    case PressureLevel::Critical: return "Critical";
  }
  return "?";
}

MemoryManager::MemoryManager(sim::Engine& engine, MemoryConfig config,
                             sched::Scheduler& scheduler, storage::StorageDevice& storage,
                             trace::Tracer& tracer, const MemPolicySpec& policy)
    : engine_(engine),
      config_(config),
      scheduler_(&scheduler),
      storage_(&storage),
      tracer_(&tracer),
      policy_(make_mem_policy(policy, config)) {
  policy_->reclaim().attach_scheduler(scheduler_);
  sched::ThreadSpec kswapd;
  kswapd.name = "kswapd0";
  kswapd.pid = 1;
  kswapd.process_name = "kernel";
  kswapd.sched_class = sched::SchedClass::Fair;
  kswapd.priority = 0;  // same weight as foreground threads (paper §5)
  kswapd_tid_ = scheduler_->create_thread(kswapd);

  sched::ThreadSpec lmkd;
  lmkd.name = "lmkd";
  lmkd.pid = 2;
  lmkd.process_name = "lmkd";
  lmkd.sched_class = sched::SchedClass::Fair;
  lmkd.priority = -4;  // slightly boosted userspace daemon
  lmkd_tid_ = scheduler_->create_thread(lmkd);
}

MemoryManager::MemoryManager(sim::Engine& engine, MemoryConfig config,
                             const MemPolicySpec& policy)
    : engine_(engine), config_(config), policy_(make_mem_policy(policy, config)) {}

Pages MemoryManager::free_pages() const noexcept {
  const Pages used =
      config_.kernel_reserved + anon_pool_ + file_clean_ + file_dirty_ + zram_physical_;
  return std::max<Pages>(0, config_.total - used);
}

void MemoryManager::refresh_zram_physical() noexcept {
  zram_physical_ = policy_->reclaim().zram_physical(zram_stored_);
}

Pages MemoryManager::available_pages() const noexcept {
  return free_pages() + file_clean_ + file_dirty_;
}

double MemoryManager::utilization() const noexcept {
  return 1.0 - static_cast<double>(available_pages()) / static_cast<double>(config_.total);
}

// --- Process lifecycle -----------------------------------------------------

ProcessMem& MemoryManager::register_process(ProcessId pid, std::string name, int oom_adj,
                                            std::function<void()> on_kill) {
  ProcessMem& process = registry_.add(pid, std::move(name), oom_adj, std::move(on_kill));
  update_pressure_level();
  return process;
}

void MemoryManager::free_process_pages(ProcessId pid) {
  const ProcessRegistry::FreedPages freed = registry_.remove(pid);
  anon_pool_ -= freed.anon;
  file_clean_ -= freed.file;
  zram_stored_ -= freed.swapped;
  if (freed.swapped > 0) policy_->reclaim().note_swap_release(pid, freed.swapped);
  refresh_zram_physical();
  assert(anon_pool_ >= 0 && file_clean_ >= 0 && zram_stored_ >= 0);
  // Fail any allocation parked on behalf of the dead process.
  for (auto& waiter : waiters_) {
    if (waiter.pid == pid && waiter.done) {
      engine_.schedule(0, [done = std::move(waiter.done)] { done(false); });
      waiter.done = nullptr;
    }
  }
  pump_waiters();
  update_pressure_level();
}

void MemoryManager::exit_process(ProcessId pid) {
  if (!registry_.alive(pid)) return;
  if (scheduler_ != nullptr) scheduler_->terminate_process(pid);
  free_process_pages(pid);
}

void MemoryManager::kill_process(ProcessId pid) {
  kill_with_audit(pid, KillAudit::Reason::External, INT_MAX);
}

void MemoryManager::kill_with_audit(ProcessId pid, KillAudit::Reason reason, int min_adj) {
  const ProcessMem* process = registry_.find(pid);
  if (process == nullptr || !process->alive) return;
  const int adj = process->oom_adj;
  {
    KillAudit audit;
    audit.at = engine_.now();
    audit.pid = pid;
    audit.oom_adj = adj;
    audit.reason = reason;
    audit.min_adj = min_adj;
    audit.policy_name = policy_->name();
    for (const ProcessMem* p : registry_.all()) {
      if (p->alive && p->killable) audit.max_killable_adj = std::max(audit.max_killable_adj, p->oom_adj);
    }
    audit.pressure = pressure_P();
    audit.available = available_pages();
    audit.zram_stored = zram_stored_;
    kill_audits_.push_back(audit);
  }
  std::function<void()> on_kill = process->on_kill;
  ++vmstat_.kills_lmkd;
  if (tracer_ != nullptr) {
    tracer_->instant(trace::InstantKind::ProcessKilled, engine_.now(), 0, adj);
  }
  if (scheduler_ != nullptr) scheduler_->terminate_process(pid);
  free_process_pages(pid);
  if (on_kill) engine_.schedule(0, std::move(on_kill));
}

void MemoryManager::set_oom_adj(ProcessId pid, int adj) {
  registry_.set_oom_adj(pid, adj);
  update_pressure_level();
}

void MemoryManager::touch_lru(ProcessId pid) { registry_.touch(pid); }

void MemoryManager::set_hot_pages(ProcessId pid, Pages hot) {
  if (ProcessMem* process = registry_.find(pid)) {
    process->hot_pages =
        std::clamp<Pages>(hot, 0, process->anon_resident + process->anon_swapped);
  }
}

// --- Allocation core -------------------------------------------------------

void MemoryManager::acquire_pages(Pages pages, ProcessId pid, sched::ThreadId tid,
                                  std::function<void(bool)> done) {
  assert(pages >= 0);
  if (free_pages() - pages >= config_.watermark_min) {
    done(true);
    return;
  }
  ++vmstat_.direct_reclaim_entries;
  wake_kswapd();
  direct_reclaim(pages, pid, tid, config_.direct_reclaim_rounds, engine_.now(), std::move(done));
}

void MemoryManager::direct_reclaim(Pages pages, ProcessId pid, sched::ThreadId tid,
                                   int rounds_left, sim::Time started,
                                   std::function<void(bool)> done) {
  if (free_pages() - pages >= config_.watermark_min) {
    if (tracer_ != nullptr) {
      tracer_->instant(trace::InstantKind::DirectReclaim, engine_.now(), tid,
                       engine_.now() - started);
    }
    done(true);
    return;
  }
  if (rounds_left <= 0) {
    park_waiter(pages, pid, tid, started, std::move(done));
    return;
  }

  const ReclaimOutcome outcome = run_reclaim_batch(/*kswapd=*/false);
  vmstat_.pgscan_direct += static_cast<std::uint64_t>(outcome.scanned);
  vmstat_.pgsteal_direct += static_cast<std::uint64_t>(outcome.freed_now + outcome.writeback);
  record_pressure(outcome);
  update_pressure_level();
  maybe_activate_lmkd();

  auto next = [this, pages, pid, tid, rounds_left, started, done = std::move(done)]() mutable {
    direct_reclaim(pages, pid, tid, rounds_left - 1, started, std::move(done));
  };
  if (scheduled() && tid != 0 && scheduler_->exists(tid)) {
    // The allocating thread itself burns the scan/compress CPU — the
    // §2 direct-reclaim stall, happening on (e.g.) a decoder thread.
    scheduler_->run_work(tid, outcome.cpu_refus, std::move(next));
  } else {
    next();
  }
}

void MemoryManager::park_waiter(Pages pages, ProcessId pid, sched::ThreadId tid,
                                sim::Time started, std::function<void(bool)> done) {
  // The thread now blocks until writeback or an lmkd kill frees memory
  // (paper §2: direct reclaim "often requires disk I/O ... or wait for
  // lmkd to kill a process").
  if (scheduled() && tid != 0 && scheduler_->exists(tid) && scheduler_->is_idle(tid)) {
    scheduler_->mark_blocked_io(tid);
  }
  const std::uint64_t id = next_waiter_id_++;
  waiters_.push_back(Waiter{id, pages, pid, tid, started, std::move(done)});
  maybe_activate_lmkd();
  engine_.schedule_flat(config_.oom_kill_timeout, &MemoryManager::on_oom_check, this, id);
}

void MemoryManager::oom_check(std::uint64_t waiter_id) {
  // Still parked after the timeout? The kernel OOM killer steps in and
  // kills the highest-score victim — possibly the allocating process
  // itself when nothing lower-priority is left.
  for (const Waiter& waiter : waiters_) {
    if (waiter.id != waiter_id || waiter.done == nullptr) continue;
    // Prefer background victims; the foreground dies only when nothing
    // else is left (classic OOM-killer escalation). The OOM killer is
    // mechanism, not policy: it always takes the highest-score victim.
    int floor_used = policy_->charter().background_adj_floor;
    std::optional<ProcessId> victim = registry_.pick_victim(floor_used);
    if (!victim.has_value()) {
      floor_used = OomAdj::kForeground;
      victim = registry_.pick_victim(floor_used);
    }
    if (victim.has_value()) {
      kill_with_audit(*victim, KillAudit::Reason::Oom, floor_used);
      last_lmkd_kill_ = engine_.now();
    }
    // Re-arm in case the kill did not free enough (or no victim existed).
    for (const Waiter& again : waiters_) {
      if (again.id == waiter_id && again.done != nullptr) {
        engine_.schedule_flat(config_.oom_kill_timeout, &MemoryManager::on_oom_check, this,
                              waiter_id);
        break;
      }
    }
    return;
  }
}

void MemoryManager::pump_waiters() {
  if (pumping_) return;
  pumping_ = true;
  while (!waiters_.empty()) {
    Waiter& front = waiters_.front();
    if (front.done == nullptr) {  // cancelled by process death
      waiters_.pop_front();
      continue;
    }
    if (free_pages() - front.pages < config_.watermark_min) break;
    Waiter waiter = std::move(front);
    waiters_.pop_front();
    if (tracer_ != nullptr) {
      tracer_->instant(trace::InstantKind::DirectReclaim, engine_.now(), waiter.tid,
                       engine_.now() - waiter.started);
    }
    waiter.done(true);
  }
  pumping_ = false;
}

void MemoryManager::alloc_anon(ProcessId pid, Pages pages, sched::ThreadId tid,
                               AllocCallback done) {
  if (!registry_.alive(pid) || pages < 0) {
    if (done) done(false);
    return;
  }
  if (pages == 0) {
    if (done) done(true);
    return;
  }
  const Pages chunk = std::min(pages, kAllocChunk);
  acquire_pages(chunk, pid, tid, [this, pid, pages, chunk, tid, done = std::move(done)](bool ok) mutable {
    ProcessMem* process = registry_.find(pid);
    if (!ok || process == nullptr) {
      if (done) done(false);
      return;
    }
    process->anon_resident += chunk;
    anon_pool_ += chunk;
    if (free_pages() < config_.watermark_low) wake_kswapd();
    update_pressure_level();
    if (pages - chunk > 0) {
      alloc_anon(pid, pages - chunk, tid, std::move(done));
    } else if (done) {
      done(true);
    }
  });
}

void MemoryManager::free_anon(ProcessId pid, Pages pages) {
  ProcessMem* process = registry_.find(pid);
  if (process == nullptr || pages <= 0) return;
  // Free resident pages first, then swapped.
  const Pages from_resident = std::min(pages, process->anon_resident);
  process->anon_resident -= from_resident;
  anon_pool_ -= from_resident;
  const Pages from_swap = std::min(pages - from_resident, process->anon_swapped);
  process->anon_swapped -= from_swap;
  zram_stored_ -= from_swap;
  if (from_swap > 0) policy_->reclaim().note_swap_release(pid, from_swap);
  refresh_zram_physical();
  pump_waiters();
  update_pressure_level();
}

void MemoryManager::map_file(ProcessId pid, Pages pages, sched::ThreadId tid,
                             AllocCallback done) {
  if (!registry_.alive(pid) || pages < 0) {
    if (done) done(false);
    return;
  }
  if (pages == 0) {
    if (done) done(true);
    return;
  }
  const Pages chunk = std::min(pages, kAllocChunk);
  acquire_pages(chunk, pid, tid, [this, pid, pages, chunk, tid, done = std::move(done)](bool ok) mutable {
    ProcessMem* process = registry_.find(pid);
    if (!ok || process == nullptr) {
      if (done) done(false);
      return;
    }
    process->file_resident += chunk;
    process->file_working_set += chunk;
    file_clean_ += chunk;
    vmstat_.pgpgin += static_cast<std::uint64_t>(chunk);
    if (free_pages() < config_.watermark_low) wake_kswapd();
    update_pressure_level();
    auto continue_rest = [this, pid, pages, chunk, tid, done = std::move(done)]() mutable {
      if (pages - chunk > 0) {
        map_file(pid, pages - chunk, tid, std::move(done));
      } else if (done) {
        done(true);
      }
    };
    if (scheduled()) {
      // Read the mapped pages from storage.
      if (tid != 0 && scheduler_->exists(tid) && scheduler_->is_idle(tid)) {
        scheduler_->mark_blocked_io(tid);
      }
      storage_->submit(storage::IoRequest{false, static_cast<std::uint64_t>(bytes_from_pages(chunk)),
                                          std::move(continue_rest)});
    } else {
      continue_rest();
    }
  });
}

void MemoryManager::unmap_file(ProcessId pid, Pages pages) {
  ProcessMem* process = registry_.find(pid);
  if (process == nullptr || pages <= 0) return;
  const Pages take = std::min(pages, process->file_resident);
  process->file_resident -= take;
  file_clean_ -= take;
  process->file_working_set = std::max<Pages>(0, process->file_working_set - pages);
  pump_waiters();
  update_pressure_level();
}

void MemoryManager::dirty_file(Pages pages) {
  if (pages <= 0) return;
  // Dirty data is buffered unconditionally (writers are throttled by
  // reclaim later, not at this call).
  file_dirty_ += pages;
  if (free_pages() < config_.watermark_low) wake_kswapd();
  update_pressure_level();
}

void MemoryManager::touch_working_set(ProcessId pid, sched::ThreadId tid, Pages anon_touch,
                                      Pages file_touch, AllocCallback done) {
  ProcessMem* process = registry_.find(pid);
  if (process == nullptr) {
    if (done) done(false);
    return;
  }
  registry_.touch(pid);

  // Fault model: the process touches its *hot* set, which reclaim mostly
  // protects — so faults come from (a) the hard shortfall when resident
  // memory no longer covers the touched set, plus (b) an imperfect-LRU
  // leak: a few percent of touches land on pages the kernel guessed
  // wrong about and compressed anyway.
  constexpr double kAnonLeak = 0.35;
  Pages anon_faults = 0;
  const Pages anon_total = process->anon_resident + process->anon_swapped;
  if (anon_touch > 0 && process->anon_swapped > 0 && anon_total > 0) {
    const Pages shortfall = std::max<Pages>(0, anon_touch - process->anon_resident);
    // Leak scales with the swapped *fraction*: lightly-swapped processes
    // rarely trip over a compressed page; deeply-swapped ones constantly.
    const double swap_fraction =
        static_cast<double>(process->anon_swapped) / static_cast<double>(anon_total);
    const Pages leak =
        static_cast<Pages>(kAnonLeak * swap_fraction * static_cast<double>(anon_touch));
    anon_faults = std::min(process->anon_swapped, shortfall + leak);
  }
  // File refaults: evicted working-set share, damped by the same
  // imperfect-LRU consideration (the kernel's workingset protection keeps
  // most of the active file list resident until memory is truly tight).
  constexpr double kFileLeak = 0.30;
  Pages file_refaults = 0;
  if (file_touch > 0 && process->file_working_set > 0) {
    const double resident_fraction =
        std::min(1.0, static_cast<double>(process->file_resident) /
                          static_cast<double>(process->file_working_set));
    const Pages touched = std::min(file_touch, process->file_working_set);
    file_refaults = static_cast<Pages>(
        std::llround(kFileLeak * static_cast<double>(touched) * (1.0 - resident_fraction)));
    file_refaults = std::min(file_refaults, process->file_working_set - process->file_resident);
  }

  auto do_file_stage = [this, pid, tid, file_refaults, done = std::move(done)]() mutable {
    fault_file_pages(pid, tid, file_refaults, std::move(done));
  };
  fault_anon_pages(pid, tid, anon_faults, std::move(do_file_stage));
}

void MemoryManager::fault_anon_pages(ProcessId pid, sched::ThreadId tid, Pages remaining,
                                     std::function<void()> next) {
  ProcessMem* process = registry_.find(pid);
  if (process == nullptr || remaining <= 0 || process->anon_swapped <= 0) {
    next();
    return;
  }
  // Decompress a chunk from zRAM on the faulting thread, backed by a page
  // allocation for the decompressed copies.
  const Pages chunk = std::min({remaining, process->anon_swapped, kAllocChunk});
  auto apply = [this, pid, tid, chunk, remaining, next = std::move(next)]() mutable {
    acquire_pages(chunk, pid, 0, [this, pid, tid, chunk, remaining,
                                  next = std::move(next)](bool ok) mutable {
      ProcessMem* process = registry_.find(pid);
      if (ok && process != nullptr) {
        const Pages take = std::min(chunk, process->anon_swapped);
        process->anon_swapped -= take;
        process->anon_resident += take;
        zram_stored_ -= take;
        anon_pool_ += take;
        if (take > 0) policy_->reclaim().note_swap_release(pid, take);
        refresh_zram_physical();
        vmstat_.pswpin += static_cast<std::uint64_t>(take);
        update_pressure_level();
        fault_anon_pages(pid, tid, remaining - chunk, std::move(next));
      } else {
        next();
      }
    });
  };
  if (scheduled() && tid != 0 && scheduler_->exists(tid)) {
    scheduler_->run_work(tid, static_cast<double>(chunk) * config_.decompress_cpu_refus,
                         std::move(apply));
  } else {
    apply();
  }
}

void MemoryManager::fault_file_pages(ProcessId pid, sched::ThreadId tid, Pages remaining,
                                     AllocCallback done) {
  ProcessMem* process = registry_.find(pid);
  if (process == nullptr) {
    if (done) done(false);
    return;
  }
  if (remaining <= 0) {
    if (done) done(true);
    return;
  }
  // Page the evicted file pages back in chunk by chunk: allocate cache
  // pages, then read from storage in kReadBatch batches (each batch = one
  // mmcqd request = one potential preemption of a video thread).
  const Pages chunk = std::min(remaining, kAllocChunk);
  acquire_pages(chunk, pid, tid, [this, pid, tid, chunk, remaining,
                                  done = std::move(done)](bool ok) mutable {
    ProcessMem* process = registry_.find(pid);
    if (!ok || process == nullptr) {
      if (done) done(false);
      return;
    }
    process->file_resident += chunk;
    file_clean_ += chunk;
    vmstat_.pgpgin += static_cast<std::uint64_t>(chunk);
    update_pressure_level();
    auto continue_rest = [this, pid, tid, chunk, remaining, done = std::move(done)]() mutable {
      fault_file_pages(pid, tid, remaining - chunk, std::move(done));
    };
    if (!scheduled()) {
      continue_rest();
      return;
    }
    const Pages batches = (chunk + kReadBatch - 1) / kReadBatch;
    auto pending = std::make_shared<Pages>(batches);
    auto finish = std::make_shared<std::function<void()>>(std::move(continue_rest));
    auto reads = [this, batches, chunk, pending, finish] {
      for (Pages i = 0; i < batches; ++i) {
        const Pages pages_in_batch = std::min<Pages>(kReadBatch, chunk - i * kReadBatch);
        storage_->submit(storage::IoRequest{
            false, static_cast<std::uint64_t>(bytes_from_pages(pages_in_batch)),
            [pending, finish] {
              if (--*pending == 0 && *finish) (*finish)();
            }});
      }
    };
    // The fault path itself costs CPU on the faulting thread before the
    // reads are issued.
    if (tid != 0 && scheduler_->exists(tid) && scheduler_->is_idle(tid)) {
      scheduler_->run_work(tid, static_cast<double>(chunk) * config_.file_fault_cpu_refus,
                           [this, tid, reads = std::move(reads)]() mutable {
                             if (scheduler_->exists(tid) && scheduler_->is_idle(tid)) {
                               scheduler_->mark_blocked_io(tid);
                             }
                             reads();
                           });
    } else {
      reads();
    }
  });
}

// --- Reclaim ----------------------------------------------------------------

MemoryManager::ReclaimOutcome MemoryManager::run_reclaim_batch(bool kswapd) {
  // The policy plans the batch against a read-only pool view; the
  // mechanism applies the plan so page accounting (and its conservation
  // audit) stays in one place. What a batch takes — which processes,
  // which pool, which zRAM tier, at what CPU cost — is entirely the
  // policy's call (DESIGN.md §16).
  ReclaimView view{registry_, available_pages(), zram_stored_,
                   file_dirty_, dirty_in_flight_,  kswapd};
  const ReclaimPlan plan = policy_->reclaim().plan_batch(view);

  ReclaimOutcome outcome;
  outcome.scanned = plan.scanned;

  // 1. Drop clean file pages.
  for (const ReclaimPlan::FileTake& take : plan.file_drops) {
    take.process->file_resident -= take.pages;
    file_clean_ -= take.pages;
    outcome.freed_now += take.pages;
  }

  // 2. Compress anonymous pages into zRAM. Each take is charged the
  // store's physical growth (per the policy's tier ratios) against the
  // freed total, exactly as the pre-policy manager did per process.
  for (const ReclaimPlan::CompressTake& take : plan.compress) {
    const Pages physical_before = zram_physical_;
    take.process->anon_resident -= take.pages;
    take.process->anon_swapped += take.pages;
    anon_pool_ -= take.pages;
    zram_stored_ += take.pages;
    policy_->reclaim().note_swap_out(take.process->pid, take.pages, take.tier);
    refresh_zram_physical();
    outcome.freed_now += take.pages - (zram_physical_ - physical_before);
    vmstat_.pswpout += static_cast<std::uint64_t>(take.pages);
  }

  // 3. Write back dirty file pages through the storage stack.
  if (plan.writeback > 0) {
    const Pages writeback = plan.writeback;
    outcome.writeback = writeback;
    if (scheduled()) {
      dirty_in_flight_ += writeback;
      storage_->submit(storage::IoRequest{
          true, static_cast<std::uint64_t>(bytes_from_pages(writeback)), [this, writeback] {
            dirty_in_flight_ -= writeback;
            file_dirty_ -= writeback;
            vmstat_.pgpgout += static_cast<std::uint64_t>(writeback);
            pump_waiters();
            update_pressure_level();
          }});
    } else {
      file_dirty_ -= writeback;
      vmstat_.pgpgout += static_cast<std::uint64_t>(writeback);
    }
  }

  outcome.cpu_refus = plan.cpu_refus;
  return outcome;
}

double MemoryManager::pressure_P() const noexcept {
  const double age_s = sim::to_seconds(engine_.now() - last_pressure_sample_);
  // Half-life of 1.5 s once scanning stops.
  const double decay = std::pow(0.5, std::max(0.0, age_s) / 1.5);
  return pressure_ema_ * decay;
}

void MemoryManager::record_pressure(const ReclaimOutcome& outcome) {
  if (outcome.scanned <= 0) return;
  // Fold the decay-to-date in before mixing the new sample.
  pressure_ema_ = pressure_P();
  last_pressure_sample_ = engine_.now();
  const double reclaimed = static_cast<double>(outcome.freed_now + outcome.writeback);
  const double batch_p =
      std::clamp((1.0 - reclaimed / static_cast<double>(outcome.scanned)) * 100.0, 0.0, 100.0);
  pressure_ema_ = config_.pressure_ema_alpha * batch_p +
                  (1.0 - config_.pressure_ema_alpha) * pressure_ema_;
}

void MemoryManager::wake_kswapd() {
  if (!scheduled()) {
    // Immediate mode: reclaim applies synchronously, and must run
    // *before* lmkd eligibility is re-evaluated — instant reclaim stands
    // in for the kswapd work that, on a real device, keeps free memory
    // above the minfree levels most of the time.
    if (!kswapd_active_) ++vmstat_.kswapd_wakeups;
    kswapd_active_ = true;
    if (!immediate_reclaiming_) {
      immediate_reclaiming_ = true;
      immediate_reclaim_to_high();
      immediate_reclaiming_ = false;
    }
    update_pressure_level();
    return;
  }
  if (kswapd_active_) return;
  kswapd_active_ = true;
  ++vmstat_.kswapd_wakeups;
  update_pressure_level();
  if (!kswapd_running_) {
    kswapd_running_ = true;
    // Enter the step loop from a fresh event so the waker's call stack
    // stays shallow.
    engine_.schedule_flat(0, &MemoryManager::on_kswapd_step, this);
  }
}

void MemoryManager::on_oom_check(void* ctx, std::uint64_t waiter_id) {
  static_cast<MemoryManager*>(ctx)->oom_check(waiter_id);
}

void MemoryManager::on_kswapd_step(void* ctx, std::uint64_t) {
  static_cast<MemoryManager*>(ctx)->kswapd_step();
}

void MemoryManager::kswapd_step() {
  if (free_pages() >= config_.watermark_high) {
    kswapd_sleep();
    return;
  }
  const ReclaimOutcome outcome = run_reclaim_batch(/*kswapd=*/true);
  vmstat_.pgscan_kswapd += static_cast<std::uint64_t>(outcome.scanned);
  vmstat_.pgsteal_kswapd += static_cast<std::uint64_t>(outcome.freed_now + outcome.writeback);
  record_pressure(outcome);
  pump_waiters();
  update_pressure_level();
  maybe_activate_lmkd();

  if (outcome.freed_now <= 0 && outcome.writeback <= 0) {
    if (free_pages() >= config_.watermark_low) {
      // Above the low watermark with nothing reclaimable: give up until
      // woken again (hammering an unreclaimable LRU from the comfortable
      // band would just report phantom pressure).
      kswapd_sleep();
      return;
    }
    // Genuinely low: wait for writeback / lmkd progress and retry.
    scheduler_->sleep_for(kswapd_tid_, config_.kswapd_backoff, [this] { kswapd_step(); });
    return;
  }
  scheduler_->run_work(kswapd_tid_, outcome.cpu_refus, [this] { kswapd_step(); });
}

void MemoryManager::kswapd_sleep() {
  kswapd_active_ = false;
  kswapd_running_ = false;
  update_pressure_level();
}

void MemoryManager::immediate_reclaim_to_high() {
  int idle_rounds = 0;
  while (free_pages() < config_.watermark_high && idle_rounds < 2) {
    const ReclaimOutcome outcome = run_reclaim_batch(/*kswapd=*/true);
    vmstat_.pgscan_kswapd += static_cast<std::uint64_t>(outcome.scanned);
    vmstat_.pgsteal_kswapd += static_cast<std::uint64_t>(outcome.freed_now + outcome.writeback);
    record_pressure(outcome);
    maybe_activate_lmkd();
    idle_rounds = (outcome.freed_now <= 0 && outcome.writeback <= 0) ? idle_rounds + 1 : 0;
  }
  pump_waiters();
  if (free_pages() >= config_.watermark_high) kswapd_active_ = false;
  update_pressure_level();
}

// --- lmkd -------------------------------------------------------------------

int MemoryManager::lmkd_min_adj() const noexcept {
  // Shared replay logic: the same function the lmkd-ordering oracle
  // calls when it audits this decision, so live behavior and legality
  // rules cannot drift (kNoKillFloor == INT_MAX).
  return replay_kill_floor(policy_->charter(), pressure_P(), available_pages(), zram_stored_,
                           config_.zram_capacity);
}

void MemoryManager::maybe_activate_lmkd() {
  if (lmkd_min_adj() == INT_MAX) return;
  if (engine_.now() - last_lmkd_kill_ < policy_->charter().kill_cooldown) return;
  if (scheduled()) {
    if (lmkd_busy_) return;
    lmkd_busy_ = true;
    scheduler_->run_work(lmkd_tid_, config_.lmkd_kill_cpu_refus, [this] {
      lmkd_busy_ = false;
      lmkd_do_kill();
    });
  } else {
    lmkd_do_kill();
  }
}

void MemoryManager::lmkd_do_kill() {
  // Re-check: pressure may have eased while lmkd's selection ran.
  const int min_adj = lmkd_min_adj();
  if (min_adj == INT_MAX) return;
  const std::optional<ProcessId> victim = policy_->kill().pick_victim(registry_, min_adj);
  if (!victim.has_value()) return;
  last_lmkd_kill_ = engine_.now();
  kill_with_audit(*victim, KillAudit::Reason::Lmkd, min_adj);
  // A kill frees pages; give the pressure estimate credit so lmkd does
  // not machine-gun through the process list before the next scan batch
  // re-measures.
  pressure_ema_ *= 0.6;
  update_pressure_level();
}

// --- Pressure level ----------------------------------------------------------

void MemoryManager::update_pressure_level() {
  // Android derives the memory-pressure state from the cached/empty
  // process count in the LRU (footnote 6: because the system aggressively
  // re-caches processes, a shrinking cached list *is* the pressure
  // signal). The state therefore persists until respawns refill the LRU
  // — which is what gives the multi-second dwell times of Fig 6. A
  // failing-reclaim P estimate escalates straight to Critical.
  PressureLevel next = PressureLevel::Normal;
  if (pressure_P() >= config_.lmkd_foreground_threshold) {
    next = PressureLevel::Critical;
  } else {
    const int cached = registry_.cached_count();
    if (cached <= config_.trim_critical) {
      next = PressureLevel::Critical;
    } else if (cached <= config_.trim_low) {
      next = PressureLevel::Low;
    } else if (cached <= config_.trim_moderate) {
      next = PressureLevel::Moderate;
    }
  }
  // Pressure levels and lmkd eligibility share their inputs; re-evaluate
  // lmkd whenever the accounting moved (guarded by cooldown/busy inside).
  maybe_activate_lmkd();
  if (next == level_) return;
  level_ = next;
  if (tracer_ != nullptr) {
    tracer_->instant(trace::InstantKind::PressureState, engine_.now(), 0,
                     static_cast<std::int64_t>(next));
  }
  if (next != PressureLevel::Normal) {
    ++vmstat_.trim_signals[static_cast<std::size_t>(next)];
    if (tracer_ != nullptr) {
      tracer_->instant(trace::InstantKind::TrimSignal, engine_.now(), 0,
                       static_cast<std::int64_t>(next));
    }
  }
  for (const TrimListener& listener : trim_listeners_) listener(next);
}

void MemoryManager::subscribe_trim(TrimListener listener) {
  trim_listeners_.push_back(std::move(listener));
}

MemoryManager::ConservationReport MemoryManager::check_conservation() const {
  ConservationReport report;
  auto fail = [&report](std::string detail) {
    report.ok = false;
    if (report.detail.empty()) report.detail = std::move(detail);
  };
  Pages anon = 0;
  Pages swapped = 0;
  Pages file = 0;
  for (const ProcessMem* process : registry_.all()) {
    if (process->anon_resident < 0 || process->anon_swapped < 0 ||
        process->file_resident < 0 || process->file_working_set < 0) {
      fail("negative per-process page count (pid " + std::to_string(process->pid) + ")");
    }
    anon += process->anon_resident;
    swapped += process->anon_swapped;
    file += process->file_resident;
  }
  if (anon != anon_pool_) {
    fail("anon pool " + std::to_string(anon_pool_) + " != registry sum " + std::to_string(anon));
  }
  if (swapped != zram_stored_) {
    fail("zram stored " + std::to_string(zram_stored_) + " != registry sum " +
         std::to_string(swapped));
  }
  if (file != file_clean_) {
    fail("clean file pool " + std::to_string(file_clean_) + " != registry sum " +
         std::to_string(file));
  }
  if (file_dirty_ < 0 || dirty_in_flight_ < 0 || dirty_in_flight_ > file_dirty_) {
    fail("dirty writeback accounting (dirty " + std::to_string(file_dirty_) + ", in flight " +
         std::to_string(dirty_in_flight_) + ")");
  }
  if (zram_stored_ > config_.zram_capacity) fail("zram over capacity");
  if (zram_physical_ != policy_->reclaim().zram_physical(zram_stored_)) {
    fail("zram physical cache stale (" + std::to_string(zram_physical_) + " cached vs " +
         std::to_string(policy_->reclaim().zram_physical(zram_stored_)) + " recomputed)");
  }
  const Pages used =
      config_.kernel_reserved + anon_pool_ + file_clean_ + file_dirty_ + zram_physical_;
  if (used > config_.total) {
    fail("pools exceed physical memory by " + std::to_string(used - config_.total) + " pages");
  }
  return report;
}

void MemoryManager::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  registry_.save(w);
  w.i64(anon_pool_);
  w.i64(file_clean_);
  w.i64(file_dirty_);
  w.i64(dirty_in_flight_);
  w.i64(zram_stored_);
  w.f64(pressure_ema_);
  w.i64(last_pressure_sample_);
  w.u8(static_cast<std::uint8_t>(level_));
  w.u64(kswapd_tid_);
  w.u64(lmkd_tid_);
  w.b(kswapd_active_);
  w.b(kswapd_running_);
  w.b(lmkd_busy_);
  w.i64(last_lmkd_kill_);
  w.u64(vmstat_.pgscan_kswapd);
  w.u64(vmstat_.pgsteal_kswapd);
  w.u64(vmstat_.pgscan_direct);
  w.u64(vmstat_.pgsteal_direct);
  w.u64(vmstat_.pswpout);
  w.u64(vmstat_.pswpin);
  w.u64(vmstat_.pgpgin);
  w.u64(vmstat_.pgpgout);
  w.u64(vmstat_.kswapd_wakeups);
  w.u64(vmstat_.direct_reclaim_entries);
  w.u64(vmstat_.kills_lmkd);
  for (const std::uint64_t signals : vmstat_.trim_signals) w.u64(signals);
  w.u64(next_waiter_id_);
  w.u64(waiters_.size());
  for (const Waiter& waiter : waiters_) {
    w.u64(waiter.id);
    w.i64(waiter.pages);
    w.u32(waiter.pid);
    w.u64(waiter.tid);
    w.i64(waiter.started);
  }
}

std::uint64_t MemoryManager::digest() const { return snapshot::state_digest(*this); }

}  // namespace mvqoe::mem
