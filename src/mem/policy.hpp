// Pluggable reclaim/kill policy layer (DESIGN.md §16) — the "what if
// Android did X" swap/OOMK lab.
//
// The MemoryManager is split into a mechanism core (page pools,
// watermarks, the zRAM store, kswapd/lmkd threads, kill audits) and two
// policy interfaces this header defines:
//
//   * ReclaimPolicy — what one scan batch takes: which processes lose
//     clean file pages, which anonymous pages are compressed (and into
//     which zRAM tier), how much dirty writeback is queued, and what the
//     batch costs in CPU. The policy *plans*; the mechanism applies the
//     plan so page accounting stays in one place.
//   * KillPolicy — when lmkd kills and whom: the policy publishes its
//     decision rules as a declarative KillCharter (thresholds, minfree
//     ladder, cooldown, victim rule), and may override victim selection.
//
// The charter is the contract that keeps the src/check oracles honest
// across policies: `replay_kill_floor()` below is the single source of
// truth for the pressure/minfree band floor — the live KillPolicy and
// the lmkd-ordering oracle both call it, so the legality rules can never
// drift from the implementation.
//
// Registered variants (make_mem_policy):
//   baseline    — today's Android model, byte-identical to the
//                 pre-refactor MemoryManager (proven by golden blobs).
//   swam        — joint swap/OOMK management keyed on app relaunch cost
//                 (arXiv 2306.08345): swap admission skips kill-fodder
//                 cached apps, a nearly-full zRAM triggers background
//                 kills instead of thrashing, and the victim maximizes
//                 freed-pages per relaunch cost (FloorOnly rule).
//   ariadne     — hotness-aware size-adaptive compressed swap
//                 (arXiv 2502.12826): per-process hotness EMA fed from
//                 scheduler CPU counters orders compression coldest
//                 first into dual zRAM tiers (cold = high ratio / slow,
//                 warm = low ratio / fast), with adaptive batch sizing.
//   partitioned — reserved foreground partition in the spirit of
//                 arXiv 2101.10707: the foreground/perceptible set is
//                 never compressed and the kill ladder keeps a reserve
//                 carve-out for it.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mem/process_registry.hpp"
#include "mem/types.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe::sched {
class Scheduler;
}

namespace mvqoe::mem {

/// Which policy a world runs, as scenario data: a registered name plus
/// optional (key, value) parameter overrides. The default-constructed
/// spec is the baseline and serializes to *nothing* — SCEN blobs and
/// campaign fingerprints only grow a policy section when one is set.
struct MemPolicySpec {
  std::string name = "baseline";
  std::vector<std::pair<std::string, double>> params;

  bool is_baseline() const noexcept { return name == "baseline" && params.empty(); }

  friend bool operator==(const MemPolicySpec& a, const MemPolicySpec& b) {
    return a.name == b.name && a.params == b.params;
  }
};

void save_policy_spec(snapshot::ByteWriter& w, const MemPolicySpec& spec);
MemPolicySpec load_policy_spec(snapshot::ByteReader& r);

/// Registered policy names, factory order (docs, CLIs, the fuzzer's
/// policy axis).
const std::vector<std::string>& mem_policy_names();

/// Throws std::invalid_argument on an unknown policy name or a parameter
/// the named policy does not declare.
void validate_policy_spec(const MemPolicySpec& spec);

/// replay_kill_floor() result when no band demands a kill.
inline constexpr int kNoKillFloor = std::numeric_limits<int>::max();

/// A KillPolicy's decision rules, published as plain data so the
/// lmkd-ordering oracle can replay every kill decision without touching
/// the simulator. Field defaults mirror MemoryConfig's defaults — a
/// default-constructed charter IS the baseline on the 1 GB preset
/// (mem_policy_test pins this equivalence).
struct KillCharter {
  /// How lmkd picks among eligible victims.
  enum class VictimRule : std::uint8_t {
    HighestAdj = 0,  ///< highest killable oom_adj, coldest LRU ties (Android)
    FloorOnly = 1,   ///< any process at/above the floor (policy scoring)
  };

  std::string policy_name = "baseline";
  /// vmpressure bands: P > kill_threshold kills background processes,
  /// P >= foreground_threshold makes the foreground eligible.
  double kill_threshold = 60.0;
  double foreground_threshold = 95.0;
  int background_adj_floor = OomAdj::kService;
  /// minfree ladder on available memory (free + file cache).
  Pages minfree_cached = pages_from_mb(44);
  Pages minfree_service = pages_from_mb(28);
  Pages minfree_perceptible = pages_from_mb(19);
  Pages minfree_foreground = pages_from_mb(12);
  /// Minimum spacing between lmkd kills.
  sim::Time kill_cooldown = sim::msec(150);
  VictimRule victim_rule = VictimRule::HighestAdj;
  /// Foreground-partition reserve: the background minfree levels fire as
  /// if `reserve_pages` of available memory were already spoken for
  /// (partitioned policy; 0 = no reserve, the ladder is Android's).
  Pages reserve_pages = 0;
  /// Foreground eligibility at critical P requires swap to be nearly
  /// exhausted (lmkd's swap_free_low_percentage check) — or only the
  /// minfree bottom when disabled.
  bool swap_aware_escalation = true;
  /// zRAM fill fraction at which background kills start regardless of
  /// pressure (swam's joint swap/kill decision; 1.0 = never).
  double swap_full_kill_fraction = 1.0;
};

/// The charter a given spec would run with (oracle fixtures, docs).
KillCharter kill_charter_for(const MemPolicySpec& spec, const MemoryConfig& config);

/// The pressure/minfree band floor a charter dictates for the given
/// decision inputs, kNoKillFloor when no kill is due. Single source of
/// truth: the live lmkd eligibility check and the lmkd-ordering oracle's
/// replay both call this.
int replay_kill_floor(const KillCharter& charter, double pressure, Pages available,
                      Pages zram_stored, Pages zram_capacity) noexcept;

/// Pool state a reclaim policy plans against (registry non-const: the
/// planner uses the cached reclaim-order walk).
struct ReclaimView {
  ProcessRegistry& registry;
  Pages available = 0;
  Pages zram_stored = 0;
  Pages file_dirty = 0;
  Pages dirty_in_flight = 0;
  bool kswapd = false;
};

/// What one scan batch takes. The mechanism applies the plan in order:
/// file drops, then compressions (charging zRAM physical growth against
/// the freed total per take), then writeback submission. `cpu_refus` is
/// the policy-computed total CPU cost of the batch — one double, so the
/// baseline's scan+compress expression stays bit-exact.
struct ReclaimPlan {
  struct FileTake {
    ProcessMem* process = nullptr;
    Pages pages = 0;
  };
  struct CompressTake {
    ProcessMem* process = nullptr;
    Pages pages = 0;
    int tier = 0;  ///< zRAM tier (policies with tiered stores; baseline: 0)
  };
  Pages scanned = 0;
  std::vector<FileTake> file_drops;
  std::vector<CompressTake> compress;
  Pages writeback = 0;
  double cpu_refus = 0.0;
};

class ReclaimPolicy {
 public:
  virtual ~ReclaimPolicy() = default;

  /// Decide what one scan batch reclaims. Must not mutate page counters —
  /// the mechanism applies the plan.
  virtual ReclaimPlan plan_batch(ReclaimView& view) = 0;

  /// Physical pages the zRAM store occupies for `stored` uncompressed
  /// pages. Called on every store mutation (the manager caches the
  /// result off the hot allocation path). Default: single tier at the
  /// configured compression ratio.
  virtual Pages zram_physical(Pages stored) const noexcept;

  /// Store bookkeeping hooks for policies with per-process/tiered state.
  virtual void note_swap_out(ProcessId pid, Pages pages, int tier) {
    (void)pid;
    (void)pages;
    (void)tier;
  }
  virtual void note_swap_release(ProcessId pid, Pages pages) {
    (void)pid;
    (void)pages;
  }

  /// Scheduled-mode wiring (hotness tracking); null in Immediate mode.
  virtual void attach_scheduler(const sched::Scheduler* scheduler) { (void)scheduler; }

  /// Policies with internal state beyond the mechanism's pools register
  /// an MPOL snapshot section so replay digests cover it.
  virtual bool has_state() const noexcept { return false; }
  virtual void save(snapshot::ByteWriter& w) const { (void)w; }

 protected:
  explicit ReclaimPolicy(const MemoryConfig& config) : config_(config) {}
  MemoryConfig config_;
};

class KillPolicy {
 public:
  explicit KillPolicy(KillCharter charter) : charter_(std::move(charter)) {}
  virtual ~KillPolicy() = default;

  const KillCharter& charter() const noexcept { return charter_; }

  /// lmkd victim among live killable processes with oom_adj >= min_adj.
  /// Default implements VictimRule::HighestAdj (Android). Overrides must
  /// stay consistent with the published victim_rule.
  virtual std::optional<ProcessId> pick_victim(ProcessRegistry& registry, int min_adj);

 protected:
  KillCharter charter_;
};

/// A policy bundle the MemoryManager owns: reclaim + kill halves and the
/// MPOL snapshot section (registered with the ComponentRegistry only
/// when the reclaim half carries state).
class MemPolicy {
 public:
  MemPolicy(MemPolicySpec spec, std::unique_ptr<ReclaimPolicy> reclaim,
            std::unique_ptr<KillPolicy> kill)
      : spec_(std::move(spec)), reclaim_(std::move(reclaim)), kill_(std::move(kill)) {}

  const std::string& name() const noexcept { return spec_.name; }
  const MemPolicySpec& spec() const noexcept { return spec_; }
  ReclaimPolicy& reclaim() noexcept { return *reclaim_; }
  const ReclaimPolicy& reclaim() const noexcept { return *reclaim_; }
  KillPolicy& kill() noexcept { return *kill_; }
  const KillCharter& charter() const noexcept { return kill_->charter(); }
  bool has_state() const noexcept { return reclaim_->has_state(); }

  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;

 private:
  MemPolicySpec spec_;
  std::unique_ptr<ReclaimPolicy> reclaim_;
  std::unique_ptr<KillPolicy> kill_;
};

/// Build the named policy against a device's memory config. Throws
/// std::invalid_argument on an unknown name or parameter (same checks as
/// validate_policy_spec).
std::unique_ptr<MemPolicy> make_mem_policy(const MemPolicySpec& spec,
                                           const MemoryConfig& config);

}  // namespace mvqoe::mem
