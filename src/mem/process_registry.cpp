#include "mem/process_registry.hpp"

#include <algorithm>
#include <cassert>

namespace mvqoe::mem {

Pages pss_pages(const ProcessMem& process) noexcept {
  return process.anon_resident + process.file_resident;
}

ProcessMem& ProcessRegistry::add(ProcessId pid, std::string name, int oom_adj,
                                 std::function<void()> on_kill) {
  auto [it, inserted] = processes_.try_emplace(pid);
  assert((inserted || !it->second.alive) && "pid already registered and alive");
  ProcessMem& process = it->second;
  process = ProcessMem{};
  process.pid = pid;
  process.name = std::move(name);
  process.oom_adj = oom_adj;
  process.lru_seq = ++lru_clock_;
  process.on_kill = std::move(on_kill);
  if (inserted) {
    const auto pos = std::lower_bound(
        by_pid_.begin(), by_pid_.end(), pid,
        [](const ProcessMem* p, ProcessId key) { return p->pid < key; });
    by_pid_.insert(pos, &process);
  }
  alive_.push_back(&process);
  order_dirty_ = true;
  return process;
}

ProcessMem* ProcessRegistry::find(ProcessId pid) noexcept {
  const auto it = processes_.find(pid);
  return it != processes_.end() && it->second.alive ? &it->second : nullptr;
}

const ProcessMem* ProcessRegistry::find(ProcessId pid) const noexcept {
  const auto it = processes_.find(pid);
  return it != processes_.end() && it->second.alive ? &it->second : nullptr;
}

bool ProcessRegistry::alive(ProcessId pid) const noexcept { return find(pid) != nullptr; }

void ProcessRegistry::touch(ProcessId pid) noexcept {
  if (ProcessMem* process = find(pid)) {
    process->lru_seq = ++lru_clock_;
    order_dirty_ = true;
  }
}

void ProcessRegistry::set_oom_adj(ProcessId pid, int adj) noexcept {
  if (ProcessMem* process = find(pid)) {
    process->oom_adj = adj;
    order_dirty_ = true;
  }
}

void ProcessRegistry::set_killable(ProcessId pid, bool killable) noexcept {
  if (ProcessMem* process = find(pid)) process->killable = killable;
}

ProcessRegistry::FreedPages ProcessRegistry::remove(ProcessId pid) {
  FreedPages freed;
  const auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive) return freed;
  freed.anon = it->second.anon_resident;
  freed.swapped = it->second.anon_swapped;
  freed.file = it->second.file_resident;
  it->second.alive = false;
  it->second.anon_resident = 0;
  it->second.anon_swapped = 0;
  it->second.file_resident = 0;
  const auto pos = std::find(alive_.begin(), alive_.end(), &it->second);
  assert(pos != alive_.end());
  *pos = alive_.back();  // swap-erase; scan order carries no meaning
  alive_.pop_back();
  order_dirty_ = true;
  return freed;
}

int ProcessRegistry::cached_count() const noexcept {
  int count = 0;
  for (const ProcessMem* process : alive_) {
    if (process->oom_adj >= OomAdj::kCached) ++count;
  }
  return count;
}

std::optional<ProcessId> ProcessRegistry::pick_victim(int min_adj) const noexcept {
  // Highest oom_adj band first; within a band, the largest resident set
  // (classic low-memory-killer selection), coldest LRU as the tiebreak.
  const ProcessMem* best = nullptr;
  for (const ProcessMem* candidate : alive_) {
    const ProcessMem& process = *candidate;
    if (!process.killable || process.oom_adj < min_adj) continue;
    if (best == nullptr || process.oom_adj > best->oom_adj ||
        (process.oom_adj == best->oom_adj &&
         (pss_pages(process) > pss_pages(*best) ||
          (pss_pages(process) == pss_pages(*best) && process.lru_seq < best->lru_seq)))) {
      best = &process;
    }
  }
  return best != nullptr ? std::optional<ProcessId>(best->pid) : std::nullopt;
}

const std::vector<ProcessMem*>& ProcessRegistry::reclaim_order() {
  if (!order_dirty_) return order_cache_;
  // Extract the sort keys into a flat array first (SoA): the sort then
  // compares inline values instead of dereferencing two ProcessMem
  // pointers per comparison.
  struct Key {
    int oom_adj;
    std::uint64_t lru_seq;
    ProcessId pid;
    ProcessMem* process;
  };
  std::vector<Key> keys;
  keys.reserve(alive_.size());
  for (ProcessMem* p : alive_) keys.push_back(Key{p->oom_adj, p->lru_seq, p->pid, p});
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.oom_adj != b.oom_adj) return a.oom_adj > b.oom_adj;
    if (a.lru_seq != b.lru_seq) return a.lru_seq < b.lru_seq;
    return a.pid < b.pid;
  });
  order_cache_.clear();
  order_cache_.reserve(keys.size());
  for (const Key& k : keys) order_cache_.push_back(k.process);
  order_dirty_ = false;
  return order_cache_;
}

std::vector<const ProcessMem*> ProcessRegistry::all() const {
  std::vector<const ProcessMem*> out;
  out.reserve(alive_.size());
  for (const ProcessMem* process : by_pid_) {
    if (process->alive) out.push_back(process);
  }
  return out;
}

void ProcessRegistry::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.u64(lru_clock_);
  w.u64(by_pid_.size());
  for (const ProcessMem* p : by_pid_) {
    w.u32(p->pid);
    w.str(p->name);
    w.i32(p->oom_adj);
    w.i64(p->anon_resident);
    w.i64(p->anon_swapped);
    w.i64(p->file_resident);
    w.i64(p->file_working_set);
    w.i64(p->hot_pages);
    w.u64(p->lru_seq);
    w.b(p->alive);
    w.b(p->killable);
    w.b(p->unevictable);
  }
}

}  // namespace mvqoe::mem
