#include "mem/process_registry.hpp"

#include <algorithm>
#include <cassert>

namespace mvqoe::mem {

Pages pss_pages(const ProcessMem& process) noexcept {
  return process.anon_resident + process.file_resident;
}

ProcessMem& ProcessRegistry::add(ProcessId pid, std::string name, int oom_adj,
                                 std::function<void()> on_kill) {
  auto [it, inserted] = processes_.try_emplace(pid);
  assert((inserted || !it->second.alive) && "pid already registered and alive");
  ProcessMem& process = it->second;
  process = ProcessMem{};
  process.pid = pid;
  process.name = std::move(name);
  process.oom_adj = oom_adj;
  process.lru_seq = ++lru_clock_;
  process.on_kill = std::move(on_kill);
  return process;
}

ProcessMem* ProcessRegistry::find(ProcessId pid) noexcept {
  const auto it = processes_.find(pid);
  return it != processes_.end() && it->second.alive ? &it->second : nullptr;
}

const ProcessMem* ProcessRegistry::find(ProcessId pid) const noexcept {
  const auto it = processes_.find(pid);
  return it != processes_.end() && it->second.alive ? &it->second : nullptr;
}

bool ProcessRegistry::alive(ProcessId pid) const noexcept { return find(pid) != nullptr; }

void ProcessRegistry::touch(ProcessId pid) noexcept {
  if (ProcessMem* process = find(pid)) process->lru_seq = ++lru_clock_;
}

void ProcessRegistry::set_oom_adj(ProcessId pid, int adj) noexcept {
  if (ProcessMem* process = find(pid)) process->oom_adj = adj;
}

void ProcessRegistry::set_killable(ProcessId pid, bool killable) noexcept {
  if (ProcessMem* process = find(pid)) process->killable = killable;
}

ProcessRegistry::FreedPages ProcessRegistry::remove(ProcessId pid) {
  FreedPages freed;
  const auto it = processes_.find(pid);
  if (it == processes_.end() || !it->second.alive) return freed;
  freed.anon = it->second.anon_resident;
  freed.swapped = it->second.anon_swapped;
  freed.file = it->second.file_resident;
  it->second.alive = false;
  it->second.anon_resident = 0;
  it->second.anon_swapped = 0;
  it->second.file_resident = 0;
  return freed;
}

int ProcessRegistry::cached_count() const noexcept {
  int count = 0;
  for (const auto& [pid, process] : processes_) {
    if (process.alive && process.oom_adj >= OomAdj::kCached) ++count;
  }
  return count;
}

std::optional<ProcessId> ProcessRegistry::pick_victim(int min_adj) const noexcept {
  // Highest oom_adj band first; within a band, the largest resident set
  // (classic low-memory-killer selection), coldest LRU as the tiebreak.
  const ProcessMem* best = nullptr;
  for (const auto& [pid, process] : processes_) {
    if (!process.alive || !process.killable || process.oom_adj < min_adj) continue;
    if (best == nullptr || process.oom_adj > best->oom_adj ||
        (process.oom_adj == best->oom_adj &&
         (pss_pages(process) > pss_pages(*best) ||
          (pss_pages(process) == pss_pages(*best) && process.lru_seq < best->lru_seq)))) {
      best = &process;
    }
  }
  return best != nullptr ? std::optional<ProcessId>(best->pid) : std::nullopt;
}

std::vector<ProcessMem*> ProcessRegistry::reclaim_order() {
  std::vector<ProcessMem*> order;
  order.reserve(processes_.size());
  for (auto& [pid, process] : processes_) {
    if (process.alive) order.push_back(&process);
  }
  std::sort(order.begin(), order.end(), [](const ProcessMem* a, const ProcessMem* b) {
    if (a->oom_adj != b->oom_adj) return a->oom_adj > b->oom_adj;
    if (a->lru_seq != b->lru_seq) return a->lru_seq < b->lru_seq;
    return a->pid < b->pid;
  });
  return order;
}

std::vector<const ProcessMem*> ProcessRegistry::all() const {
  std::vector<const ProcessMem*> out;
  out.reserve(processes_.size());
  for (const auto& [pid, process] : processes_) {
    if (process.alive) out.push_back(&process);
  }
  std::sort(out.begin(), out.end(),
            [](const ProcessMem* a, const ProcessMem* b) { return a->pid < b->pid; });
  return out;
}

std::size_t ProcessRegistry::live_count() const noexcept {
  std::size_t count = 0;
  for (const auto& [pid, process] : processes_) {
    if (process.alive) ++count;
  }
  return count;
}

void ProcessRegistry::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.u64(lru_clock_);
  std::vector<const ProcessMem*> sorted;
  sorted.reserve(processes_.size());
  for (const auto& [pid, process] : processes_) sorted.push_back(&process);
  std::sort(sorted.begin(), sorted.end(),
            [](const ProcessMem* a, const ProcessMem* b) { return a->pid < b->pid; });
  w.u64(sorted.size());
  for (const ProcessMem* p : sorted) {
    w.u32(p->pid);
    w.str(p->name);
    w.i32(p->oom_adj);
    w.i64(p->anon_resident);
    w.i64(p->anon_swapped);
    w.i64(p->file_resident);
    w.i64(p->file_working_set);
    w.i64(p->hot_pages);
    w.u64(p->lru_seq);
    w.b(p->alive);
    w.b(p->killable);
    w.b(p->unevictable);
  }
}

}  // namespace mvqoe::mem
