// Event-driven multicore CPU scheduler.
//
// Models the two scheduling classes that matter for the paper's §5
// analysis:
//   * Realtime (RT): strict priority, FIFO within a priority level,
//     *immediately* preempts any Fair thread. The storage daemon `mmcqd`
//     runs here — this is the mechanism by which it "steals CPU time from
//     foreground processes" (paper §5, Table 5).
//   * Fair (CFS-like): per-core runqueues ordered by virtual runtime with
//     nice-derived weights and fixed timeslices. Foreground app threads
//     and `kswapd` both run here at the same weight, which is why they
//     "fairly share the CPU" (paper §5, Fig 13 discussion).
//
// Work model: CPU work is expressed in *reference microseconds* — the
// time the burst would take on a 1.0 GHz reference core. A core with
// frequency f GHz executes `w` reference-µs of work in `w / f` wall-µs.
// This lets one workload definition run across the heterogeneous devices
// the paper evaluates (Nokia 1 quad 1.1 GHz, Nexus 5 quad 2.33 GHz,
// Nexus 6P octa 4x1.55 + 4x2.0 GHz).
//
// Thread-state accounting matches the Perfetto taxonomy the paper uses:
// Runnable = woken, waiting for first dispatch; Runnable (Preempted) =
// involuntarily descheduled while still runnable. Preemption *records*
// (victim, preemptor, run-after-preempt, victim-wait: Table 5) are only
// emitted for wake-preemptions — i.e. a thread taking the CPU the moment
// it wakes, which in this model only RT threads do. This matches the
// paper's observation that the CPU is "almost never preempted for
// kswapd" while mmcqd preempts constantly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "trace/tracer.hpp"

namespace mvqoe::sched {

using ThreadId = trace::ThreadId;
using ProcessId = trace::ProcessId;

enum class SchedClass : std::uint8_t { Realtime, Fair };

struct CoreConfig {
  double freq_ghz = 1.0;  // relative to the 1.0 GHz work reference
};

struct SchedulerConfig {
  std::vector<CoreConfig> cores;
  /// Fair-class timeslice. Linux CFS derives this dynamically; a fixed
  /// few-millisecond slice reproduces the same interleaving granularity.
  sim::Time timeslice = sim::msec(3);
  /// Cost charged (in reference-µs of the incoming thread's work) per
  /// context switch — models cache/TLB disturbance. Core migrations are
  /// charged `migration_cost` instead, which is larger; this is the knob
  /// behind the §7 "coordinated core allocation" discussion.
  double context_switch_cost_refus = 15.0;
  double migration_cost_refus = 60.0;
};

/// Affinity mask: bit i set = may run on core i. 0 means "all cores".
using AffinityMask = std::uint64_t;

struct ThreadSpec {
  std::string name;
  ProcessId pid = 0;
  std::string process_name;
  SchedClass sched_class = SchedClass::Fair;
  /// Realtime: priority, higher wins. Fair: nice value (-20..19, lower is
  /// heavier); foreground app threads and kswapd both use 0.
  int priority = 0;
  AffinityMask affinity = 0;
};

/// Per-thread counters exposed for ablation studies (§7: context-switch /
/// migration overhead of uncoordinated daemon scheduling).
struct ThreadCounters {
  std::uint64_t context_switches = 0;
  std::uint64_t migrations = 0;
  std::uint64_t preemptions_suffered = 0;
  double cpu_refus_consumed = 0.0;
};

class Scheduler {
 public:
  Scheduler(sim::Engine& engine, trace::Tracer& tracer, SchedulerConfig config);

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Create a thread in the idle (Sleeping) state.
  ThreadId create_thread(const ThreadSpec& spec);

  /// Give an idle thread a CPU burst of `work_refus` reference-µs; it
  /// becomes runnable now and `on_complete` fires when the burst has been
  /// fully executed. The thread must not already be runnable or running.
  void run_work(ThreadId tid, double work_refus, std::function<void()> on_complete);

  /// Label an idle thread as blocked on I/O (accounting only; the thread
  /// stays descheduled until the next run_work). Must be idle.
  void mark_blocked_io(ThreadId tid);

  /// Convenience: idle thread sleeps until `engine.now() + delay`, then
  /// `on_wake` fires (typically calling run_work). Returns the timer id.
  sim::EventId sleep_for(ThreadId tid, sim::Time delay, std::function<void()> on_wake);

  /// Remove a thread permanently (process kill). Pending work is
  /// abandoned; its completion callback never fires.
  void terminate(ThreadId tid);
  /// Terminate every thread belonging to `pid`.
  void terminate_process(ProcessId pid);

  bool is_idle(ThreadId tid) const;
  bool exists(ThreadId tid) const;
  trace::ThreadState state(ThreadId tid) const;
  const ThreadCounters& counters(ThreadId tid) const;
  /// Owning process of a thread (hotness attribution in mem policies).
  ProcessId pid_of(ThreadId tid) const;
  std::size_t core_count() const noexcept { return cores_.size(); }
  /// Threads ever created; ids are dense starting at 1, so valid tids are
  /// exactly [1, thread_count()] (terminated ones included — check
  /// state()). Observation surface for the src/check scheduler oracle.
  std::size_t thread_count() const noexcept { return threads_.size(); }
  /// Weighted virtual runtime (reference-µs). Monotone non-decreasing for
  /// a thread's whole lifetime — the vruntime oracle's invariant.
  double vruntime(ThreadId tid) const;
  SchedClass sched_class(ThreadId tid) const;
  /// Core the thread is currently running on, or nullopt.
  std::optional<std::size_t> running_core(ThreadId tid) const;

  /// Change a thread's affinity mask (0 = all cores). Takes effect at the
  /// next scheduling decision for that thread.
  void set_affinity(ThreadId tid, AffinityMask mask);

  /// Uniformly scale every core's effective frequency (thermal throttling:
  /// scale < 1 slows the whole SoC). In-flight bursts are re-paced: work
  /// consumed so far is charged at the old speed and the remainder
  /// rescheduled at the new one.
  void set_speed_scale(double scale);
  double speed_scale() const noexcept { return speed_scale_; }

  /// Serialize per-thread and per-core scheduling state (vruntimes,
  /// runqueues, counters, in-flight stints). Doubles are emitted as bit
  /// patterns, so equal digests mean bit-equal state.
  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;

 private:
  struct Thread {
    ThreadSpec spec;
    trace::ThreadState state = trace::ThreadState::Created;
    double remaining_work = 0.0;  // reference-µs
    std::function<void()> on_complete;
    double vruntime = 0.0;  // weighted, in reference-µs
    double weight = 1.0;
    int core = -1;           // core currently running on, -1 otherwise
    int last_core = -1;      // for migration counting
    ThreadCounters counters;
    bool alive = true;
    // Pending Table-5 preemption record bookkeeping.
    std::int64_t pending_preemption = -1;  // index into pending_records_
  };

  struct Core {
    CoreConfig config;
    ThreadId running = trace::kNoThread;
    sim::Time run_start = 0;          // when current thread started this stint
    double run_start_work = 0.0;      // remaining work at stint start
    sim::EventId pending_event = sim::kInvalidEvent;
    std::deque<ThreadId> rt_queue;    // FIFO, kept sorted by priority desc
    std::vector<ThreadId> fair_queue; // unsorted; min-vruntime scan on pick
  };

  struct PendingPreemption {
    trace::PreemptionRecord record;
    bool run_filled = false;
    bool wait_filled = false;
  };

  Thread& thread(ThreadId tid);
  const Thread& thread(ThreadId tid) const;

  bool can_run_on(const Thread& t, std::size_t core) const;
  double weight_for_nice(int nice) const noexcept;
  /// Pick the core a waking thread should go to.
  std::size_t place_thread(const Thread& t) const;
  /// Put a runnable thread on a core's queue and trigger preemption checks.
  void enqueue(ThreadId tid, std::size_t core, bool preempt_check);
  /// Choose and dispatch the next thread on `core` (assumes core idle).
  void dispatch(std::size_t core);
  /// Stop the thread currently running on `core`, charging consumed work.
  /// `next_state` is the state the thread transitions to.
  void deschedule(std::size_t core, trace::ThreadState next_state, ThreadId preemptor);
  /// Handle burst completion on `core`.
  void complete(std::size_t core);
  /// Handle timeslice expiry on `core`.
  void slice_expired(std::size_t core);
  /// Try to pull a runnable fair thread to the now-idle `core`.
  void steal_for(std::size_t core);
  void arm_core_event(std::size_t core);
  /// Flat-event trampoline for core timers (arg = core_idx << 1 | is_slice).
  static void on_core_event(void* ctx, std::uint64_t arg);
  double min_vruntime(const Core& core) const;

  void open_preemption(ThreadId victim, ThreadId preemptor);
  void note_started_running(ThreadId tid);
  void note_stopped_running(ThreadId tid, sim::Time ran_for);
  double effective_freq(const Core& core) const noexcept {
    return core.config.freq_ghz * speed_scale_;
  }

  sim::Engine& engine_;
  trace::Tracer& tracer_;
  SchedulerConfig config_;
  double speed_scale_ = 1.0;
  std::vector<Core> cores_;
  std::vector<Thread> threads_;  // index = tid - 1
  std::vector<PendingPreemption> pending_records_;
  // Map preemptor tid -> indices of pending records awaiting its run-stint
  // duration (filled when it stops running).
  std::unordered_map<ThreadId, std::vector<std::int64_t>> awaiting_run_;
  std::unordered_map<ThreadId, std::vector<std::int64_t>> awaiting_wait_;
};

}  // namespace mvqoe::sched
