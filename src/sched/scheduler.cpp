#include "sched/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "snapshot/digest.hpp"

namespace mvqoe::sched {

namespace {

constexpr double kMinWork = 0.1;  // reference-µs; floor for zero-work bursts

}  // namespace

Scheduler::Scheduler(sim::Engine& engine, trace::Tracer& tracer, SchedulerConfig config)
    : engine_(engine), tracer_(tracer), config_(std::move(config)) {
  assert(!config_.cores.empty());
  cores_.resize(config_.cores.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) cores_[i].config = config_.cores[i];
}

Scheduler::Thread& Scheduler::thread(ThreadId tid) {
  assert(tid >= 1 && tid <= threads_.size());
  return threads_[tid - 1];
}

const Scheduler::Thread& Scheduler::thread(ThreadId tid) const {
  assert(tid >= 1 && tid <= threads_.size());
  return threads_[tid - 1];
}

double Scheduler::weight_for_nice(int nice) const noexcept {
  // Linux CFS weights scale ~1.25x per nice step; normalize nice 0 -> 1.0.
  return std::pow(1.25, -nice);
}

ThreadId Scheduler::create_thread(const ThreadSpec& spec) {
  Thread t;
  t.spec = spec;
  if (spec.sched_class == SchedClass::Fair) t.weight = weight_for_nice(spec.priority);
  threads_.push_back(std::move(t));
  const ThreadId tid = static_cast<ThreadId>(threads_.size());
  tracer_.register_thread(trace::ThreadMeta{tid, spec.pid, spec.name, spec.process_name});
  tracer_.state_change(tid, engine_.now(), trace::ThreadState::Created);
  // Created behaves as idle; report Sleeping so dwell-time accounting is
  // uniform from the start.
  tracer_.state_change(tid, engine_.now(), trace::ThreadState::Sleeping);
  threads_.back().state = trace::ThreadState::Sleeping;
  return tid;
}

bool Scheduler::exists(ThreadId tid) const {
  return tid >= 1 && tid <= threads_.size() && threads_[tid - 1].alive;
}

bool Scheduler::is_idle(ThreadId tid) const {
  const auto s = thread(tid).state;
  return s == trace::ThreadState::Sleeping || s == trace::ThreadState::BlockedIo;
}

trace::ThreadState Scheduler::state(ThreadId tid) const { return thread(tid).state; }

const ThreadCounters& Scheduler::counters(ThreadId tid) const { return thread(tid).counters; }

ProcessId Scheduler::pid_of(ThreadId tid) const { return thread(tid).spec.pid; }

double Scheduler::vruntime(ThreadId tid) const { return thread(tid).vruntime; }

SchedClass Scheduler::sched_class(ThreadId tid) const { return thread(tid).spec.sched_class; }

std::optional<std::size_t> Scheduler::running_core(ThreadId tid) const {
  const int core = thread(tid).core;
  return core >= 0 ? std::optional<std::size_t>(static_cast<std::size_t>(core)) : std::nullopt;
}

void Scheduler::set_affinity(ThreadId tid, AffinityMask mask) { thread(tid).spec.affinity = mask; }

void Scheduler::set_speed_scale(double scale) {
  scale = std::max(scale, 0.01);
  if (scale == speed_scale_) return;
  // Checkpoint every running burst at the old speed: charge the work
  // consumed so far (CPU accounting + fair vruntime), restart the stint
  // at now with the remaining work, then re-arm completion/slice events
  // at the new speed. Restarting the stint also restarts its timeslice —
  // an acceptable deviation for the rare throttle transitions.
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    Core& core = cores_[i];
    if (core.running == trace::kNoThread) continue;
    Thread& t = thread(core.running);
    const sim::Time ran = engine_.now() - core.run_start;
    const double consumed =
        std::min(core.run_start_work, static_cast<double>(ran) * effective_freq(core));
    t.counters.cpu_refus_consumed += consumed;
    if (t.spec.sched_class == SchedClass::Fair && t.weight > 0.0) {
      t.vruntime += consumed / t.weight;
    }
    core.run_start_work -= consumed;
    core.run_start = engine_.now();
    t.remaining_work = core.run_start_work;
  }
  speed_scale_ = scale;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (cores_[i].running != trace::kNoThread) arm_core_event(i);
  }
}

bool Scheduler::can_run_on(const Thread& t, std::size_t core) const {
  return t.spec.affinity == 0 || (t.spec.affinity & (AffinityMask{1} << core)) != 0;
}

double Scheduler::min_vruntime(const Core& core) const {
  double vmin = std::numeric_limits<double>::max();
  bool any = false;
  for (ThreadId tid : core.fair_queue) {
    vmin = std::min(vmin, thread(tid).vruntime);
    any = true;
  }
  if (core.running != trace::kNoThread) {
    const Thread& running = thread(core.running);
    if (running.spec.sched_class == SchedClass::Fair) {
      vmin = std::min(vmin, running.vruntime);
      any = true;
    }
  }
  return any ? vmin : 0.0;
}

std::size_t Scheduler::place_thread(const Thread& t) const {
  // Prefer an idle permitted core (fastest first); otherwise for RT pick a
  // core running something preemptible; otherwise least-loaded.
  std::size_t best_idle = cores_.size();
  double best_idle_freq = -1.0;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (!can_run_on(t, i)) continue;
    if (cores_[i].running == trace::kNoThread && cores_[i].rt_queue.empty() &&
        cores_[i].fair_queue.empty() && cores_[i].config.freq_ghz > best_idle_freq) {
      best_idle = i;
      best_idle_freq = cores_[i].config.freq_ghz;
    }
  }
  if (best_idle < cores_.size()) return best_idle;

  if (t.spec.sched_class == SchedClass::Realtime) {
    // A core whose current occupant we can immediately preempt.
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      if (!can_run_on(t, i)) continue;
      const Core& core = cores_[i];
      if (core.running == trace::kNoThread) return i;
      const Thread& occupant = thread(core.running);
      if (occupant.spec.sched_class == SchedClass::Fair ||
          occupant.spec.priority < t.spec.priority) {
        return i;
      }
    }
  }

  std::size_t best = 0;
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  bool found = false;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (!can_run_on(t, i)) continue;
    const Core& core = cores_[i];
    const std::size_t load = core.rt_queue.size() + core.fair_queue.size() +
                             (core.running != trace::kNoThread ? 1 : 0);
    if (load < best_load) {
      best_load = load;
      best = i;
      found = true;
    }
  }
  assert(found && "thread affinity excludes every core");
  (void)found;
  return best;
}

void Scheduler::run_work(ThreadId tid, double work_refus, std::function<void()> on_complete) {
  Thread& t = thread(tid);
  assert(t.alive && "run_work on terminated thread");
  assert(is_idle(tid) && "run_work on a thread that is already runnable/running");
  t.remaining_work = std::max(work_refus, kMinWork);
  t.on_complete = std::move(on_complete);
  t.state = trace::ThreadState::Runnable;
  tracer_.state_change(tid, engine_.now(), trace::ThreadState::Runnable);
  enqueue(tid, place_thread(t), /*preempt_check=*/true);
}

void Scheduler::mark_blocked_io(ThreadId tid) {
  Thread& t = thread(tid);
  assert(is_idle(tid));
  t.state = trace::ThreadState::BlockedIo;
  tracer_.state_change(tid, engine_.now(), trace::ThreadState::BlockedIo);
}

sim::EventId Scheduler::sleep_for(ThreadId tid, sim::Time delay, std::function<void()> on_wake) {
  assert(is_idle(tid));
  return engine_.schedule(delay, [this, tid, fn = std::move(on_wake)] {
    if (exists(tid)) fn();
  });
}

void Scheduler::enqueue(ThreadId tid, std::size_t core_idx, bool preempt_check) {
  Thread& t = thread(tid);
  Core& core = cores_[core_idx];

  if (t.spec.sched_class == SchedClass::Fair) {
    // Normalize vruntime into the target core's window so a long sleeper
    // neither hoards the CPU nor starves incumbents; 2 slices of credit.
    const double bound = min_vruntime(core) - 2.0 * static_cast<double>(config_.timeslice);
    t.vruntime = std::max(t.vruntime, bound);
  }

  if (core.running == trace::kNoThread) {
    if (t.spec.sched_class == SchedClass::Realtime) {
      core.rt_queue.push_back(tid);
      std::stable_sort(core.rt_queue.begin(), core.rt_queue.end(),
                       [this](ThreadId a, ThreadId b) {
                         return thread(a).spec.priority > thread(b).spec.priority;
                       });
    } else {
      core.fair_queue.push_back(tid);
    }
    dispatch(core_idx);
    return;
  }

  if (preempt_check && t.spec.sched_class == SchedClass::Realtime) {
    const Thread& occupant = thread(core.running);
    const bool preemptible = occupant.spec.sched_class == SchedClass::Fair ||
                             occupant.spec.priority < t.spec.priority;
    if (preemptible) {
      deschedule(core_idx, trace::ThreadState::RunnablePreempted, tid);
      core.rt_queue.push_front(tid);
      dispatch(core_idx);
      return;
    }
  }

  if (t.spec.sched_class == SchedClass::Realtime) {
    core.rt_queue.push_back(tid);
    std::stable_sort(core.rt_queue.begin(), core.rt_queue.end(), [this](ThreadId a, ThreadId b) {
      return thread(a).spec.priority > thread(b).spec.priority;
    });
  } else {
    core.fair_queue.push_back(tid);
    // A fair thread is now waiting behind the running thread: make sure a
    // timeslice boundary is armed so it gets its turn.
    arm_core_event(core_idx);
  }
}

void Scheduler::arm_core_event(std::size_t core_idx) {
  Core& core = cores_[core_idx];
  if (core.pending_event != sim::kInvalidEvent) {
    engine_.cancel(core.pending_event);
    core.pending_event = sim::kInvalidEvent;
  }
  if (core.running == trace::kNoThread) return;

  const Thread& t = thread(core.running);
  const double freq = effective_freq(core);
  const sim::Time ran = engine_.now() - core.run_start;
  const double consumed = static_cast<double>(ran) * freq;
  const double remaining = std::max(core.run_start_work - consumed, 0.0);
  const sim::Time completion =
      engine_.now() + std::max<sim::Time>(1, static_cast<sim::Time>(std::ceil(remaining / freq)));

  sim::Time when = completion;
  bool is_slice = false;
  if (t.spec.sched_class == SchedClass::Fair && !core.fair_queue.empty()) {
    const sim::Time slice_end = core.run_start + config_.timeslice;
    if (slice_end < when) {
      when = std::max(slice_end, engine_.now() + 1);
      is_slice = true;
    }
  }
  // Flat event (engine hot path): core events fire once per timeslice /
  // burst completion across every core — the single hottest timer in the
  // simulation. arg packs (core_idx << 1) | is_slice.
  core.pending_event = engine_.schedule_flat_at(
      when, &Scheduler::on_core_event, this,
      (static_cast<std::uint64_t>(core_idx) << 1) | (is_slice ? 1u : 0u));
}

void Scheduler::on_core_event(void* ctx, std::uint64_t arg) {
  auto* self = static_cast<Scheduler*>(ctx);
  const std::size_t core_idx = static_cast<std::size_t>(arg >> 1);
  self->cores_[core_idx].pending_event = sim::kInvalidEvent;
  if ((arg & 1u) != 0) {
    self->slice_expired(core_idx);
  } else {
    self->complete(core_idx);
  }
}

void Scheduler::dispatch(std::size_t core_idx) {
  Core& core = cores_[core_idx];
  if (core.running != trace::kNoThread) return;  // filled since scheduling

  ThreadId next = trace::kNoThread;
  if (!core.rt_queue.empty()) {
    next = core.rt_queue.front();
    core.rt_queue.pop_front();
  } else if (!core.fair_queue.empty()) {
    auto best = core.fair_queue.begin();
    for (auto it = core.fair_queue.begin(); it != core.fair_queue.end(); ++it) {
      if (thread(*it).vruntime < thread(*best).vruntime) best = it;
    }
    next = *best;
    core.fair_queue.erase(best);
  } else {
    steal_for(core_idx);
    if (!core.rt_queue.empty()) {
      next = core.rt_queue.front();
      core.rt_queue.pop_front();
    } else if (!core.fair_queue.empty()) {
      auto best = core.fair_queue.begin();
      for (auto it = core.fair_queue.begin(); it != core.fair_queue.end(); ++it) {
        if (thread(*it).vruntime < thread(*best).vruntime) best = it;
      }
      next = *best;
      core.fair_queue.erase(best);
    }
  }
  if (next == trace::kNoThread) return;  // core goes idle

  Thread& t = thread(next);
  // Charge context-switch / migration cost as extra work on the incoming
  // thread: the cache-refill penalty is paid by whoever runs next.
  const bool migrated = t.last_core >= 0 && t.last_core != static_cast<int>(core_idx);
  t.remaining_work += migrated ? config_.migration_cost_refus : config_.context_switch_cost_refus;
  ++t.counters.context_switches;
  if (migrated) ++t.counters.migrations;
  t.last_core = static_cast<int>(core_idx);
  t.core = static_cast<int>(core_idx);
  t.state = trace::ThreadState::Running;
  tracer_.state_change(next, engine_.now(), trace::ThreadState::Running);

  core.running = next;
  core.run_start = engine_.now();
  core.run_start_work = t.remaining_work;
  note_started_running(next);
  arm_core_event(core_idx);
}

void Scheduler::deschedule(std::size_t core_idx, trace::ThreadState next_state,
                           ThreadId preemptor) {
  Core& core = cores_[core_idx];
  assert(core.running != trace::kNoThread);
  const ThreadId tid = core.running;
  Thread& t = thread(tid);

  if (core.pending_event != sim::kInvalidEvent) {
    engine_.cancel(core.pending_event);
    core.pending_event = sim::kInvalidEvent;
  }
  const sim::Time ran = engine_.now() - core.run_start;
  const double consumed =
      std::min(core.run_start_work, static_cast<double>(ran) * effective_freq(core));
  t.remaining_work = core.run_start_work - consumed;
  t.counters.cpu_refus_consumed += consumed;
  if (t.spec.sched_class == SchedClass::Fair && t.weight > 0.0) t.vruntime += consumed / t.weight;

  note_stopped_running(tid, ran);
  core.running = trace::kNoThread;
  t.core = -1;
  t.state = next_state;
  tracer_.state_change(tid, engine_.now(), next_state, preemptor);
  if (next_state == trace::ThreadState::RunnablePreempted) {
    ++t.counters.preemptions_suffered;
    if (preemptor != trace::kNoThread) open_preemption(tid, preemptor);
    // The victim remains runnable: requeue on this core (no preempt check
    // — it just lost the CPU).
    if (t.spec.sched_class == SchedClass::Realtime) {
      core.rt_queue.push_back(tid);
      std::stable_sort(core.rt_queue.begin(), core.rt_queue.end(),
                       [this](ThreadId a, ThreadId b) {
                         return thread(a).spec.priority > thread(b).spec.priority;
                       });
    } else {
      core.fair_queue.push_back(tid);
    }
  }
}

void Scheduler::complete(std::size_t core_idx) {
  Core& core = cores_[core_idx];
  assert(core.running != trace::kNoThread);
  const ThreadId tid = core.running;
  Thread& t = thread(tid);

  const sim::Time ran = engine_.now() - core.run_start;
  t.counters.cpu_refus_consumed += core.run_start_work;
  if (t.spec.sched_class == SchedClass::Fair && t.weight > 0.0) {
    t.vruntime += core.run_start_work / t.weight;
  }
  t.remaining_work = 0.0;
  note_stopped_running(tid, ran);
  core.running = trace::kNoThread;
  t.core = -1;
  t.state = trace::ThreadState::Sleeping;
  tracer_.state_change(tid, engine_.now(), trace::ThreadState::Sleeping);

  // Run the completion callback at top level (fresh event, same time) so
  // it can freely call back into the scheduler — and dispatch the core
  // *after* the callback, so a thread that immediately resubmits work
  // competes on vruntime with the waiters instead of silently yielding
  // its turn (CFS keeps such a thread on the runqueue continuously).
  if (t.on_complete) {
    engine_.schedule(0, [this, core_idx, tid, fn = std::move(t.on_complete)] {
      if (exists(tid)) fn();
      dispatch(core_idx);
    });
    t.on_complete = nullptr;
  } else {
    dispatch(core_idx);
  }
}

void Scheduler::slice_expired(std::size_t core_idx) {
  Core& core = cores_[core_idx];
  if (core.running == trace::kNoThread) return;
  Thread& t = thread(core.running);

  // Only yield if a waiting fair thread would be picked (lower vruntime
  // after we charge our consumption). Approximation: yield if anyone is
  // waiting — CFS would have picked them within a granule anyway.
  if (t.spec.sched_class == SchedClass::Fair && !core.fair_queue.empty()) {
    // Attribute the preemption to the dispatch winner — queued RT
    // first, else the min-vruntime fair waiter (dispatch()'s pick order
    // before the victim is requeued). Leaving it unattributed would
    // hide every timeslice rotation from the preemption-episode
    // analysis.
    ThreadId preemptor = trace::kNoThread;
    if (!core.rt_queue.empty()) {
      preemptor = core.rt_queue.front();
    } else {
      auto best = core.fair_queue.begin();
      for (auto it = core.fair_queue.begin(); it != core.fair_queue.end(); ++it) {
        if (thread(*it).vruntime < thread(*best).vruntime) best = it;
      }
      preemptor = *best;
    }
    deschedule(core_idx, trace::ThreadState::RunnablePreempted, preemptor);
    dispatch(core_idx);
  } else {
    arm_core_event(core_idx);
  }
}

void Scheduler::steal_for(std::size_t core_idx) {
  Core& target = cores_[core_idx];
  // RT first: pull the highest-priority queued RT thread anywhere.
  std::size_t src = cores_.size();
  int best_prio = std::numeric_limits<int>::min();
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (i == core_idx || cores_[i].rt_queue.empty()) continue;
    const Thread& cand = thread(cores_[i].rt_queue.front());
    if (can_run_on(cand, core_idx) && cand.spec.priority > best_prio) {
      best_prio = cand.spec.priority;
      src = i;
    }
  }
  if (src < cores_.size()) {
    const ThreadId tid = cores_[src].rt_queue.front();
    cores_[src].rt_queue.pop_front();
    target.rt_queue.push_back(tid);
    return;
  }
  // Fair: pull min-vruntime thread from the longest queue.
  src = cores_.size();
  std::size_t best_len = 0;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (i == core_idx) continue;
    std::size_t eligible = 0;
    for (ThreadId tid : cores_[i].fair_queue) {
      if (can_run_on(thread(tid), core_idx)) ++eligible;
    }
    if (eligible > best_len) {
      best_len = eligible;
      src = i;
    }
  }
  if (src < cores_.size()) {
    auto& queue = cores_[src].fair_queue;
    auto best = queue.end();
    for (auto it = queue.begin(); it != queue.end(); ++it) {
      if (!can_run_on(thread(*it), core_idx)) continue;
      if (best == queue.end() || thread(*it).vruntime < thread(*best).vruntime) best = it;
    }
    if (best != queue.end()) {
      const ThreadId tid = *best;
      queue.erase(best);
      target.fair_queue.push_back(tid);
    }
  }
}

void Scheduler::terminate(ThreadId tid) {
  Thread& t = thread(tid);
  if (!t.alive) return;

  if (t.core >= 0) {
    const std::size_t core_idx = static_cast<std::size_t>(t.core);
    deschedule(core_idx, trace::ThreadState::Terminated, trace::kNoThread);
    t.alive = false;
    t.on_complete = nullptr;
    dispatch(core_idx);
  } else {
    for (Core& core : cores_) {
      auto rt = std::find(core.rt_queue.begin(), core.rt_queue.end(), tid);
      if (rt != core.rt_queue.end()) core.rt_queue.erase(rt);
      auto fair = std::find(core.fair_queue.begin(), core.fair_queue.end(), tid);
      if (fair != core.fair_queue.end()) core.fair_queue.erase(fair);
    }
    t.alive = false;
    t.on_complete = nullptr;
    t.state = trace::ThreadState::Terminated;
    tracer_.state_change(tid, engine_.now(), trace::ThreadState::Terminated);
  }
  // Abandon any preemption records this thread participates in.
  awaiting_run_.erase(tid);
  awaiting_wait_.erase(tid);
}

void Scheduler::terminate_process(ProcessId pid) {
  for (std::size_t i = 0; i < threads_.size(); ++i) {
    if (threads_[i].alive && threads_[i].spec.pid == pid) {
      terminate(static_cast<ThreadId>(i + 1));
    }
  }
}

void Scheduler::open_preemption(ThreadId victim, ThreadId preemptor) {
  PendingPreemption pending;
  pending.record.victim = victim;
  pending.record.preemptor = preemptor;
  pending.record.at = engine_.now();
  pending_records_.push_back(pending);
  const std::int64_t idx = static_cast<std::int64_t>(pending_records_.size()) - 1;
  awaiting_run_[preemptor].push_back(idx);
  awaiting_wait_[victim].push_back(idx);
}

void Scheduler::note_started_running(ThreadId tid) {
  const auto it = awaiting_wait_.find(tid);
  if (it == awaiting_wait_.end()) return;
  for (const std::int64_t idx : it->second) {
    PendingPreemption& pending = pending_records_[static_cast<std::size_t>(idx)];
    pending.record.victim_wait = engine_.now() - pending.record.at;
    pending.wait_filled = true;
    if (pending.run_filled) tracer_.preemption(pending.record);
  }
  awaiting_wait_.erase(it);
}

void Scheduler::note_stopped_running(ThreadId tid, sim::Time ran_for) {
  const auto it = awaiting_run_.find(tid);
  if (it == awaiting_run_.end()) return;
  for (const std::int64_t idx : it->second) {
    PendingPreemption& pending = pending_records_[static_cast<std::size_t>(idx)];
    pending.record.preemptor_run = ran_for;
    pending.run_filled = true;
    if (pending.wait_filled) tracer_.preemption(pending.record);
  }
  awaiting_run_.erase(it);
}

void Scheduler::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.f64(speed_scale_);
  w.u64(threads_.size());
  for (const Thread& t : threads_) {
    w.str(t.spec.name);
    w.u32(t.spec.pid);
    w.u8(static_cast<std::uint8_t>(t.spec.sched_class));
    w.i32(t.spec.priority);
    w.u64(t.spec.affinity);
    w.u8(static_cast<std::uint8_t>(t.state));
    w.f64(t.remaining_work);
    w.f64(t.vruntime);
    w.f64(t.weight);
    w.i32(t.core);
    w.i32(t.last_core);
    w.b(t.alive);
    w.u64(t.counters.context_switches);
    w.u64(t.counters.migrations);
    w.u64(t.counters.preemptions_suffered);
    w.f64(t.counters.cpu_refus_consumed);
  }
  w.u64(cores_.size());
  for (const Core& core : cores_) {
    w.f64(core.config.freq_ghz);
    w.u64(core.running);
    w.i64(core.run_start);
    w.f64(core.run_start_work);
    // Queue contents in queue order: the order itself is scheduling
    // state (RT FIFO within priority; fair pick scans in vector order
    // to break vruntime ties).
    w.u64(core.rt_queue.size());
    for (const ThreadId tid : core.rt_queue) w.u64(tid);
    w.u64(core.fair_queue.size());
    for (const ThreadId tid : core.fair_queue) w.u64(tid);
  }
}

std::uint64_t Scheduler::digest() const { return snapshot::state_digest(*this); }

}  // namespace mvqoe::sched
