// Opinion-score model for the paper's 99-participant survey (§4.3,
// Fig 10). Participants watched the same 240p60 clip twice — once at
// ~3% frame drops (Normal) and once at ~35% (Moderate pressure) — and
// rated the *relative* experience on 1..5 (5 = "no noticeable
// difference", 1 = "second video very annoying").
//
// The model: stutter annoyance is a logistic function of the drop rate
// (imperceptible below a few percent, saturating above ~50%); a rater's
// differential score is 5 minus the annoyance difference scaled to the
// 4-point range, plus per-rater sensitivity noise, rounded and clamped.
// Calibrated so the (3%, 35%) pair regenerates Fig 10's shape: the vast
// majority notice the difference, with ~60% of raters at 1-2.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/rng.hpp"

namespace mvqoe::qoe {

struct MosModel {
  /// Logistic midpoint / steepness of annoyance vs drop rate.
  double midpoint_drop_rate = 0.22;
  double steepness = 0.10;
  /// Per-rater sensitivity noise (standard deviation, score units).
  double rater_sigma = 0.95;

  /// Annoyance in [0,1] for a given frame-drop fraction.
  double annoyance(double drop_rate) const noexcept;
  /// Absolute MOS (1..5) a single rater gives a clip with `drop_rate`.
  int absolute_score(double drop_rate, stats::Rng& rng) const noexcept;
  /// Differential MOS: rate clip B relative to reference clip A.
  int differential_score(double reference_drop_rate, double degraded_drop_rate,
                         stats::Rng& rng) const noexcept;
};

/// Simulate the paper's survey: `raters` participants rate the
/// (reference, degraded) pair; returns the 1..5 score histogram.
struct SurveyResult {
  std::vector<int> scores;                 // per rater
  std::size_t count(int score) const noexcept;
  double mean() const noexcept;
};
SurveyResult run_dmos_survey(const MosModel& model, double reference_drop_rate,
                             double degraded_drop_rate, int raters, std::uint64_t seed);

}  // namespace mvqoe::qoe
