// QoE aggregation across repeated runs. The paper repeats each
// experiment five times and reports means with 95% confidence intervals
// (§4.1); crash rates are the fraction of runs whose client was killed
// (Tables 2/3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/summary.hpp"

namespace mvqoe::qoe {

struct RunOutcome {
  double drop_rate = 0.0;   // dropped / (dropped + presented), crashed runs
                            // counting the lost remainder as dropped
  bool crashed = false;
  /// Session ended early on an unrecoverable download failure.
  bool aborted = false;
  double mean_pss_mb = 0.0;
  double peak_pss_mb = 0.0;
  double startup_delay_s = 0.0;
  /// Recovery accounting: kills absorbed by a cold relaunch instead of a
  /// terminal crash, stalls, and the wall time lost to relaunching.
  int relaunches = 0;
  int rebuffer_events = 0;
  double relaunch_downtime_s = 0.0;
};

class RunAggregate {
 public:
  void add(const RunOutcome& outcome);

  std::size_t runs() const noexcept { return outcomes_.size(); }
  /// Mean drop rate with 95% CI across all runs.
  stats::MeanCi drop_rate() const;
  /// Mean drop rate across the runs that did NOT crash (the paper plots
  /// rendering performance and crash rate as separate panels).
  stats::MeanCi drop_rate_completed() const;
  /// Fraction of runs that crashed, in percent (Tables 2/3).
  double crash_rate_percent() const noexcept;
  /// Fraction of runs that relaunched at least once, in percent — the
  /// robustness counterpart of crash rate: kills the recovery path turned
  /// into rebuffers instead of terminal failures.
  double relaunch_rate_percent() const noexcept;
  stats::MeanCi rebuffer_events() const;
  stats::MeanCi mean_pss_mb() const;
  stats::MeanCi peak_pss_mb() const;
  double min_peak_pss_mb() const;
  double max_peak_pss_mb() const;

  const std::vector<RunOutcome>& outcomes() const noexcept { return outcomes_; }

 private:
  std::vector<RunOutcome> outcomes_;
};

/// Per-session QoE attribution for multi-session scenarios (DESIGN.md
/// §11): aggregate run outcomes keyed by the session workload's label,
/// preserving first-seen label order so reductions stay deterministic
/// regardless of worker count.
class SessionBreakdown {
 public:
  void add(const std::string& label, const RunOutcome& outcome);
  /// Aggregate for `label`, or null if no run reported it.
  const RunAggregate* find(const std::string& label) const noexcept;
  const std::vector<std::pair<std::string, RunAggregate>>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, RunAggregate>> entries_;
};

/// Format "12.3 ± 1.1" for bench table cells.
std::string format_mean_ci(const stats::MeanCi& value, int decimals = 1);

}  // namespace mvqoe::qoe
