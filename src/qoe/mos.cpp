#include "qoe/mos.hpp"

#include <algorithm>
#include <cmath>

namespace mvqoe::qoe {

double MosModel::annoyance(double drop_rate) const noexcept {
  // Logistic with a floor shift so ~0% drops map to ~0 annoyance.
  const double raw = 1.0 / (1.0 + std::exp(-(drop_rate - midpoint_drop_rate) / steepness));
  const double floor = 1.0 / (1.0 + std::exp(midpoint_drop_rate / steepness));
  return std::clamp((raw - floor) / (1.0 - floor), 0.0, 1.0);
}

int MosModel::absolute_score(double drop_rate, stats::Rng& rng) const noexcept {
  const double score = 5.0 - 4.0 * annoyance(drop_rate) + rng.normal(0.0, rater_sigma);
  return static_cast<int>(std::clamp(std::lround(score), 1L, 5L));
}

int MosModel::differential_score(double reference_drop_rate, double degraded_drop_rate,
                                 stats::Rng& rng) const noexcept {
  const double difference =
      std::max(0.0, annoyance(degraded_drop_rate) - annoyance(reference_drop_rate));
  const double score = 5.0 - 4.0 * difference + rng.normal(0.0, rater_sigma);
  return static_cast<int>(std::clamp(std::lround(score), 1L, 5L));
}

std::size_t SurveyResult::count(int score) const noexcept {
  std::size_t n = 0;
  for (const int s : scores) {
    if (s == score) ++n;
  }
  return n;
}

double SurveyResult::mean() const noexcept {
  if (scores.empty()) return 0.0;
  double total = 0.0;
  for (const int s : scores) total += s;
  return total / static_cast<double>(scores.size());
}

SurveyResult run_dmos_survey(const MosModel& model, double reference_drop_rate,
                             double degraded_drop_rate, int raters, std::uint64_t seed) {
  SurveyResult result;
  result.scores.reserve(static_cast<std::size_t>(raters));
  for (int i = 0; i < raters; ++i) {
    stats::Rng rng(stats::derive_seed(seed, static_cast<std::uint64_t>(i)));
    result.scores.push_back(
        model.differential_score(reference_drop_rate, degraded_drop_rate, rng));
  }
  return result;
}

}  // namespace mvqoe::qoe
