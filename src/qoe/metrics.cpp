#include "qoe/metrics.hpp"

#include <algorithm>
#include <cstdio>

namespace mvqoe::qoe {

void RunAggregate::add(const RunOutcome& outcome) { outcomes_.push_back(outcome); }

stats::MeanCi RunAggregate::drop_rate() const {
  std::vector<double> rates;
  rates.reserve(outcomes_.size());
  for (const RunOutcome& outcome : outcomes_) rates.push_back(outcome.drop_rate);
  return stats::mean_ci(rates);
}

stats::MeanCi RunAggregate::drop_rate_completed() const {
  std::vector<double> rates;
  for (const RunOutcome& outcome : outcomes_) {
    if (!outcome.crashed) rates.push_back(outcome.drop_rate);
  }
  return stats::mean_ci(rates);
}

double RunAggregate::crash_rate_percent() const noexcept {
  if (outcomes_.empty()) return 0.0;
  std::size_t crashed = 0;
  for (const RunOutcome& outcome : outcomes_) {
    if (outcome.crashed) ++crashed;
  }
  return 100.0 * static_cast<double>(crashed) / static_cast<double>(outcomes_.size());
}

double RunAggregate::relaunch_rate_percent() const noexcept {
  if (outcomes_.empty()) return 0.0;
  std::size_t relaunched = 0;
  for (const RunOutcome& outcome : outcomes_) {
    if (outcome.relaunches > 0) ++relaunched;
  }
  return 100.0 * static_cast<double>(relaunched) / static_cast<double>(outcomes_.size());
}

stats::MeanCi RunAggregate::rebuffer_events() const {
  std::vector<double> values;
  values.reserve(outcomes_.size());
  for (const RunOutcome& outcome : outcomes_) {
    values.push_back(static_cast<double>(outcome.rebuffer_events));
  }
  return stats::mean_ci(values);
}

stats::MeanCi RunAggregate::mean_pss_mb() const {
  std::vector<double> values;
  for (const RunOutcome& outcome : outcomes_) values.push_back(outcome.mean_pss_mb);
  return stats::mean_ci(values);
}

stats::MeanCi RunAggregate::peak_pss_mb() const {
  std::vector<double> values;
  for (const RunOutcome& outcome : outcomes_) values.push_back(outcome.peak_pss_mb);
  return stats::mean_ci(values);
}

double RunAggregate::min_peak_pss_mb() const {
  double best = 0.0;
  bool first = true;
  for (const RunOutcome& outcome : outcomes_) {
    if (first || outcome.peak_pss_mb < best) best = outcome.peak_pss_mb;
    first = false;
  }
  return best;
}

double RunAggregate::max_peak_pss_mb() const {
  double best = 0.0;
  for (const RunOutcome& outcome : outcomes_) best = std::max(best, outcome.peak_pss_mb);
  return best;
}

void SessionBreakdown::add(const std::string& label, const RunOutcome& outcome) {
  for (auto& [name, aggregate] : entries_) {
    if (name == label) {
      aggregate.add(outcome);
      return;
    }
  }
  entries_.emplace_back(label, RunAggregate{});
  entries_.back().second.add(outcome);
}

const RunAggregate* SessionBreakdown::find(const std::string& label) const noexcept {
  for (const auto& [name, aggregate] : entries_) {
    if (name == label) return &aggregate;
  }
  return nullptr;
}

std::string format_mean_ci(const stats::MeanCi& value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f +- %.*f", decimals, value.mean, decimals,
                value.ci95);
  return buffer;
}

}  // namespace mvqoe::qoe
