// Discrete-event simulation engine.
//
// A single Engine instance owns the simulated clock and an event queue of
// (time, sequence, callback) entries. Components schedule callbacks; the
// engine dispatches them in time order (FIFO among same-time events, so
// the simulation is fully deterministic). Events can be cancelled by id —
// the scheduler uses this heavily for timeslice expiry and sleep timers.
//
// Cancellation is lazy (the heap entry stays until it is popped or the
// heap is compacted), but bounded: once cancelled entries outnumber live
// ones the heap is rebuilt without them, so a workload that schedules and
// cancels far-future timers forever holds O(live events) memory instead
// of growing until the clock reaches the dead entries.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe::sim {

/// Handle to a scheduled event; kInvalidEvent compares false-y.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  using Callback = std::function<void()>;

  Time now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `t` (clamped to now()).
  EventId schedule_at(Time t, Callback fn);
  /// Schedule `fn` to run `delay` from now (negative delays clamp to 0).
  EventId schedule(Time delay, Callback fn);

  /// Cancel a pending event. Returns true if the event was still pending.
  /// Cancelling an already-fired or invalid id is a harmless no-op.
  bool cancel(EventId id);

  /// Run events until the queue is empty or the clock would pass `t`;
  /// the clock is left at min(t, last event time >= now). Events scheduled
  /// exactly at `t` do run.
  void run_until(Time t);

  /// Run until the event queue is fully drained.
  void run();

  /// Process a single event if one is pending; returns false when idle.
  bool step();

  std::size_t pending_events() const noexcept { return heap_.size() - cancelled_.size(); }

  /// Heap entries actually held, including lazily-cancelled ones waiting
  /// to be compacted away — the memory-bound observable the compaction
  /// tests assert on. Always < 2 * pending_events() + kCompactMinEntries.
  std::size_t queued_entries() const noexcept { return heap_.size(); }

  /// Total events dispatched since construction (cancelled entries do not
  /// count). Watchdogs use this to detect livelock-free progress.
  std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Livelock tripwire: a run of more than `limit` consecutive events at a
  /// single timestamp (a zero-delay reschedule loop never advancing the
  /// clock) increments livelock_trips(). 0 disables the check. Detection
  /// only — the engine keeps running so callers can observe and bail.
  void set_livelock_limit(std::uint64_t limit) noexcept { livelock_limit_ = limit; }
  std::uint64_t livelock_trips() const noexcept { return livelock_trips_; }

  /// Lazy-cancel bookkeeping audit: every cancelled id must still have a
  /// heap entry and no callback, so heap size == callbacks + cancelled and
  /// the two id sets are disjoint. Cheap enough for test/watchdog use.
  bool check_invariants() const noexcept;

  /// Live (time, seq) pairs in dispatch order; lazily-cancelled entries
  /// are excluded. This is the serializable view of the event queue (the
  /// callbacks themselves are closures and cannot be serialized — see
  /// DESIGN.md §10).
  std::vector<std::pair<Time, std::uint64_t>> live_events() const;

  /// Stable 64-bit hash of (now, next_seq, live timer set). Invariant to
  /// heap layout, lazily-cancelled residue, and maybe_compact() timing:
  /// two engines with the same clock, same seq counter and the same set
  /// of pending live events digest identically no matter how they got
  /// there.
  std::uint64_t digest() const;

  /// Serialize the replayable view: clock, seq counter, dispatch count
  /// and the sorted live (time, seq) list.
  void save(snapshot::ByteWriter& w) const;

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  /// Below this size lazy cancellation is cheaper than rebuilding.
  static constexpr std::size_t kCompactMinEntries = 64;

  /// Rebuild the heap without the cancelled entries once they dominate.
  /// (time, seq) ordering is carried by the entries themselves, so the
  /// rebuild cannot reorder dispatch.
  void maybe_compact();

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::uint64_t livelock_limit_ = 0;
  std::uint64_t livelock_trips_ = 0;
  std::uint64_t same_time_run_ = 0;
  Time last_dispatch_time_ = -1;
  /// Binary heap ordered by Later (std::push_heap/pop_heap), kept as a
  /// plain vector so maybe_compact() can filter it in place.
  std::vector<Entry> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  std::unordered_set<EventId> cancelled_;
};

/// Repeats a callback at a fixed period until stopped. Used for periodic
/// samplers (vmstat/PSS logging, lmkd pressure polling, vsync).
///
/// The callback may re-enter the task: stop(), stop()+start(), and even
/// destroying the PeriodicTask itself from inside the callback are safe.
/// The schedule chain owns a shared state block that outlives the task,
/// so a mid-callback destruction never frees the callable being run.
class PeriodicTask {
 public:
  PeriodicTask(Engine& engine, Time period, Engine::Callback fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  void stop();
  bool running() const noexcept;

 private:
  struct State;
  static void fire(const std::shared_ptr<State>& state);

  std::shared_ptr<State> state_;
};

}  // namespace mvqoe::sim
