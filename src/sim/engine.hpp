// Discrete-event simulation engine.
//
// A single Engine instance owns the simulated clock and an event queue.
// Components schedule callbacks; the engine dispatches them in time order
// (FIFO among same-time events, so the simulation is fully deterministic).
// Events can be cancelled by id — the scheduler uses this heavily for
// timeslice expiry and sleep timers.
//
// Storage is a slab arena (DESIGN.md §14): every pending event lives in a
// slot recycled through a free list, the heap holds flat (time, seq, slot)
// entries, and ids carry a per-slot generation tag so a stale cancel()
// after the slot was reused is a harmless no-op. The hottest event kinds
// (timeslice expiry, link completion/timeouts, watchdogs, periodic
// samplers) are scheduled as *flat* events — a raw function pointer plus a
// context pointer and one 64-bit argument — so the steady-state hot path
// performs no allocation at all; std::function remains as the cold
// fallback for caller-supplied closures.
//
// Cancellation is lazy (the heap entry stays until it is popped or the
// heap is compacted), but bounded: once cancelled entries outnumber live
// ones the heap is rebuilt without them, so a workload that schedules and
// cancels far-future timers forever holds O(live events) memory instead
// of growing until the clock reaches the dead entries.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe::sim {

/// Handle to a scheduled event; kInvalidEvent compares false-y. Encodes
/// (generation << 32) | (slot + 1): the +1 keeps slot 0 / generation 0
/// distinct from kInvalidEvent, and the generation tag detects slot reuse.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Engine {
 public:
  using Callback = std::function<void()>;
  /// Flat event handler: the allocation-free hot path. The engine stores
  /// (fn, ctx, arg) inline in the event slot; no closure is created.
  using FlatFn = void (*)(void* ctx, std::uint64_t arg);

  Time now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `t` (clamped to now()).
  EventId schedule_at(Time t, Callback fn);
  /// Schedule `fn` to run `delay` from now (negative delays clamp to 0).
  EventId schedule(Time delay, Callback fn);

  /// Flat variants: `fn(ctx, arg)` runs at the scheduled time. The caller
  /// guarantees `ctx` outlives the event (or cancels it first). Dispatch
  /// order is interchangeable with the closure variants — both draw seq
  /// numbers from the same counter, so digests and snapshots cannot tell
  /// which flavour scheduled an event.
  EventId schedule_flat_at(Time t, FlatFn fn, void* ctx, std::uint64_t arg = 0);
  EventId schedule_flat(Time delay, FlatFn fn, void* ctx, std::uint64_t arg = 0);

  /// Cancel a pending event. Returns true if the event was still pending.
  /// Cancelling an already-fired, stale (slot since reused) or invalid id
  /// is a harmless no-op.
  bool cancel(EventId id);

  /// Run events with time <= `t` (events scheduled exactly at `t` do
  /// run), then land the clock on exactly `t` — even when the queue
  /// drained early or was empty to begin with. Callers rely on this to
  /// advance idle worlds; see RunUntilAdvancesClockWhenIdle.
  void run_until(Time t);

  /// Run until the event queue is fully drained.
  void run();

  /// Process a single event if one is pending; returns false when idle.
  bool step();

  /// Live (not-yet-fired, not-cancelled) events. Maintained as a counter,
  /// so a bookkeeping bug shows up in check_invariants() instead of
  /// underflowing a size_t subtraction.
  std::size_t pending_events() const noexcept { return live_count_; }

  /// Heap entries actually held, including lazily-cancelled ones waiting
  /// to be compacted away — the memory-bound observable the compaction
  /// tests assert on. Always < 2 * pending_events() + kCompactMinEntries.
  std::size_t queued_entries() const noexcept { return heap_.size(); }

  /// Arena slots ever allocated (live + free-listed). Stops growing once
  /// the workload reaches steady state — the slot-reuse observable the
  /// arena stress tests assert on.
  std::size_t slot_capacity() const noexcept { return slots_.size(); }

  /// Total events dispatched since construction (cancelled entries do not
  /// count). Watchdogs use this to detect livelock-free progress.
  std::uint64_t dispatched() const noexcept { return dispatched_; }

  /// Total schedule_*() calls and successful cancel() calls since
  /// construction. Together with dispatched() these describe a workload's
  /// event profile — bench_engine replays the measured mix of a real
  /// world against engine variants.
  std::uint64_t scheduled() const noexcept { return next_seq_ - 1; }
  std::uint64_t cancels() const noexcept { return cancels_; }

  /// Compaction observability: number of heap rebuilds and total entries
  /// scanned across them. Each rebuild removes more than half the heap,
  /// so scanned work is bounded by ~2x the number of cancels — the
  /// amortized-O(1) churn regression test asserts on exactly this.
  std::uint64_t compactions() const noexcept { return compactions_; }
  std::uint64_t compaction_scanned() const noexcept { return compaction_scanned_; }

  /// Livelock tripwire: a run of more than `limit` consecutive events at a
  /// single timestamp (a zero-delay reschedule loop never advancing the
  /// clock) increments livelock_trips(). 0 disables the check. Detection
  /// only — the engine keeps running so callers can observe and bail.
  void set_livelock_limit(std::uint64_t limit) noexcept { livelock_limit_ = limit; }
  std::uint64_t livelock_trips() const noexcept { return livelock_trips_; }

  /// Arena bookkeeping audit: live heap entries (slot seq matches) must
  /// equal both live_count_ and the number of occupied slots, every live
  /// entry's cached time must match its slot, and the free list must
  /// thread exactly through the unoccupied slots without cycles. Cheap
  /// enough for test/watchdog use.
  bool check_invariants() const noexcept;

  /// The seq number of a live event, or 0 if `id` is not live. The seq is
  /// the stable serializable identity of an event (ids encode arena slot
  /// positions, which are an allocation artifact) — snapshot sections
  /// that reference engine events persist the seq, never the id.
  std::uint64_t seq_of(EventId id) const noexcept;

  /// Live (time, seq) pairs in dispatch order; lazily-cancelled entries
  /// are excluded. This is the serializable view of the event queue (the
  /// callbacks themselves are closures and cannot be serialized — see
  /// DESIGN.md §10).
  std::vector<std::pair<Time, std::uint64_t>> live_events() const;

  /// Stable 64-bit hash of (now, next_seq, live timer set). Invariant to
  /// heap layout, lazily-cancelled residue, arena slot placement and
  /// maybe_compact() timing: two engines with the same clock, same seq
  /// counter and the same set of pending live events digest identically
  /// no matter how they got there.
  std::uint64_t digest() const;

  /// Serialize the replayable view: clock, seq counter, dispatch count
  /// and the sorted live (time, seq) list.
  void save(snapshot::ByteWriter& w) const;

 private:
  /// One arena slot. `seq` doubles as the occupancy flag (0 = free) and
  /// the staleness check for heap entries: an entry is live iff its seq
  /// still matches its slot's. `generation` is bumped on every release so
  /// an old id can never alias the slot's next tenant.
  struct Slot {
    std::uint64_t seq = 0;
    Time time = 0;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNilSlot;
    FlatFn flat_fn = nullptr;
    void* flat_ctx = nullptr;
    std::uint64_t flat_arg = 0;
    Callback fn;  // cold fallback; empty for flat events
  };
  struct Entry {
    Time time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
#if defined(__SIZEOF_INT128__)
      // Dispatch order is the lexicographic (time, seq) pair; time is
      // non-negative, so fusing both into one 128-bit key turns the
      // two-branch comparison into a single flag-register compare. This
      // comparator runs ~2 log n times per event — it is the single
      // hottest expression in the simulator.
      return key(a) > key(b);
#else
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
#endif
    }
#if defined(__SIZEOF_INT128__)
    static unsigned __int128 key(const Entry& e) noexcept {
      return (static_cast<unsigned __int128>(static_cast<std::uint64_t>(e.time)) << 64) | e.seq;
    }
#endif
  };

  static constexpr std::uint32_t kNilSlot = 0xffffffffu;

  /// Below this size lazy cancellation is cheaper than rebuilding.
  static constexpr std::size_t kCompactMinEntries = 64;

  static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1u;
  }
  static constexpr std::uint32_t generation_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static constexpr EventId make_id(std::uint32_t generation, std::uint32_t slot) noexcept {
    return (static_cast<EventId>(generation) << 32) | (static_cast<EventId>(slot) + 1u);
  }

  /// Pop a slot off the free list (or grow the arena) and stamp it with a
  /// fresh seq; pushes the matching heap entry.
  std::uint32_t acquire_slot(Time t);
  /// Return a slot to the free list, bumping its generation and dropping
  /// any retained closure. Flat payload fields are left as-is: a free
  /// slot's contents are dead (seq == 0 gates every read), and the next
  /// tenant's schedule_*_at stamps them before they can be observed.
  void release_slot(std::uint32_t idx);
  const Slot* live_slot(EventId id) const noexcept;

  /// Rebuild the heap without the stale entries once they dominate.
  /// (time, seq) ordering is carried by the entries themselves, so the
  /// rebuild cannot reorder dispatch. Capacity is deliberately retained
  /// (no shrink_to_fit): the high-water allocation is the hysteresis that
  /// keeps a workload hovering at the trigger ratio from paying a realloc
  /// per compaction.
  void maybe_compact();

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dispatched_ = 0;
  std::uint64_t livelock_limit_ = 0;
  std::uint64_t livelock_trips_ = 0;
  std::uint64_t same_time_run_ = 0;
  Time last_dispatch_time_ = -1;
  std::size_t live_count_ = 0;
  std::uint64_t cancels_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t compaction_scanned_ = 0;
  /// Binary heap ordered by Later (std::push_heap/pop_heap), kept as a
  /// plain vector so maybe_compact() can filter it in place.
  std::vector<Entry> heap_;
  /// Next-event register: the earliest pending entry is staged here, out
  /// of the heap. schedule keeps the earlier of (new event, staged) and
  /// spills the other; dispatch takes the staged entry directly whenever
  /// it beats the heap root. A monotone chain — one event scheduling its
  /// successor, the dominant single-world shape (periodic samplers,
  /// vsync, timeslice/sleep rearm) — cycles through this register and
  /// never pays a heap sift. cancel() clears it on a match, so a valid
  /// staged entry is always live.
  Entry staged_{0, 0, 0};
  bool staged_valid_ = false;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNilSlot;
};

// ---------------------------------------------------------------------------
// Hot-path definitions, header-inline on purpose: schedule/dispatch/cancel
// are called once per simulated event by every client TU, and keeping them
// visible to the caller's optimizer (no cross-TU call, arguments constant-
// folded) is worth roughly as much as the arena itself. Cold surface
// (digest/save/live_events/check_invariants/PeriodicTask) stays in the .cpp.
// ---------------------------------------------------------------------------

inline std::uint32_t Engine::acquire_slot(Time t) {
  std::uint32_t idx;
  if (free_head_ != kNilSlot) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;  // next_free left stale; seq gates it
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.seq = next_seq_++;
  s.time = t;
  const Entry e{t, s.seq, idx};
  if (!staged_valid_) {
    staged_ = e;
    staged_valid_ = true;
  } else if (Later{}(staged_, e)) {
    // The new event dispatches before the staged one: swap them and spill
    // the later entry to the heap.
    heap_.push_back(staged_);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    staged_ = e;
  } else {
    heap_.push_back(e);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  ++live_count_;
  return idx;
}

inline void Engine::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.seq = 0;
  ++s.generation;  // stale ids can never match the slot's next tenant
  if (s.fn) s.fn = nullptr;  // drop the closure now, not at slot reuse
  s.next_free = free_head_;
  free_head_ = idx;
}

inline const Engine::Slot* Engine::live_slot(EventId id) const noexcept {
  if (id == kInvalidEvent) return nullptr;
  const std::uint32_t idx = slot_of(id);
  if (idx >= slots_.size()) return nullptr;
  const Slot& s = slots_[idx];
  if (s.seq == 0 || s.generation != generation_of(id)) return nullptr;
  return &s;
}

inline EventId Engine::schedule_at(Time t, Callback fn) {
  if (t < now_) t = now_;
  const std::uint32_t idx = acquire_slot(t);
  Slot& s = slots_[idx];
  s.flat_fn = nullptr;  // the slot may be reused from a flat tenant
  s.fn = std::move(fn);
  return make_id(s.generation, idx);
}

inline EventId Engine::schedule(Time delay, Callback fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

inline EventId Engine::schedule_flat_at(Time t, FlatFn fn, void* ctx, std::uint64_t arg) {
  if (t < now_) t = now_;
  const std::uint32_t idx = acquire_slot(t);
  Slot& s = slots_[idx];
  s.flat_fn = fn;
  s.flat_ctx = ctx;
  s.flat_arg = arg;
  return make_id(s.generation, idx);
}

inline EventId Engine::schedule_flat(Time delay, FlatFn fn, void* ctx, std::uint64_t arg) {
  if (delay < 0) delay = 0;
  return schedule_flat_at(now_ + delay, fn, ctx, arg);
}

inline bool Engine::cancel(EventId id) {
  const Slot* s = live_slot(id);
  if (s == nullptr) return false;
  const std::uint32_t idx = slot_of(id);
  if (staged_valid_ && staged_.slot == idx) staged_valid_ = false;
  release_slot(idx);
  --live_count_;
  ++cancels_;
  maybe_compact();
  return true;
}

inline std::uint64_t Engine::seq_of(EventId id) const noexcept {
  const Slot* s = live_slot(id);
  return s != nullptr ? s->seq : 0;
}

inline void Engine::maybe_compact() {
  // A scheduler that parks far-future timers and cancels them long before
  // they mature would otherwise grow the heap until the clock catches up.
  // The trigger (stale entries strictly outnumber live ones) guarantees
  // each rebuild discards more than half the heap, so total compaction
  // work stays amortized-O(1) per cancel; compacting removes *all* stale
  // residue, dropping the ratio to 0 — far below the trigger — which is
  // the hysteresis that prevents a rebuild on every subsequent cancel.
  const std::size_t pending = heap_.size() + (staged_valid_ ? 1 : 0);
  const std::size_t stale = pending - live_count_;
  if (heap_.size() < kCompactMinEntries || stale * 2 <= heap_.size()) return;
  compaction_scanned_ += heap_.size();
  ++compactions_;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) { return slots_[e.slot].seq != e.seq; }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
}

inline bool Engine::step() {
  for (;;) {
    Entry top;
    if (staged_valid_ && (heap_.empty() || !Later{}(staged_, heap_.front()))) {
      // The staged entry is the global minimum: dispatch it without
      // touching the heap. Steady-state chains live entirely here.
      top = staged_;
      staged_valid_ = false;
    } else if (!heap_.empty()) {
      top = heap_.front();
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      Slot& hs = slots_[top.slot];
      if (hs.seq != top.seq) continue;  // stale: cancelled, slot maybe reused
    } else {
      return false;
    }
    Slot& s = slots_[top.slot];
    now_ = top.time;
    ++dispatched_;
    --live_count_;
    if (livelock_limit_ != 0) {
      // Same-timestamp run tracking is only needed while the tripwire is
      // armed; counting starts from the moment set_livelock_limit enables
      // it, which is when every caller arms it (before running).
      if (top.time == last_dispatch_time_) {
        ++same_time_run_;
        if (same_time_run_ == livelock_limit_ + 1) ++livelock_trips_;
      } else {
        last_dispatch_time_ = top.time;
        same_time_run_ = 1;
      }
    }
    // Release the slot before invoking so the handler can reschedule into
    // it (steady-state loops cycle through one slot, allocation-free) and
    // a self-cancel from inside the handler is a harmless no-op.
    if (s.flat_fn != nullptr) {
      const FlatFn fn = s.flat_fn;
      void* ctx = s.flat_ctx;
      const std::uint64_t arg = s.flat_arg;
      // Manual release: a flat tenant never holds a closure (and release
      // always clears one), so skip release_slot's std::function check.
      s.seq = 0;
      ++s.generation;
      s.next_free = free_head_;
      free_head_ = top.slot;
      fn(ctx, arg);
    } else {
      Callback fn = std::move(s.fn);
      release_slot(top.slot);
      fn();
    }
    return true;
  }
}

inline void Engine::run_until(Time t) {
  for (;;) {
    // Skip over stale (cancelled) heap entries without advancing the clock.
    while (!heap_.empty() && slots_[heap_.front().slot].seq != heap_.front().seq) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
    // The next event is the earlier of the staged entry and the heap root
    // (a valid staged entry is always live — cancel() clears it).
    const Entry* next = staged_valid_ ? &staged_ : nullptr;
    if (!heap_.empty() && (next == nullptr || Later{}(*next, heap_.front()))) {
      next = &heap_.front();
    }
    if (next == nullptr || next->time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

inline void Engine::run() {
  while (step()) {
  }
}

/// Repeats a callback at a fixed period until stopped. Used for periodic
/// samplers (vmstat/PSS logging, lmkd pressure polling, vsync).
///
/// The callback may re-enter the task: stop(), stop()+start(), and even
/// destroying the PeriodicTask itself from inside the callback are safe.
/// The chain holds the shared state block alive (a self-reference while a
/// fire is pending, plus a stack pin during dispatch), so a mid-callback
/// destruction never frees the callable being run. The per-fire
/// reschedule uses the engine's flat path — a periodic task in steady
/// state allocates nothing.
class PeriodicTask {
 public:
  PeriodicTask(Engine& engine, Time period, Engine::Callback fn);
  ~PeriodicTask();

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void start();
  void stop();
  bool running() const noexcept;

 private:
  struct State;
  static void fire(void* ctx, std::uint64_t);

  std::shared_ptr<State> state_;
};

}  // namespace mvqoe::sim
