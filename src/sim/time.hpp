// Simulated time. The whole suite runs on a single discrete-event clock
// with microsecond resolution: fine enough to model scheduler timeslices
// (milliseconds) and per-frame vsync deadlines (16.67 ms at 60 Hz) without
// rounding artifacts, coarse enough that multi-day field-study simulations
// fit comfortably in 64 bits.
#pragma once

#include <cstdint>

namespace mvqoe::sim {

/// Absolute simulated time or a duration, in microseconds.
using Time = std::int64_t;

constexpr Time kNever = INT64_MAX;

constexpr Time usec(std::int64_t n) noexcept { return n; }
constexpr Time msec(std::int64_t n) noexcept { return n * 1000; }
constexpr Time sec(std::int64_t n) noexcept { return n * 1'000'000; }
constexpr Time minutes(std::int64_t n) noexcept { return n * 60'000'000; }
constexpr Time hours(std::int64_t n) noexcept { return n * 3'600'000'000LL; }

constexpr double to_seconds(Time t) noexcept { return static_cast<double>(t) * 1e-6; }
constexpr double to_millis(Time t) noexcept { return static_cast<double>(t) * 1e-3; }
constexpr Time from_seconds(double s) noexcept { return static_cast<Time>(s * 1e6); }

}  // namespace mvqoe::sim
