#include "sim/engine.hpp"

#include <utility>

namespace mvqoe::sim {

EventId Engine::schedule_at(Time t, Callback fn) {
  if (t < now_) t = now_;
  const EventId id = next_seq_;
  heap_.push(Entry{t, next_seq_, id});
  ++next_seq_;
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Engine::schedule(Time delay, Callback fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  return true;
}

bool Engine::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    const auto cancelled = cancelled_.find(top.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    const auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // defensive; cancel covers this
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.time;
    ++dispatched_;
    if (top.time == last_dispatch_time_) {
      ++same_time_run_;
      if (livelock_limit_ != 0 && same_time_run_ == livelock_limit_ + 1) ++livelock_trips_;
    } else {
      last_dispatch_time_ = top.time;
      same_time_run_ = 1;
    }
    fn();
    return true;
  }
  return false;
}

bool Engine::check_invariants() const noexcept {
  if (heap_.size() != callbacks_.size() + cancelled_.size()) return false;
  for (const EventId id : cancelled_) {
    if (callbacks_.count(id) != 0) return false;
  }
  return true;
}

void Engine::run_until(Time t) {
  while (!heap_.empty()) {
    // Skip over cancelled entries without advancing the clock.
    const Entry top = heap_.top();
    if (cancelled_.count(top.id) != 0) {
      heap_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void Engine::run() {
  while (step()) {
  }
}

PeriodicTask::PeriodicTask(Engine& engine, Time period, Engine::Callback fn)
    : engine_(engine), period_(period > 0 ? period : 1), fn_(std::move(fn)) {}

PeriodicTask::~PeriodicTask() { stop(); }

void PeriodicTask::start() {
  if (pending_ != kInvalidEvent) return;
  pending_ = engine_.schedule(period_, [this] { fire(); });
}

void PeriodicTask::stop() {
  if (pending_ == kInvalidEvent) return;
  engine_.cancel(pending_);
  pending_ = kInvalidEvent;
}

void PeriodicTask::fire() {
  pending_ = engine_.schedule(period_, [this] { fire(); });
  fn_();
}

}  // namespace mvqoe::sim
