#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "snapshot/digest.hpp"

namespace mvqoe::sim {

EventId Engine::schedule_at(Time t, Callback fn) {
  if (t < now_) t = now_;
  const EventId id = next_seq_;
  heap_.push_back(Entry{t, next_seq_, id});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++next_seq_;
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Engine::schedule(Time delay, Callback fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

bool Engine::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  maybe_compact();
  return true;
}

void Engine::maybe_compact() {
  // A scheduler that parks far-future timers and cancels them long before
  // they mature would otherwise grow the heap until the clock catches up.
  if (heap_.size() < kCompactMinEntries || cancelled_.size() * 2 <= heap_.size()) return;
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) { return cancelled_.count(e.id) != 0; }),
              heap_.end());
  heap_.shrink_to_fit();
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_.clear();
}

bool Engine::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    const auto cancelled = cancelled_.find(top.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    const auto it = callbacks_.find(top.id);
    if (it == callbacks_.end()) continue;  // defensive; cancel covers this
    Callback fn = std::move(it->second);
    callbacks_.erase(it);
    now_ = top.time;
    ++dispatched_;
    if (top.time == last_dispatch_time_) {
      ++same_time_run_;
      if (livelock_limit_ != 0 && same_time_run_ == livelock_limit_ + 1) ++livelock_trips_;
    } else {
      last_dispatch_time_ = top.time;
      same_time_run_ = 1;
    }
    fn();
    return true;
  }
  return false;
}

std::vector<std::pair<Time, std::uint64_t>> Engine::live_events() const {
  std::vector<std::pair<Time, std::uint64_t>> live;
  live.reserve(heap_.size());
  for (const Entry& e : heap_) {
    if (cancelled_.count(e.id) == 0) live.emplace_back(e.time, e.seq);
  }
  // The heap array's layout depends on insertion/cancellation history;
  // sorting by dispatch order removes that history from the digest.
  std::sort(live.begin(), live.end());
  return live;
}

std::uint64_t Engine::digest() const {
  snapshot::StateHash h;
  h.mix(static_cast<std::uint64_t>(now_));
  h.mix(next_seq_);
  for (const auto& [time, seq] : live_events()) {
    h.mix(static_cast<std::uint64_t>(time));
    h.mix(seq);
  }
  return h.value();
}

void Engine::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.i64(now_);
  w.u64(next_seq_);
  w.u64(dispatched_);
  const auto live = live_events();
  w.u64(live.size());
  for (const auto& [time, seq] : live) {
    w.i64(time);
    w.u64(seq);
  }
}

bool Engine::check_invariants() const noexcept {
  if (heap_.size() != callbacks_.size() + cancelled_.size()) return false;
  for (const EventId id : cancelled_) {
    if (callbacks_.count(id) != 0) return false;
  }
  return true;
}

void Engine::run_until(Time t) {
  while (!heap_.empty()) {
    // Skip over cancelled entries without advancing the clock.
    const Entry top = heap_.front();
    if (cancelled_.count(top.id) != 0) {
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

void Engine::run() {
  while (step()) {
  }
}

// The chain of scheduled fire() events owns this block via shared_ptr, so
// the callable keeps living through its own invocation even if the user
// destroys the PeriodicTask from inside fn (self-destruction), and stop()
// /start() from inside fn operate on the same pending id the chain uses.
struct PeriodicTask::State {
  State(Engine& eng, Time per, Engine::Callback callback)
      : engine(eng), period(per), fn(std::move(callback)) {}
  Engine& engine;
  Time period;
  Engine::Callback fn;
  EventId pending = kInvalidEvent;
};

PeriodicTask::PeriodicTask(Engine& engine, Time period, Engine::Callback fn)
    : state_(std::make_shared<State>(engine, period > 0 ? period : 1, std::move(fn))) {}

PeriodicTask::~PeriodicTask() { stop(); }

bool PeriodicTask::running() const noexcept { return state_->pending != kInvalidEvent; }

void PeriodicTask::start() {
  if (state_->pending != kInvalidEvent) return;
  std::shared_ptr<State> state = state_;
  state_->pending = state_->engine.schedule(state_->period, [state] { fire(state); });
}

void PeriodicTask::stop() {
  if (state_->pending == kInvalidEvent) return;
  state_->engine.cancel(state_->pending);
  state_->pending = kInvalidEvent;
}

void PeriodicTask::fire(const std::shared_ptr<State>& state) {
  // Reschedule before running fn so the callback observes running() and
  // can stop()/restart the chain; fn may also delete the owning task —
  // `state` on this stack frame keeps the callable alive through the call.
  state->pending = state->engine.schedule(state->period, [state] { fire(state); });
  state->fn();
}

}  // namespace mvqoe::sim
