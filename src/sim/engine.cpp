#include "sim/engine.hpp"

#include <algorithm>
#include <utility>

#include "snapshot/digest.hpp"

namespace mvqoe::sim {

std::vector<std::pair<Time, std::uint64_t>> Engine::live_events() const {
  std::vector<std::pair<Time, std::uint64_t>> live;
  live.reserve(live_count_);
  if (staged_valid_) live.emplace_back(staged_.time, staged_.seq);
  for (const Entry& e : heap_) {
    if (slots_[e.slot].seq == e.seq) live.emplace_back(e.time, e.seq);
  }
  // The heap array's layout depends on insertion/cancellation history;
  // sorting by dispatch order removes that history from the digest.
  std::sort(live.begin(), live.end());
  return live;
}

std::uint64_t Engine::digest() const {
  snapshot::StateHash h;
  h.mix(static_cast<std::uint64_t>(now_));
  h.mix(next_seq_);
  for (const auto& [time, seq] : live_events()) {
    h.mix(static_cast<std::uint64_t>(time));
    h.mix(seq);
  }
  return h.value();
}

void Engine::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.i64(now_);
  w.u64(next_seq_);
  w.u64(dispatched_);
  const auto live = live_events();
  w.u64(live.size());
  for (const auto& [time, seq] : live) {
    w.i64(time);
    w.u64(seq);
  }
}

bool Engine::check_invariants() const noexcept {
  // Every live entry (staged register included) must agree with its slot
  // on (seq, time), and their count must equal the maintained live
  // counter. A valid staged entry must itself be live — cancel() clears
  // it — so a stale one is corruption, not residue.
  std::size_t live_entries = 0;
  if (staged_valid_) {
    if (staged_.slot >= slots_.size()) return false;
    const Slot& s = slots_[staged_.slot];
    if (s.seq != staged_.seq || s.time != staged_.time) return false;
    ++live_entries;
  }
  for (const Entry& e : heap_) {
    if (e.slot >= slots_.size()) return false;
    const Slot& s = slots_[e.slot];
    if (s.seq != e.seq) continue;  // stale residue awaiting compaction
    if (s.time != e.time) return false;
    ++live_entries;
  }
  if (live_entries != live_count_) return false;
  // Occupied slots (seq != 0) must be exactly the live entries, and the
  // free list must thread through the rest without cycles or repeats.
  std::size_t occupied = 0;
  for (const Slot& s : slots_) {
    if (s.seq != 0) ++occupied;
  }
  if (occupied != live_count_) return false;
  std::size_t free_len = 0;
  for (std::uint32_t idx = free_head_; idx != kNilSlot; idx = slots_[idx].next_free) {
    if (idx >= slots_.size()) return false;
    if (slots_[idx].seq != 0) return false;
    if (++free_len > slots_.size()) return false;  // cycle
  }
  return occupied + free_len == slots_.size();
}

// Ownership: the task holds `state_`; while a fire is scheduled the chain
// holds `state->self` (flat events carry no ownership, only the raw
// pointer). fire() pins a stack copy before doing anything, so stop(),
// start() and even destruction of the owning task from inside fn operate
// on a block that provably outlives the call.
struct PeriodicTask::State {
  State(Engine& eng, Time per, Engine::Callback callback)
      : engine(eng), period(per), fn(std::move(callback)) {}
  Engine& engine;
  Time period;
  Engine::Callback fn;
  EventId pending = kInvalidEvent;
  std::shared_ptr<State> self;  // non-null exactly while a fire is pending
};

PeriodicTask::PeriodicTask(Engine& engine, Time period, Engine::Callback fn)
    : state_(std::make_shared<State>(engine, period > 0 ? period : 1, std::move(fn))) {}

PeriodicTask::~PeriodicTask() { stop(); }

bool PeriodicTask::running() const noexcept { return state_->pending != kInvalidEvent; }

void PeriodicTask::start() {
  if (state_->pending != kInvalidEvent) return;
  state_->self = state_;
  state_->pending = state_->engine.schedule_flat(state_->period, &PeriodicTask::fire,
                                                 state_.get(), 0);
}

void PeriodicTask::stop() {
  if (state_->pending == kInvalidEvent) return;
  state_->engine.cancel(state_->pending);
  state_->pending = kInvalidEvent;
  // A fire() frame on the stack keeps the block alive through its call
  // even after this release.
  state_->self.reset();
}

void PeriodicTask::fire(void* ctx, std::uint64_t) {
  // Pin the state for the duration of the callback, then reschedule
  // *before* running fn so the callback observes running() and can
  // stop()/restart the chain; fn may also delete the owning task.
  const std::shared_ptr<State> state = static_cast<State*>(ctx)->self;
  state->pending = state->engine.schedule_flat(state->period, &PeriodicTask::fire,
                                               state.get(), 0);
  state->fn();
}

}  // namespace mvqoe::sim
