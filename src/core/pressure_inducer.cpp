#include "core/pressure_inducer.hpp"

#include "snapshot/digest.hpp"

namespace mvqoe::core {

namespace {
constexpr mem::Pages kStepPages = mem::pages_from_mb(8);
constexpr sim::Time kStepPeriod = sim::msec(50);
/// Touch cost per allocated page (the app memsets its allocations so the
/// kernel cannot lazily zero-fill them away).
constexpr double kTouchRefusPerPage = 0.18;
}  // namespace

PressureInducer::PressureInducer(Testbed& testbed, mem::PressureLevel target)
    : testbed_(testbed), target_(target) {
  // Never allocate more than twice RAM: if the target is unreachable the
  // inducer must not spin the simulation forever.
  cap_ = 2 * testbed_.profile().memory.total;
}

PressureInducer::~PressureInducer() { *keepalive_ = false; }

void PressureInducer::start(std::function<void()> on_reached) {
  on_reached_ = std::move(on_reached);
  if (target_ == mem::PressureLevel::Normal) {
    reached_ = true;
    if (on_reached_) testbed_.engine.schedule(0, std::move(on_reached_));
    return;
  }
  // Stop-at-first-signal: the trim delivery itself marks the target
  // reached, before the allocator can overshoot into a deeper level.
  testbed_.memory.subscribe_trim([this, alive = keepalive_](mem::PressureLevel level) {
    if (!*alive || reached_) return;
    if (level >= target_) {
      reached_ = true;
      if (on_reached_) {
        testbed_.engine.schedule(0, std::move(on_reached_));
        on_reached_ = nullptr;
      }
    }
  });
  pid_ = testbed_.am.next_pid();
  testbed_.memory.register_process(pid_, "mp_simulator", mem::OomAdj::kPerceptible);
  testbed_.memory.registry().set_killable(pid_, false);
  if (mem::ProcessMem* process = testbed_.memory.registry().find(pid_)) {
    process->unevictable = true;  // native (mlocked) allocations
  }

  sched::ThreadSpec spec;
  spec.name = "mp_alloc";
  spec.pid = pid_;
  spec.process_name = "mp_simulator";
  tid_ = testbed_.scheduler.create_thread(spec);

  running_ = true;
  step();
}

mem::Pages PressureInducer::target_available() const {
  // Pin available memory inside the zone where the target level's
  // signals are generated: at the cached-kill threshold for Moderate,
  // progressively deeper for Low/Critical. This reproduces the paper's
  // *sustained* pressure states rather than a one-shot spike.
  const mem::MemoryConfig& config = testbed_.profile().memory;
  switch (target_) {
    case mem::PressureLevel::Moderate: return config.minfree_cached;
    case mem::PressureLevel::Low: return (config.minfree_cached + config.minfree_service) / 2;
    case mem::PressureLevel::Critical: return config.minfree_service * 4 / 5;
    case mem::PressureLevel::Normal: break;
  }
  return config.total;
}

void PressureInducer::step() {
  if (!running_) return;
  const mem::Pages avail = testbed_.memory.available_pages();
  if (!reached_) {
    // Ramp phase: allocate until the target signal is delivered (the
    // listener in start() flips reached_).
    if (testbed_.memory.level() >= target_ || held_ >= cap_) {
      testbed_.scheduler.sleep_for(tid_, kStepPeriod, [this] { step(); });
      return;
    }
  } else {
    // Hold phase: keep available memory pinned just *above* the kill
    // threshold zone so the pressure state persists through the video —
    // but never grow much past what reaching the signal required.
    // (Otherwise the holder ratchets against every page kswapd compresses
    // until zRAM saturates, which the one-shot MP Simulator never did.)
    if (held_at_reached_ == 0) held_at_reached_ = held_;
    // Moderate holds near its ramp size; Low/Critical keep pinning hard —
    // the deep states *are* reclaim-collapse states.
    const mem::Pages hold_cap = target_ >= mem::PressureLevel::Low
                                    ? cap_
                                    : held_at_reached_ + held_at_reached_ / 7;
    const mem::Pages target_avail = target_available();
    if (avail <= target_avail + mem::pages_from_mb(6) || held_ >= std::min(cap_, hold_cap)) {
      testbed_.scheduler.sleep_for(tid_, kStepPeriod * 4, [this] { step(); });
      return;
    }
  }
  // Allocate one step, touch it, loop. Near the target zone, ramp gently
  // — the kill/signal machinery needs time to surface the level, and
  // overshooting Moderate straight into Critical would not match the MP
  // Simulator's stop-at-first-signal behaviour.
  const bool near_pressure =
      testbed_.memory.kswapd_active() || avail < target_available() + mem::pages_from_mb(64);
  const mem::Pages step_pages = near_pressure ? kStepPages / 8 : kStepPages;
  const sim::Time wait = near_pressure ? kStepPeriod * 3 : kStepPeriod;
  testbed_.scheduler.run_work(
      tid_, static_cast<double>(step_pages) * kTouchRefusPerPage, [this, step_pages, wait] {
        testbed_.memory.alloc_anon(pid_, step_pages, tid_, [this, step_pages, wait](bool ok) {
          if (!running_) return;
          if (ok) {
            held_ += step_pages;
            // The MP Simulator keeps its allocations resident (it touches
            // them natively): fully hot, never compressible.
            testbed_.memory.set_hot_pages(pid_, held_);
          }
          testbed_.scheduler.sleep_for(tid_, wait, [this] { step(); });
        });
      });
}

void PressureInducer::stop() {
  if (!running_ && pid_ == 0) return;
  running_ = false;
  if (pid_ != 0) {
    testbed_.memory.exit_process(pid_);
    pid_ = 0;
  }
  held_ = 0;
}

void PressureInducer::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.u8(static_cast<std::uint8_t>(target_));
  w.u32(pid_);
  w.u64(tid_);
  w.b(running_);
  w.b(reached_);
  w.i64(held_);
  w.i64(held_at_reached_);
  w.i64(cap_);
}

std::uint64_t PressureInducer::digest() const { return snapshot::state_digest(*this); }

}  // namespace mvqoe::core
