#include "core/device.hpp"

namespace mvqoe::core {

using mem::pages_from_mb;

namespace {

sched::SchedulerConfig cpu(std::initializer_list<double> freqs) {
  sched::SchedulerConfig config;
  for (const double f : freqs) config.cores.push_back(sched::CoreConfig{f});
  return config;
}

}  // namespace

DeviceProfile nokia1() {
  DeviceProfile device;
  device.name = "Nokia 1";
  device.ram_mb = 1024;
  device.scheduler = cpu({1.1, 1.1, 1.1, 1.1});

  device.memory.total = pages_from_mb(1024);
  device.memory.kernel_reserved = pages_from_mb(270);  // kernel + HAL + GPU carve-out
  device.memory.zram_capacity = pages_from_mb(360);    // Android Go ships zRAM (~RAM/3)
  device.memory.watermark_min = pages_from_mb(8);
  device.memory.watermark_low = pages_from_mb(40);
  device.memory.watermark_high = pages_from_mb(64);
  device.memory.trim_moderate = 6;  // footnote 6: 6/5/3 on the Nokia 1
  device.memory.trim_low = 5;
  device.memory.trim_critical = 3;
  device.memory.minfree_cached = pages_from_mb(110);
  device.memory.minfree_service = pages_from_mb(64);
  device.memory.minfree_perceptible = pages_from_mb(36);
  device.memory.minfree_foreground = pages_from_mb(18);

  device.storage.read_bandwidth_mbps = 120.0;
  device.storage.write_bandwidth_mbps = 32.0;

  device.system_scale = 0.55;  // Android Go: slim system image
  device.baseline_cached = 8;
  return device;
}

DeviceProfile nexus5() {
  DeviceProfile device;
  device.name = "Nexus 5";
  device.ram_mb = 2048;
  device.scheduler = cpu({2.33, 2.33, 2.33, 2.33});

  device.memory.total = pages_from_mb(2048);
  device.memory.kernel_reserved = pages_from_mb(380);
  device.memory.zram_capacity = pages_from_mb(600);
  device.memory.watermark_min = pages_from_mb(12);
  device.memory.watermark_low = pages_from_mb(48);
  device.memory.watermark_high = pages_from_mb(72);
  device.memory.trim_moderate = 8;  // thresholds scale with RAM (Fig 5)
  device.memory.trim_low = 7;
  device.memory.trim_critical = 4;
  device.memory.minfree_cached = pages_from_mb(100);
  device.memory.minfree_service = pages_from_mb(64);
  device.memory.minfree_perceptible = pages_from_mb(40);
  device.memory.minfree_foreground = pages_from_mb(22);

  device.storage.read_bandwidth_mbps = 140.0;
  device.storage.write_bandwidth_mbps = 45.0;

  device.system_scale = 1.1;
  device.baseline_cached = 12;
  return device;
}

DeviceProfile nexus6p() {
  DeviceProfile device;
  device.name = "Nexus 6P";
  device.ram_mb = 3072;
  device.scheduler = cpu({2.0, 2.0, 2.0, 2.0, 1.55, 1.55, 1.55, 1.55});

  device.memory.total = pages_from_mb(3072);
  device.memory.kernel_reserved = pages_from_mb(480);
  device.memory.zram_capacity = pages_from_mb(900);
  device.memory.watermark_min = pages_from_mb(16);
  device.memory.watermark_low = pages_from_mb(64);
  device.memory.watermark_high = pages_from_mb(96);
  device.memory.trim_moderate = 10;
  device.memory.trim_low = 8;
  device.memory.trim_critical = 5;
  device.memory.minfree_cached = pages_from_mb(120);
  device.memory.minfree_service = pages_from_mb(76);
  device.memory.minfree_perceptible = pages_from_mb(48);
  device.memory.minfree_foreground = pages_from_mb(26);

  device.storage.read_bandwidth_mbps = 160.0;
  device.storage.write_bandwidth_mbps = 60.0;

  device.system_scale = 1.3;
  device.baseline_cached = 14;
  return device;
}

const std::vector<DeviceProfile>& all_devices() {
  static const std::vector<DeviceProfile> devices = {nokia1(), nexus5(), nexus6p()};
  return devices;
}

DeviceProfile generic_device(std::int64_t ram_mb, int cores, double freq_ghz) {
  DeviceProfile device;
  device.name = std::to_string(ram_mb / 1024) + "GB generic";
  device.ram_mb = ram_mb;
  device.scheduler.cores.assign(static_cast<std::size_t>(cores), sched::CoreConfig{freq_ghz});

  device.memory.total = pages_from_mb(ram_mb);
  device.memory.kernel_reserved = pages_from_mb(220 + ram_mb / 8);
  device.memory.zram_capacity = pages_from_mb(ram_mb * 4 / 10);
  device.memory.watermark_min = pages_from_mb(6 + ram_mb / 256);
  device.memory.watermark_low = pages_from_mb(24 + ram_mb / 64);
  device.memory.watermark_high = pages_from_mb(36 + ram_mb / 48);
  const int ram_gb = static_cast<int>(ram_mb / 1024);
  device.memory.trim_moderate = 6 + 2 * (ram_gb - 1);
  device.memory.trim_low = 5 + ram_gb - 1;
  device.memory.trim_critical = 3 + (ram_gb - 1) / 2;
  device.memory.minfree_cached = pages_from_mb(50 + ram_mb / 40);
  device.memory.minfree_service = pages_from_mb(32 + ram_mb / 64);
  device.memory.minfree_perceptible = pages_from_mb(20 + ram_mb / 96);
  device.memory.minfree_foreground = pages_from_mb(12 + ram_mb / 160);

  device.system_scale = 0.7 + 0.2 * static_cast<double>(ram_gb);
  device.baseline_cached = 8 + 2 * (ram_gb - 1);
  return device;
}

}  // namespace mvqoe::core
