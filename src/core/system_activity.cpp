#include "core/system_activity.hpp"

#include "snapshot/digest.hpp"
#include "snapshot/rng_io.hpp"

namespace mvqoe::core {

SystemActivity::SystemActivity(Testbed& testbed, SystemActivityConfig config)
    : testbed_(testbed), config_(config), rng_(stats::derive_seed(testbed.seed(), 0x5157)) {}

SystemActivity::~SystemActivity() { *alive_ = false; }

void SystemActivity::start() {
  if (running_) return;
  running_ = true;
  for (const mem::ProcessId pid : testbed_.am.system_pids()) {
    const mem::ProcessMem* process = testbed_.memory.registry().find(pid);
    if (process == nullptr) continue;
    sched::ThreadSpec spec;
    spec.name = process->name + ":duty";
    spec.pid = pid;
    spec.process_name = process->name;
    Duty duty;
    duty.pid = pid;
    duty.tid = testbed_.scheduler.create_thread(spec);
    duty.period = config_.base_period + sim::usec(rng_.uniform_int(0, 200'000));
    duties_.push_back(duty);
  }
  for (std::size_t i = 0; i < duties_.size(); ++i) {
    // Stagger the first activations.
    testbed_.engine.schedule(sim::usec(rng_.uniform_int(0, 300'000)),
                             [this, i, alive = alive_] {
                               if (*alive && running_) loop(i);
                             });
  }
}

void SystemActivity::stop() { running_ = false; }

void SystemActivity::add_process(mem::ProcessId pid, sim::Time period) {
  const mem::ProcessMem* process = testbed_.memory.registry().find(pid);
  if (process == nullptr) return;
  sched::ThreadSpec spec;
  spec.name = process->name + ":bg";
  spec.pid = pid;
  spec.process_name = process->name;
  Duty duty;
  duty.pid = pid;
  duty.tid = testbed_.scheduler.create_thread(spec);
  duty.period = period + sim::usec(rng_.uniform_int(0, 150'000));
  duties_.push_back(duty);
  const std::size_t index = duties_.size() - 1;
  if (running_) {
    testbed_.engine.schedule(sim::usec(rng_.uniform_int(0, 200'000)),
                             [this, index, alive = alive_] {
                               if (*alive && running_) loop(index);
                             });
  }
}

void SystemActivity::loop(std::size_t index) {
  if (!running_) return;
  const Duty& duty = duties_[index];
  if (!testbed_.scheduler.exists(duty.tid) || !testbed_.scheduler.is_idle(duty.tid)) return;
  testbed_.scheduler.run_work(duty.tid, config_.duty_cpu_refus, [this, index, alive = alive_] {
    if (!*alive || !running_) return;
    const Duty& duty = duties_[index];
    const mem::ProcessMem* process = testbed_.memory.registry().find(duty.pid);
    if (process == nullptr) return;  // killed; duty retires
    const auto anon_touch = static_cast<mem::Pages>(
        config_.heap_fraction *
        static_cast<double>(process->anon_resident + process->anon_swapped));
    const auto file_touch = static_cast<mem::Pages>(
        config_.code_fraction * static_cast<double>(process->file_working_set));
    testbed_.memory.touch_working_set(
        duty.pid, duty.tid, anon_touch, file_touch, [this, index, alive](bool) {
          if (!*alive || !running_) return;
          const Duty& duty = duties_[index];
          if (!testbed_.scheduler.exists(duty.tid)) return;
          testbed_.scheduler.sleep_for(duty.tid, duty.period,
                                       [this, index, alive] {
                                         if (*alive && running_) loop(index);
                                       });
        });
  });
}

void SystemActivity::save(snapshot::ByteWriter& w) const {
  w.u32(1);  // section version
  w.b(running_);
  snapshot::write_rng(w, rng_);
  w.u64(duties_.size());
  for (const Duty& duty : duties_) {
    w.u32(duty.pid);
    w.u64(duty.tid);
    w.i64(duty.period);
  }
}

std::uint64_t SystemActivity::digest() const { return snapshot::state_digest(*this); }

}  // namespace mvqoe::core
