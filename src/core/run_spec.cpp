#include "core/run_spec.hpp"

namespace mvqoe::core {

const char* to_string(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::Completed: return "Completed";
    case RunStatus::Crashed: return "Crashed";
    case RunStatus::Aborted: return "Aborted";
    case RunStatus::TimedOut: return "TimedOut";
  }
  return "?";
}

}  // namespace mvqoe::core
