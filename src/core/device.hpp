// Device presets for the paper's three evaluation phones (§4.1):
//   * Nokia 1    — entry-level, 1 GB RAM, quad-core 1.1 GHz (Android Go)
//   * Nexus 5    — mid-range,   2 GB RAM, quad-core 2.33 GHz
//   * Nexus 6P   — higher-end,  3 GB RAM, octa-core 4x1.55 + 4x2.0 GHz
// Presets bundle CPU topology, memory geometry (watermarks, zRAM, trim
// thresholds scaled with RAM per the paper's Fig 5 observation), storage
// speed and the system-image footprint.
#pragma once

#include <string>
#include <vector>

#include "mem/types.hpp"
#include "sched/scheduler.hpp"
#include "storage/storage.hpp"

namespace mvqoe::core {

struct DeviceProfile {
  std::string name;
  std::int64_t ram_mb = 2048;
  sched::SchedulerConfig scheduler;
  mem::MemoryConfig memory;
  storage::StorageConfig storage;
  /// Scale factor for the system-image process footprints.
  double system_scale = 1.0;
  /// Cached processes retained in the LRU after boot.
  int baseline_cached = 10;
};

DeviceProfile nokia1();
DeviceProfile nexus5();
DeviceProfile nexus6p();
const std::vector<DeviceProfile>& all_devices();

/// Generic preset for the field-study population: RAM in {1..8} GB with
/// core count/frequency representative of that tier.
DeviceProfile generic_device(std::int64_t ram_mb, int cores, double freq_ghz);

}  // namespace mvqoe::core
