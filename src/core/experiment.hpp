// Controlled video experiments (§4): run a video on a device preset
// under Normal / Moderate / Critical synthetic pressure or organic
// background-app pressure, repeated across seeds, aggregated with 95%
// CIs — the harness behind Figs 8-19 and Tables 2-5.
#pragma once

#include <memory>
#include <optional>

#include "core/pressure_inducer.hpp"
#include "core/testbed.hpp"
#include "qoe/metrics.hpp"
#include "video/session.hpp"

namespace mvqoe::core {

struct VideoRunSpec {
  DeviceProfile device = nexus5();
  video::VideoAsset asset = video::dubai_flow_motion();
  int height = 1080;
  int fps = 30;
  video::PlayerPlatform platform = video::PlayerPlatform::Firefox;
  /// Synthetic pressure target, applied MP-Simulator style before the
  /// video starts (§4.1). Ignored when organic_background_apps > 0.
  mem::PressureLevel pressure = mem::PressureLevel::Normal;
  /// Organic pressure instead: open this many top-free apps (no games)
  /// before launching the player (§4.3).
  int organic_background_apps = 0;
  std::uint64_t seed = 1;
  /// ABR policy; null = fixed rung (the controlled sweeps).
  video::AbrPolicy* abr = nullptr;
  /// Override the session defaults when set.
  std::optional<video::SessionConfig> session_override;
};

struct VideoRunResult {
  qoe::RunOutcome outcome;
  video::SessionMetrics metrics;
  /// Pressure level observed when playback started.
  mem::PressureLevel start_level = mem::PressureLevel::Normal;
};

/// A single run with full access to the testbed afterwards — the §5
/// trace-analysis benches (Tables 4/5, Figs 13-15) dissect the tracer.
class VideoExperiment {
 public:
  explicit VideoExperiment(VideoRunSpec spec);
  ~VideoExperiment();

  /// Boot, apply pressure, play the video to completion (or crash), and
  /// finalize the trace. Returns the aggregated result.
  VideoRunResult run();

  Testbed& testbed() noexcept { return *testbed_; }
  video::VideoSession& session() noexcept { return *session_; }
  /// Simulated time at which playback (frame deadlines) began.
  sim::Time playback_start() const noexcept;

 private:
  VideoRunSpec spec_;
  std::unique_ptr<Testbed> testbed_;
  std::unique_ptr<PressureInducer> inducer_;
  std::unique_ptr<video::VideoSession> session_;
};

/// Convenience single run.
VideoRunResult run_video(const VideoRunSpec& spec);

/// Paper methodology: repeat with distinct seeds (default 5 runs, §4.1)
/// and aggregate.
qoe::RunAggregate run_video_repeated(VideoRunSpec spec, int runs = 5);

}  // namespace mvqoe::core
