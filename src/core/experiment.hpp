// Controlled video experiments (§4): run a video on a device preset
// under Normal / Moderate / Critical synthetic pressure or organic
// background-app pressure, repeated across seeds, aggregated with 95%
// CIs — the harness behind Figs 8-19 and Tables 2-5.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pressure_inducer.hpp"
#include "core/testbed.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "qoe/metrics.hpp"
#include "video/session.hpp"

namespace mvqoe::core {

struct VideoRunSpec {
  DeviceProfile device = nexus5();
  video::VideoAsset asset = video::dubai_flow_motion();
  int height = 1080;
  int fps = 30;
  video::PlayerPlatform platform = video::PlayerPlatform::Firefox;
  /// Synthetic pressure target, applied MP-Simulator style before the
  /// video starts (§4.1). Ignored when organic_background_apps > 0.
  mem::PressureLevel pressure = mem::PressureLevel::Normal;
  /// Organic pressure instead: open this many top-free apps (no games)
  /// before launching the player (§4.3).
  int organic_background_apps = 0;
  std::uint64_t seed = 1;
  /// ABR policy; null = fixed rung (the controlled sweeps).
  video::AbrPolicy* abr = nullptr;
  /// Override the session defaults when set.
  std::optional<video::SessionConfig> session_override;
  /// Fault script, armed when the video starts (plan times are relative
  /// to video start). Kill entries with pid 0 target the video client.
  fault::FaultPlan fault_plan;
  /// Session recovery knobs (applied on top of session_override).
  std::optional<video::RecoveryConfig> recovery;
  /// Run the invariant watchdog alongside the video and report its
  /// violations in the result (debug/test harnesses).
  bool run_watchdog = false;
};

/// How a run ended — structured partial results instead of a bare crash
/// bit, so fault scenarios can assert on the exact failure mode.
enum class RunStatus : std::uint8_t {
  Completed,  // played to the end (possibly after absorbed kills)
  Crashed,    // client killed terminally (no relaunch budget left)
  Aborted,    // unrecoverable download failure (retry budget exhausted)
  TimedOut,   // did not finish within the horizon (unplayable/livelock)
};

const char* to_string(RunStatus status) noexcept;

struct VideoRunResult {
  qoe::RunOutcome outcome;
  video::SessionMetrics metrics;
  RunStatus status = RunStatus::Completed;
  std::string failure_reason;
  /// Pressure level observed when playback started.
  mem::PressureLevel start_level = mem::PressureLevel::Normal;
  /// Populated when spec.run_watchdog was set.
  std::vector<fault::WatchdogViolation> watchdog_violations;
};

/// A single run with full access to the testbed afterwards — the §5
/// trace-analysis benches (Tables 4/5, Figs 13-15) dissect the tracer.
class VideoExperiment {
 public:
  explicit VideoExperiment(VideoRunSpec spec);
  ~VideoExperiment();

  /// Boot, apply pressure, play the video to completion (or crash), and
  /// finalize the trace. Returns the aggregated result.
  VideoRunResult run();

  Testbed& testbed() noexcept { return *testbed_; }
  video::VideoSession& session() noexcept { return *session_; }
  /// Non-null while a fault plan is active (after run() started it).
  fault::FaultInjector* injector() noexcept { return injector_.get(); }
  /// Simulated time at which playback (frame deadlines) began.
  sim::Time playback_start() const noexcept;

 private:
  VideoRunSpec spec_;
  std::unique_ptr<Testbed> testbed_;
  std::unique_ptr<PressureInducer> inducer_;
  std::unique_ptr<video::VideoSession> session_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::InvariantWatchdog> watchdog_;
};

/// Convenience single run.
VideoRunResult run_video(const VideoRunSpec& spec);

/// Paper methodology: repeat with distinct seeds (default 5 runs, §4.1)
/// and aggregate.
qoe::RunAggregate run_video_repeated(VideoRunSpec spec, int runs = 5);

}  // namespace mvqoe::core
