// Controlled video experiments (§4): run a video on a device preset
// under Normal / Moderate / Critical synthetic pressure or organic
// background-app pressure, repeated across seeds, aggregated with 95%
// CIs — the harness behind Figs 8-19 and Tables 2-5.
//
// VideoExperiment is a compatibility adapter over the scenario driver
// (DESIGN.md §11): a VideoRunSpec maps onto a single-video ScenarioSpec
// via scenario::from_run_spec, and every phase call delegates 1:1 — the
// event sequence (and hence every digest and blob byte) is identical
// with the pre-scenario implementation. New code should use
// scenario::ScenarioDriver directly; this surface stays for the single-
// video benches and the trace-analysis harnesses that dissect the
// testbed afterwards.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/run_spec.hpp"
#include "scenario/driver.hpp"

namespace mvqoe::core {

/// A single run with full access to the testbed afterwards — the §5
/// trace-analysis benches (Tables 4/5, Figs 13-15) dissect the tracer.
class VideoExperiment {
 public:
  explicit VideoExperiment(VideoRunSpec spec);
  ~VideoExperiment();

  /// Boot, apply pressure, play the video to completion (or crash), and
  /// finalize the trace. Returns the aggregated result. Exactly
  /// equivalent to prepare() + start_video() + advance_slice() to
  /// completion + finalize() — the phased API below exists so the
  /// snapshot/replay driver and the warm-start sweep path can interleave
  /// digest sampling / cell retargeting with the same event sequence.
  VideoRunResult run();

  // --- Phased execution (checkpoint/replay + warm-start surface) ---------
  void prepare();
  void set_cell(int height, int fps, std::uint64_t video_seed);
  void start_video();
  bool advance_slice();
  bool video_done() const noexcept;
  VideoRunResult finalize();

  // --- Snapshot surface (delegates to the component registry) ------------
  void save_state(snapshot::Snapshot& snap) const;
  std::uint64_t state_digest() const;
  std::vector<std::pair<std::string, std::uint64_t>> subsystem_digests() const;

  /// The underlying scenario driver, for surfaces the adapter does not
  /// mirror (per-workload access, multi-session extensions).
  scenario::ScenarioDriver& driver() noexcept { return driver_; }
  const scenario::ScenarioDriver& driver() const noexcept { return driver_; }

  Testbed& testbed() noexcept { return driver_.testbed(); }
  const Testbed& testbed() const noexcept { return driver_.testbed(); }
  video::VideoSession& session() noexcept { return *driver_.video().session(); }
  /// Non-null while a fault plan is active (after run() started it).
  fault::FaultInjector* injector() noexcept { return driver_.injector(); }
  /// Simulated time at which playback (frame deadlines) began.
  sim::Time playback_start() const noexcept { return driver_.playback_start(0); }
  /// Simulated time start_video() ran at (-1 before then).
  sim::Time video_start() const noexcept { return driver_.video_start(); }
  sim::Time horizon() const noexcept { return driver_.horizon(); }

 private:
  scenario::ScenarioDriver driver_;
};

/// Convenience single run.
VideoRunResult run_video(const VideoRunSpec& spec);

/// Paper methodology: repeat with distinct seeds (default 5 runs, §4.1)
/// and aggregate.
qoe::RunAggregate run_video_repeated(VideoRunSpec spec, int runs = 5);

}  // namespace mvqoe::core
