// Controlled video experiments (§4): run a video on a device preset
// under Normal / Moderate / Critical synthetic pressure or organic
// background-app pressure, repeated across seeds, aggregated with 95%
// CIs — the harness behind Figs 8-19 and Tables 2-5.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/pressure_inducer.hpp"
#include "core/testbed.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "qoe/metrics.hpp"
#include "snapshot/blob.hpp"
#include "video/session.hpp"

namespace mvqoe::core {

struct VideoRunSpec {
  DeviceProfile device = nexus5();
  video::VideoAsset asset = video::dubai_flow_motion();
  int height = 1080;
  int fps = 30;
  video::PlayerPlatform platform = video::PlayerPlatform::Firefox;
  /// Synthetic pressure target, applied MP-Simulator style before the
  /// video starts (§4.1). Ignored when organic_background_apps > 0.
  mem::PressureLevel pressure = mem::PressureLevel::Normal;
  /// Organic pressure instead: open this many top-free apps (no games)
  /// before launching the player (§4.3).
  int organic_background_apps = 0;
  std::uint64_t seed = 1;
  /// World (boot + pressure-inducement) seed, when it must differ from
  /// the per-run seed: warm-start sweeps pre-roll one world per
  /// (state, rep) group and fork many video cells from it, so every cell
  /// of a group shares the world stream while its video stream (`seed`)
  /// varies. Unset = world follows `seed` (the plain single-run path).
  std::optional<std::uint64_t> world_seed;
  /// ABR policy; null = fixed rung (the controlled sweeps).
  video::AbrPolicy* abr = nullptr;
  /// Override the session defaults when set.
  std::optional<video::SessionConfig> session_override;
  /// Fault script, armed when the video starts (plan times are relative
  /// to video start). Kill entries with pid 0 target the video client.
  fault::FaultPlan fault_plan;
  /// Session recovery knobs (applied on top of session_override).
  std::optional<video::RecoveryConfig> recovery;
  /// Run the invariant watchdog alongside the video and report its
  /// violations in the result (debug/test harnesses).
  bool run_watchdog = false;
};

/// How a run ended — structured partial results instead of a bare crash
/// bit, so fault scenarios can assert on the exact failure mode.
enum class RunStatus : std::uint8_t {
  Completed,  // played to the end (possibly after absorbed kills)
  Crashed,    // client killed terminally (no relaunch budget left)
  Aborted,    // unrecoverable download failure (retry budget exhausted)
  TimedOut,   // did not finish within the horizon (unplayable/livelock)
};

const char* to_string(RunStatus status) noexcept;

struct VideoRunResult {
  qoe::RunOutcome outcome;
  video::SessionMetrics metrics;
  RunStatus status = RunStatus::Completed;
  std::string failure_reason;
  /// Pressure level observed when playback started.
  mem::PressureLevel start_level = mem::PressureLevel::Normal;
  /// Populated when spec.run_watchdog was set.
  std::vector<fault::WatchdogViolation> watchdog_violations;
};

/// A single run with full access to the testbed afterwards — the §5
/// trace-analysis benches (Tables 4/5, Figs 13-15) dissect the tracer.
class VideoExperiment {
 public:
  explicit VideoExperiment(VideoRunSpec spec);
  ~VideoExperiment();

  /// Boot, apply pressure, play the video to completion (or crash), and
  /// finalize the trace. Returns the aggregated result. Exactly
  /// equivalent to prepare() + start_video() + advance_slice() to
  /// completion + finalize() — the phased API below exists so the
  /// snapshot/replay driver and the warm-start sweep path can interleave
  /// digest sampling / cell retargeting with the same event sequence.
  VideoRunResult run();

  // --- Phased execution (checkpoint/replay + warm-start surface) ---------
  /// Phase 1: boot the testbed and apply the pressure regime (organic or
  /// MP-Simulator style). Ends at the quiescent point right before the
  /// session is built — the warm-start fork boundary.
  void prepare();
  /// Retarget the video cell between prepare() and start_video(): the
  /// warm path forks one prepared world for many (height, fps) cells,
  /// each with its own video seed.
  void set_cell(int height, int fps, std::uint64_t video_seed);
  /// Phase 2: build the session config, arm faults/watchdog and start
  /// the session. Playback deadlines begin here.
  void start_video();
  /// Phase 3: advance playback by one 1-second slice (the exact cadence
  /// run() uses — slice boundaries are observable through the horizon
  /// check, so replay must reproduce them). Returns false when the video
  /// finished or the horizon passed, without advancing.
  bool advance_slice();
  bool video_done() const noexcept;
  /// Phase 4: disarm faults, finalize the trace and assemble the result.
  VideoRunResult finalize();

  // --- Snapshot surface ---------------------------------------------------
  /// Serialize every subsystem into tagged sections of `snap`.
  void save_state(snapshot::Snapshot& snap) const;
  /// Canonical digest over all subsystem save() bytes.
  std::uint64_t state_digest() const;
  /// Per-subsystem (tag name, digest) pairs, in a fixed order — the
  /// bisection report uses these to name the first diverging subsystem.
  std::vector<std::pair<std::string, std::uint64_t>> subsystem_digests() const;

  Testbed& testbed() noexcept { return *testbed_; }
  const Testbed& testbed() const noexcept { return *testbed_; }
  video::VideoSession& session() noexcept { return *session_; }
  /// Non-null while a fault plan is active (after run() started it).
  fault::FaultInjector* injector() noexcept { return injector_.get(); }
  /// Simulated time at which playback (frame deadlines) began.
  sim::Time playback_start() const noexcept;
  /// Simulated time start_video() ran at (-1 before then).
  sim::Time video_start() const noexcept { return video_start_; }
  sim::Time horizon() const noexcept { return horizon_; }

 private:
  VideoRunSpec spec_;
  std::unique_ptr<Testbed> testbed_;
  std::unique_ptr<PressureInducer> inducer_;
  std::unique_ptr<video::VideoSession> session_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<fault::InvariantWatchdog> watchdog_;

  bool prepared_ = false;
  bool video_started_ = false;
  bool finished_ = false;
  mem::PressureLevel start_level_ = mem::PressureLevel::Normal;
  video::SessionConfig config_;
  sim::Time video_start_ = -1;
  sim::Time horizon_ = -1;
};

/// Convenience single run.
VideoRunResult run_video(const VideoRunSpec& spec);

/// Paper methodology: repeat with distinct seeds (default 5 runs, §4.1)
/// and aggregate.
qoe::RunAggregate run_video_repeated(VideoRunSpec spec, int runs = 5);

}  // namespace mvqoe::core
