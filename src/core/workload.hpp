// Workload component interface (DESIGN.md §11).
//
// A Workload is one independently-specified actor on the simulated
// device: a video session, a cohort of background apps, a synthetic
// pressure inducer. The Testbed hosts an ordered vector of them and the
// ScenarioDriver advances them all through the same phase sequence the
// legacy single-video experiment used:
//
//   attach()        world phase, after boot. Pressure workloads block
//                   here until their regime is established (the §4.1
//                   "start the video after the pressure signal" rule) —
//                   this is also the warm-start fork boundary.
//   start()         arm faults, build sessions, begin playback. Must not
//                   advance the engine (all workloads start at one
//                   instant, and byte-identity with the legacy path
//                   depends on it).
//   advance_slice() optional per-slice hook between the driver's
//                   1-second run_until slices. Must not advance the
//                   engine either.
//   done()          true when the workload has nothing left to do.
//                   Blocking workloads (video sessions) gate the run;
//                   ambient ones (background duty) report true always.
//   finalize()      disarm faults, settle accounting. No engine time.
//   register_components()  add save()/digest() hooks to the registry —
//                   the only way workload state enters snapshots.
#pragma once

#include <string>

#include "core/registry.hpp"
#include "mem/types.hpp"

namespace mvqoe::core {

class Testbed;

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string label() const = 0;

  /// World phase (may consume simulated time; runs once, in spec order).
  virtual void attach(Testbed& testbed) = 0;
  /// Start phase (must not advance the engine).
  virtual void start(Testbed& testbed) = 0;
  /// Per-slice hook (must not advance the engine).
  virtual void advance_slice(Testbed& testbed) { (void)testbed; }
  /// True when finished; ambient workloads return true so they never
  /// gate the run.
  virtual bool done() const = 0;
  /// Tear-down accounting (must not advance the engine).
  virtual void finalize(Testbed& testbed) { (void)testbed; }

  /// Register snapshot hooks for whatever state this workload owns.
  virtual void register_components(ComponentRegistry& registry) { (void)registry; }

  /// Worst pressure level this workload observed while establishing its
  /// regime during attach() — the scenario's start_level is the max over
  /// workloads (mirrors the legacy prepare() bookkeeping).
  virtual mem::PressureLevel observed_level() const { return mem::PressureLevel::Normal; }
};

}  // namespace mvqoe::core
