#include "core/registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace mvqoe::core {

void ComponentRegistry::add(int order, std::uint32_t tag, std::string name, SaveFn save,
                            DigestFn digest) {
  if (has(tag)) {
    throw std::invalid_argument("registry: duplicate snapshot tag '" + snapshot::tag_name(tag) +
                                "'");
  }
  Entry entry;
  entry.order = order;
  entry.seq = entries_.size();
  entry.tag = tag;
  entry.name = std::move(name);
  entry.save = std::move(save);
  entry.digest = std::move(digest);
  entries_.push_back(std::move(entry));
}

bool ComponentRegistry::has(std::uint32_t tag) const noexcept {
  for (const Entry& entry : entries_) {
    if (entry.tag == tag) return true;
  }
  return false;
}

std::vector<const ComponentRegistry::Entry*> ComponentRegistry::sorted() const {
  std::vector<const Entry*> out;
  out.reserve(entries_.size());
  for (const Entry& entry : entries_) out.push_back(&entry);
  std::sort(out.begin(), out.end(), [](const Entry* a, const Entry* b) {
    return a->order != b->order ? a->order < b->order : a->seq < b->seq;
  });
  return out;
}

void ComponentRegistry::save_state(snapshot::Snapshot& snap) const {
  for (const Entry* entry : sorted()) {
    snapshot::ByteWriter w;
    entry->save(w);
    snap.put(entry->tag, std::move(w));
  }
}

std::uint64_t ComponentRegistry::state_digest() const {
  snapshot::Snapshot snap;
  save_state(snap);
  return snap.digest();
}

std::vector<std::pair<std::string, std::uint64_t>> ComponentRegistry::digests() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(entries_.size());
  for (const Entry* entry : sorted()) out.emplace_back(entry->name, entry->digest());
  return out;
}

}  // namespace mvqoe::core
