// Synthetic memory-pressure application — the simulation counterpart of
// the "MP Simulator" app from Qazi et al. [34] that the paper uses to
// emulate pressure regimes (§4.1): "it continues to allocate memory
// until it starts receiving <target> memory pressure signals from the
// kernel". The process is unkillable (the real app pins native memory),
// so victims die around it while pressure stays applied; it also keeps
// topping up if kills bring the level back down (maintain mode).
#pragma once

#include <functional>
#include <memory>

#include "core/testbed.hpp"

namespace mvqoe::core {

class PressureInducer {
 public:
  PressureInducer(Testbed& testbed, mem::PressureLevel target);

  PressureInducer(const PressureInducer&) = delete;
  PressureInducer& operator=(const PressureInducer&) = delete;

  ~PressureInducer();

  /// Begin allocating; `on_reached` fires once when the target level is
  /// first *signalled* (the MP Simulator stops at the first onTrimMemory
  /// delivery of the target level). For a Normal target it fires
  /// immediately.
  void start(std::function<void()> on_reached);
  /// Stop allocating and release everything.
  void stop();

  bool reached() const noexcept { return reached_; }
  mem::Pages held_pages() const noexcept { return held_; }

  /// Serialize allocation progress (held pages, reached flag, cap).
  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;

 private:
  void step();
  mem::Pages target_available() const;

  std::shared_ptr<bool> keepalive_ = std::make_shared<bool>(true);
  Testbed& testbed_;
  mem::PressureLevel target_;
  mem::ProcessId pid_ = 0;
  sched::ThreadId tid_ = 0;
  bool running_ = false;
  bool reached_ = false;
  mem::Pages held_ = 0;
  mem::Pages held_at_reached_ = 0;
  mem::Pages cap_;
  std::function<void()> on_reached_;
};

}  // namespace mvqoe::core
