// One fully-wired simulated device: engine, tracer, CPU scheduler,
// storage (mmcqd), memory manager (kswapd/lmkd), WiFi link and activity
// manager. Each experiment run constructs a fresh Testbed — the
// simulation equivalent of rebooting the phone between runs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/device.hpp"
#include "core/registry.hpp"
#include "core/workload.hpp"
#include "mem/memory_manager.hpp"
#include "net/link.hpp"
#include "proc/activity_manager.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "storage/storage.hpp"
#include "trace/tracer.hpp"

namespace mvqoe::core {

class SystemActivity;

class Testbed {
 public:
  explicit Testbed(DeviceProfile profile, std::uint64_t seed = 1,
                   mem::MemPolicySpec mem_policy = {}, net::NetSpec net = {});
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Register the system image + baseline cached processes and let the
  /// allocations settle (a couple of simulated seconds).
  void boot();

  const DeviceProfile& profile() const noexcept { return profile_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Give a process an ambient duty loop (see SystemActivity). Only valid
  /// after boot().
  void add_background_duty(mem::ProcessId pid, sim::Time period = sim::msec(500));

  /// The ambient system-activity driver; null before boot(). Exposed for
  /// checkpointing (its RNG stream is part of simulation state).
  SystemActivity* system_activity() noexcept { return system_activity_.get(); }
  const SystemActivity* system_activity() const noexcept { return system_activity_.get(); }

  /// Snapshot component registry. The six wired subsystems register at
  /// construction, SystemActivity at boot(), workloads when added — so
  /// save_state()/digest paths never depend on a hand-maintained list.
  ComponentRegistry& components() noexcept { return components_; }
  const ComponentRegistry& components() const noexcept { return components_; }

  /// Host a workload; registers its snapshot components and returns a
  /// reference valid for the Testbed's lifetime. The ScenarioDriver
  /// phases workloads through attach/start/advance/finalize in this
  /// vector's order.
  Workload& add_workload(std::unique_ptr<Workload> workload);
  const std::vector<std::unique_ptr<Workload>>& workloads() const noexcept { return workloads_; }
  std::vector<std::unique_ptr<Workload>>& workloads() noexcept { return workloads_; }

  sim::Engine engine;
  trace::Tracer tracer;
  sched::Scheduler scheduler;
  storage::StorageDevice storage;
  mem::MemoryManager memory;
  net::Link link;
  proc::ActivityManager am;

 private:
  DeviceProfile profile_;
  std::uint64_t seed_;
  std::unique_ptr<SystemActivity> system_activity_;
  ComponentRegistry components_;
  std::vector<std::unique_ptr<Workload>> workloads_;
};

}  // namespace mvqoe::core
