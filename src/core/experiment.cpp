#include "core/experiment.hpp"

#include <algorithm>

#include "core/system_activity.hpp"
#include "snapshot/digest.hpp"
#include "stats/rng.hpp"

namespace mvqoe::core {

const char* to_string(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::Completed: return "Completed";
    case RunStatus::Crashed: return "Crashed";
    case RunStatus::Aborted: return "Aborted";
    case RunStatus::TimedOut: return "TimedOut";
  }
  return "?";
}

VideoExperiment::VideoExperiment(VideoRunSpec spec) : spec_(std::move(spec)) {
  testbed_ = std::make_unique<Testbed>(spec_.device, spec_.world_seed.value_or(spec_.seed));
}

VideoExperiment::~VideoExperiment() = default;

sim::Time VideoExperiment::playback_start() const noexcept {
  return session_ != nullptr ? session_->metrics().playback_start : -1;
}

VideoRunResult VideoExperiment::run() {
  prepare();
  start_video();
  while (advance_slice()) {
  }
  return finalize();
}

void VideoExperiment::prepare() {
  if (prepared_) return;
  prepared_ = true;
  Testbed& tb = *testbed_;
  tb.boot();

  // Apply pressure before starting the video (§4.1: "we start the video
  // streaming session after the targeted memory pressure signal is
  // received").
  if (spec_.organic_background_apps > 0) {
    // Half the opened apps keep working in the background (music,
    // messengers syncing, feeds refreshing): they hold part of their
    // working set hot, keep touching it, and — like real Android services
    // — RESTART a few seconds after lmkd kills them. That restart churn
    // is what makes organic pressure persist through the whole video
    // (paper §4.3 and the continuous kills of Fig 15).
    auto relaunch = std::make_shared<std::function<void(proc::AppSpec, bool)>>();
    *relaunch = [&tb, relaunch](proc::AppSpec app, bool active) {
      const auto pid = tb.am.next_pid();
      tb.memory.register_process(pid, app.name, mem::OomAdj::kService,
                                 [&tb, relaunch, app, active] {
                                   tb.engine.schedule(sim::sec(4), [relaunch, app, active] {
                                     (*relaunch)(app, active);
                                   });
                                 });
      // Restarted trimmed: services come back with a reduced heap.
      const mem::Pages heap = app.heap_pages * 3 / 5;
      tb.memory.alloc_anon(pid, heap, 0, [&tb, pid, heap, active](bool ok) {
        if (ok && active) tb.memory.set_hot_pages(pid, heap / 3);
      });
      tb.memory.map_file(pid, app.code_pages / 2, 0, nullptr);
      if (active) tb.add_background_duty(pid);
    };

    const auto& catalog = proc::top_free_apps();
    for (int i = 0; i < spec_.organic_background_apps; ++i) {
      const proc::AppSpec& app = catalog[static_cast<std::size_t>(i) % catalog.size()];
      const bool active = i % 2 == 0;
      const auto pid = tb.am.launch(app, [&tb, relaunch, app, active] {
        tb.engine.schedule(sim::sec(4),
                           [relaunch, app, active] { (*relaunch)(app, active); });
      });
      tb.engine.run_until(tb.engine.now() + sim::msec(800));
      if (active && tb.memory.registry().alive(pid)) {
        tb.memory.set_oom_adj(pid, mem::OomAdj::kService);
        tb.memory.set_hot_pages(pid, app.heap_pages / 3);
        tb.add_background_duty(pid);
      }
      start_level_ = std::max(start_level_, tb.memory.level());
    }
    // All opened apps end up in the background once the player launches.
    tb.engine.run_until(tb.engine.now() + sim::sec(1));
    start_level_ = std::max(start_level_, tb.memory.level());
  } else {
    inducer_ = std::make_unique<PressureInducer>(tb, spec_.pressure);
    // Shared flags: the signal callback may fire after this wait loop
    // times out (while the video is already playing).
    auto reached = std::make_shared<bool>(false);
    auto level_at_signal = std::make_shared<mem::PressureLevel>(mem::PressureLevel::Normal);
    inducer_->start([reached, level_at_signal, &tb] {
      *reached = true;
      // Level at the moment the target signal arrived (it keeps
      // oscillating afterwards with the kill/respawn churn).
      *level_at_signal = tb.memory.level();
    });
    // Give the inducer up to 5 simulated minutes to reach the target.
    const sim::Time deadline = tb.engine.now() + sim::minutes(5);
    while (!*reached && tb.engine.now() < deadline) {
      tb.engine.run_until(tb.engine.now() + sim::msec(200));
    }
    start_level_ = *level_at_signal;
  }
}

void VideoExperiment::set_cell(int height, int fps, std::uint64_t video_seed) {
  spec_.height = height;
  spec_.fps = fps;
  spec_.seed = video_seed;
}

void VideoExperiment::start_video() {
  if (!prepared_) prepare();
  if (video_started_) return;
  video_started_ = true;
  Testbed& tb = *testbed_;

  video::SessionConfig config = spec_.session_override.value_or(video::SessionConfig{});
  if (!spec_.session_override.has_value()) {
    config.asset = spec_.asset;
    config.profile = video::PlayerProfile::for_platform(spec_.platform);
    const auto rung = config.ladder.find(spec_.height, spec_.fps);
    config.initial_rung = rung.value_or(config.ladder.rungs().front());
    config.seed = stats::derive_seed(spec_.seed, 0xBEEF);
  }
  if (spec_.recovery.has_value()) config.recovery = *spec_.recovery;
  if (!config.next_pid) {
    config.next_pid = [&tb] { return tb.am.next_pid(); };
  }
  config_ = config;

  start_level_ = std::max(start_level_, tb.memory.level());

  if (spec_.run_watchdog) {
    watchdog_ = std::make_unique<fault::InvariantWatchdog>(tb.engine, fault::WatchdogConfig{},
                                                           &tb.memory, &tb.tracer);
    watchdog_->start();
  }

  session_ = std::make_unique<video::VideoSession>(tb.engine, tb.scheduler, tb.memory, tb.link,
                                                   tb.tracer, config_, spec_.abr);
  video_start_ = tb.engine.now();

  if (!spec_.fault_plan.empty()) {
    fault::FaultTargets targets;
    targets.engine = &tb.engine;
    targets.link = &tb.link;
    targets.storage = &tb.storage;
    targets.scheduler = &tb.scheduler;
    targets.memory = &tb.memory;
    targets.tracer = &tb.tracer;
    injector_ = std::make_unique<fault::FaultInjector>(targets, spec_.fault_plan);
    injector_->set_kill_target([this] { return session_->pid(); });
    injector_->arm(video_start_);
  }

  session_->start(tb.am.next_pid(), [this] { finished_ = true; });

  // Horizon: generous multiple of the video duration; a session that
  // cannot finish by then was unplayable.
  horizon_ = video_start_ + sim::sec(config_.asset.duration_s * 3) + sim::minutes(2);
}

bool VideoExperiment::video_done() const noexcept {
  return finished_ || testbed_->engine.now() >= horizon_;
}

bool VideoExperiment::advance_slice() {
  if (video_done()) return false;
  testbed_->engine.run_until(testbed_->engine.now() + sim::sec(1));
  return true;
}

VideoRunResult VideoExperiment::finalize() {
  Testbed& tb = *testbed_;
  VideoRunResult result;
  result.start_level = start_level_;
  if (injector_ != nullptr) injector_->disarm();
  if (watchdog_ != nullptr) {
    watchdog_->check_now();
    watchdog_->stop();
    result.watchdog_violations = watchdog_->violations();
  }
  tb.tracer.finalize(tb.engine.now());

  result.metrics = session_->metrics();
  if (result.metrics.crashed) {
    result.status = RunStatus::Crashed;
    result.failure_reason = "client killed with no relaunch budget left";
  } else if (result.metrics.aborted) {
    result.status = RunStatus::Aborted;
    result.failure_reason = result.metrics.abort_reason;
  } else if (!finished_) {
    result.status = RunStatus::TimedOut;
    result.failure_reason = "session did not finish within the run horizon";
  }
  qoe::RunOutcome& outcome = result.outcome;
  outcome.crashed = result.metrics.crashed;
  outcome.aborted = result.metrics.aborted;
  outcome.relaunches = result.metrics.relaunches;
  outcome.rebuffer_events = result.metrics.rebuffer_events;
  outcome.relaunch_downtime_s = sim::to_seconds(result.metrics.relaunch_downtime);
  if (!finished_ && !result.metrics.crashed) {
    // Unplayable without a kill (starved forever): classify every frame
    // that never got presented as dropped (paper: "the video was either
    // unplayable or the video client crashed").
    const auto planned = static_cast<std::int64_t>(config_.asset.duration_s) *
                         config_.initial_rung.fps;
    result.metrics.frames_dropped =
        std::max(result.metrics.frames_dropped, planned - result.metrics.frames_presented);
  }
  outcome.drop_rate = result.metrics.drop_rate();
  if (result.metrics.crashed &&
      result.metrics.frames_presented + result.metrics.frames_dropped <
          config_.initial_rung.fps) {
    // Killed before a single second played: unplayable (paper: "the
    // video was either unplayable or the video client crashed").
    outcome.drop_rate = 1.0;
  }
  outcome.mean_pss_mb = result.metrics.pss_mb.mean();
  outcome.peak_pss_mb = result.metrics.pss_mb.empty() ? 0.0 : result.metrics.pss_mb.max();
  if (result.metrics.playback_start >= 0) {
    outcome.startup_delay_s = sim::to_seconds(result.metrics.playback_start - video_start_);
  }
  return result;
}

void VideoExperiment::save_state(snapshot::Snapshot& snap) const {
  const Testbed& tb = *testbed_;
  const auto put = [&snap](const char (&t)[5], const auto& subsystem) {
    snapshot::ByteWriter w;
    subsystem.save(w);
    snap.put(snapshot::tag(t), std::move(w));
  };
  put("ENGN", tb.engine);
  put("SCHD", tb.scheduler);
  put("MEMM", tb.memory);
  put("LINK", tb.link);
  put("STOR", tb.storage);
  put("PROC", tb.am);
  if (session_ != nullptr) put("VIDE", *session_);
  if (injector_ != nullptr) put("FALT", *injector_);
  if (tb.system_activity() != nullptr) put("SYSA", *tb.system_activity());
  if (inducer_ != nullptr) put("INDC", *inducer_);
}

std::uint64_t VideoExperiment::state_digest() const {
  snapshot::Snapshot snap;
  save_state(snap);
  return snap.digest();
}

std::vector<std::pair<std::string, std::uint64_t>> VideoExperiment::subsystem_digests() const {
  const Testbed& tb = *testbed_;
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.emplace_back("engine", tb.engine.digest());
  out.emplace_back("sched", tb.scheduler.digest());
  out.emplace_back("mem", tb.memory.digest());
  out.emplace_back("link", tb.link.digest());
  out.emplace_back("storage", tb.storage.digest());
  out.emplace_back("proc", tb.am.digest());
  if (session_ != nullptr) out.emplace_back("video", session_->digest());
  if (injector_ != nullptr) out.emplace_back("fault", injector_->digest());
  if (tb.system_activity() != nullptr) out.emplace_back("sysact", tb.system_activity()->digest());
  if (inducer_ != nullptr) out.emplace_back("inducer", inducer_->digest());
  return out;
}

VideoRunResult run_video(const VideoRunSpec& spec) { return VideoExperiment(spec).run(); }

qoe::RunAggregate run_video_repeated(VideoRunSpec spec, int runs) {
  qoe::RunAggregate aggregate;
  const std::uint64_t base_seed = spec.seed;
  for (int i = 0; i < runs; ++i) {
    spec.seed = stats::derive_seed(base_seed, static_cast<std::uint64_t>(i) + 1);
    aggregate.add(run_video(spec).outcome);
  }
  return aggregate;
}

}  // namespace mvqoe::core
