// Snapshot component registry (DESIGN.md §11).
//
// Every stateful component — the six wired subsystems, plus whatever
// workloads a scenario adds (video sessions, fault injectors, pressure
// inducers, the ambient system-activity driver) — registers its
// save()/digest() hooks here with a fixed ordering key and a fourcc tag.
// Snapshot serialization and the per-subsystem digest lists walk the
// registry instead of a hand-maintained list, so adding a workload can
// never silently drop a section from checkpoint/replay.
//
// Ordering keys reproduce the legacy section order byte-for-byte:
//   0-5    ENGN SCHD MEMM LINK STOR PROC  (Testbed constructor)
//   6      MPOL            memory policy, only when it carries state
//   7      NETC            congestion-control spec, only when cc != fifo
//   10+2k  VIDE/VID1/...   k-th video session
//   11+2k  FALT/FLT1/...   k-th session's fault injector
//   100    SYSA            system activity (registered at boot)
//   110+j  INDC/IND1/...   j-th pressure inducer
//   130+i  XTRC/XTR1/...   i-th cross-traffic workload
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "snapshot/blob.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe::core {

class ComponentRegistry {
 public:
  using SaveFn = std::function<void(snapshot::ByteWriter&)>;
  using DigestFn = std::function<std::uint64_t()>;

  /// Register a component. Throws std::invalid_argument on a duplicate
  /// tag — a collision means two components would overwrite each other's
  /// blob section, which must fail loudly, not at replay time.
  void add(int order, std::uint32_t tag, std::string name, SaveFn save, DigestFn digest);

  /// Convenience for the common `obj->save(w)` / `obj->digest()` shape.
  template <typename T>
  void add(int order, const char (&tag4)[5], std::string name, const T* obj) {
    add(order, snapshot::tag(tag4), std::move(name),
        [obj](snapshot::ByteWriter& w) { obj->save(w); }, [obj] { return obj->digest(); });
  }

  bool has(std::uint32_t tag) const noexcept;
  std::size_t size() const noexcept { return entries_.size(); }

  /// Serialize every component into tagged sections of `snap`, in key
  /// order (ties broken by registration order).
  void save_state(snapshot::Snapshot& snap) const;
  /// Canonical digest over all component save() bytes (same ordering).
  std::uint64_t state_digest() const;
  /// Per-component (name, digest) pairs, in the same fixed order — the
  /// bisection report uses these to name the first diverging component.
  std::vector<std::pair<std::string, std::uint64_t>> digests() const;

 private:
  struct Entry {
    int order = 0;
    std::size_t seq = 0;  // registration order, the tie-breaker
    std::uint32_t tag = 0;
    std::string name;
    SaveFn save;
    DigestFn digest;
  };

  std::vector<const Entry*> sorted() const;

  std::vector<Entry> entries_;
};

}  // namespace mvqoe::core
