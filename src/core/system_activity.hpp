// Ambient system activity: system_server handling binder traffic,
// systemui rendering the status bar, the launcher, GMS... Each system
// process gets a thread that periodically does a little CPU work and
// re-touches part of its working set.
//
// Under Normal memory this is background noise. Under pressure — when
// kswapd has compressed the system processes' cold pages into zRAM —
// every touch faults (decompression CPU, storage reads through mmcqd),
// turning the whole device into the contended, thrashing environment the
// paper's §5 traces show: kswapd near-permanently running, mmcqd
// preempting, and video threads waiting for CPU they used to get.
#pragma once

#include <vector>

#include "core/testbed.hpp"
#include "stats/rng.hpp"

namespace mvqoe::core {

struct SystemActivityConfig {
  sim::Time base_period = sim::msec(400);
  /// Fraction of heap / code working set touched per period.
  double heap_fraction = 0.30;
  double code_fraction = 0.30;
  /// CPU work per duty cycle, reference-µs. Binder traffic, status-bar
  /// redraws, sync adapters: chunky bursts that make little cores busy.
  double duty_cpu_refus = 8000.0;
};

class SystemActivity {
 public:
  SystemActivity(Testbed& testbed, SystemActivityConfig config = {});
  ~SystemActivity();

  /// Create one duty thread per system process and start their loops
  /// (periods are jittered so the daemons don't beat in lockstep).
  void start();
  void stop();

  /// Attach a duty loop to an arbitrary process — used for background
  /// apps that keep working after losing the foreground (music playback,
  /// sync, feed refresh). Callable after start().
  void add_process(mem::ProcessId pid, sim::Time period = sim::msec(500));

  /// The duty-jitter RNG stream. Exposed for checkpointing and for the
  /// replay tool's bisection self-test, which flips one bit of this
  /// stream to create a minimal controlled divergence.
  stats::Rng& rng() noexcept { return rng_; }

  /// Serialize duty-loop composition and the jitter RNG stream.
  void save(snapshot::ByteWriter& w) const;
  std::uint64_t digest() const;

 private:
  struct Duty {
    mem::ProcessId pid = 0;
    sched::ThreadId tid = 0;
    sim::Time period = 0;
  };
  void loop(std::size_t index);

  Testbed& testbed_;
  SystemActivityConfig config_;
  stats::Rng rng_;
  std::vector<Duty> duties_;
  bool running_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace mvqoe::core
