// Single-video run description and result — the legacy surface the
// scenario layer generalizes. Kept as a standalone header (below
// experiment.hpp) so scenario specs can translate to/from it without
// pulling in the experiment driver.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "mem/types.hpp"
#include "qoe/metrics.hpp"
#include "video/session.hpp"

namespace mvqoe::core {

struct VideoRunSpec {
  DeviceProfile device = nexus5();
  video::VideoAsset asset = video::dubai_flow_motion();
  int height = 1080;
  int fps = 30;
  video::PlayerPlatform platform = video::PlayerPlatform::Firefox;
  /// Synthetic pressure target, applied MP-Simulator style before the
  /// video starts (§4.1). Ignored when organic_background_apps > 0.
  mem::PressureLevel pressure = mem::PressureLevel::Normal;
  /// Organic pressure instead: open this many top-free apps (no games)
  /// before launching the player (§4.3).
  int organic_background_apps = 0;
  std::uint64_t seed = 1;
  /// World (boot + pressure-inducement) seed, when it must differ from
  /// the per-run seed: warm-start sweeps pre-roll one world per
  /// (state, rep) group and fork many video cells from it, so every cell
  /// of a group shares the world stream while its video stream (`seed`)
  /// varies. Unset = world follows `seed` (the plain single-run path).
  std::optional<std::uint64_t> world_seed;
  /// ABR policy; null = fixed rung (the controlled sweeps).
  video::AbrPolicy* abr = nullptr;
  /// Override the session defaults when set.
  std::optional<video::SessionConfig> session_override;
  /// Fault script, armed when the video starts (plan times are relative
  /// to video start). Kill entries with pid 0 target the video client.
  fault::FaultPlan fault_plan;
  /// Session recovery knobs (applied on top of session_override).
  std::optional<video::RecoveryConfig> recovery;
  /// Run the invariant watchdog alongside the video and report its
  /// violations in the result (debug/test harnesses).
  bool run_watchdog = false;
};

/// How a run ended — structured partial results instead of a bare crash
/// bit, so fault scenarios can assert on the exact failure mode.
enum class RunStatus : std::uint8_t {
  Completed,  // played to the end (possibly after absorbed kills)
  Crashed,    // client killed terminally (no relaunch budget left)
  Aborted,    // unrecoverable download failure (retry budget exhausted)
  TimedOut,   // did not finish within the horizon (unplayable/livelock)
};

const char* to_string(RunStatus status) noexcept;

struct VideoRunResult {
  qoe::RunOutcome outcome;
  video::SessionMetrics metrics;
  RunStatus status = RunStatus::Completed;
  std::string failure_reason;
  /// Pressure level observed when playback started.
  mem::PressureLevel start_level = mem::PressureLevel::Normal;
  /// Populated when spec.run_watchdog was set.
  std::vector<fault::WatchdogViolation> watchdog_violations;
};

}  // namespace mvqoe::core
