#include "core/testbed.hpp"

#include "core/system_activity.hpp"
#include "snapshot/digest.hpp"

namespace mvqoe::core {

Testbed::Testbed(DeviceProfile profile, std::uint64_t seed, mem::MemPolicySpec mem_policy,
                 net::NetSpec net)
    : scheduler(engine, tracer, profile.scheduler),
      storage(engine, scheduler, profile.storage),
      memory(engine, profile.memory, scheduler, storage, tracer, mem_policy),
      link(engine, net::LinkConfig{}, std::move(net)),
      am(memory),
      profile_(std::move(profile)),
      seed_(seed) {
  // The six wired subsystems, in the canonical snapshot section order
  // (registry keys 0-5; see registry.hpp for the full key layout).
  components_.add(0, "ENGN", "engine", &engine);
  components_.add(1, "SCHD", "sched", &scheduler);
  components_.add(2, "MEMM", "mem", &memory);
  components_.add(3, "LINK", "link", &link);
  components_.add(4, "STOR", "storage", &storage);
  components_.add(5, "PROC", "proc", &am);
  // Policies with internal state beyond the mechanism's pools carry an
  // MPOL snapshot section (registry key 6); stateless policies don't, so
  // baseline blobs stay byte-identical to the pre-policy layout.
  if (memory.policy().has_state()) {
    components_.add(6, "MPOL", "mem-policy", &memory.policy());
  }
  // Congestion-controlled worlds carry a NETC section (registry key 7)
  // recording which controller drives the link's flows; fifo worlds
  // don't, so legacy blobs stay byte-identical. The flow engine's
  // dynamic state lives in the LINK section (v2).
  if (link.cc_mode()) {
    const net::NetSpec& spec = link.net();
    components_.add(
        7, snapshot::tag("NETC"), "net-cc",
        [&spec](snapshot::ByteWriter& w) { net::save_net_spec(w, spec); },
        [&spec] {
          snapshot::ByteWriter w;
          net::save_net_spec(w, spec);
          snapshot::StateHash hash;
          hash.mix_bytes(std::move(w).take());
          return hash.value();
        });
  }
}

Testbed::~Testbed() = default;

void Testbed::add_background_duty(mem::ProcessId pid, sim::Time period) {
  if (system_activity_ != nullptr) system_activity_->add_process(pid, period);
}

Workload& Testbed::add_workload(std::unique_ptr<Workload> workload) {
  workloads_.push_back(std::move(workload));
  Workload& added = *workloads_.back();
  added.register_components(components_);
  return added;
}

void Testbed::boot() {
  am.boot(profile_.system_scale, profile_.baseline_cached);
  am.enable_respawn(engine, profile_.baseline_cached);
  system_activity_ = std::make_unique<SystemActivity>(*this);
  system_activity_->start();
  components_.add(100, "SYSA", "sysact", system_activity_.get());
  // Let launch allocations and any boot-time reclaim settle.
  engine.run_until(engine.now() + sim::sec(2));
}

}  // namespace mvqoe::core
