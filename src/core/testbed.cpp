#include "core/testbed.hpp"

#include "core/system_activity.hpp"

namespace mvqoe::core {

Testbed::Testbed(DeviceProfile profile, std::uint64_t seed)
    : scheduler(engine, tracer, profile.scheduler),
      storage(engine, scheduler, profile.storage),
      memory(engine, profile.memory, scheduler, storage, tracer),
      link(engine, net::LinkConfig{}),
      am(memory),
      profile_(std::move(profile)),
      seed_(seed) {}

Testbed::~Testbed() = default;

void Testbed::add_background_duty(mem::ProcessId pid, sim::Time period) {
  if (system_activity_ != nullptr) system_activity_->add_process(pid, period);
}

void Testbed::boot() {
  am.boot(profile_.system_scale, profile_.baseline_cached);
  am.enable_respawn(engine, profile_.baseline_cached);
  system_activity_ = std::make_unique<SystemActivity>(*this);
  system_activity_->start();
  // Let launch allocations and any boot-time reclaim settle.
  engine.run_until(engine.now() + sim::sec(2));
}

}  // namespace mvqoe::core
