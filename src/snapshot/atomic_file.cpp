#include "snapshot/atomic_file.hpp"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define MVQOE_HAVE_FSYNC 1
#else
#define MVQOE_HAVE_FSYNC 0
#endif

namespace mvqoe::snapshot {

std::string atomic_temp_path(const std::string& path) {
  // Pid-suffixed so concurrent processes (campaign coordinator + tools)
  // targeting different destinations in one directory never collide on
  // the temp name of a shared prefix.
#if MVQOE_HAVE_FSYNC
  return path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
#else
  return path + ".tmp";
#endif
}

bool atomic_write_file(const std::string& path, std::string_view bytes) {
  const std::string tmp = atomic_temp_path(path);
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool ok = written == bytes.size() && std::fflush(f) == 0;
#if MVQOE_HAVE_FSYNC
  // Durability before visibility: the rename must not be able to land
  // on disk ahead of the data it points at.
  if (ok && ::fsync(::fileno(f)) != 0) ok = false;
#endif
  if (std::fclose(f) != 0) ok = false;
  if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace mvqoe::snapshot
