#include "snapshot/blob.hpp"

#include <cstdio>
#include <exception>
#include <stdexcept>

#include "snapshot/atomic_file.hpp"
#include "snapshot/digest.hpp"

namespace mvqoe::snapshot {

std::string tag_name(std::uint32_t t) {
  std::string s;
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((t >> (8 * i)) & 0xFF);
    s += (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return s;
}

std::optional<std::string_view> Snapshot::get(std::uint32_t section_tag) const {
  for (const Section& s : sections_) {
    if (s.tag == section_tag) return std::string_view(s.bytes);
  }
  return std::nullopt;
}

std::string_view Snapshot::require(std::uint32_t section_tag) const {
  if (const auto s = get(section_tag)) return *s;
  throw std::runtime_error("snapshot: missing section '" + tag_name(section_tag) + "'");
}

std::string Snapshot::serialize() const {
  ByteWriter w;
  w.u32(kMagic);
  w.u32(kFormatVersion);
  w.u32(static_cast<std::uint32_t>(sections_.size()));
  for (const Section& s : sections_) {
    w.u32(s.tag);
    w.u64(s.bytes.size());
    w.raw(s.bytes);
  }
  return std::move(w).take();
}

Snapshot Snapshot::parse(std::string_view data) {
  if (data.empty()) throw std::runtime_error("snapshot: empty input (not an MVQS blob)");
  ByteReader r(data);
  if (r.remaining() < 12) {
    throw std::runtime_error("snapshot: input shorter than the MVQS header (" +
                             std::to_string(data.size()) + " bytes)");
  }
  if (r.u32() != kMagic) throw std::runtime_error("snapshot: bad magic (not an MVQS blob)");
  const std::uint32_t version = r.u32();
  if (version < kMinFormatVersion || version > kFormatVersion) {
    throw std::runtime_error("snapshot: unsupported container version " + std::to_string(version));
  }
  const std::uint32_t count = r.u32();
  Snapshot snap;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (r.remaining() < 12) {
      throw std::runtime_error("snapshot: truncated at section " + std::to_string(i) + " of " +
                               std::to_string(count) + " (section header cut short)");
    }
    const std::uint32_t t = r.u32();
    const std::uint64_t len = r.u64();
    if (len > r.remaining()) {
      throw std::runtime_error("snapshot: truncated section '" + tag_name(t) + "' (" +
                               std::to_string(len) + " bytes declared, " +
                               std::to_string(r.remaining()) + " available)");
    }
    snap.put(t, std::string(r.raw(static_cast<std::size_t>(len))));
  }
  if (!r.done()) {
    throw std::runtime_error("snapshot: " + std::to_string(r.remaining()) +
                             " trailing bytes after the last section (corrupt or garbage blob)");
  }
  return snap;
}

std::uint64_t Snapshot::digest() const {
  StateHash h;
  for (const Section& s : sections_) {
    h.mix(s.tag);
    h.mix_bytes(s.bytes);
  }
  return h.value();
}

bool Snapshot::write_file(const std::string& path, const Snapshot& snap) {
  // Atomic temp+rename (snapshot/atomic_file): a kill -9 mid-write can
  // never leave a truncated .mvqs blob at the destination.
  return atomic_write_file(path, snap.serialize());
}

Snapshot Snapshot::read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("snapshot: cannot open " + path);
  std::string data;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  const bool err = std::ferror(f) != 0;
  std::fclose(f);
  if (err) throw std::runtime_error("snapshot: read error on " + path);
  try {
    return parse(data);
  } catch (const std::exception& e) {
    // Re-anchor parse diagnostics on the file, so "--resume damaged.mvqs"
    // names the blob it rejected.
    std::string what = e.what();
    constexpr std::string_view prefix = "snapshot: ";
    if (what.rfind(prefix, 0) == 0) what.erase(0, prefix.size());
    throw std::runtime_error("snapshot: " + path + ": " + what);
  }
}

}  // namespace mvqoe::snapshot
