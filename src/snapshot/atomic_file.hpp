// Crash-safe whole-file writes, shared by every on-disk artifact the
// tree produces (MVQS blobs, BENCH_*.json, campaign checkpoints).
//
// The contract is all-or-nothing: a reader never observes a partially
// written destination. The bytes go to a unique sibling temp file, are
// flushed (fsync where the platform has it), and the temp is rename()d
// over the destination — POSIX rename is atomic within a filesystem, so
// a kill -9 at any instant leaves either the old complete file or the
// new complete file, never a truncated hybrid.
#pragma once

#include <string>
#include <string_view>

namespace mvqoe::snapshot {

/// Atomically replace `path` with `bytes`. False on any I/O failure
/// (the temp file is removed; an existing destination is untouched).
bool atomic_write_file(const std::string& path, std::string_view bytes);

/// The sibling temp path atomic_write_file uses (exposed for tests).
std::string atomic_temp_path(const std::string& path);

}  // namespace mvqoe::snapshot
