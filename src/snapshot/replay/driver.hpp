// Deterministic re-execution driver.
//
// Restoring a checkpoint is implemented as replay, not deserialization:
// the engine's event queue holds closures (scheduler timeslices, I/O
// completions, duty loops) that cannot be serialized, so a blob stores
// the *scenario* plus a digest trail, and "restore to T" means re-running
// the scenario to T and proving equivalence by digest (DESIGN.md §10).
//
// The driver reproduces ScenarioDriver::run()'s event sequence exactly —
// including its 1-second slice cadence, whose run_until boundaries are
// observable state (the clock lands on them even when no event does).
// Multi-session scenarios replay the same way: every session's state is a
// registry component, so the digest trail covers all of them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "scenario/driver.hpp"
#include "snapshot/blob.hpp"
#include "snapshot/replay/scenario.hpp"

namespace mvqoe::snapshot::replay {

class ReplayDriver {
 public:
  explicit ReplayDriver(scenario::ScenarioSpec scen);

  const scenario::ScenarioSpec& scenario() const noexcept { return driver_.spec(); }

  /// Test/bisection hook: at the first slice boundary >= video_start +
  /// `offset`, flip one bit of the SystemActivity RNG state — the
  /// smallest possible state corruption, invisible until the stream is
  /// next consumed. Must be set before start().
  void set_perturb_at(sim::Time offset) { perturb_at_ = offset; }

  /// Boot + pressure phase + session starts (scenario phases 1-2).
  void start();

  /// Advance in 1-second slices until video_start + `offset` (a whole
  /// number of seconds). Returns false if the scenario finished (or hit
  /// its horizon) before the target — the clock then rests on the last
  /// slice boundary reached.
  bool advance_to_offset(sim::Time offset);

  bool done() const;
  sim::Time now() const;
  sim::Time video_start() const;
  /// Offset of the current slice boundary from video start.
  sim::Time offset() const { return now() - video_start(); }

  /// Full-state digest / per-component digests / serialized sections.
  std::uint64_t digest() const;
  std::vector<std::pair<std::string, std::uint64_t>> digests() const;
  void save(Snapshot& snap) const;

  /// Apply the one-bit RNG perturbation immediately.
  void perturb_now();
  bool perturbed() const noexcept { return perturbed_; }

  /// Lockstep surface for divergence pinpointing: the (time, seq) of the
  /// next live event, and single-event stepping.
  std::optional<std::pair<sim::Time, std::uint64_t>> next_event() const;
  bool step_event();

  mvqoe::scenario::ScenarioDriver& driver() noexcept { return driver_; }
  mvqoe::scenario::ScenarioResult finalize() { return driver_.finalize(); }

 private:
  void maybe_perturb();

  mvqoe::scenario::ScenarioDriver driver_;
  std::optional<sim::Time> perturb_at_;
  bool perturbed_ = false;
};

}  // namespace mvqoe::snapshot::replay
