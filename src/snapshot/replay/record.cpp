#include "snapshot/replay/record.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mvqoe::snapshot::replay {

namespace {

std::optional<std::string> first_digest_diff(
    const std::vector<std::pair<std::string, std::uint64_t>>& a,
    const std::vector<std::pair<std::string, std::uint64_t>>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i].second != b[i].second) return a[i].first;
  }
  if (a.size() != b.size()) return std::string("sections");
  return std::nullopt;
}

}  // namespace

Snapshot record_run(const ScenarioSpec& scen, const RecordOptions& options) {
  if (options.interval <= 0 || options.interval % sim::sec(1) != 0) {
    throw std::invalid_argument("snapshot: checkpoint interval must be whole positive seconds");
  }
  ReplayDriver driver(scen);
  if (options.perturb_at.has_value()) driver.set_perturb_at(*options.perturb_at);
  driver.start();

  std::vector<TrailEntry> trail;
  trail.push_back(TrailEntry{0, driver.digest()});
  while (!driver.done()) {
    if (options.stop != nullptr && *options.stop != 0) break;
    driver.advance_to_offset(driver.offset() + options.interval);
    trail.push_back(TrailEntry{driver.offset(), driver.digest()});
  }

  Snapshot snap;
  {
    ByteWriter w;
    save_scenario(w, scen);
    snap.put(kScenTag, std::move(w));
  }
  // Subsystem state sections at the final trail point — captured before
  // finalize(), which disarms the injector and would shift the digests.
  driver.save(snap);
  const auto subsystem = driver.digests();
  const sim::Time video_start = driver.video_start();
  const mvqoe::scenario::ScenarioResult result = driver.finalize();
  {
    ByteWriter w;
    w.u32(1);  // section version
    w.i64(options.interval);
    w.i64(video_start);
    w.i64(trail.back().offset);
    w.u8(static_cast<std::uint8_t>(result.status));
    w.u64(trail.back().digest);
    snap.put(kMetaTag, std::move(w));
  }
  {
    ByteWriter w;
    w.u32(1);  // section version
    w.u64(trail.size());
    for (const TrailEntry& entry : trail) {
      w.i64(entry.offset);
      w.u64(entry.digest);
    }
    snap.put(kTrailTag, std::move(w));
  }
  {
    ByteWriter w;
    w.u32(1);  // section version
    w.u64(subsystem.size());
    for (const auto& [name, digest] : subsystem) {
      w.str(name);
      w.u64(digest);
    }
    snap.put(kSubsystemDigestsTag, std::move(w));
  }
  return snap;
}

ReplayMeta load_meta(const Snapshot& blob) {
  ByteReader r(blob.require(kMetaTag));
  const std::uint32_t version = r.u32();
  if (version != 1) throw std::runtime_error("snapshot: unsupported META version");
  ReplayMeta meta;
  meta.interval = r.i64();
  meta.video_start = r.i64();
  meta.end_offset = r.i64();
  meta.status = r.u8();
  meta.final_digest = r.u64();
  return meta;
}

std::vector<TrailEntry> load_trail(const Snapshot& blob) {
  ByteReader r(blob.require(kTrailTag));
  const std::uint32_t version = r.u32();
  if (version != 1) throw std::runtime_error("snapshot: unsupported TRAL version");
  std::vector<TrailEntry> trail(r.u64());
  for (TrailEntry& entry : trail) {
    entry.offset = r.i64();
    entry.digest = r.u64();
  }
  if (trail.empty()) throw std::runtime_error("snapshot: empty digest trail");
  return trail;
}

std::vector<std::pair<std::string, std::uint64_t>> load_subsystem_digests(const Snapshot& blob) {
  ByteReader r(blob.require(kSubsystemDigestsTag));
  const std::uint32_t version = r.u32();
  if (version != 1) throw std::runtime_error("snapshot: unsupported SDIG version");
  std::vector<std::pair<std::string, std::uint64_t>> out(r.u64());
  for (auto& [name, digest] : out) {
    name = r.str();
    digest = r.u64();
  }
  return out;
}

namespace {

ScenarioSpec load_blob_scenario(const Snapshot& blob) {
  ByteReader r(blob.require(kScenTag));
  return load_scenario(r);
}

}  // namespace

VerifyReport verify_replay(const Snapshot& blob, std::optional<sim::Time> perturb_at) {
  const ScenarioSpec scen = load_blob_scenario(blob);
  const std::vector<TrailEntry> trail = load_trail(blob);

  ReplayDriver driver(scen);
  if (perturb_at.has_value()) driver.set_perturb_at(*perturb_at);
  driver.start();

  VerifyReport report;
  for (std::size_t i = 0; i < trail.size(); ++i) {
    if (i > 0) driver.advance_to_offset(trail[i].offset);
    ++report.checked;
    const std::uint64_t actual = driver.digest();
    if (actual != trail[i].digest) {
      report.ok = false;
      report.mismatch_index = i;
      report.mismatch_offset = trail[i].offset;
      report.expected = trail[i].digest;
      report.actual = actual;
      return report;
    }
  }
  report.ok = true;
  return report;
}

DivergenceReport bisect_divergence(const Snapshot& blob, sim::Time perturb_at) {
  const ScenarioSpec scen = load_blob_scenario(blob);
  const std::vector<TrailEntry> trail = load_trail(blob);

  DivergenceReport report;
  // Each probe is a fresh deterministic replay with the perturbation
  // applied at its scripted offset, advanced to one trail boundary.
  const auto probe_matches = [&](std::size_t m) {
    ++report.probes;
    ReplayDriver probe(scen);
    probe.set_perturb_at(perturb_at);
    probe.start();
    if (m > 0) probe.advance_to_offset(trail[m].offset);
    return probe.digest() == trail[m].digest;
  };

  // Divergence is monotone (a perturbed state never re-converges with
  // the clean trail), so binary search finds the first bad boundary.
  std::size_t lo = 0;
  std::size_t hi = trail.size() - 1;
  if (probe_matches(hi)) {
    report.diverged = false;  // perturbation never became visible
    return report;
  }
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (probe_matches(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  report.diverged = true;
  report.interval_index = lo;
  report.interval_start = lo == 0 ? 0 : trail[lo - 1].offset;
  report.interval_end = trail[lo].offset;

  // Lockstep pinpoint: advance a clean and a perturbed driver to the
  // last matching boundary (identical state by determinism), then step
  // event-by-event. The perturbation applies once the clock passes
  // perturb_at — exactly the slice semantics: events at time <= S run
  // clean, the first event after S sees the corrupted stream.
  ReplayDriver clean(scen);
  ReplayDriver dirty(scen);
  clean.start();
  dirty.start();
  if (report.interval_start > 0) {
    clean.advance_to_offset(report.interval_start);
    dirty.advance_to_offset(report.interval_start);
  }
  const sim::Time s_abs = dirty.video_start() + perturb_at;
  while (true) {
    const auto next = dirty.next_event();
    if (!dirty.perturbed() && (!next.has_value() || next->first > s_abs)) {
      dirty.perturb_now();
    }
    if (dirty.perturbed()) {
      // Until the perturbation lands the two drivers are identical by
      // construction; digest comparison only starts afterwards.
      const auto diff = first_digest_diff(clean.digests(), dirty.digests());
      if (diff.has_value()) {
        report.event_time = next.has_value() ? next->first : dirty.now();
        report.event_seq = next.has_value() ? next->second : 0;
        report.subsystem = *diff;
        return report;
      }
    }
    if (!next.has_value()) break;  // queues drained without divergence
    clean.step_event();
    dirty.step_event();
  }
  // Boundary digests disagreed but the lockstep walk found no differing
  // subsystem — should be unreachable; report the interval alone.
  report.subsystem = "unknown";
  return report;
}

std::string format_report(const VerifyReport& report) {
  std::ostringstream out;
  if (report.ok) {
    out << "OK: " << report.checked << " checkpoints replayed digest-identical";
  } else {
    out << "MISMATCH at checkpoint " << report.mismatch_index << " (t=+"
        << sim::to_seconds(report.mismatch_offset) << "s): expected " << std::hex
        << report.expected << ", got " << report.actual;
  }
  return out.str();
}

std::string format_report(const DivergenceReport& report) {
  std::ostringstream out;
  if (!report.diverged) {
    out << "no divergence: replay matches the recorded trail";
    return out.str();
  }
  out << "diverged in checkpoint interval " << report.interval_index << " (+"
      << sim::to_seconds(report.interval_start) << "s, +"
      << sim::to_seconds(report.interval_end) << "s] after " << report.probes
      << " probes; first diverging event: t=" << sim::to_seconds(report.event_time)
      << "s seq=" << report.event_seq << " subsystem=" << report.subsystem;
  return out.str();
}

}  // namespace mvqoe::snapshot::replay
