#include "snapshot/replay/driver.hpp"

#include <stdexcept>
#include <utility>

#include "core/system_activity.hpp"

namespace mvqoe::snapshot::replay {

ReplayDriver::ReplayDriver(mvqoe::scenario::ScenarioSpec scen) : driver_(std::move(scen)) {}

void ReplayDriver::start() {
  driver_.prepare();
  driver_.start();
}

bool ReplayDriver::advance_to_offset(sim::Time offset) {
  const sim::Time target = driver_.video_start() + offset;
  while (driver_.testbed().engine.now() < target) {
    maybe_perturb();
    if (!driver_.advance_slice()) return false;
  }
  maybe_perturb();
  return true;
}

bool ReplayDriver::done() const { return driver_.done(); }

sim::Time ReplayDriver::now() const { return driver_.testbed().engine.now(); }

sim::Time ReplayDriver::video_start() const { return driver_.video_start(); }

std::uint64_t ReplayDriver::digest() const { return driver_.state_digest(); }

std::vector<std::pair<std::string, std::uint64_t>> ReplayDriver::digests() const {
  return driver_.subsystem_digests();
}

void ReplayDriver::save(Snapshot& snap) const { driver_.save_state(snap); }

void ReplayDriver::perturb_now() {
  core::SystemActivity* activity = driver_.testbed().system_activity();
  if (activity == nullptr) {
    throw std::runtime_error("snapshot: cannot perturb before the testbed booted");
  }
  stats::Rng::State state = activity->rng().save_state();
  state.s[1] ^= 1ULL << 23;
  activity->rng().restore_state(state);
  perturbed_ = true;
}

std::optional<std::pair<sim::Time, std::uint64_t>> ReplayDriver::next_event() const {
  const auto live = driver_.testbed().engine.live_events();
  if (live.empty()) return std::nullopt;
  return live.front();
}

bool ReplayDriver::step_event() { return driver_.testbed().engine.step(); }

void ReplayDriver::maybe_perturb() {
  if (!perturb_at_.has_value() || perturbed_) return;
  if (now() >= driver_.video_start() + *perturb_at_) perturb_now();
}

}  // namespace mvqoe::snapshot::replay
