#include "snapshot/replay/scenario.hpp"

#include <stdexcept>

#include "core/device.hpp"
#include "video/asset.hpp"

namespace mvqoe::snapshot::replay {

namespace {

struct FamilySetup {
  const char* name;
  core::DeviceProfile (*device)();
  video::PlayerPlatform platform;
};

const FamilySetup kFamilies[] = {
    {"fig09", core::nokia1, video::PlayerPlatform::Firefox},
    {"fig11", core::nexus5, video::PlayerPlatform::Firefox},
    {"fig16", core::nokia1, video::PlayerPlatform::Firefox},
    {"fig18", core::nexus5, video::PlayerPlatform::ExoPlayer},
    {"fig19", core::nexus5, video::PlayerPlatform::Chrome},
    {"table1", core::nokia1, video::PlayerPlatform::Firefox},
};

const FamilySetup& find_family(const std::string& name) {
  for (const FamilySetup& family : kFamilies) {
    if (name == family.name) return family;
  }
  throw std::runtime_error("snapshot: unknown scenario family '" + name + "'");
}

}  // namespace

const std::vector<std::string>& scenario_families() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const FamilySetup& family : kFamilies) out.emplace_back(family.name);
    return out;
  }();
  return names;
}

core::VideoRunSpec make_run_spec(const ScenarioSpec& scen) {
  const FamilySetup& family = find_family(scen.family);
  core::VideoRunSpec spec;
  spec.device = family.device();
  spec.platform = family.platform;
  spec.asset = video::dubai_flow_motion(scen.duration_s);
  spec.height = scen.height;
  spec.fps = scen.fps;
  spec.pressure = scen.state;
  spec.seed = scen.seed;
  spec.fault_plan = scen.fault_plan;
  return spec;
}

void save_scenario(ByteWriter& w, const ScenarioSpec& scen) {
  w.u32(1);  // section version
  w.str(scen.family);
  w.i32(scen.height);
  w.i32(scen.fps);
  w.i32(scen.duration_s);
  w.u8(static_cast<std::uint8_t>(scen.state));
  w.u64(scen.seed);
  save_fault_plan(w, scen.fault_plan);
}

ScenarioSpec load_scenario(ByteReader& r) {
  const std::uint32_t version = r.u32();
  if (version != 1) throw std::runtime_error("snapshot: unsupported SCEN version");
  ScenarioSpec scen;
  scen.family = r.str();
  scen.height = r.i32();
  scen.fps = r.i32();
  scen.duration_s = r.i32();
  scen.state = static_cast<mem::PressureLevel>(r.u8());
  scen.seed = r.u64();
  scen.fault_plan = load_fault_plan(r);
  find_family(scen.family);  // validate eagerly, before any sim is built
  return scen;
}

void save_fault_plan(ByteWriter& w, const fault::FaultPlan& plan) {
  w.u32(1);  // sub-record version
  w.u64(plan.link_outages.size());
  for (const fault::LinkOutage& o : plan.link_outages) {
    w.i64(o.at);
    w.i64(o.duration);
  }
  w.u64(plan.link_rate_steps.size());
  for (const fault::LinkRateStep& s : plan.link_rate_steps) {
    w.i64(s.at);
    w.f64(s.rate_mbps);
  }
  w.u64(plan.storage_degradations.size());
  for (const fault::StorageDegradation& d : plan.storage_degradations) {
    w.i64(d.at);
    w.i64(d.duration);
    w.f64(d.latency_multiplier);
    w.f64(d.error_rate);
  }
  w.u64(plan.thermal_windows.size());
  for (const fault::ThermalWindow& t : plan.thermal_windows) {
    w.i64(t.at);
    w.i64(t.duration);
    w.f64(t.speed_scale);
  }
  w.u64(plan.kills.size());
  for (const fault::TargetedKill& k : plan.kills) {
    w.i64(k.at);
    w.u32(k.pid);
  }
  w.b(plan.gilbert_elliott.enabled);
  w.i64(plan.gilbert_elliott.mean_good);
  w.i64(plan.gilbert_elliott.mean_bad);
  w.f64(plan.gilbert_elliott.good_rate_mbps);
  w.f64(plan.gilbert_elliott.bad_rate_mbps);
  w.f64(plan.gilbert_elliott.bad_outage_probability);
  w.u64(plan.seed);
}

fault::FaultPlan load_fault_plan(ByteReader& r) {
  const std::uint32_t version = r.u32();
  if (version != 1) throw std::runtime_error("snapshot: unsupported fault-plan version");
  fault::FaultPlan plan;
  plan.link_outages.resize(r.u64());
  for (fault::LinkOutage& o : plan.link_outages) {
    o.at = r.i64();
    o.duration = r.i64();
  }
  plan.link_rate_steps.resize(r.u64());
  for (fault::LinkRateStep& s : plan.link_rate_steps) {
    s.at = r.i64();
    s.rate_mbps = r.f64();
  }
  plan.storage_degradations.resize(r.u64());
  for (fault::StorageDegradation& d : plan.storage_degradations) {
    d.at = r.i64();
    d.duration = r.i64();
    d.latency_multiplier = r.f64();
    d.error_rate = r.f64();
  }
  plan.thermal_windows.resize(r.u64());
  for (fault::ThermalWindow& t : plan.thermal_windows) {
    t.at = r.i64();
    t.duration = r.i64();
    t.speed_scale = r.f64();
  }
  plan.kills.resize(r.u64());
  for (fault::TargetedKill& k : plan.kills) {
    k.at = r.i64();
    k.pid = r.u32();
  }
  plan.gilbert_elliott.enabled = r.b();
  plan.gilbert_elliott.mean_good = r.i64();
  plan.gilbert_elliott.mean_bad = r.i64();
  plan.gilbert_elliott.good_rate_mbps = r.f64();
  plan.gilbert_elliott.bad_rate_mbps = r.f64();
  plan.gilbert_elliott.bad_outage_probability = r.f64();
  plan.seed = r.u64();
  return plan;
}

}  // namespace mvqoe::snapshot::replay
