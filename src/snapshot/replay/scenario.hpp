// Named, serializable experiment scenarios for record/replay.
//
// A ScenarioSpec pins everything a deterministic re-run needs: the
// paper-figure family (which fixes device preset and player platform),
// the video cell (height/fps/duration), the pressure state, the seed and
// the fault plan. It serializes into the SCEN section of a replay blob,
// so `mvqoe_replay verify` can reconstruct the exact run from the blob
// alone — no command-line state to get wrong.
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "fault/fault_injector.hpp"
#include "mem/types.hpp"
#include "snapshot/bytes.hpp"

namespace mvqoe::snapshot::replay {

/// Scenario families map to the paper's evaluation setups:
///   fig09 / fig16 / table1 — Nokia 1, Firefox
///   fig11                  — Nexus 5, Firefox
///   fig18                  — Nexus 5, ExoPlayer
///   fig19                  — Nexus 5, Chrome
struct ScenarioSpec {
  std::string family = "fig16";
  int height = 1080;
  int fps = 30;
  int duration_s = 60;
  mem::PressureLevel state = mem::PressureLevel::Normal;
  std::uint64_t seed = 1;
  fault::FaultPlan fault_plan;
};

/// All recognised family names, in canonical order.
const std::vector<std::string>& scenario_families();

/// Translate a scenario into a concrete run spec. Throws
/// std::runtime_error for an unknown family.
core::VideoRunSpec make_run_spec(const ScenarioSpec& scen);

void save_scenario(ByteWriter& w, const ScenarioSpec& scen);
ScenarioSpec load_scenario(ByteReader& r);

void save_fault_plan(ByteWriter& w, const fault::FaultPlan& plan);
fault::FaultPlan load_fault_plan(ByteReader& r);

}  // namespace mvqoe::snapshot::replay
