// Compatibility re-exports: the serializable scenario model moved to
// src/scenario (DESIGN.md §11), where it is the single source of truth
// for benches, sweeps and this replay layer alike. This header keeps the
// old snapshot::replay spellings alive for existing includes; new code
// should include "scenario/spec.hpp" directly.
#pragma once

#include "scenario/spec.hpp"

namespace mvqoe::snapshot::replay {

using scenario::ScenarioSpec;
using scenario::VideoWorkloadSpec;

using scenario::load_fault_plan;
using scenario::load_scenario;
using scenario::save_fault_plan;
using scenario::save_scenario;
using scenario::scenario_families;
using scenario::single_video;
using scenario::video_spec;

}  // namespace mvqoe::snapshot::replay
