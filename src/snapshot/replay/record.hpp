// Golden-trace recording, replay verification and divergence bisection.
//
// record_run() executes a scenario once, sampling the full-state digest
// at every checkpoint interval, and packs scenario + digest trail +
// final per-subsystem state into a blob. verify_replay() re-runs the
// scenario from the blob and compares the trail digest-by-digest.
// bisect_divergence() localizes a mismatch: binary search over the trail
// (each probe is a fresh deterministic replay) finds the first bad
// interval, then two lockstep drivers — one clean, one perturbed — step
// event-by-event through it to name the first diverging event and the
// first subsystem whose digest differs.
#pragma once

#include <csignal>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "snapshot/blob.hpp"
#include "snapshot/replay/driver.hpp"
#include "snapshot/replay/scenario.hpp"

namespace mvqoe::snapshot::replay {

/// Blob section tags owned by this layer (component state sections —
/// ENGN, SCHD, ..., VIDE/VID1/... — are written via the Testbed's
/// component registry, see core/registry.hpp).
inline constexpr std::uint32_t kScenTag = tag("SCEN");
inline constexpr std::uint32_t kMetaTag = tag("META");
inline constexpr std::uint32_t kTrailTag = tag("TRAL");
inline constexpr std::uint32_t kSubsystemDigestsTag = tag("SDIG");

/// One digest sample: full-state digest at `offset` from video start.
struct TrailEntry {
  sim::Time offset = 0;
  std::uint64_t digest = 0;
};

struct RecordOptions {
  /// Digest sampling interval (whole seconds of simulated time).
  sim::Time interval = sim::sec(10);
  /// Test hook: corrupt one RNG bit at this offset during the recording
  /// itself (used to manufacture known-bad blobs).
  std::optional<sim::Time> perturb_at;
  /// Polled between checkpoint intervals; when it goes nonzero the
  /// recording stops at the next boundary and the partial (but fully
  /// well-formed) blob is returned — the SIGINT/SIGTERM flush path of
  /// tools/mvqoe_replay (campaign/signal.hpp).
  const volatile std::sig_atomic_t* stop = nullptr;
};

struct ReplayMeta {
  sim::Time interval = 0;
  sim::Time video_start = 0;   // absolute sim time playback began
  sim::Time end_offset = 0;    // trail end, relative to video start
  std::uint8_t status = 0;     // core::RunStatus of the recorded run
  std::uint64_t final_digest = 0;
};

/// Run the scenario to completion, return the blob.
Snapshot record_run(const ScenarioSpec& scen, const RecordOptions& options = {});

ReplayMeta load_meta(const Snapshot& blob);
std::vector<TrailEntry> load_trail(const Snapshot& blob);
std::vector<std::pair<std::string, std::uint64_t>> load_subsystem_digests(const Snapshot& blob);

struct VerifyReport {
  bool ok = false;
  std::size_t checked = 0;  // trail entries compared (including mismatch)
  /// Valid when !ok:
  std::size_t mismatch_index = 0;
  sim::Time mismatch_offset = 0;
  std::uint64_t expected = 0;
  std::uint64_t actual = 0;
};

/// Re-run the blob's scenario and compare every trail digest.
/// `perturb_at` injects the one-bit RNG corruption into the re-run (test
/// and demo hook — a clean verify leaves it unset).
VerifyReport verify_replay(const Snapshot& blob, std::optional<sim::Time> perturb_at = {});

struct DivergenceReport {
  bool diverged = false;
  /// First trail entry whose digest mismatched; the divergence lies in
  /// (interval_start, interval_end] relative to video start.
  std::size_t interval_index = 0;
  sim::Time interval_start = 0;
  sim::Time interval_end = 0;
  int probes = 0;  // fresh replays the binary search spent
  /// First event dispatched from diverged state (lockstep pinpoint).
  sim::Time event_time = 0;     // absolute sim time
  std::uint64_t event_seq = 0;  // engine sequence number of that event
  std::string subsystem;        // first subsystem whose digest differs
};

/// Localize where a perturbed re-run leaves the recorded trail.
DivergenceReport bisect_divergence(const Snapshot& blob, sim::Time perturb_at);

std::string format_report(const VerifyReport& report);
std::string format_report(const DivergenceReport& report);

}  // namespace mvqoe::snapshot::replay
