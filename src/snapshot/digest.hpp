// Canonical 64-bit state digests.
//
// A digest is a splitmix64-based fold over a byte stream — not
// cryptographic, but stable across runs, platforms and library versions
// (unlike std::hash). Subsystems expose `digest()` as the hash of the
// exact bytes their `save()` emits, so "digests equal" means "serialized
// state identical" with no second source of truth to drift.
#pragma once

#include <cstdint>
#include <string_view>

#include "snapshot/bytes.hpp"

namespace mvqoe::snapshot {

/// Incremental 64-bit hasher. Feed words or buffers; order matters.
class StateHash {
 public:
  StateHash() = default;
  explicit StateHash(std::uint64_t seed) : h_(seed) {}

  void mix(std::uint64_t v) noexcept {
    h_ = mix64(h_ ^ (v + 0x9E3779B97F4A7C15ULL));
  }
  void mix_bytes(std::string_view bytes) noexcept {
    std::uint64_t word = 0;
    int n = 0;
    for (const char c : bytes) {
      word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c)) << (8 * n);
      if (++n == 8) {
        mix(word);
        word = 0;
        n = 0;
      }
    }
    // Length-suffix the tail so "abc" + "" and "ab" + "c" differ.
    mix(word);
    mix(static_cast<std::uint64_t>(bytes.size()));
  }

  std::uint64_t value() const noexcept { return mix64(h_ ^ 0xD6E8FEB86659FD93ULL); }

  /// One-shot splitmix64 finalizer (public: useful for commutative folds).
  static std::uint64_t mix64(std::uint64_t z) noexcept {
    z += 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t h_ = 0x4D565153ULL;  // 'MVQS'
};

inline std::uint64_t digest_bytes(std::string_view bytes) noexcept {
  StateHash h;
  h.mix_bytes(bytes);
  return h.value();
}

/// Digest of whatever `save(ByteWriter&)` emits — the standard way a
/// subsystem implements digest(): one serialization path, one hash.
template <class T>
std::uint64_t state_digest(const T& subsystem) {
  ByteWriter w;
  subsystem.save(w);
  return digest_bytes(w.view());
}

}  // namespace mvqoe::snapshot
