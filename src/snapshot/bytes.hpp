// Byte-level serialization primitives for simulation snapshots.
//
// Fixed-width little-endian encoding, no varints, no alignment padding:
// the byte stream a subsystem's save() produces must be identical across
// runs and platforms for the same logical state, because the state digest
// is computed over exactly these bytes. Doubles are stored as their IEEE
// bit pattern (bit_cast), never formatted, so round-trips are exact.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mvqoe::snapshot {

/// Append-only byte buffer with typed writers.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { words(v, 4); }
  void u64(std::uint64_t v) { words(v, 8); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern; exact round-trip, hashable.
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(std::string_view v) {
    u32(static_cast<std::uint32_t>(v.size()));
    out_.append(v.data(), v.size());
  }
  void raw(std::string_view v) { out_.append(v.data(), v.size()); }

  std::string_view view() const noexcept { return out_; }
  std::size_t size() const noexcept { return out_.size(); }
  std::string take() && { return std::move(out_); }

 private:
  void words(std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
  std::string out_;
};

/// Bounds-checked reader over a serialized buffer. Truncated or
/// malformed input throws (snapshots come from files).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) noexcept : data_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(words(4)); }
  std::uint64_t u64() { return words(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  bool b() { return u8() != 0; }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    const std::string_view s = take(n);
    return std::string(s);
  }
  /// Bounds-checked view of the next n raw bytes.
  std::string_view raw(std::size_t n) { return take(n); }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return remaining() == 0; }

 private:
  std::string_view take(std::size_t n) {
    if (n > remaining()) throw std::runtime_error("snapshot: truncated byte stream");
    const std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }
  std::uint64_t words(int bytes) {
    const std::string_view s = take(static_cast<std::size_t>(bytes));
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(s[static_cast<std::size_t>(i)]))
           << (8 * i);
    }
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace mvqoe::snapshot
