// Rng state <-> bytes. Every subsystem that owns a stats::Rng stream
// serializes it with these helpers so the byte layout (and therefore the
// digests) of RNG state is uniform across sections.
#pragma once

#include "snapshot/bytes.hpp"
#include "stats/rng.hpp"

namespace mvqoe::snapshot {

inline void write_rng(ByteWriter& w, const stats::Rng& rng) {
  const stats::Rng::State st = rng.save_state();
  for (const std::uint64_t word : st.s) w.u64(word);
  w.b(st.have_spare_normal);
  w.f64(st.spare_normal);
}

inline stats::Rng::State read_rng_state(ByteReader& r) {
  stats::Rng::State st;
  for (std::uint64_t& word : st.s) word = r.u64();
  st.have_spare_normal = r.b();
  st.spare_normal = r.f64();
  return st;
}

}  // namespace mvqoe::snapshot
