// Self-describing versioned snapshot blob.
//
// Layout (all little-endian):
//   magic   u32  'MVQS'
//   version u32  container format version (kFormatVersion)
//   count   u32  number of sections
//   then per section:
//     tag   u32  fourcc (e.g. 'ENGN', 'MEM ')
//     len   u64  payload byte length
//     payload  len bytes (each section starts with its own u32 version)
//
// Unknown sections are preserved verbatim on read — a newer writer's blob
// still round-trips through an older reader as long as the container
// version matches (see DESIGN.md §10 for the compatibility policy).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "snapshot/bytes.hpp"

namespace mvqoe::snapshot {

inline constexpr std::uint32_t kMagic = 0x5351564DU;  // "MVQS" LE
/// Container format versions. v2 (scenario model): the SCEN section may
/// carry a workload list and multi-session blobs may hold VID1/FLT1/...
/// sections. v1 blobs (single-video tuple) still parse — the container
/// layout is unchanged, only section contents evolved, and every section
/// carries its own version.
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kMinFormatVersion = 1;

/// Four-character section tag, e.g. tag("ENGN").
constexpr std::uint32_t tag(const char (&s)[5]) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(s[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(s[3])) << 24;
}

std::string tag_name(std::uint32_t t);

/// Ordered container of tagged byte sections. Subsystem save() fills a
/// ByteWriter and calls put(); load()/digest paths fetch by tag.
class Snapshot {
 public:
  struct Section {
    std::uint32_t tag = 0;
    std::string bytes;
  };

  void put(std::uint32_t section_tag, std::string bytes) {
    sections_.push_back(Section{section_tag, std::move(bytes)});
  }
  void put(std::uint32_t section_tag, ByteWriter&& w) {
    put(section_tag, std::move(w).take());
  }

  /// First section with the given tag, or nullopt.
  std::optional<std::string_view> get(std::uint32_t section_tag) const;
  /// Like get(), but throws with the tag name if missing.
  std::string_view require(std::uint32_t section_tag) const;
  bool has(std::uint32_t section_tag) const { return get(section_tag).has_value(); }

  const std::vector<Section>& sections() const noexcept { return sections_; }

  /// Serialize to / parse from the container format. parse throws on
  /// bad magic, unsupported container version, or truncation.
  std::string serialize() const;
  static Snapshot parse(std::string_view data);

  /// Whole-blob digest (covers serialized bytes, so section order matters).
  std::uint64_t digest() const;

  static bool write_file(const std::string& path, const Snapshot& snap);
  static Snapshot read_file(const std::string& path);  // throws on error

 private:
  std::vector<Section> sections_;
};

}  // namespace mvqoe::snapshot
