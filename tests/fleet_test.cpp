// Fleet subsystem tests (DESIGN.md §15): spec round-trips and resume
// fingerprinting, population purity, shard payload purity, warm-vs-cold
// bit identity, aggregate encode/merge contracts, the FLCF+FLEE blob,
// and — the subsystem's load-bearing promise — byte-identical digests
// and reports across the serial / --jobs / --procs / crash-and-resume
// execution lanes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/coordinator.hpp"
#include "fleet/aggregate.hpp"
#include "fleet/population.hpp"
#include "fleet/runner.hpp"
#include "fleet/spec.hpp"
#include "snapshot/atomic_file.hpp"
#include "snapshot/blob.hpp"
#include "study/population.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define MVQOE_TEST_FORK 1
#else
#define MVQOE_TEST_FORK 0
#endif

namespace {

using namespace mvqoe;

/// Unique scratch path under the test working directory, cleaned up on
/// destruction.
class ScratchFile {
 public:
  explicit ScratchFile(const std::string& name)
      : path_("fleet_test_" + name + "_" + std::to_string(::testing::UnitTest::GetInstance()
                                                              ->random_seed()) +
              ".mvqs") {
    std::remove(path_.c_str());
  }
  ~ScratchFile() {
    std::remove(path_.c_str());
    std::remove(snapshot::atomic_temp_path(path_).c_str());
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Small but multi-shard fleet: 6 units of <= 16 devices, short
/// sessions, so every lane finishes in well under a second.
fleet::FleetSpec tiny_spec() {
  fleet::FleetSpec spec;
  spec.devices = 90;
  spec.seed = 21;
  spec.session_s = 3;
  spec.sample_period_s = 2;
  spec.warmup_s = 1;
  spec.shard_size = 16;
  return spec;
}

fleet::FleetRunOptions fast_options() {
  fleet::FleetRunOptions opts;
  opts.max_attempts = 3;
  opts.units_per_proc_shard = 2;
  return opts;
}

// --- Spec -------------------------------------------------------------------

TEST(FleetSpec, ConfigRoundTripsExactly) {
  fleet::FleetSpec spec;
  spec.devices = 123456;
  spec.seed = 0xDEADBEEFULL;
  spec.session_s = 45;
  spec.sample_period_s = 3;
  spec.warmup_s = 7;
  spec.shard_size = 512;
  const fleet::FleetSpec back = fleet::decode_fleet_config(fleet::encode_fleet_config(spec));
  EXPECT_EQ(back.devices, spec.devices);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.session_s, spec.session_s);
  EXPECT_EQ(back.sample_period_s, spec.sample_period_s);
  EXPECT_EQ(back.warmup_s, spec.warmup_s);
  EXPECT_EQ(back.shard_size, spec.shard_size);
}

TEST(FleetSpec, FingerprintCoversEveryField) {
  const fleet::FleetSpec base = tiny_spec();
  const std::uint64_t fp = fleet::fleet_config_fingerprint(base);
  EXPECT_EQ(fleet::fleet_config_fingerprint(tiny_spec()), fp);
  auto differs = [&](auto mutate) {
    fleet::FleetSpec spec = base;
    mutate(spec);
    EXPECT_NE(fleet::fleet_config_fingerprint(spec), fp);
  };
  differs([](fleet::FleetSpec& s) { s.devices += 1; });
  differs([](fleet::FleetSpec& s) { s.seed += 1; });
  differs([](fleet::FleetSpec& s) { s.session_s += 1; });
  differs([](fleet::FleetSpec& s) { s.sample_period_s += 1; });
  differs([](fleet::FleetSpec& s) { s.warmup_s += 1; });
  differs([](fleet::FleetSpec& s) { s.shard_size += 1; });
}

TEST(FleetSpec, DecodeRejectsMalformedConfigs) {
  const std::string good = fleet::encode_fleet_config(tiny_spec());
  EXPECT_THROW(fleet::decode_fleet_config(good + "x"), std::exception);          // trailing
  EXPECT_THROW(fleet::decode_fleet_config(good.substr(0, 9)), std::exception);   // truncated
  std::string bad_version = good;
  bad_version[0] = 9;
  EXPECT_THROW(fleet::decode_fleet_config(bad_version), std::exception);
  fleet::FleetSpec zero = tiny_spec();
  zero.devices = 0;
  EXPECT_THROW(fleet::decode_fleet_config(fleet::encode_fleet_config(zero)), std::exception);
}

TEST(FleetSpec, TotalUnitsIsCeilingDivision) {
  fleet::FleetSpec spec = tiny_spec();
  EXPECT_EQ(fleet::fleet_total_units(spec), 6u);  // 90 / 16 -> 5 full + 10
  spec.devices = 96;
  EXPECT_EQ(fleet::fleet_total_units(spec), 6u);  // exact division
  spec.devices = 1;
  EXPECT_EQ(fleet::fleet_total_units(spec), 1u);
}

// --- Population -------------------------------------------------------------

TEST(FleetPopulation, SamplingIsPureAndInRange) {
  const std::size_t families = study::fleet_families().size();
  for (std::uint64_t i = 0; i < 64; ++i) {
    const fleet::FleetDevice a = fleet::sample_fleet_device(i, 21);
    const fleet::FleetDevice b = fleet::sample_fleet_device(i, 21);
    EXPECT_EQ(a.family, b.family);
    EXPECT_EQ(a.cohort, b.cohort);
    EXPECT_EQ(a.session_seed, b.session_seed);
    EXPECT_EQ(a.user.max_open_apps, b.user.max_open_apps);
    EXPECT_LT(a.family, families);
    EXPECT_LT(a.cohort, fleet::kCohorts);
    EXPECT_GE(a.user.rating_video, 1);
    EXPECT_LE(a.user.rating_video, 5);
  }
  EXPECT_NE(fleet::sample_fleet_device(0, 21).session_seed,
            fleet::sample_fleet_device(1, 21).session_seed);
}

TEST(FleetPopulation, CohortPreloadIsCappedByRetainableRam) {
  EXPECT_EQ(fleet::cohort_preload_apps(0, 8192), 0);
  EXPECT_EQ(fleet::cohort_preload_apps(1, 4096), 3);
  EXPECT_EQ(fleet::cohort_preload_apps(2, 8192), 6);
  // A 1 GB device retains at most 2 preloads no matter the cohort.
  EXPECT_EQ(fleet::cohort_preload_apps(1, 1024), 2);
  EXPECT_EQ(fleet::cohort_preload_apps(2, 1024), 2);
  EXPECT_EQ(fleet::cohort_preload_apps(2, 2048), 4);
}

TEST(FleetPopulation, WorldSeedsDisjointFromDeviceStreams) {
  // World streams set bit 32 of the derive index; device streams use
  // 2*index(+1), so collisions would need 2^31 devices.
  const std::uint64_t w00 = fleet::fleet_world_seed(21, 0, 0);
  EXPECT_NE(w00, fleet::fleet_world_seed(21, 0, 1));
  EXPECT_NE(w00, fleet::fleet_world_seed(21, 1, 0));
  EXPECT_NE(w00, fleet::fleet_world_seed(22, 0, 0));
}

// --- Shard payloads ---------------------------------------------------------

TEST(FleetUnit, PayloadIsPureFunctionOfSpecAndUnit) {
  const fleet::FleetSpec spec = tiny_spec();
  EXPECT_EQ(fleet::run_fleet_unit(spec, 0, false), fleet::run_fleet_unit(spec, 0, false));
  EXPECT_NE(fleet::run_fleet_unit(spec, 0, false), fleet::run_fleet_unit(spec, 1, false));
}

TEST(FleetUnit, LastShardCoversTheRemainder) {
  const fleet::FleetSpec spec = tiny_spec();
  const fleet::FleetAggregate last =
      fleet::FleetAggregate::decode(fleet::run_fleet_unit(spec, 5, false));
  EXPECT_EQ(last.device_count, 10u);  // 90 - 5 * 16
  const fleet::FleetAggregate full =
      fleet::FleetAggregate::decode(fleet::run_fleet_unit(spec, 0, false));
  EXPECT_EQ(full.device_count, 16u);
}

#if MVQOE_TEST_FORK
TEST(FleetUnit, WarmForkMatchesColdBitForBit) {
  const fleet::FleetSpec spec = tiny_spec();
  for (std::uint64_t unit : {std::uint64_t{0}, std::uint64_t{5}}) {
    EXPECT_EQ(fleet::run_fleet_unit(spec, unit, true), fleet::run_fleet_unit(spec, unit, false))
        << "unit " << unit;
  }
}
#endif

// --- Aggregate --------------------------------------------------------------

TEST(FleetAggregate, EncodeDecodeRoundTripsExactly) {
  const fleet::FleetSpec spec = tiny_spec();
  const std::string bytes = fleet::run_fleet_unit(spec, 2, false);
  const fleet::FleetAggregate agg = fleet::FleetAggregate::decode(bytes);
  EXPECT_EQ(agg.encode(), bytes);
  EXPECT_EQ(fleet::FleetAggregate::decode(agg.encode()).digest(), agg.digest());
  EXPECT_THROW(fleet::FleetAggregate::decode(bytes.substr(0, bytes.size() / 2)),
               std::exception);
}

TEST(FleetAggregate, AscendingMergeOfShardsMatchesFullRun) {
  const fleet::FleetSpec spec = tiny_spec();
  fleet::FleetAggregate merged;
  for (std::uint64_t unit = 0; unit < fleet::fleet_total_units(spec); ++unit) {
    merged.merge(fleet::FleetAggregate::decode(fleet::run_fleet_unit(spec, unit, false)));
  }
  const fleet::FleetRunResult serial = fleet::run_fleet(spec, fast_options());
  ASSERT_TRUE(serial.complete);
  EXPECT_EQ(merged.encode(), serial.aggregate.encode());
  EXPECT_EQ(merged.device_count, spec.devices);
  EXPECT_EQ(merged.session_seconds,
            spec.devices * static_cast<std::uint64_t>(spec.session_s));
}

TEST(FleetAggregate, BlobRoundTripsConfigAndAggregate) {
  const fleet::FleetSpec spec = tiny_spec();
  fleet::FleetAggregate agg =
      fleet::FleetAggregate::decode(fleet::run_fleet_unit(spec, 0, false));
  const snapshot::Snapshot blob = fleet::save_fleet_blob(spec, agg);
  const snapshot::Snapshot reparsed = snapshot::Snapshot::parse(blob.serialize());
  const auto [spec2, agg2] = fleet::load_fleet_blob(reparsed);
  EXPECT_EQ(fleet::fleet_config_fingerprint(spec2), fleet::fleet_config_fingerprint(spec));
  EXPECT_EQ(agg2.encode(), agg.encode());
  EXPECT_EQ(fleet::fleet_report_json(spec2, agg2), fleet::fleet_report_json(spec, agg));
  EXPECT_THROW(fleet::load_fleet_blob(snapshot::Snapshot()), std::exception);
}

// --- Execution lanes --------------------------------------------------------

TEST(FleetLanes, ThreadLaneMatchesSerialByteForByte) {
  const fleet::FleetSpec spec = tiny_spec();
  const fleet::FleetRunResult serial = fleet::run_fleet(spec, fast_options());
  auto opts = fast_options();
  opts.jobs = 3;
  const fleet::FleetRunResult jobs = fleet::run_fleet(spec, opts);
  ASSERT_TRUE(serial.complete);
  ASSERT_TRUE(jobs.complete);
  EXPECT_EQ(serial.digest, jobs.digest);
  EXPECT_EQ(serial.aggregate.encode(), jobs.aggregate.encode());
  EXPECT_EQ(fleet::fleet_report_json(spec, serial.aggregate),
            fleet::fleet_report_json(spec, jobs.aggregate));
  EXPECT_EQ(serial.devices_done, spec.devices);
}

TEST(FleetLanes, ProgressReachesTotalMonotonically) {
  const fleet::FleetSpec spec = tiny_spec();
  auto opts = fast_options();
  std::vector<std::uint64_t> done;
  std::uint64_t total = 0;
  opts.progress = [&](std::uint64_t d, std::uint64_t t) {
    done.push_back(d);
    total = t;
  };
  ASSERT_TRUE(fleet::run_fleet(spec, opts).complete);
  ASSERT_FALSE(done.empty());
  EXPECT_EQ(total, spec.devices);
  EXPECT_EQ(done.back(), spec.devices);
  for (std::size_t i = 1; i < done.size(); ++i) EXPECT_GE(done[i], done[i - 1]);
}

#if MVQOE_TEST_FORK

TEST(FleetLanes, ProcessLaneMatchesSerialByteForByte) {
  const fleet::FleetSpec spec = tiny_spec();
  const fleet::FleetRunResult serial = fleet::run_fleet(spec, fast_options());
  auto opts = fast_options();
  opts.procs = 3;
  const fleet::FleetRunResult procs = fleet::run_fleet(spec, opts);
  ASSERT_TRUE(serial.complete);
  ASSERT_TRUE(procs.complete);
  EXPECT_EQ(serial.digest, procs.digest);
  EXPECT_EQ(serial.aggregate.encode(), procs.aggregate.encode());
  EXPECT_EQ(fleet::fleet_report_json(spec, serial.aggregate),
            fleet::fleet_report_json(spec, procs.aggregate));
}

TEST(FleetLanes, CrashAndResumeMatchesUninterruptedRun) {
  const fleet::FleetSpec spec = tiny_spec();
  const fleet::FleetRunResult reference = fleet::run_fleet(spec, fast_options());
  ASSERT_TRUE(reference.complete);

  // Phase 1: one shard dies on every attempt with the retry budget at
  // 1, so the campaign completes degraded and checkpoints the rest.
  ScratchFile state("resume");
  auto crash_opts = fast_options();
  crash_opts.procs = 2;
  crash_opts.max_attempts = 1;
  crash_opts.state_path = state.path();
  crash_opts.hooks.abort_unit = 2;
  crash_opts.hooks.abort_attempts = 99;
  const fleet::FleetRunResult partial = fleet::run_fleet(spec, crash_opts);
  EXPECT_FALSE(partial.complete);
  EXPECT_LT(partial.devices_done, spec.devices);

  // Phase 2: the checkpoint alone reconstructs the spec; the resumed
  // run must land on the reference bytes exactly.
  const fleet::FleetSpec recovered = fleet::load_fleet_resume_spec(state.path());
  EXPECT_EQ(fleet::fleet_config_fingerprint(recovered), fleet::fleet_config_fingerprint(spec));
  auto resume_opts = fast_options();
  resume_opts.procs = 2;
  resume_opts.state_path = state.path();
  resume_opts.resume = true;
  const fleet::FleetRunResult resumed = fleet::run_fleet(recovered, resume_opts);
  ASSERT_TRUE(resumed.complete);
  EXPECT_GT(resumed.campaign.units_from_checkpoint, 0u);
  EXPECT_EQ(resumed.digest, reference.digest);
  EXPECT_EQ(resumed.aggregate.encode(), reference.aggregate.encode());
  EXPECT_EQ(fleet::fleet_report_json(spec, resumed.aggregate),
            fleet::fleet_report_json(spec, reference.aggregate));
}

TEST(FleetLanes, ResumeRejectsDifferentFleet) {
  ScratchFile state("fingerprint");
  fleet::FleetSpec spec = tiny_spec();
  spec.devices = 20;
  auto opts = fast_options();
  opts.procs = 1;
  opts.state_path = state.path();
  ASSERT_TRUE(fleet::run_fleet(spec, opts).complete);

  fleet::FleetSpec other = spec;
  other.seed += 1;
  auto resume_opts = fast_options();
  resume_opts.procs = 1;
  resume_opts.state_path = state.path();
  resume_opts.resume = true;
  EXPECT_THROW(fleet::run_fleet(other, resume_opts), std::runtime_error);
}

#endif  // MVQOE_TEST_FORK

}  // namespace
